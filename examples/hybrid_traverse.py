"""Hybrid multi-search-space traversal (paper §5.5, future applications).

NASPipe's runtime "is flexible to hold any number of causal dependency
relations", so several search spaces can be explored in one pipeline.
This example interleaves NLP.c2 and NLP.c3 subnets into one CSP stream,
trains them concurrently, and shows why hybrid traversal pipelines so
well: subnets of different spaces never share layers, halving the
effective dependency density between chronological neighbours.

Usage::

    python examples/hybrid_traverse.py [subnets_per_space]
"""

import sys

from repro import PipelineEngine, SeedSequenceTree, SubnetStream, naspipe
from repro.nas.hybrid import HybridSupernet, hybrid_stream
from repro.sim.cluster import ClusterSpec
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet


def main(per_space: int = 60) -> None:
    members = [get_search_space("NLP.c2"), get_search_space("NLP.c3")]
    hybrid = HybridSupernet(members)
    print(f"hybrid space {hybrid.space.name}: "
          f"{hybrid.space.num_blocks} blocks x "
          f"{hybrid.space.choices_per_block} candidates")

    seeds = SeedSequenceTree(2022)
    stream = hybrid_stream(members, seeds, per_space)
    engine = PipelineEngine(
        hybrid, stream, naspipe(), ClusterSpec(num_gpus=8), batch=192
    )
    result = engine.run()
    print("hybrid traverse:   " + result.summary())

    # Baseline: the same budget spent on a single space.
    single_supernet = Supernet(members[0])
    single_stream = SubnetStream.sample(
        members[0], seeds.child("single"), 2 * per_space
    )
    single_result = PipelineEngine(
        single_supernet, single_stream, naspipe(),
        ClusterSpec(num_gpus=8), batch=192,
    ).run()
    print("single space SPOS: " + single_result.summary())

    speedup = single_result.makespan_ms / result.makespan_ms
    print(f"\nhybrid interleaving finished the same subnet budget "
          f"{speedup:.2f}x faster (cross-space subnets are causally "
          f"independent, so the CSP pipeline stays fuller)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
