"""Bring-your-own search space: profile layers, build a space, train,
replay, and export a Chrome trace.

Walks the full extension workflow:

1. profile the functional layer families on this machine
   (:mod:`repro.profiling` — the paper's "pre-profiled statistics");
2. declare a custom search space block-by-block
   (:mod:`repro.supernet.builder`);
3. train it under NASPipe and record a replayable manifest;
4. verify the replay bit-for-bit and export the execution trace for
   chrome://tracing.

Usage::

    python examples/custom_space.py [steps]
"""

import sys
from pathlib import Path

from repro import ascii_gantt, execute_manifest, to_chrome_trace
from repro.profiling import measurements_to_profiles, profile_families
from repro.replay import RunManifest, record_run, verify_replay
from repro.supernet.builder import SearchSpaceBuilder


def main(steps: int = 40) -> None:
    # 1. profile the layer zoo (wall-clock, this machine).
    measurements = profile_families(width=32, batch=16, repeats=5)
    profiles = measurements_to_profiles(measurements)
    print("profiled layer families (fwd/bwd ms at width 32, batch 16):")
    for family, measurement in sorted(measurements.items()):
        print(f"  {family:>10s}: {measurement.fwd_ms:6.3f}/{measurement.bwd_ms:6.3f}"
              f"  params={measurement.param_count}")

    # 2. declare a 10-block space mixing four families per block.
    builder = SearchSpaceBuilder(
        "my-space", domain="NLP", reference_batch=32, max_batch=64,
        functional_width=32,
    )
    mix = [profiles["linear"], profiles["conv"], profiles["glu"],
           profiles["attention"]]
    for block in range(10):
        scales = [1.0 + 0.05 * ((block + c) % 4) for c in range(4)]
        builder.add_block(mix, scales=scales)
    supernet = builder.build()
    print(f"\nbuilt {supernet.space.name}: {supernet.space.num_blocks} blocks x "
          f"{supernet.space.choices_per_block} candidates")

    # 3. the builder's space is not in the registry, so describe the run
    #    directly (record_run targets registry spaces); train + manifest.
    from repro import PipelineEngine, SeedSequenceTree, SubnetStream, naspipe
    from repro.engines.functional_plane import FunctionalPlane
    from repro.sim.cluster import ClusterSpec

    seeds = SeedSequenceTree(7)
    stream = SubnetStream.sample(supernet.space, seeds, steps)
    plane = FunctionalPlane(supernet, seeds, functional_batch=8)
    engine = PipelineEngine(
        supernet, stream, naspipe(), ClusterSpec(num_gpus=4), batch=32,
        functional=plane,
    )
    result = engine.run()
    print(f"\ntrained {steps} subnets: {result.summary()}")
    print(f"weights digest: {result.digest[:16]}…")

    # 4. visualise + export.
    print("\nfirst slice of the schedule:")
    print(ascii_gantt(result.trace, width=90, end=result.trace.makespan / 4))
    out = Path("custom_space_trace.json")
    out.write_text(to_chrome_trace(result.trace, label="my-space"))
    print(f"\nChrome trace written to {out} (open in chrome://tracing)")

    # replay demo with a registry space (manifests target the registry)
    manifest = record_run(
        "NLP.c3", "NASPipe",
        space_overrides={"num_blocks": 12, "functional_width": 16},
        num_gpus=4, steps=20, batch=32, seed=7,
    )
    verify_replay(manifest)
    print("replay manifest for a registry space verified bitwise.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
