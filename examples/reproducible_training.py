"""Reproducible training demo — the artifact's Experiment 1, extended.

Trains the same seeded subnet stream:

* sequentially (the ground truth the exploration algorithm assumes),
* under CSP (NASPipe) on 1, 4 and 8 simulated GPUs,
* under BSP (GPipe) and ASP (PipeDream) on 4 and 8 GPUs,

then compares SHA-256 digests of all final weights, every per-step loss,
and a shared layer's access/update order (the paper's Table 4).

Usage::

    python examples/reproducible_training.py [steps]
"""

import sys

from repro import (
    FunctionalPlane,
    PipelineEngine,
    SeedSequenceTree,
    SequentialEngine,
    SubnetStream,
    Supernet,
    gpipe,
    naspipe,
    pipedream,
    get_search_space,
)
from repro.sim.cluster import ClusterSpec

SEED = 2022
#: scaled-down NLP.c0 flavour: full width is numpy-bound, and Definition
#: 1 is insensitive to scale (see DESIGN.md).
SPACE = get_search_space("NLP.c0").scaled(
    name="NLP.c0-scaled", num_blocks=16, functional_width=16
)


def run_pipeline(config, gpus: int, steps: int):
    supernet = Supernet(SPACE)
    seeds = SeedSequenceTree(SEED)
    stream = SubnetStream.sample(SPACE, seeds, steps)
    plane = FunctionalPlane(supernet, seeds, functional_batch=8)
    engine = PipelineEngine(
        supernet, stream, config, ClusterSpec(num_gpus=gpus), batch=32,
        functional=plane,
    )
    return engine.run(), plane


def main(steps: int = 60) -> None:
    supernet = Supernet(SPACE)
    seeds = SeedSequenceTree(SEED)
    stream = SubnetStream.sample(SPACE, seeds, steps)
    plane = FunctionalPlane(supernet, seeds, functional_batch=8)
    truth = SequentialEngine(supernet, stream, plane, batch=32).run()
    print(f"sequential ground truth: digest {truth.digest[:16]}…  "
          f"final loss {truth.final_loss:.6f}\n")

    print("CSP (NASPipe):")
    for gpus in (1, 4, 8):
        result, _ = run_pipeline(naspipe(), gpus, steps)
        losses_equal = all(
            result.losses[sid] == loss for sid, loss in truth.losses.items()
        )
        verdict = (
            "bitwise equal to sequential"
            if result.digest == truth.digest and losses_equal
            else "MISMATCH (bug!)"
        )
        print(f"  {gpus:>2d} GPUs: digest {result.digest[:16]}… -> {verdict}")

    print("\nBSP (GPipe) and ASP (PipeDream):")
    for name, config in (("BSP", gpipe()), ("ASP", pipedream())):
        for gpus in (4, 8):
            result, _ = run_pipeline(config, gpus, steps)
            verdict = (
                "equal" if result.digest == truth.digest else "DIFFERENT bits"
            )
            print(f"  {name} {gpus:>2d} GPUs: digest {result.digest[:16]}… "
                  f"-> {verdict}")

    # Table 4: a layer's access/update order, compared against the
    # sequential semantics (nF-nB strictly by sequence ID).
    print("\naccess order of the busiest shared layer (Table 4 style):")

    def busiest_layer(store):
        return max(
            store.materialized_layers,
            key=lambda layer: len(store.access_order(layer)),
        )

    def sequential_order(order_string: str) -> str:
        ids = sorted(
            {int(token[:-1]) for token in order_string.split("-")}
        )
        return "-".join(f"{sid}F-{sid}B" for sid in ids)

    for name, config in (("CSP", naspipe()), ("ASP", pipedream())):
        for gpus in (4, 8):
            _result, run_plane = run_pipeline(config, gpus, steps)
            order = run_plane.store.access_order_string(
                busiest_layer(run_plane.store)
            )
            verdict = (
                "= sequential order"
                if order == sequential_order(order)
                else "DEVIATES from sequential order"
            )
            print(f"  {name} {gpus} GPUs: {order[:46]}…  -> {verdict}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
