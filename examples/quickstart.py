"""Quickstart: train a supernet stream under NASPipe and the baselines.

Runs the paper's default setup (NLP.c1, 8 simulated GPUs) for a short
stream under each system and prints the throughput/bubble/cache summary —
a miniature of the paper's Figure 5 / Table 2.

Usage::

    python examples/quickstart.py [steps]
"""

import sys

from repro import (
    ALL_SYSTEMS,
    PipelineEngine,
    SeedSequenceTree,
    SubnetStream,
    Supernet,
    errors,
    get_search_space,
    system_by_name,
)


def main(steps: int = 150) -> None:
    space = get_search_space("NLP.c1")
    supernet = Supernet(space)
    seeds = SeedSequenceTree(2022)
    print(f"search space {space.name}: {space.num_blocks} choice blocks x "
          f"{space.choices_per_block} candidates "
          f"({space.architecture_count:.2e} architectures, "
          f"{supernet.total_param_count() / 1e9:.1f}B supernet parameters)")
    print(f"training {steps} subnets on 8 simulated GPUs\n")

    for name in ALL_SYSTEMS:
        # Same seeded stream for every system: identical workload.
        stream = SubnetStream.sample_generational(space, seeds, steps)
        try:
            engine = PipelineEngine(supernet, stream, system_by_name(name))
        except errors.GpuOutOfMemoryError:
            print(f"{name:>10s}: OOM (supernet does not fit 8 x 11 GB)")
            continue
        result = engine.run()
        print(result.summary())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
