"""End-to-end NAS: supernet training + evolutionary architecture search.

Trains a (scaled) CV.c2 supernet under NASPipe, then searches it with the
paper's default strategy (aging evolution) and a random-search baseline,
and verifies that re-running the whole train+search pipeline reproduces
the identical searched architecture — the property GreedyNAS-style
post-training analysis depends on (paper §2.1).

Usage::

    python examples/nas_search.py [steps] [evaluations]
"""

import sys

from repro import SeedSequenceTree, get_search_space, naspipe
from repro.nas.evaluator import SubnetEvaluator
from repro.nas.random_search import RandomSearch
from repro.nas.trainer import SupernetTrainer


def train_and_search(steps: int, evaluations: int):
    space = get_search_space("CV.c2").scaled(
        name="CV.c2-scaled", num_blocks=16, choices_per_block=8,
        functional_width=16,
    )
    # Narrow spaces revisit each layer often; a gentler learning rate
    # than the wide-space default keeps momentum-SGD stable.
    trainer = SupernetTrainer(
        space, seed=2022, num_gpus=8, functional_batch=16, learning_rate=0.05
    )
    training = trainer.train(naspipe(), steps=steps, batch=32)
    outcome = trainer.search(training, evaluations=evaluations)
    return space, trainer, training, outcome


def main(steps: int = 200, evaluations: int = 40) -> None:
    space, trainer, training, outcome = train_and_search(steps, evaluations)
    print(f"trained {steps} subnets of {space.name} "
          f"(digest {training.digest[:12]}…, "
          f"tail loss {training.mean_tail_loss():.4f})")
    print(f"evolutionary search: best top-5 score {outcome.best_score:.2f} "
          f"after {outcome.evaluated} evaluations")
    print(f"best architecture (choices per block): {outcome.best_choices}")

    evaluator = SubnetEvaluator(training.plane)
    random_outcome = RandomSearch(
        space, evaluator, SeedSequenceTree(2022)
    ).run(evaluations)
    print(f"random-search baseline:  best score {random_outcome.best_score:.2f}")

    # Reproducibility of the *whole* train+search pipeline.
    _space, _trainer, training2, outcome2 = train_and_search(steps, evaluations)
    assert training2.digest == training.digest
    assert outcome2.best_choices == outcome.best_choices
    assert outcome2.best_score == outcome.best_score
    print("\nre-run reproduced the identical supernet and searched "
          "architecture (bitwise).")


if __name__ == "__main__":
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    evaluations = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    main(steps, evaluations)
