"""Scalability study: Figure 7 plus a per-GPU efficiency breakdown.

Sweeps the simulated cluster from 4 to 16 GPUs on NLP.c1 for all four
systems and prints total ALU utilisation (the paper's Figure 7 metric),
throughput, and the bubble growth that makes NASPipe's scaling
sub-linear (§5.4).

Usage::

    python examples/scalability_study.py [subnets]
"""

import sys

from repro import (
    ALL_SYSTEMS,
    PipelineEngine,
    SeedSequenceTree,
    SubnetStream,
    Supernet,
    errors,
    get_search_space,
    system_by_name,
)
from repro.sim.cluster import ClusterSpec

GPU_COUNTS = (4, 8, 12, 16)


def main(subnets: int = 150) -> None:
    space = get_search_space("NLP.c1")
    supernet = Supernet(space)
    seeds = SeedSequenceTree(2022)

    print(f"{'system':>10s} {'GPUs':>5s} {'total ALU':>10s} "
          f"{'ALU/GPU':>8s} {'bubble':>7s} {'samples/s':>10s}")
    for name in ALL_SYSTEMS:
        for gpus in GPU_COUNTS:
            stream = SubnetStream.sample_generational(
                space, seeds.child(f"{name}/{gpus}"), subnets
            )
            try:
                engine = PipelineEngine(
                    supernet, stream, system_by_name(name),
                    ClusterSpec(num_gpus=gpus),
                )
            except errors.GpuOutOfMemoryError:
                print(f"{name:>10s} {gpus:>5d} {'OOM':>10s}")
                continue
            result = engine.run()
            print(
                f"{name:>10s} {gpus:>5d} {result.total_alu:>9.1f}x "
                f"{result.total_alu / gpus:>8.2f} "
                f"{result.bubble_ratio:>7.2f} "
                f"{result.throughput_samples_per_sec:>10.1f}"
            )
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
