#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans every ``*.md`` at the repository root and under ``docs/`` for
inline links/images, resolves relative targets against the containing
file, and fails (exit 1) listing any that point at missing files.
External links (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#...``) are skipped; a ``path#anchor`` target is checked for the path
only. Run from anywhere: ``python tools/check_docs_links.py``.

Also enforces the documentation contract: the docs in ``REQUIRED_DOCS``
must exist, and each must be linked from at least one *other* markdown
file (a doc nothing points to is unreachable from the reading paths).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

# [text](target) and ![alt](target); target ends at the first unescaped
# ')' — good enough for the plain paths these docs use.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:")

#: docs that must exist and be cross-linked from at least one other
#: markdown file (repo-root-relative)
REQUIRED_DOCS = (
    "docs/ANALYSIS.md",
    "docs/ARCHITECTURE.md",
    "docs/TRACING.md",
    "docs/FAULT_TOLERANCE.md",
    "docs/API.md",
    "docs/TESTING.md",
    "docs/OPERATIONS.md",
    "docs/SERVING.md",
    "docs/TELEMETRY.md",
)


def markdown_files() -> List[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return files


def iter_links(path: Path) -> Iterator[Tuple[int, str]]:
    in_code_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def check() -> List[str]:
    problems: List[str] = []
    linked_from: dict = {}  # resolved target -> set of source files
    for path in markdown_files():
        for lineno, target in iter_links(path):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            candidate = target.split("#", 1)[0]
            if not candidate:
                continue
            resolved = (path.parent / candidate).resolve()
            if not resolved.exists():
                where = path.relative_to(REPO_ROOT)
                problems.append(f"{where}:{lineno}: broken link -> {target}")
            else:
                linked_from.setdefault(resolved, set()).add(path.resolve())
    for required in REQUIRED_DOCS:
        doc = (REPO_ROOT / required).resolve()
        if not doc.exists():
            problems.append(f"{required}: required doc is missing")
            continue
        sources = linked_from.get(doc, set()) - {doc}
        if not sources:
            problems.append(
                f"{required}: required doc is not linked from any other "
                "markdown file"
            )
    return problems


def main() -> int:
    problems = check()
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} broken link(s)")
        return 1
    print(f"all intra-repo links resolve across {len(markdown_files())} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
