#!/usr/bin/env python
"""Record the committed observability baseline for the CI compare gate.

Runs the chaos-baseline configuration (``examples/analyze_demo.json``)
and writes its registry record — run summary, critical-path breakdown,
config digest — as canonical JSON.  CI's chaos-smoke job re-runs the
same config and fails when makespan or bubble ratio regresses >2x
against this file (``naspipe compare ... --fail-on-regression 100``),
mirroring the scheduler-cost gate.

``git_sha`` is pinned to null so the committed baseline does not churn
with every commit; regenerate with ``make obs-baseline`` whenever an
intentional performance change moves the numbers.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cli import _config_identity, _load_run_config, _run_config  # noqa: E402
from repro.obs.registry import run_record  # noqa: E402


def main() -> int:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "benchmarks/obs_baseline.json")
    config_path = REPO / "examples" / "analyze_demo.json"
    config, scale, run_kwargs = _load_run_config(config_path)
    result = _run_config(config, scale, run_kwargs)
    record = run_record(
        result,
        identity=_config_identity(config, scale.num_gpus, scale),
        git_sha=None,
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    )
    print(
        f"wrote {out}: run {record['run_id']}, "
        f"makespan {record['summary']['makespan_ms']:.1f} ms, "
        f"bubble {record['summary']['bubble_ratio']:.4f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
