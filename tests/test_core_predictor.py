"""Context predictor (Algorithm 3) tests."""

from repro.core.dependency import DependencyTracker
from repro.core.predictor import ContextPredictor
from repro.core.scheduler import CspScheduler
from repro.core.task import TaskKind
from repro.supernet.subnet import Subnet


def _env(rows, lo=0, hi=None):
    subnets = {i: Subnet(i, tuple(row)) for i, row in enumerate(rows)}
    hi = hi if hi is not None else len(rows[0])
    tracker = DependencyTracker()
    for subnet in subnets.values():
        tracker.register(subnet)

    def stage_layers(subnet_id):
        return subnets[subnet_id].layers_in_range(lo, hi)

    predictor = ContextPredictor(0, CspScheduler(), stage_layers, depth=2)
    return subnets, tracker, predictor


def test_backward_prediction_assumes_release():
    # Subnet 1 shares with 0; a backward of 0 should predict 1's forward.
    _subnets, tracker, predictor = _env([(4, 4), (4, 4)])
    predictions = predictor.predict_on_backward(0, [1], tracker)
    assert [p.task.subnet_id for p in predictions] == [1]
    assert predictions[0].task.kind is TaskKind.FORWARD
    assert predictions[0].reason == "after-backward"


def test_backward_prediction_depth_chains():
    # 0 blocks 1 blocks 2 on the same layer; after 0's backward the
    # depth-2 forecast optimistically predicts both 1 and 2.
    _subnets, tracker, predictor = _env([(4,), (4,), (4,)])
    predictions = predictor.predict_on_backward(0, [1, 2], tracker)
    assert [p.task.subnet_id for p in predictions] == [1, 2]


def test_forward_prediction_skips_current_and_releases_pending():
    _subnets, tracker, predictor = _env([(1,), (2,), (3,)])
    # Record a pending backward hint for subnet 1, then announce subnet
    # 1's forward: the pending backward must be predicted for prefetch.
    predictor.predict_on_backward(0, [], tracker, pending_backward_hints=[1])
    predictions = predictor.predict_on_forward(1, [2], tracker)
    kinds = {(p.task.subnet_id, p.task.kind) for p in predictions}
    assert (1, TaskKind.BACKWARD) in kinds
    assert (2, TaskKind.FORWARD) in kinds
    # The hint is consumed.
    assert predictor.blocked_backwards == []


def test_forward_prediction_keeps_unrelated_hints():
    _subnets, tracker, predictor = _env([(1,), (2,), (3,)])
    predictor.predict_on_backward(0, [], tracker, pending_backward_hints=[2])
    predictor.predict_on_forward(1, [], tracker)
    assert predictor.blocked_backwards == [2]


def test_no_prediction_when_everything_blocked():
    _subnets, tracker, predictor = _env([(4,), (4,), (4,)])
    # Nothing released yet: forward after subnet 2's hypothetical
    # schedule must not predict blocked subnets.
    predictions = predictor.predict_on_forward(0, [1, 2], tracker)
    assert [p.task.subnet_id for p in predictions] == []


def test_prediction_counter_increments():
    _subnets, tracker, predictor = _env([(1,), (2,)])
    predictor.predict_on_backward(0, [1], tracker)
    predictor.predict_on_forward(0, [1], tracker)
    assert predictor.predictions_made == 2
