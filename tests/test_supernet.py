"""Search space, subnet, supernet and catalog tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SearchSpaceError
from repro.supernet import (
    CV_LAYER_TYPES,
    NLP_LAYER_TYPES,
    SEARCH_SPACES,
    Subnet,
    Supernet,
    catalog_for_domain,
    get_search_space,
    list_search_spaces,
)
from repro.supernet.catalog import PCIE_BANDWIDTH_BYTES_PER_MS


# ----------------------------------------------------------------------
# catalog (Table 5 anchoring)
# ----------------------------------------------------------------------
def test_table5_comp_times_verbatim():
    fwd = {p.name: p.fwd_ms for p in NLP_LAYER_TYPES + CV_LAYER_TYPES}
    assert fwd["conv3x1"] == 5.0
    assert fwd["attention8h"] == 7.9
    assert fwd["conv3x3"] == 7.9
    bwd = {p.name: p.bwd_ms for p in NLP_LAYER_TYPES + CV_LAYER_TYPES}
    assert bwd["conv3x1"] == 10.0
    assert bwd["sepconv5x5"] == 9.9


@pytest.mark.parametrize("profile", NLP_LAYER_TYPES + CV_LAYER_TYPES)
def test_swap_time_roundtrips_through_param_bytes(profile):
    # param bytes were derived from Table 5 swap times; inverting must
    # recover the measured swap time at PCIe 3.0 x16 bandwidth.
    assert profile.swap_ms == pytest.approx(
        profile.param_bytes / PCIE_BANDWIDTH_BYTES_PER_MS
    )


def test_table5_swap_times_recovered():
    swaps = {p.name: p.swap_ms for p in NLP_LAYER_TYPES + CV_LAYER_TYPES}
    assert swaps["conv3x1"] == pytest.approx(1.76, rel=1e-3)
    assert swaps["conv3x3"] == pytest.approx(4.6, rel=1e-3)
    assert swaps["lightconv5x1"] == pytest.approx(0.03, rel=1e-2)


def test_catalog_domain_lookup():
    assert catalog_for_domain("NLP") == NLP_LAYER_TYPES
    with pytest.raises(KeyError):
        catalog_for_domain("AUDIO")


# ----------------------------------------------------------------------
# search spaces (Table 1)
# ----------------------------------------------------------------------
def test_table1_registry():
    expected = {
        "NLP.c0": (48, 96),
        "NLP.c1": (48, 72),
        "NLP.c2": (48, 48),
        "NLP.c3": (48, 24),
        "CV.c1": (32, 48),
        "CV.c2": (32, 24),
        "CV.c3": (32, 12),
    }
    assert set(SEARCH_SPACES) == set(expected)
    for name, (blocks, choices) in expected.items():
        space = get_search_space(name)
        assert (space.num_blocks, space.choices_per_block) == (blocks, choices)
    assert list_search_spaces() == list(expected)


def test_space_architecture_count():
    space = get_search_space("NLP.c3").scaled(num_blocks=5, choices_per_block=4)
    assert space.architecture_count == 4**5
    assert space.num_candidate_layers == 20


def test_space_validation():
    space = get_search_space("CV.c3")
    with pytest.raises(SearchSpaceError):
        space.validate_choices([0] * (space.num_blocks - 1))
    with pytest.raises(SearchSpaceError):
        space.validate_choices([space.choices_per_block] * space.num_blocks)
    space.validate_choices([0] * space.num_blocks)


def test_unknown_space_raises():
    with pytest.raises(SearchSpaceError):
        get_search_space("NLP.c9")


# ----------------------------------------------------------------------
# subnets
# ----------------------------------------------------------------------
def test_subnet_layers_and_ranges():
    subnet = Subnet(3, (1, 0, 2, 2))
    assert tuple(subnet.layer_ids()) == ((0, 1), (1, 0), (2, 2), (3, 2))
    assert tuple(subnet.layers_in_range(1, 3)) == ((1, 0), (2, 2))
    # memoised views: repeat calls hand back the same interned tuples
    assert subnet.layer_ids() is subnet.layer_ids()
    assert subnet.layers_in_range(1, 3) is subnet.layers_in_range(1, 3)


def test_subnet_dependency_detection():
    a = Subnet(0, (1, 2, 3))
    b = Subnet(1, (1, 0, 0))
    c = Subnet(2, (0, 0, 0))
    assert b.depends_on(a)
    assert b.shared_layers(a) == [(0, 1)]
    assert not c.depends_on(a)
    assert c.shared_layers(a) == []


def test_subnet_mutate_and_with_id():
    subnet = Subnet(0, (1, 1, 1))
    mutated = subnet.mutate(1, 2)
    assert mutated.choices == (1, 2, 1)
    assert subnet.choices == (1, 1, 1)
    assert mutated.with_id(9).subnet_id == 9
    with pytest.raises(IndexError):
        subnet.mutate(5, 0)


@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=12),
    st.lists(st.integers(0, 3), min_size=1, max_size=12),
)
def test_shared_layers_symmetric(choices_a, choices_b):
    size = min(len(choices_a), len(choices_b))
    a = Subnet(0, tuple(choices_a[:size]))
    b = Subnet(1, tuple(choices_b[:size]))
    assert set(a.shared_layers(b)) == set(b.shared_layers(a))
    assert a.depends_on(b) == b.depends_on(a)
    assert a.depends_on(a) or size == 0


# ----------------------------------------------------------------------
# supernet profiles
# ----------------------------------------------------------------------
def test_profiles_deterministic_and_cached(tiny_supernet):
    p1 = tiny_supernet.profile((0, 1))
    p2 = tiny_supernet.profile((0, 1))
    assert p1 is p2
    fresh = Supernet(tiny_supernet.space).profile((0, 1))
    assert fresh.size_scale == p1.size_scale
    assert fresh.param_count == p1.param_count


def test_profile_bounds(tiny_supernet):
    for choice in range(tiny_supernet.space.choices_per_block):
        profile = tiny_supernet.profile((0, choice))
        assert 0.75 <= profile.size_scale <= 1.25
        assert profile.fwd_ms_ref > 0
        assert profile.param_count > 0


def test_profile_range_checks(tiny_supernet):
    with pytest.raises(IndexError):
        tiny_supernet.profile((tiny_supernet.space.num_blocks, 0))
    with pytest.raises(IndexError):
        tiny_supernet.profile((0, tiny_supernet.space.choices_per_block))


def test_supernet_param_accounting(tiny_supernet):
    space = tiny_supernet.space
    total = tiny_supernet.total_param_count()
    assert total == sum(
        tiny_supernet.profile((b, c)).param_count
        for b in range(space.num_blocks)
        for c in range(space.choices_per_block)
    )
    subnet = Subnet(0, tuple([0] * space.num_blocks))
    assert tiny_supernet.subnet_param_count(subnet) < total
    expected = tiny_supernet.expected_subnet_param_count()
    assert 0 < expected < total


def test_nlp_c1_supernet_matches_paper_scale():
    """Table 2 reports the NLP.c1 supernet at 14.8 B parameters; our
    catalog-derived figure must land within 5%."""
    supernet = Supernet(get_search_space("NLP.c1"))
    assert supernet.total_param_count() == pytest.approx(14.8e9, rel=0.05)


def test_batch_time_scaling_law():
    supernet = Supernet(get_search_space("NLP.c1"))
    assert supernet.batch_time_scale(supernet.space.reference_batch) == 1.0
    assert supernet.batch_time_scale(32) < 1.0
    # Calibration anchor from the paper: t(192)/t(32) ~ 2.1 for NLP.
    ratio = supernet.batch_time_scale(192) / supernet.batch_time_scale(32)
    assert 1.8 < ratio < 2.4


def test_alu_efficiency_saturates():
    supernet = Supernet(get_search_space("CV.c1"))
    assert supernet.gpu_alu_efficiency(4) < supernet.gpu_alu_efficiency(64)
    assert supernet.gpu_alu_efficiency(10_000) < 1.0


def test_choice_block_accessor(tiny_supernet):
    block = tiny_supernet.choice_block(2)
    assert block.index == 2
    assert len(block) == tiny_supernet.space.choices_per_block


def test_subnet_encode_decode_roundtrip():
    subnet = Subnet(3, (1, 0, 2, 2))
    encoded = subnet.encode()
    assert encoded == "3:1-0-2-2"
    assert Subnet.decode(encoded) == subnet
    with pytest.raises(ValueError):
        Subnet.decode("not-a-subnet")
    with pytest.raises(ValueError):
        Subnet.decode("3:1-x-2")
