"""Registry + compare: byte-stable records and the CI regression gate.

Two identical runs must serialise to byte-identical registry records
(the whole point of a cross-run registry over a reproducible simulator),
``resolve_run`` must accept both file paths and ``run_id`` prefixes,
and the ``naspipe compare --fail-on-regression`` path must exit non-zero
on an injected 2x makespan regression — exactly what the chaos-smoke CI
job runs against the committed baseline.
"""

import copy
import json

import pytest

from repro.baselines import naspipe
from repro.cli import main
from repro.engines.pipeline import PipelineEngine
from repro.obs.registry import (
    append_run,
    check_regression,
    compare_records,
    config_digest,
    format_compare,
    load_runs,
    resolve_run,
    run_record,
)
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.supernet import Supernet


def _run(supernet, count=6, gpus=2, batch=16, seed=7):
    stream = SubnetStream.sample(supernet.space, SeedSequenceTree(seed), count)
    engine = PipelineEngine(
        supernet, stream, naspipe(), ClusterSpec(num_gpus=gpus), batch=batch
    )
    return engine.run()


def _canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _config(tmp_path, **extra):
    payload = {
        "space": "NLP.c3",
        "space_overrides": {"num_blocks": 8, "functional_width": 16},
        "system": "NASPipe",
        "num_gpus": 2,
        "subnets": 4,
        "batch": 16,
        "seed": 7,
        **extra,
    }
    path = tmp_path / "run.json"
    path.write_text(json.dumps(payload))
    return path


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
def test_double_run_records_serialise_identically(tiny_supernet):
    first = run_record(_run(tiny_supernet), git_sha=None)
    second = run_record(_run(tiny_supernet), git_sha=None)
    assert _canonical(first) == _canonical(second)
    assert first["run_id"] == second["run_id"]
    assert first["config_digest"] == second["config_digest"]


def test_run_id_ignores_git_sha(tiny_supernet):
    result = _run(tiny_supernet)
    pinned = run_record(result, git_sha="deadbeef")
    bare = run_record(result, git_sha=None)
    assert pinned["git_sha"] == "deadbeef" and bare["git_sha"] is None
    assert pinned["run_id"] == bare["run_id"]


def test_config_digest_tracks_identity_not_outcome(tiny_supernet):
    result = _run(tiny_supernet)
    a = run_record(result, identity={"cell": 1}, git_sha=None)
    b = run_record(result, identity={"cell": 2}, git_sha=None)
    assert a["config_digest"] != b["config_digest"]
    assert a["run_id"] == b["run_id"]  # same outcome, different identity
    assert a["config_digest"] == config_digest({"cell": 1})


def test_append_load_resolve_roundtrip(tiny_supernet, tmp_path):
    registry = tmp_path / "runs.jsonl"
    record = run_record(_run(tiny_supernet), git_sha=None)
    append_run(record, registry)
    append_run(record, registry)
    lines = registry.read_text().splitlines()
    assert len(lines) == 2 and lines[0] == lines[1]  # byte-identical lines
    assert load_runs(registry) == [record, record]
    # resolve by run_id prefix against the registry, and by file path
    assert resolve_run(record["run_id"][:8], registry) == record
    assert resolve_run(str(registry)) == record
    with pytest.raises(KeyError):
        resolve_run("ffffffffffffffff", registry)


# ----------------------------------------------------------------------
# compare + regression gate (library level)
# ----------------------------------------------------------------------
def test_compare_identical_records_shows_no_regression(tiny_supernet):
    record = run_record(_run(tiny_supernet), git_sha=None)
    comparison = compare_records(record, record)
    assert comparison["same_config"] is True
    for entry in comparison["fields"].values():
        assert entry["delta"] == 0.0 and entry["ratio"] == 1.0
    assert check_regression(comparison, 100.0) == []
    # the rendering is deterministic too
    assert format_compare(comparison) == format_compare(comparison)


def test_injected_2x_makespan_regression_is_caught(tiny_supernet):
    base = run_record(_run(tiny_supernet), git_sha=None)
    slow = copy.deepcopy(base)
    slow["summary"]["makespan_ms"] *= 2.5
    failures = check_regression(compare_records(base, slow), 100.0)
    assert failures and any("makespan_ms" in line for line in failures)
    # the reverse direction (an improvement) passes the gate
    assert check_regression(compare_records(slow, base), 100.0) == []


# ----------------------------------------------------------------------
# CLI: analyze / compare / trace --summary-json
# ----------------------------------------------------------------------
def test_cli_analyze_writes_deterministic_json(tmp_path, capsys):
    config = _config(tmp_path)
    out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
    assert main(["analyze", str(config), "--json", str(out_a)]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out and "what-if projections" in out
    assert main(["analyze", str(config), "--json", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    payload = json.loads(out_a.read_text())
    assert payload["schema"] == 1 and len(payload["runs"]) == 1
    run = payload["runs"][0]
    assert set(run) == {"num_gpus", "summary", "critical_path", "what_if"}
    assert abs(
        run["critical_path"]["path_ms"] - run["summary"]["makespan_ms"]
    ) < 1e-9


def test_cli_analyze_register_then_compare_by_run_id(tmp_path, capsys):
    config = _config(tmp_path)
    registry = tmp_path / "runs.jsonl"
    assert main(
        ["analyze", str(config), "--register", "--registry", str(registry)]
    ) == 0
    assert "registered run" in capsys.readouterr().out
    (record,) = load_runs(registry)
    assert main(
        [
            "compare", record["run_id"][:10], record["run_id"][:10],
            "--registry", str(registry),
            "--fail-on-regression", "100",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "same config: yes" in out
    assert "no regression beyond 100% threshold" in out


def test_cli_compare_fails_nonzero_on_injected_regression(
    tiny_supernet, tmp_path, capsys
):
    base = run_record(_run(tiny_supernet), git_sha=None)
    slow = copy.deepcopy(base)
    slow["summary"]["makespan_ms"] *= 2.5
    file_a, file_b = tmp_path / "base.json", tmp_path / "slow.json"
    file_a.write_text(_canonical(base) + "\n")
    file_b.write_text(_canonical(slow) + "\n")
    with pytest.raises(SystemExit) as excinfo:
        main(
            ["compare", str(file_a), str(file_b),
             "--fail-on-regression", "100"]
        )
    assert "makespan_ms" in str(excinfo.value)
    # without the gate flag the same comparison just reports
    assert main(["compare", str(file_a), str(file_b)]) == 0
    assert "makespan_ms" in capsys.readouterr().out


def test_cli_compare_output_is_byte_deterministic(tmp_path, capsys):
    config = _config(tmp_path)
    registry = tmp_path / "runs.jsonl"
    outputs = []
    for _ in range(2):
        assert main(
            ["analyze", str(config), "--register", "--registry", str(registry)]
        ) == 0
        capsys.readouterr()
    records = load_runs(registry)
    assert len(records) == 2 and _canonical(records[0]) == _canonical(records[1])
    for _ in range(2):
        assert main(
            ["compare", str(registry), str(registry)]
        ) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]


def test_cli_trace_summary_json_is_stable(tmp_path, capsys):
    config = _config(tmp_path)
    trace_out = tmp_path / "run.trace.json"
    paths = [tmp_path / "s1.json", tmp_path / "s2.json"]
    for path in paths:
        assert main(
            ["trace", str(config), "--out", str(trace_out),
             "--summary-json", str(path)]
        ) == 0
        capsys.readouterr()
    assert paths[0].read_bytes() == paths[1].read_bytes()
    summary = json.loads(paths[0].read_text())
    assert summary["makespan_ms"] > 0
    assert all("cp_share" in row for row in summary["per_stage"])


def test_cli_analyze_requires_config():
    with pytest.raises(SystemExit):
        main(["analyze"])


def test_cli_compare_requires_two_refs(tmp_path):
    with pytest.raises(SystemExit):
        main(["compare", str(tmp_path / "only-one.json")])
