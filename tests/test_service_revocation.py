"""Lease revocation in the service plane: elastic CSP tenants shrink and
resume bitwise, rigid tenants requeue with backoff and fail closed.

Companion to tests/test_service.py — same scheduler, now with a
fleet-scoped fault schedule armed (docs/FAULT_TOLERANCE.md
§ Fleet-scale faults).
"""

import pytest

from repro.baselines import naspipe, pipedream
from repro.errors import FaultToleranceError, ServiceError
from repro.ft import (
    FaultEvent,
    FaultSchedule,
    RecoverySpec,
    run_uninterrupted,
    run_with_recovery,
)
from repro.obs.events import validate_trace
from repro.service import ClusterManager, JobScheduler, JobSpec, run_service
from repro.sim.cluster import ClusterSpec
from repro.supernet.search_space import get_search_space

OVERRIDES = {"num_blocks": 8, "functional_width": 16}


def _space():
    return get_search_space("NLP.c3").scaled(**OVERRIDES)


def _cv_space():
    return get_search_space("CV.c3").scaled(**OVERRIDES)


def _elastic_spec(subnets=8, seed=2022):
    return JobSpec(
        name="elastic",
        space="NLP.c3",
        space_overrides=OVERRIDES,
        system="NASPipe",
        subnets=subnets,
        seed=seed,
        min_gpus=2,
        max_gpus=4,
    )


def _rigid_spec(subnets=6, seed=7):
    return JobSpec(
        name="rigid",
        space="CV.c3",
        space_overrides=OVERRIDES,
        system="PipeDream",
        subnets=subnets,
        seed=seed,
        min_gpus=2,
        max_gpus=2,
    )


def _scheduler(total_gpus, specs, **knobs):
    manager = ClusterManager(ClusterSpec(num_gpus=total_gpus))
    scheduler = JobScheduler(manager, quantum=4, resize_cost_ms=20.0, **knobs)
    for spec in specs:
        scheduler.submit(spec)
    return manager, scheduler


def _faultfree_makespan(total_gpus, specs, **knobs):
    _, scheduler = _scheduler(total_gpus, specs, **knobs)
    return scheduler.run()["makespan_ms"]


def _preempt(time_ms, slot, outage_ms=120.0):
    return FaultEvent(
        "slot_preempt", time_ms, target=slot, duration_ms=outage_ms
    )


# ----------------------------------------------------------------------
# elastic CSP: revocation is just another resize
# ----------------------------------------------------------------------
def test_elastic_csp_survives_revocation_bitwise():
    spec = _elastic_spec()
    makespan = _faultfree_makespan(4, [spec])
    manager, scheduler = _scheduler(4, [spec])
    # strike the job's lowest slot mid-run: the lease is revoked, the
    # segment result is discarded (never merged), the job replans
    scheduler.inject_fleet_faults(
        FaultSchedule([_preempt(makespan * 0.4, 0)])
    )
    report = scheduler.run()
    job = report["jobs"][0]
    assert job["status"] == "done"
    assert report["revocations"] == 1
    solo = run_uninterrupted(
        _space(), naspipe(), num_gpus=4, steps=spec.subnets, seed=spec.seed
    )
    assert job["digest"] == solo.digest
    assert job["losses"] == {
        str(sid): loss for sid, loss in sorted(solo.losses.items())
    }
    # the revocation is a first-class trace event with fault provenance
    revokes = list(scheduler.trace.events_of("lease_revoke"))
    assert len(revokes) == 1
    assert revokes[0].attr("job") == "elastic"
    assert "slot_preempt" in revokes[0].attr("fault")
    assert validate_trace(scheduler.trace) == []
    # zero leaked leases once the storm is over
    assert manager.leased_gpus == 0
    assert manager.residual_slots() == ()
    assert manager.down_slots() == ()


def test_storm_cannot_change_the_elastic_jobs_bits_at_any_time():
    spec = _elastic_spec(subnets=6)
    makespan = _faultfree_makespan(4, [spec])
    solo = run_uninterrupted(
        _space(), naspipe(), num_gpus=4, steps=spec.subnets, seed=spec.seed
    )
    for frac in (0.15, 0.5, 0.85):
        _, scheduler = _scheduler(4, [spec])
        scheduler.inject_fleet_faults(
            FaultSchedule([_preempt(makespan * frac, 1)])
        )
        job = scheduler.run()["jobs"][0]
        assert job["status"] == "done", frac
        assert job["digest"] == solo.digest, frac


# ----------------------------------------------------------------------
# rigid tenants: requeue with backoff, fail closed after the budget
# ----------------------------------------------------------------------
def test_rigid_job_requeues_and_restarts_deterministically():
    spec = _rigid_spec()
    makespan = _faultfree_makespan(2, [spec])
    _, scheduler = _scheduler(2, [spec], requeue_backoff_ms=10.0)
    scheduler.inject_fleet_faults(
        FaultSchedule([_preempt(makespan * 0.5, 0, outage_ms=50.0)])
    )
    report = scheduler.run()
    job = report["jobs"][0]
    assert job["status"] == "done"
    assert job["restarts"] == 1
    assert job["lost_virtual_ms"] > 0  # the aborted half is charged
    # no consistent cuts without CSP: the restart replays from subnet 0,
    # which is still deterministic — the digest matches the solo run
    solo = run_uninterrupted(
        _cv_space(), pipedream(), num_gpus=2, steps=spec.subnets, seed=spec.seed
    )
    assert job["digest"] == solo.digest
    requeues = list(scheduler.trace.events_of("job_requeue"))
    assert len(requeues) == 1
    assert requeues[0].attr("restarts") == 1
    assert requeues[0].attr("backoff_ms") == 10.0  # 10 * 2**0
    assert validate_trace(scheduler.trace) == []


def test_rigid_job_fails_closed_after_restart_budget():
    spec = _rigid_spec()
    makespan = _faultfree_makespan(2, [spec])
    manager, scheduler = _scheduler(2, [spec], max_restarts=0)
    scheduler.inject_fleet_faults(
        FaultSchedule([_preempt(makespan * 0.5, 0)])
    )
    report = scheduler.run()  # the fleet keeps running: no raise
    job = report["jobs"][0]
    assert job["status"] == "failed"
    assert report["failed_jobs"] == 1
    failure = job["failure"]
    assert failure is not None
    assert failure["attempts"] == 1
    assert failure["max_restarts"] == 0
    assert failure["lost_virtual_ms"] > 0
    assert "slot_preempt" in failure["fault"]
    failed_events = list(scheduler.trace.events_of("job_failed"))
    assert len(failed_events) == 1
    assert failed_events[0].attr("job") == "rigid"
    # a failed job is a bounded outcome, not a leak
    assert manager.leased_gpus == 0
    assert manager.residual_slots() == ()
    assert validate_trace(scheduler.trace) == []


def test_failed_tenant_does_not_take_the_fleet_down():
    elastic, rigid = _elastic_spec(), _rigid_spec()
    makespan = _faultfree_makespan(6, [elastic, rigid])
    _, scheduler = _scheduler(6, [elastic, rigid], max_restarts=0)
    # strike every slot the rigid job could hold, repeatedly
    scheduler.inject_fleet_faults(
        FaultSchedule(
            [_preempt(makespan * 0.3, s) for s in range(6)]
        )
    )
    report = scheduler.run()
    by_name = {job["name"]: job for job in report["jobs"]}
    # the elastic job must still finish bitwise-correct even though the
    # whole fleet was struck and a co-tenant died
    assert by_name["elastic"]["status"] == "done"
    solo = run_uninterrupted(
        _space(),
        naspipe(),
        num_gpus=4,
        steps=elastic.subnets,
        seed=elastic.seed,
    )
    assert by_name["elastic"]["digest"] == solo.digest
    assert by_name["rigid"]["status"] in ("done", "failed")


# ----------------------------------------------------------------------
# plumbing: run_service payload, injection validation
# ----------------------------------------------------------------------
def test_run_service_accepts_a_fault_schedule_payload():
    payload = {
        "total_gpus": 4,
        "quantum": 4,
        "resize_cost_ms": 20.0,
        "jobs": [
            {
                "name": "elastic",
                "space": "NLP.c3",
                "space_overrides": OVERRIDES,
                "system": "NASPipe",
                "subnets": 8,
                "seed": 2022,
                "min_gpus": 2,
                "max_gpus": 4,
            }
        ],
    }
    makespan = run_service(payload)["makespan_ms"]
    faulted = run_service(
        {
            **payload,
            "verify_solo": True,
            "faults": [
                {
                    "kind": "slot_preempt",
                    "time_ms": makespan * 0.5,
                    "target": 0,
                    "duration_ms": 120.0,
                }
            ],
        }
    )
    assert faulted["revocations"] == 1
    assert faulted["fleet_faults"] == 1
    assert faulted["ok"]  # verify_solo: digest still matches the solo run
    assert faulted["jobs"][0]["digest_matches_solo"]


def test_inject_rejects_engine_kinds_and_post_run_arming():
    _, scheduler = _scheduler(4, [_elastic_spec()])
    with pytest.raises(ServiceError):
        scheduler.inject_fleet_faults(
            FaultSchedule([FaultEvent("gpu_crash", 10.0, target=0)])
        )
    scheduler.run()
    with pytest.raises(ServiceError):
        scheduler.inject_fleet_faults(
            FaultSchedule([_preempt(10.0, 0)])
        )


# ----------------------------------------------------------------------
# run_with_recovery: fail closed instead of raising
# ----------------------------------------------------------------------
def test_run_with_recovery_on_exhausted_record(tmp_path):
    space = _space()
    baseline = run_uninterrupted(
        space, naspipe(), num_gpus=4, steps=12, seed=11
    )
    t1 = baseline.makespan_ms * 0.3
    schedule = FaultSchedule(
        [
            FaultEvent("gpu_crash", t1, target=1),
            FaultEvent("gpu_crash", t1 + 200.0, target=1),
        ]
    )
    result = run_with_recovery(
        space,
        naspipe(),
        schedule,
        num_gpus=4,
        steps=12,
        seed=11,
        checkpoint_dir=tmp_path,
        spec=RecoverySpec(checkpoint_interval=6, max_restarts=1),
        on_exhausted="record",
    )
    assert result.failed
    assert result.digest is None
    failure = result.failure
    assert failure["max_restarts"] == 1
    assert failure["attempts"] == 2
    assert failure["fault"] == "gpu_crash"
    with pytest.raises(FaultToleranceError):
        run_with_recovery(
            space,
            naspipe(),
            schedule,
            num_gpus=4,
            steps=12,
            seed=11,
            checkpoint_dir=tmp_path / "bad",
            on_exhausted="explode",
        )
