"""CSP scheduler (Algorithm 2) tests."""

import pytest

from repro.core.dependency import DependencyTracker
from repro.core.scheduler import CspScheduler
from repro.supernet.subnet import Subnet


def _setup(rows):
    subnets = {i: Subnet(i, tuple(row)) for i, row in enumerate(rows)}
    tracker = DependencyTracker()
    for subnet in subnets.values():
        tracker.register(subnet)
    return subnets, tracker


def _stage_layers(subnets, lo, hi):
    def fn(subnet_id):
        return subnets[subnet_id].layers_in_range(lo, hi)

    return fn


def test_picks_lowest_clear_id():
    subnets, tracker = _setup([(0, 0), (0, 1), (1, 1)])
    scheduler = CspScheduler()
    # subnet 1 blocked by 0 at block 0; subnet 2 blocked by 1 at block 1.
    decision = scheduler.schedule([1, 2], _stage_layers(subnets, 0, 2), tracker)
    assert not decision.found
    tracker.mark_finished(0)
    decision = scheduler.schedule([1, 2], _stage_layers(subnets, 0, 2), tracker)
    assert (decision.qidx, decision.qval) == (0, 1)


def test_skips_blocked_head_for_later_independent():
    subnets, tracker = _setup([(0, 0), (0, 0), (1, 1)])
    scheduler = CspScheduler()
    decision = scheduler.schedule([1, 2], _stage_layers(subnets, 0, 2), tracker)
    assert decision.qval == 2  # 1 blocked by 0, 2 independent


def test_skip_set_excludes_entries():
    subnets, tracker = _setup([(0, 0), (1, 1), (2, 2)])
    scheduler = CspScheduler()
    decision = scheduler.schedule(
        [0, 1, 2], _stage_layers(subnets, 0, 2), tracker, skip={0}
    )
    assert decision.qval == 1


def test_empty_queue_returns_none():
    _subnets, tracker = _setup([(0, 0)])
    scheduler = CspScheduler()
    decision = scheduler.schedule([], lambda sid: [], tracker)
    assert not decision.found
    assert (decision.qidx, decision.qval) == (-1, -1)


def test_per_stage_slicing_limits_conflicts():
    # Conflict only at block 2: stage [0,2) of subnet 1 is clear while
    # stage [2,3) is blocked — the decentralised check in action.
    subnets, tracker = _setup([(0, 0, 9), (1, 1, 9)])
    scheduler = CspScheduler()
    early = scheduler.schedule([1], _stage_layers(subnets, 0, 2), tracker)
    assert early.qval == 1
    late = scheduler.schedule([1], _stage_layers(subnets, 2, 3), tracker)
    assert not late.found


def test_conservative_mode_waits_for_stage_finish():
    """Algorithm 2 verbatim clears an earlier subnet only once its
    backward ran at this stage; the exact mode clears as soon as the
    specific shared layer's WRITE committed."""
    subnets, tracker = _setup([(5, 0), (5, 1)])
    # Subnet 0 released the shared layer (block0, choice5) but has not
    # finished its backward at this stage.
    tracker.release_layers(0, [(0, 5)])
    conservative = CspScheduler(mode="conservative").schedule(
        [1],
        _stage_layers(subnets, 0, 1),
        tracker,
        stage_finished=set(),
        subnet_of=lambda sid: subnets[sid],
    )
    assert not conservative.found
    exact = CspScheduler(mode="exact").schedule(
        [1], _stage_layers(subnets, 0, 1), tracker
    )
    assert exact.qval == 1


def test_conservative_mode_requires_subnet_of():
    subnets, tracker = _setup([(0,), (0,)])
    with pytest.raises(ValueError):
        CspScheduler(mode="conservative").schedule(
            [1], _stage_layers(subnets, 0, 1), tracker, stage_finished=set()
        )


def test_conservative_honours_stage_finished():
    subnets, tracker = _setup([(3, 3), (3, 3)])
    scheduler = CspScheduler(mode="conservative")
    decision = scheduler.schedule(
        [1],
        _stage_layers(subnets, 0, 1),
        tracker,
        stage_finished={0},
        subnet_of=lambda sid: subnets[sid],
    )
    assert decision.qval == 1


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        CspScheduler(mode="loose")


def test_scheduler_counts_calls():
    subnets, tracker = _setup([(0,), (1,)])
    scheduler = CspScheduler()
    scheduler.schedule([0, 1], _stage_layers(subnets, 0, 1), tracker)
    assert scheduler.calls == 1
    assert scheduler.scans >= 1


# ----------------------------------------------------------------------
# timing instrumentation
# ----------------------------------------------------------------------
def _call_n(scheduler, n):
    subnets, tracker = _setup([(0,), (1,)])
    for _ in range(n):
        scheduler.schedule([0, 1], _stage_layers(subnets, 0, 1), tracker)
    return scheduler


def test_timing_sampled_times_one_call_per_interval():
    scheduler = _call_n(CspScheduler(timing="sampled", timing_interval=4), 9)
    # calls 1, 5 and 9 hit the sample slot (calls % 4 == 1)
    assert scheduler.calls == 9
    assert scheduler.timed_calls == 3
    assert scheduler.stats()["timing"] == "sampled"


def test_timing_full_times_every_call():
    scheduler = _call_n(CspScheduler(timing="full"), 5)
    assert scheduler.timed_calls == 5
    assert scheduler.total_time_s > 0.0
    assert scheduler.mean_call_time_s == pytest.approx(
        scheduler.total_time_s / 5
    )


def test_timing_off_never_touches_the_clock():
    scheduler = _call_n(CspScheduler(timing="off"), 5)
    assert scheduler.timed_calls == 0
    assert scheduler.total_time_s == 0.0
    assert scheduler.mean_call_time_s == 0.0


def test_timing_mode_validated():
    with pytest.raises(ValueError):
        CspScheduler(timing="sometimes")


def test_stats_reports_timing_counters():
    scheduler = _call_n(CspScheduler(timing="full"), 3)
    stats = scheduler.stats()
    assert stats["timed_calls"] == 3
    assert stats["mean_call_us"] > 0.0
