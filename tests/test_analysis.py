"""Post-training analysis utilities tests."""

import pytest

from repro.baselines import naspipe
from repro.nas.analysis import (
    block_coverage,
    co_activation,
    read_counts,
    training_report,
    update_counts,
)
from repro.nas.trainer import SupernetTrainer
from repro.supernet.search_space import get_search_space


@pytest.fixture(scope="module")
def trained():
    space = get_search_space("NLP.c3").scaled(
        name="analysis", num_blocks=8, choices_per_block=4,
        functional_width=16,
    )
    trainer = SupernetTrainer(space, seed=3, num_gpus=4)
    return space, trainer.train(naspipe(), steps=24, batch=32)


def test_update_counts_match_stream(trained):
    space, run = trained
    updates = update_counts(run.plane.store)
    # Every subnet writes exactly one candidate per block.
    assert sum(updates.values()) == 24 * space.num_blocks
    reads = read_counts(run.plane.store)
    # One forward READ per WRITE in this pipeline.
    assert sum(reads.values()) == sum(updates.values())


def test_block_coverage_bounds(trained):
    space, run = trained
    coverage = block_coverage(run.plane.store, space.num_blocks)
    assert len(coverage) == space.num_blocks
    for covered in coverage:
        assert 1 <= covered <= space.choices_per_block


def test_co_activation_totals(trained):
    space, run = trained
    pairs = co_activation(run.plane.store, 0, 1)
    assert sum(pairs.values()) == 24
    for (a, b), _count in pairs.items():
        assert 0 <= a < space.choices_per_block
        assert 0 <= b < space.choices_per_block


def test_training_report(trained):
    space, run = trained
    report = run.analysis()
    assert report.subnets_trained == 24
    assert report.total_updates == 24 * space.num_blocks
    assert report.fairness_ratio >= 1.0
    assert "subnets trained" in report.summary()


def test_report_reproducible_across_cluster_sizes():
    """The analysis data itself is part of what reproducibility protects:
    identical usage statistics on different cluster sizes under CSP."""
    space = get_search_space("NLP.c3").scaled(
        name="analysis2", num_blocks=8, choices_per_block=4,
        functional_width=16,
    )
    reports = []
    for gpus in (2, 4):
        trainer = SupernetTrainer(space, seed=3, num_gpus=gpus)
        run = trainer.train(naspipe(), steps=20, batch=32)
        reports.append(update_counts(run.plane.store))
    assert reports[0] == reports[1]


def test_empty_store_report():
    from repro.nn.parameter_store import ParameterStore

    store = ParameterStore(lambda layer: {})
    report = training_report(store, num_blocks=4)
    assert report.subnets_trained == 0
    assert report.fairness_ratio == 1.0
    assert report.block_coverage == [0, 0, 0, 0]


def test_peak_cache_bytes_reported(trained):
    _space, run = trained
    assert run.result.peak_cache_bytes is not None
    assert run.result.peak_cache_bytes > 0
