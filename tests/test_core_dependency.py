"""DependencyTracker tests: Definition 2's exact per-layer semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dependency import DependencyTracker
from repro.errors import SchedulingError
from repro.supernet.subnet import Subnet


def _tracker(*subnets):
    tracker = DependencyTracker()
    for subnet in subnets:
        tracker.register(subnet)
    return tracker


def test_register_twice_raises():
    tracker = _tracker(Subnet(0, (1, 2)))
    with pytest.raises(SchedulingError):
        tracker.register(Subnet(0, (1, 2)))


def test_independent_subnets_always_clear():
    tracker = _tracker(Subnet(0, (0, 0)), Subnet(1, (1, 1)))
    assert tracker.is_clear(1, [(0, 1), (1, 1)])
    assert tracker.is_clear(0, [(0, 0), (1, 0)])


def test_shared_layer_blocks_until_release():
    a = Subnet(0, (5, 0))
    b = Subnet(1, (5, 1))
    tracker = _tracker(a, b)
    blocking = tracker.blocking_user(1, [(0, 5)])
    assert blocking == (0, (0, 5))
    tracker.release_layers(0, [(0, 5)])
    assert tracker.is_clear(1, [(0, 5)])


def test_release_is_per_layer():
    a = Subnet(0, (5, 7))
    b = Subnet(1, (5, 7))
    tracker = _tracker(a, b)
    tracker.release_layers(0, [(0, 5)])
    assert tracker.is_clear(1, [(0, 5)])
    assert not tracker.is_clear(1, [(1, 7)])


def test_earlier_only_blocks_later_not_vice_versa():
    a = Subnet(0, (3,))
    b = Subnet(1, (3,))
    tracker = _tracker(a, b)
    # The earlier subnet is never blocked by the later one.
    assert tracker.is_clear(0, [(0, 3)])
    assert not tracker.is_clear(1, [(0, 3)])


def test_mark_finished_releases_everything_and_advances_frontier():
    a = Subnet(0, (1, 1))
    b = Subnet(1, (1, 1))
    tracker = _tracker(a, b)
    tracker.mark_finished(0)
    assert tracker.frontier == 1
    assert tracker.is_clear(1, [(0, 1), (1, 1)])
    tracker.mark_finished(1)
    assert tracker.frontier == 2
    assert tracker.active_subnets() == []


def test_frontier_waits_for_prefix():
    subnets = [Subnet(i, (i % 2,)) for i in range(4)]
    tracker = _tracker(*subnets)
    tracker.mark_finished(2)
    assert tracker.frontier == 0  # 0 and 1 still outstanding
    tracker.mark_finished(0)
    assert tracker.frontier == 1
    tracker.mark_finished(1)
    assert tracker.frontier == 3  # 2 was already finished


def test_elimination_prunes_user_lists():
    a = Subnet(0, (4,))
    b = Subnet(1, (4,))
    tracker = _tracker(a, b)
    assert tracker.layer_users((0, 4)) == [0, 1]
    tracker.mark_finished(0)
    assert tracker.layer_users((0, 4)) == [1]
    # Eliminated subnets count as released forever.
    assert tracker.has_released(0, (0, 4))


def test_dependency_exists():
    tracker = _tracker(Subnet(0, (1, 2)), Subnet(1, (1, 3)), Subnet(2, (0, 0)))
    assert tracker.dependency_exists(0, 1)
    assert not tracker.dependency_exists(0, 2)


def test_release_unregistered_raises():
    tracker = DependencyTracker()
    with pytest.raises(SchedulingError):
        tracker.release_layers(0, [(0, 0)])
    with pytest.raises(SchedulingError):
        tracker.mark_finished(0)


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
        min_size=2,
        max_size=10,
    )
)
@settings(max_examples=50, deadline=None)
def test_clearance_monotone_under_releases(choice_rows):
    """Property: releasing layers never makes a clear subnet blocked."""
    subnets = [Subnet(i, tuple(row)) for i, row in enumerate(choice_rows)]
    tracker = DependencyTracker()
    for subnet in subnets:
        tracker.register(subnet)
    last = subnets[-1]
    clear_before = tracker.is_clear(last.subnet_id, last.layer_ids())
    for subnet in subnets[:-1]:
        tracker.release_layers(subnet.subnet_id, subnet.layer_ids())
        clear_now = tracker.is_clear(last.subnet_id, last.layer_ids())
        assert clear_now or not clear_before
        clear_before = clear_now
    assert tracker.is_clear(last.subnet_id, last.layer_ids())
