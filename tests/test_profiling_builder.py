"""Profiling harness, custom space builder, FairSampler, scheduler-cost
experiment tests."""

import pytest

from repro.errors import SearchSpaceError
from repro.nn.layers import LAYER_IMPLEMENTATIONS
from repro.profiling import (
    measurements_to_profiles,
    profile_families,
    profile_layer,
)
from repro.seeding import SeedSequenceTree
from repro.supernet.builder import SearchSpaceBuilder
from repro.supernet.catalog import NLP_LAYER_TYPES
from repro.supernet.sampler import FairSampler
from repro.supernet.search_space import get_search_space


# ----------------------------------------------------------------------
# profiling
# ----------------------------------------------------------------------
def test_profile_layer_measures_positive_costs():
    measurement = profile_layer("linear", width=16, batch=8, repeats=3)
    assert measurement.fwd_ms > 0
    assert measurement.bwd_ms > 0
    assert measurement.param_count == 16 * 16 + 16  # weight + bias


def test_profile_families_covers_all():
    measurements = profile_families(width=16, batch=8, repeats=2)
    assert set(measurements) == set(LAYER_IMPLEMENTATIONS)


def test_measurements_to_profiles_roundtrip():
    measurements = profile_families(["linear", "glu"], width=16, batch=8, repeats=2)
    profiles = measurements_to_profiles(measurements)
    assert profiles["linear"].impl == "linear"
    assert profiles["linear"].param_count == measurements["linear"].param_count
    assert profiles["glu"].fwd_ms == measurements["glu"].fwd_ms


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
def _builder_with_blocks(blocks=3, candidates=2):
    builder = SearchSpaceBuilder("custom-test", domain="NLP")
    for _ in range(blocks):
        builder.add_block(list(NLP_LAYER_TYPES[:candidates]))
    return builder


def test_builder_constructs_supernet():
    supernet = _builder_with_blocks(4, 3).build()
    assert supernet.space.num_blocks == 4
    assert supernet.space.choices_per_block == 3
    profile = supernet.profile((0, 1))
    assert profile.type_profile == NLP_LAYER_TYPES[1]
    assert profile.size_scale == 1.0


def test_builder_scales_apply():
    builder = SearchSpaceBuilder("scaled", domain="NLP")
    builder.add_block(list(NLP_LAYER_TYPES[:2]), scales=[0.5, 2.0])
    builder.add_block(list(NLP_LAYER_TYPES[:2]))
    supernet = builder.build()
    assert supernet.profile((0, 0)).size_scale == 0.5
    assert supernet.profile((0, 1)).size_scale == 2.0


def test_builder_validation():
    with pytest.raises(SearchSpaceError):
        SearchSpaceBuilder("x").build()  # no blocks
    builder = SearchSpaceBuilder("x")
    with pytest.raises(SearchSpaceError):
        builder.add_block([])
    with pytest.raises(SearchSpaceError):
        builder.add_block(list(NLP_LAYER_TYPES[:2]), scales=[1.0])
    builder.add_block(list(NLP_LAYER_TYPES[:2]))
    builder.add_block(list(NLP_LAYER_TYPES[:3]))
    with pytest.raises(SearchSpaceError):
        builder.build()  # uneven candidate counts


def test_builder_unknown_candidate_raises():
    supernet = _builder_with_blocks().build()
    with pytest.raises(SearchSpaceError):
        supernet.profile((0, 5))


def test_custom_supernet_runs_in_pipeline():
    from repro.baselines import naspipe
    from repro.engines.pipeline import PipelineEngine
    from repro.sim.cluster import ClusterSpec
    from repro.supernet.sampler import SubnetStream

    supernet = _builder_with_blocks(blocks=8, candidates=4).build()
    stream = SubnetStream.sample(supernet.space, SeedSequenceTree(1), 10)
    result = PipelineEngine(
        supernet, stream, naspipe(), ClusterSpec(num_gpus=4), batch=16
    ).run()
    assert result.subnets_completed == 10


# ----------------------------------------------------------------------
# fair sampler
# ----------------------------------------------------------------------
def test_fair_sampler_strict_fairness():
    space = get_search_space("NLP.c3").scaled(num_blocks=6, choices_per_block=5)
    sampler = FairSampler(space, SeedSequenceTree(3))
    rounds = 4
    subnets = sampler.sample_many(rounds * 5)
    for block in range(6):
        counts = [0] * 5
        for subnet in subnets:
            counts[subnet.choices[block]] += 1
        assert counts == [rounds] * 5  # every candidate exactly per round


def test_fair_sampler_no_intra_round_conflicts():
    space = get_search_space("NLP.c3").scaled(num_blocks=6, choices_per_block=5)
    subnets = FairSampler(space, SeedSequenceTree(3)).sample_many(5)
    for i, a in enumerate(subnets):
        for b in subnets[i + 1:]:
            assert not a.depends_on(b)


def test_fair_sampler_deterministic():
    space = get_search_space("CV.c3").scaled(num_blocks=4)
    a = FairSampler(space, SeedSequenceTree(3)).sample_many(10)
    b = FairSampler(space, SeedSequenceTree(3)).sample_many(10)
    assert [s.choices for s in a] == [s.choices for s in b]


# ----------------------------------------------------------------------
# scheduler cost experiment
# ----------------------------------------------------------------------
def test_scheduler_cost_linear_in_worst_case():
    from repro.experiments import scheduler_cost

    points = scheduler_cost.run(queue_sizes=[5, 30], calls_per_point=50)
    worst = {p.queue_size: p for p in points if p.scenario == "worst"}
    assert worst[5].scans_per_call == 5
    assert worst[30].scans_per_call == 30
    average = {p.queue_size: p for p in points if p.scenario == "average"}
    assert average[30].mean_call_us < 1000  # far under the 10ms claim
    text = scheduler_cost.format_text(points)
    assert "within the paper's 10 ms bound" in text


def test_scheduler_tracks_wall_time():
    from repro.core.dependency import DependencyTracker
    from repro.core.scheduler import CspScheduler
    from repro.supernet.subnet import Subnet

    tracker = DependencyTracker()
    tracker.register(Subnet(0, (1, 2)))
    scheduler = CspScheduler()
    assert scheduler.mean_call_time_s == 0.0
    scheduler.schedule([0], lambda sid: [(0, 1)], tracker)
    assert scheduler.total_time_s > 0
    assert scheduler.mean_call_time_s > 0
