"""Tests for deterministic seed derivation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.seeding import SeedSequenceTree, derive_seed


def test_derive_seed_is_stable():
    # Regression anchor: the derivation must never change between
    # versions, or every recorded experiment digest breaks.
    assert derive_seed(0, "x") == derive_seed(0, "x")
    assert derive_seed(0, "x") != derive_seed(0, "y")
    assert derive_seed(0, "x") != derive_seed(1, "x")


def test_generator_is_cached_and_stateful():
    seeds = SeedSequenceTree(42)
    gen = seeds.generator("stream")
    first = gen.integers(0, 1000)
    assert seeds.generator("stream") is gen
    second = seeds.generator("stream").integers(0, 1000)
    # The cached generator advanced; a fresh one reproduces the start.
    fresh = seeds.fresh_generator("stream")
    assert fresh.integers(0, 1000) == first
    assert (first, second) == tuple(
        SeedSequenceTree(42).fresh_generator("stream").integers(0, 1000, size=2)
    )


def test_fresh_generator_independent_of_call_order():
    a = SeedSequenceTree(7)
    b = SeedSequenceTree(7)
    a.fresh_generator("first").standard_normal(4)
    # b never touched "first": "second" must still match a's "second".
    va = a.fresh_generator("second").standard_normal(4)
    vb = b.fresh_generator("second").standard_normal(4)
    assert np.array_equal(va, vb)


def test_child_trees_are_namespaced():
    root = SeedSequenceTree(99)
    child_a = root.child("a")
    child_b = root.child("b")
    assert child_a.root_seed != child_b.root_seed
    assert child_a.seed_for("s") != child_b.seed_for("s")
    assert child_a.seed_for("s") == SeedSequenceTree(99).child("a").seed_for("s")


def test_rejects_non_int_seed():
    with pytest.raises(TypeError):
        SeedSequenceTree("not-an-int")  # type: ignore[arg-type]


@given(st.integers(min_value=0, max_value=2**64 - 1), st.text(max_size=40))
def test_derive_seed_in_64_bit_range(root, name):
    seed = derive_seed(root, name)
    assert 0 <= seed < 2**64
