"""Extra property-based tests: functional determinism, memory-model
monotonicity, viz robustness, catalog integrity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import gpipe, naspipe
from repro.memory_model import max_feasible_batch, memory_breakdown
from repro.nn.layers import LAYER_IMPLEMENTATIONS, build_parameters, layer_forward
from repro.sim.cluster import ClusterSpec
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet


@given(
    families=st.lists(
        st.sampled_from(sorted(LAYER_IMPLEMENTATIONS)), min_size=1, max_size=6
    ),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_random_layer_chains_bitwise_deterministic(families, seed):
    """Any chain of layer families is a pure function of (params, input):
    re-running it reproduces every bit."""
    def run():
        rng = np.random.Generator(np.random.PCG64(seed))
        x = rng.standard_normal((3, 8)).astype(np.float32)
        for index, family in enumerate(families):
            params = build_parameters(
                family, 8, np.random.Generator(np.random.PCG64(seed + index))
            )
            x, _ = layer_forward(family, x, params)
        return x

    first = run()
    second = run()
    assert np.array_equal(first, second)
    assert first.dtype == np.float32


@given(
    window=st.integers(2, 20),
    cache=st.floats(0.5, 8.0),
)
@settings(max_examples=20, deadline=None)
def test_feasible_batch_monotone_in_footprint(window, cache):
    """Bigger in-flight windows / caches can only shrink the feasible
    batch (memory is monotone in both)."""
    supernet = Supernet(get_search_space("NLP.c2"))
    cluster = ClusterSpec(num_gpus=8)
    small = naspipe(inject_window=window, cache_subnets=cache)
    bigger = naspipe(inject_window=window + 4, cache_subnets=cache + 2.0)
    batch_small = max_feasible_batch(supernet, small, cluster) or 0
    batch_big = max_feasible_batch(supernet, bigger, cluster) or 0
    assert batch_big <= batch_small


@given(batch=st.integers(4, 192))
@settings(max_examples=20, deadline=None)
def test_memory_breakdown_monotone_in_batch(batch):
    supernet = Supernet(get_search_space("CV.c1"))
    cluster = ClusterSpec(num_gpus=8)
    a = memory_breakdown(supernet, gpipe(), cluster, batch)
    b = memory_breakdown(supernet, gpipe(), cluster, batch + 4)
    assert b.total > a.total
    assert b.param_bytes == a.param_bytes  # params don't scale with batch


@given(
    width=st.integers(10, 120),
    start_frac=st.floats(0.0, 0.8),
)
@settings(max_examples=20, deadline=None)
def test_ascii_gantt_any_window_well_formed(width, start_frac):
    from repro.sim.trace import ExecutionTrace
    from repro.viz import ascii_gantt

    trace = ExecutionTrace(num_gpus=3)
    trace.record_interval(0, 0.0, 10.0, "fwd", 0)
    trace.record_interval(1, 3.0, 8.0, "bwd", 11)
    trace.record_interval(2, 9.0, 9.5, "stall", 2)
    start = start_frac * 10.0
    text = ascii_gantt(trace, width=width, start=start)
    lines = text.splitlines()
    assert len(lines) == 4  # 3 GPUs + legend
    for line in lines[:3]:
        # fixed-width frame regardless of window
        assert len(line) == len(lines[0])


def test_catalog_param_counts_positive_and_distinct():
    from repro.supernet.catalog import CV_LAYER_TYPES, NLP_LAYER_TYPES

    counts = [p.param_count for p in NLP_LAYER_TYPES + CV_LAYER_TYPES]
    assert all(count > 0 for count in counts)
    # Table 5's eight layers all have different swap times, hence sizes.
    assert len(set(counts)) == len(counts)


@given(seed=st.integers(0, 2**31))
@settings(max_examples=10, deadline=None)
def test_profile_scale_bounds_any_space(seed):
    rng = np.random.Generator(np.random.PCG64(seed))
    space = get_search_space("CV.c2").scaled(
        name=f"prop{seed}", num_blocks=int(rng.integers(8, 32))
    )
    supernet = Supernet(space)
    block = int(rng.integers(0, space.num_blocks))
    choice = int(rng.integers(0, space.choices_per_block))
    profile = supernet.profile((block, choice))
    assert 0.75 <= profile.size_scale <= 1.25
    assert profile.swap_ms > 0
