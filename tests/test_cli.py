"""CLI tests."""

import pytest

from repro.cli import main


def test_list_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure5" in out and "table3" in out


def test_run_table5(capsys):
    assert main(["table5"]) == 0
    out = capsys.readouterr().out
    assert "conv3x1" in out


def test_run_table4_with_seed(capsys):
    assert main(["table4", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "2F-2B-5F-5B-7F-7B" in out


def test_spaces_filter(capsys):
    assert main(["dag-bound", "--spaces", "NLP.c3"]) == 0
    out = capsys.readouterr().out
    assert "NLP.c3" in out and "NLP.c1" not in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure9"])


def test_csv_export_flag(tmp_path, capsys):
    assert main(["table5", "--csv", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "csv written" in out
    csv_text = (tmp_path / "table5.csv").read_text()
    assert csv_text.startswith("domain,layer")


def test_scheduler_cost_command(capsys):
    assert main(["scheduler-cost"]) == 0
    assert "10 ms bound" in capsys.readouterr().out


def test_repro_check_command(capsys):
    assert main(["repro-check"]) == 0
    out = capsys.readouterr().out
    assert "PASS: digests match" in out
    assert "FAIL" not in out


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "NASPipe demo" in out
    assert "GPU0" in out and "fwd-start" in out
