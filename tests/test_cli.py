"""CLI tests."""

import pytest

from repro.cli import main


def test_list_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure5" in out and "table3" in out


def test_run_table5(capsys):
    assert main(["table5"]) == 0
    out = capsys.readouterr().out
    assert "conv3x1" in out


def test_run_table4_with_seed(capsys):
    assert main(["table4", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "2F-2B-5F-5B-7F-7B" in out


def test_spaces_filter(capsys):
    assert main(["dag-bound", "--spaces", "NLP.c3"]) == 0
    out = capsys.readouterr().out
    assert "NLP.c3" in out and "NLP.c1" not in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure9"])


def test_csv_export_flag(tmp_path, capsys):
    assert main(["table5", "--csv", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "csv written" in out
    csv_text = (tmp_path / "table5.csv").read_text()
    assert csv_text.startswith("domain,layer")


def test_scheduler_cost_command(capsys):
    assert main(["scheduler-cost"]) == 0
    assert "10 ms bound" in capsys.readouterr().out


def test_repro_check_command(capsys):
    assert main(["repro-check"]) == 0
    out = capsys.readouterr().out
    assert "PASS: digests match" in out
    assert "FAIL" not in out


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "NASPipe demo" in out
    assert "GPU0" in out and "fwd-start" in out


def test_faults_command(tmp_path, capsys):
    import json

    config = tmp_path / "faults.json"
    config.write_text(
        json.dumps(
            {
                "space": "NLP.c3",
                "space_overrides": {"num_blocks": 8, "functional_width": 16},
                "system": "NASPipe",
                "num_gpus": 4,
                "subnets": 16,
                "seed": 11,
                "checkpoint_interval": 8,
                "recovery_gpus": 8,
                "faults": [
                    {"kind": "gpu_crash", "time_ms": 400.0, "target": 1}
                ],
            }
        )
    )
    out_json = tmp_path / "availability.json"
    assert main(["faults", str(config), "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "IDENTICAL to fault-free run" in out
    assert "goodput" in out
    summary = json.loads(out_json.read_text())
    assert summary["digest_matches_baseline"] is True
    assert summary["crashes"] == 1
    assert summary["final_gpus"] == 8


def test_faults_command_requires_config():
    with pytest.raises(SystemExit):
        main(["faults"])


def test_chaos_command(tmp_path, capsys):
    import json

    config = tmp_path / "chaos.json"
    config.write_text(
        json.dumps(
            {
                "space": "NLP.c3",
                "space_overrides": {"num_blocks": 8, "functional_width": 16},
                "system": "NASPipe",
                "gpus": [2],
                "subnets": 8,
                "seed": 7,
            }
        )
    )
    out_json = tmp_path / "report.json"
    assert main(["chaos", str(config), "--seeds", "2", "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "chaos sweep" in out
    assert "PASS" in out
    report = json.loads(out_json.read_text())
    assert report["ok"] is True
    assert report["total_scenarios"] == 2
    assert all(row["digest_ok"] for row in report["scenarios"])


def test_chaos_command_requires_config():
    with pytest.raises(SystemExit):
        main(["chaos"])


def test_chaos_fleet_command(tmp_path, capsys):
    import json

    config = tmp_path / "fleet.json"
    config.write_text(
        json.dumps(
            {
                "fleet_slots": [6],
                "scenarios": 1,
                "seed": 7,
                "storm_mtbf_fraction": 0.3,
                "slots_per_node": 2,
                "quantum": 4,
                "resize_cost_ms": 20.0,
                "max_restarts": 3,
                "requeue_backoff_ms": 20.0,
                "serving": {
                    "space": "NLP.c3",
                    "space_overrides": {
                        "num_blocks": 8,
                        "functional_width": 16,
                    },
                    "num_gpus": 2,
                    "eval_batch": 4,
                    "requests": 30,
                    "rate_rps": 60.0,
                    "seed": 2022,
                    "max_batch": 4,
                    "queue_bound": 12,
                    "slo_ms": 400.0,
                },
                "jobs": [
                    {
                        "name": "elastic",
                        "space": "NLP.c3",
                        "space_overrides": {
                            "num_blocks": 8,
                            "functional_width": 16,
                        },
                        "system": "NASPipe",
                        "subnets": 6,
                        "seed": 2022,
                        "min_gpus": 2,
                        "max_gpus": 4,
                    }
                ],
            }
        )
    )
    out_json = tmp_path / "fleet_report.json"
    assert main(["chaos-fleet", str(config), "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "fleet chaos sweep" in out
    assert "PASS" in out
    report = json.loads(out_json.read_text())
    assert report["ok"] is True
    assert report["total_scenarios"] == 1
    # the canonical file must be byte-stable across runs
    first = out_json.read_text()
    assert main(["chaos-fleet", str(config), "--json", str(out_json)]) == 0
    capsys.readouterr()
    assert out_json.read_text() == first


def test_chaos_fleet_command_requires_config():
    with pytest.raises(SystemExit):
        main(["chaos-fleet"])
