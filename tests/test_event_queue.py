"""Event-queue backends: calendar/heap pop-order identity and O(1)
accounting (len / cancel / clear / compaction).

The queue's total order ``(time, priority, sequence)`` is unique, so any
correct backing store must pop the identical event sequence — the
property the differential fuzz below checks for the heap, the calendar
and the auto-promoting policy on the same operation stream.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro.sim.clock as clock
from repro.sim.clock import EventQueue


def _drain(queue):
    order = []
    while True:
        event = queue.pop()
        if event is None:
            return order
        order.append((event.time, event.priority, event.label))


# ----------------------------------------------------------------------
# O(1) accounting
# ----------------------------------------------------------------------
def test_len_tracks_live_events_through_cancel_and_pop():
    queue = EventQueue(backend="heap")
    events = [queue.schedule(float(i), lambda: None) for i in range(10)]
    assert len(queue) == 10
    events[3].cancel()
    events[7].cancel()
    assert len(queue) == 8
    events[3].cancel()  # idempotent: no double decrement
    assert len(queue) == 8
    assert queue.pop().time == 0.0
    assert len(queue) == 7
    assert len(_drain(queue)) == 7
    assert len(queue) == 0


def test_cancel_after_pop_does_not_corrupt_counters():
    queue = EventQueue(backend="heap")
    event = queue.schedule(1.0, lambda: None)
    queue.schedule(2.0, lambda: None)
    assert queue.pop() is event
    event.cancel()  # already fired: detached, must not decrement live
    assert len(queue) == 1


def test_clear_returns_live_count_and_detaches_handles():
    queue = EventQueue(backend="heap")
    events = [queue.schedule(float(i), lambda: None) for i in range(6)]
    events[0].cancel()
    assert queue.clear() == 5
    assert len(queue) == 0
    # epoch guard: cancelling a pre-clear handle afterwards is a no-op
    queue.schedule(10.0, lambda: None)
    events[1].cancel()
    assert len(queue) == 1
    assert queue.physical_size() == 1


def test_mass_cancellation_compacts_physical_store():
    queue = EventQueue(backend="heap")
    events = [queue.schedule(float(i), lambda: None) for i in range(200)]
    assert queue.physical_size() == 200
    for event in events[:150]:
        event.cancel()
    # compaction fires once cancelled entries outnumber live ones, so
    # the physical store must have shed at least the pre-trigger stale
    # run without a single pop (it re-arms only past the 64-entry floor)
    assert len(queue) == 50
    assert queue.physical_size() <= 100
    assert len(_drain(queue)) == 50


def test_backend_name_is_validated():
    with pytest.raises(ValueError):
        EventQueue(backend="fibonacci")


# ----------------------------------------------------------------------
# pop_until semantics
# ----------------------------------------------------------------------
def test_pop_until_cuts_then_resumes():
    queue = EventQueue(backend="heap")
    for time in (1.0, 1.0, 2.0):
        queue.schedule(time, lambda: None)
    assert queue.pop_until(1.5).time == 1.0
    assert queue.pop_until(1.5).time == 1.0
    assert queue.pop_until(1.5) is None  # next event beyond the cut
    assert queue.now == 1.0  # the cut does not advance the clock
    assert queue.pop_until(None).time == 2.0
    assert queue.pop_until(None) is None


def test_same_time_insert_during_batch_drain_pops_in_order():
    """A callback scheduling a higher-priority event at the *current*
    time must preempt the rest of the buffered same-time run."""
    queue = EventQueue(backend="heap")
    order = []
    queue.schedule(5.0, lambda: order.append("a"), priority=0)
    queue.schedule(5.0, lambda: order.append("c"), priority=0)
    queue.pop().callback()  # fires a; c is buffered in the batch
    queue.schedule(5.0, lambda: order.append("b"), priority=-1)
    while (event := queue.pop()) is not None:
        event.callback()
    assert order == ["a", "b", "c"]


def test_cancelled_batch_head_is_skipped():
    queue = EventQueue(backend="heap")
    first = queue.schedule(1.0, lambda: None, priority=0)
    second = queue.schedule(1.0, lambda: None, priority=1)
    assert queue.peek_time() == 1.0  # both now buffered or peekable
    first.cancel()
    assert queue.pop() is second
    assert len(queue) == 0


# ----------------------------------------------------------------------
# auto policy transitions
# ----------------------------------------------------------------------
def test_auto_promotes_to_calendar_and_demotes_back():
    queue = EventQueue(backend="auto")
    assert queue.backend == "heap"
    for i in range(clock._CALENDAR_ENTER + 10):
        queue.schedule(float(i), lambda: None)
    assert queue.backend == "calendar"
    while len(queue) >= clock._CALENDAR_EXIT:
        queue.pop()
    queue.pop()
    assert queue.backend == "heap"
    _drain(queue)
    assert len(queue) == 0


def test_far_future_outlier_still_pops_in_order():
    """A sparse horizon (one event a billion ms out) must not break the
    calendar's scan, whatever fallback it takes."""
    queue = EventQueue(backend="calendar")
    times = [float(i) for i in range(40)] + [1e9]
    for time in times:
        queue.schedule(time, lambda: None)
    popped = [event.time for event in iter(queue.pop, None)]
    assert popped == sorted(times)


# ----------------------------------------------------------------------
# differential fuzz: all backends pop the identical sequence
# ----------------------------------------------------------------------
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("schedule"),
            st.floats(0.0, 100.0, allow_nan=False),
            st.integers(-2, 2),
        ),
        st.tuples(st.just("schedule_far"), st.floats(1e6, 1e9), st.integers(0, 0)),
        st.tuples(st.just("pop"), st.none(), st.none()),
        st.tuples(st.just("pop_until"), st.floats(0.0, 100.0), st.none()),
        st.tuples(st.just("cancel"), st.integers(0, 40), st.none()),
        st.tuples(st.just("peek"), st.none(), st.none()),
    ),
    min_size=5,
    max_size=80,
)


def _replay(backend, ops):
    queue = EventQueue(backend=backend)
    handles = []
    log = []
    counter = 0
    for op, arg, extra in ops:
        if op in ("schedule", "schedule_far"):
            time = max(queue.now + float(arg), queue.now)
            handles.append(
                queue.schedule(time, lambda: None, priority=extra or 0,
                               label=f"e{counter}")
            )
            counter += 1
        elif op == "pop":
            event = queue.pop()
            log.append(
                None if event is None
                else (event.time, event.priority, event.label)
            )
        elif op == "pop_until":
            event = queue.pop_until(queue.now + float(arg))
            log.append(
                None if event is None
                else (event.time, event.priority, event.label)
            )
        elif op == "cancel":
            if handles:
                handles[arg % len(handles)].cancel()
        elif op == "peek":
            log.append(("peek", queue.peek_time()))
        log.append(("len", len(queue)))
    log.append(("drain", _drain(queue)))
    return log


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_backends_are_pop_order_identical(ops):
    heap = _replay("heap", ops)
    calendar = _replay("calendar", ops)
    auto = _replay("auto", ops)
    assert heap == calendar
    assert heap == auto


def test_default_backend_module_switch(monkeypatch):
    """`DEFAULT_BACKEND` is the documented seam tests force a store
    through; a queue built with backend=None must honour it."""
    monkeypatch.setattr(clock, "DEFAULT_BACKEND", "calendar")
    assert EventQueue().backend == "calendar"
    monkeypatch.setattr(clock, "DEFAULT_BACKEND", "heap")
    assert EventQueue().backend == "heap"
