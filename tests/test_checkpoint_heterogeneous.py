"""Training checkpoints and heterogeneous-cluster reproducibility."""

import numpy as np
import pytest

from repro.baselines import naspipe, pipedream
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine
from repro.engines.sequential import SequentialEngine
from repro.errors import ConfigError
from repro.nn.optim import MomentumSGD
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet


@pytest.fixture
def ckpt_space():
    return get_search_space("NLP.c3").scaled(
        name="ckpt", num_blocks=10, choices_per_block=4, functional_width=16
    )


def _plane(supernet, seed=9):
    return FunctionalPlane(
        supernet,
        SeedSequenceTree(seed),
        functional_batch=6,
        optimizer=MomentumSGD(0.1, 0.9),
    )


def _train_range(supernet, plane, subnets):
    stream = SubnetStream(subnets)
    # renumber is not needed: subnets carry their original dense ids
    return SequentialEngine(supernet, stream, plane).run()


def test_checkpoint_resume_is_bitwise(ckpt_space, tmp_path):
    """Train 30 straight == train 15, checkpoint, restore, train 15."""
    supernet = Supernet(ckpt_space)
    seeds = SeedSequenceTree(9)
    stream_full = SubnetStream.sample(ckpt_space, seeds, 30)
    subnets = list(stream_full)

    # Straight-through reference.
    reference_plane = _plane(supernet)
    SequentialEngine(supernet, SubnetStream(subnets), reference_plane).run()
    reference_digest = reference_plane.digest()

    # First half.
    first_plane = _plane(supernet)
    half = SubnetStream(subnets[:15])
    SequentialEngine(supernet, half, first_plane).run()
    params_path = tmp_path / "weights.npz"
    optim_path = tmp_path / "velocity.npz"
    first_plane.save_checkpoint(params_path, optim_path)

    # Resume in a brand-new plane: restore weights + velocity, feed the
    # remaining half of the same stream.
    resumed_plane = _plane(supernet)
    resumed_plane.load_checkpoint(params_path, optim_path)
    # Drive the second half manually so subnets keep their original
    # sequence ids (data batches are keyed by id).
    for original in subnets[15:]:
        x = resumed_plane.input_for(original)
        activation = resumed_plane.forward_stage(
            original, 0, (0, original.num_blocks), x, 0.0
        )
        loss, dfinal = resumed_plane.loss_and_grad(
            original, activation.stage_output
        )
        _dx, updates = resumed_plane.backward_stage(activation, dfinal)
        resumed_plane.commit(updates, 0.0)

    assert resumed_plane.digest() == reference_digest


def test_checkpoint_without_optimizer_state_diverges(ckpt_space, tmp_path):
    """Restoring weights but not velocity is NOT a faithful resume —
    the test documents why the optimizer state is part of the
    checkpoint contract."""
    supernet = Supernet(ckpt_space)
    seeds = SeedSequenceTree(9)
    subnets = list(SubnetStream.sample(ckpt_space, seeds, 20))

    reference_plane = _plane(supernet)
    SequentialEngine(supernet, SubnetStream(subnets), reference_plane).run()

    first_plane = _plane(supernet)
    SequentialEngine(supernet, SubnetStream(subnets[:10]), first_plane).run()
    params_path = tmp_path / "weights.npz"
    first_plane.save_checkpoint(params_path)  # no velocity

    resumed_plane = _plane(supernet)
    resumed_plane.load_checkpoint(params_path)
    for original in subnets[10:]:
        x = resumed_plane.input_for(original)
        activation = resumed_plane.forward_stage(
            original, 0, (0, original.num_blocks), x, 0.0
        )
        _loss, dfinal = resumed_plane.loss_and_grad(
            original, activation.stage_output
        )
        _dx, updates = resumed_plane.backward_stage(activation, dfinal)
        resumed_plane.commit(updates, 0.0)
    assert resumed_plane.digest() != reference_plane.digest()


# ----------------------------------------------------------------------
# heterogeneous clusters
# ----------------------------------------------------------------------
def _hetero_run(config, speeds, seed=4, gpus=4, steps=20):
    space = get_search_space("NLP.c3").scaled(
        name="hetero", num_blocks=12, functional_width=16
    )
    supernet = Supernet(space)
    seeds_tree = SeedSequenceTree(seed)
    stream = SubnetStream.sample(space, seeds_tree, steps)
    plane = FunctionalPlane(supernet, seeds_tree, functional_batch=6)
    spec = ClusterSpec(num_gpus=gpus, gpu_speed_factors=speeds)
    engine = PipelineEngine(
        supernet, stream, config, spec, batch=32, functional=plane
    )
    return engine.run()


def test_speed_factors_change_timing():
    nominal = _hetero_run(naspipe(), None)
    slow = _hetero_run(naspipe(), (1.0, 2.0, 1.0, 1.5))
    assert slow.makespan_ms > nominal.makespan_ms


def test_csp_reproducible_across_heterogeneous_clusters():
    """Definition 1's "potentially on a different cluster": CSP's final
    weights are identical even when per-GPU speeds differ wildly."""
    nominal = _hetero_run(naspipe(), None)
    throttled = _hetero_run(naspipe(), (1.0, 3.0, 0.7, 1.4))
    assert throttled.digest == nominal.digest
    assert throttled.losses == nominal.losses


def test_asp_result_depends_on_gpu_speeds():
    nominal = _hetero_run(pipedream(), None)
    throttled = _hetero_run(pipedream(), (1.0, 3.0, 0.7, 1.4))
    assert throttled.digest != nominal.digest


def test_speed_factor_validation():
    with pytest.raises(ConfigError):
        ClusterSpec(num_gpus=4, gpu_speed_factors=(1.0, 1.0))
    with pytest.raises(ConfigError):
        ClusterSpec(num_gpus=2, gpu_speed_factors=(1.0, 0.0))
    assert ClusterSpec(num_gpus=2, gpu_speed_factors=(1.0, 2.0)).speed_factor(1) == 2.0


# ----------------------------------------------------------------------
# consistent-cut checkpoints (repro.ft) across cluster shapes
# ----------------------------------------------------------------------
def test_consistent_cut_restart_across_gpu_count_and_speeds(ckpt_space, tmp_path):
    """The full elastic story in one scenario: train on a heterogeneous
    4-GPU cluster, crash mid-stream, recover from the consistent cut on
    a *differently-throttled 8-GPU* cluster — bitwise identical to the
    fault-free run.  The cut carries parameters, optimizer velocity,
    sampler RNG state and the stream cursor; all four must round-trip
    for this to hold."""
    from repro.ft import FaultEvent, FaultSchedule, RecoverySpec, run_uninterrupted, run_with_recovery

    baseline = run_uninterrupted(
        ckpt_space,
        naspipe(),
        num_gpus=4,
        steps=20,
        seed=9,
        speed_factors=(1.0, 2.0, 1.0, 1.5),
    )
    schedule = FaultSchedule(
        [FaultEvent("gpu_crash", baseline.makespan_ms * 0.55, target=2)]
    )
    recovered = run_with_recovery(
        ckpt_space,
        naspipe(),
        schedule,
        num_gpus=4,
        steps=20,
        seed=9,
        checkpoint_dir=tmp_path,
        spec=RecoverySpec(checkpoint_interval=6, restart_gpus=8),
        speed_factors=(1.0, 2.0, 1.0, 1.5),
        restart_speed_factors=(1.0, 0.8, 1.1, 2.0, 1.0, 1.0, 3.0, 1.0),
    )
    assert recovered.num_attempts == 2
    assert recovered.final_gpus == 8
    assert recovered.digest == baseline.digest
    assert recovered.losses == baseline.losses


def test_checkpoint_meta_records_cursor_and_restores(ckpt_space, tmp_path):
    """Each committed cut's meta.json is self-describing: the cut *is*
    the resume cursor, and loading the directory restores params,
    velocity and RNG into a fresh plane."""
    from repro.ft import Checkpoint, FaultEvent, FaultSchedule, RecoverySpec, run_uninterrupted, run_with_recovery

    baseline = run_uninterrupted(ckpt_space, naspipe(), num_gpus=4, steps=20, seed=9)
    result = run_with_recovery(
        ckpt_space,
        naspipe(),
        FaultSchedule([FaultEvent("gpu_crash", baseline.makespan_ms * 0.6, target=0)]),
        num_gpus=4,
        steps=20,
        seed=9,
        checkpoint_dir=tmp_path,
        spec=RecoverySpec(checkpoint_interval=6),
    )
    assert result.checkpoint_cuts
    cut = result.checkpoint_cuts[0]
    loaded = Checkpoint.load(tmp_path / f"ckpt_{cut:06d}")
    assert loaded.cut == cut
    assert loaded.meta["seed"] == 9
    assert loaded.meta["steps"] == 20

    supernet = Supernet(ckpt_space)
    plane = FunctionalPlane(
        supernet,
        SeedSequenceTree(9),
        functional_batch=8,
        optimizer=MomentumSGD(0.3, 0.9, 5.0),
    )
    loaded.restore(plane)
    assert plane.store.digest() == loaded.digest
    assert plane.seeds.snapshot_state() == loaded.rng_state
