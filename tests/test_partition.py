"""Partitioning tests: optimality, coverage, static partitions, mirrors."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PartitionError
from repro.partition import (
    MirrorRegistry,
    balanced_partition,
    partition_cost,
    partition_imbalance,
    static_partition_for_space,
)
from repro.partition.static import expected_block_costs
from repro.supernet.subnet import Subnet


def _brute_force_minmax(costs, stages):
    """Exhaustive optimal min-max over all contiguous partitions."""
    m = len(costs)
    best = float("inf")
    for cuts in itertools.combinations(range(1, m), stages - 1):
        bounds = [0, *cuts, m]
        worst = max(
            sum(costs[bounds[i] : bounds[i + 1]]) for i in range(stages)
        )
        best = min(best, worst)
    return best


def test_balanced_partition_simple():
    assert balanced_partition([1, 1, 1, 1], 2) == [(0, 2), (2, 4)]


def test_partition_covers_all_blocks():
    partition = balanced_partition([3, 1, 4, 1, 5, 9, 2, 6], 3)
    flat = []
    for start, stop in partition:
        flat.extend(range(start, stop))
    assert flat == list(range(8))
    assert all(stop > start for start, stop in partition)


@given(
    st.lists(st.floats(0.01, 50.0), min_size=3, max_size=9),
    st.integers(2, 3),
)
@settings(max_examples=60, deadline=None)
def test_balanced_partition_is_optimal(costs, stages):
    if len(costs) < stages:
        costs = costs + [1.0] * (stages - len(costs))
    partition = balanced_partition(costs, stages)
    achieved = partition_cost(costs, partition)
    optimal = _brute_force_minmax(costs, stages)
    assert achieved <= optimal * (1 + 1e-9) + 1e-9


def test_balanced_partition_errors():
    with pytest.raises(PartitionError):
        balanced_partition([1.0], 2)
    with pytest.raises(PartitionError):
        balanced_partition([1.0, 2.0], 0)
    with pytest.raises(PartitionError):
        balanced_partition([1.0, -1.0], 1)


def test_partition_imbalance_perfect():
    assert partition_imbalance([2, 2, 2, 2], [(0, 2), (2, 4)]) == 1.0
    assert partition_imbalance([4, 1, 1, 1], [(0, 1), (1, 4)]) > 1.0


def test_static_partition_balances_expected_costs(small_supernet):
    partition = static_partition_for_space(small_supernet, 4)
    costs = expected_block_costs(small_supernet)
    assert len(partition) == 4
    assert partition_imbalance(costs, partition) < 1.6


def test_per_subnet_balanced_beats_static(small_supernet):
    """The mirroring payoff: a subnet's own balanced partition never has
    a worse max-stage time than the static partition."""
    from repro.seeding import SeedSequenceTree
    from repro.supernet.sampler import SposSampler

    static = static_partition_for_space(small_supernet, 4)
    sampler = SposSampler(small_supernet.space, SeedSequenceTree(3))
    for subnet in sampler.sample_many(20):
        costs = [
            small_supernet.profile(layer).fwd_ms_ref
            + small_supernet.profile(layer).bwd_ms_ref
            for layer in subnet.layer_ids()
        ]
        own = balanced_partition(costs, 4)
        assert partition_cost(costs, own) <= partition_cost(costs, static) + 1e-9


# ----------------------------------------------------------------------
# mirroring
# ----------------------------------------------------------------------
def test_mirror_home_stage_lookup():
    registry = MirrorRegistry(home_partition=[(0, 4), (4, 8)])
    assert registry.home_stage((0, 0)) == 0
    assert registry.home_stage((7, 3)) == 1
    with pytest.raises(KeyError):
        registry.home_stage((8, 0))


def test_mirror_created_only_off_home():
    registry = MirrorRegistry(home_partition=[(0, 4), (4, 8)])
    assert not registry.ensure_resident_stage((0, 0), 0)
    assert registry.ensure_resident_stage((0, 0), 1)
    assert not registry.ensure_resident_stage((0, 0), 1)  # idempotent
    assert registry.mirrored_layer_count() == 1


def test_mirror_register_subnet_and_push_accounting():
    registry = MirrorRegistry(home_partition=[(0, 4), (4, 8)])
    subnet = Subnet(0, tuple([0] * 8))
    # Shifted partition: block 4 executes on stage 0, block 3 on stage 1.
    events = registry.register_subnet(subnet, [(0, 5), (5, 8)])
    assert {(e.layer[0], e.stage) for e in events} == {(4, 0)}
    sent = registry.record_update_push((4, 0), param_bytes=100)
    assert sent == 100  # one replica besides home
    assert registry.record_update_push((0, 0), param_bytes=100) == 0
    assert registry.push_bytes_total == 100
