"""Property-based engine invariants, fuzzed across policies and seeds.

Invariants every run must satisfy regardless of policy:

1. no two compute intervals overlap on the same GPU;
2. a subnet's stage tasks are causally ordered (fwd k before fwd k+1,
   bwd k+1 before bwd k, fwd before bwd per stage);
3. every subnet completes exactly once; completion time is its last task;
4. the trace's makespan bounds every interval.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import gpipe, naspipe, pipedream, ssp, vpipe
from repro.engines.pipeline import PipelineEngine
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

_FACTORIES = {
    "csp": naspipe,
    "bsp": gpipe,
    "asp": pipedream,
    "vpipe": vpipe,
    "ssp": lambda: ssp(3),
}


def _run(policy_name: str, seed: int, gpus: int, count: int = 14):
    space = get_search_space("NLP.c3").scaled(
        name=f"inv-{seed}", num_blocks=12, functional_width=16
    )
    supernet = Supernet(space)
    stream = SubnetStream.sample(space, SeedSequenceTree(seed), count)
    engine = PipelineEngine(
        supernet,
        stream,
        _FACTORIES[policy_name](),
        ClusterSpec(num_gpus=gpus),
        batch=32,
    )
    return engine.run()


def _check_invariants(result, count):
    intervals = sorted(result.trace.intervals, key=lambda i: (i.gpu_id, i.start))
    # 1: no overlap per GPU
    last_end = defaultdict(float)
    for interval in intervals:
        assert interval.start >= last_end[interval.gpu_id] - 1e-9, interval
        last_end[interval.gpu_id] = interval.end
        assert interval.end <= result.trace.end_time + 1e-9

    # 2: causal ordering of each subnet's compute tasks
    fwd_end = defaultdict(dict)
    bwd_end = defaultdict(dict)
    for interval in intervals:
        if interval.kind == "fwd":
            fwd_end[interval.subnet_id][interval.gpu_id] = interval.end
        elif interval.kind == "bwd":
            bwd_end[interval.subnet_id][interval.gpu_id] = interval.end
    stages = result.num_gpus
    for sid in range(count):
        for stage in range(stages):
            assert stage in fwd_end[sid], (sid, stage)
            assert stage in bwd_end[sid], (sid, stage)
            if stage + 1 < stages:
                assert fwd_end[sid][stage] <= fwd_end[sid][stage + 1] + 1e-9
                assert bwd_end[sid][stage + 1] <= bwd_end[sid][stage] + 1e-9
            assert fwd_end[sid][stage] <= bwd_end[sid][stage] + 1e-9

    # 3: completions
    assert result.subnets_completed == count
    for sid in range(count):
        completion = result.trace.subnet_completion_times[sid]
        assert completion == pytest.approx(bwd_end[sid][0])


@pytest.mark.parametrize("policy_name", sorted(_FACTORIES))
def test_invariants_per_policy(policy_name):
    result = _run(policy_name, seed=42, gpus=4)
    _check_invariants(result, count=14)


@given(
    policy_name=st.sampled_from(sorted(_FACTORIES)),
    seed=st.integers(0, 5000),
    gpus=st.sampled_from([2, 3, 4, 6]),
)
@settings(max_examples=15, deadline=None)
def test_invariants_fuzzed(policy_name, seed, gpus):
    result = _run(policy_name, seed=seed, gpus=gpus, count=10)
    _check_invariants(result, count=10)


def test_csp_subnets_may_complete_out_of_order():
    """CSP preserves causal order, not completion order — independent
    later subnets can drain first.  Verify the engine actually exploits
    this (somewhere in a long-enough random run)."""
    space = get_search_space("NLP.c1").scaled(num_blocks=16)
    supernet = Supernet(space)
    stream = SubnetStream.sample(space, SeedSequenceTree(0), 60)
    result = PipelineEngine(
        supernet, stream, naspipe(), ClusterSpec(num_gpus=4), batch=64
    ).run()
    order = [
        sid
        for sid, _t in sorted(
            result.trace.subnet_completion_times.items(), key=lambda kv: kv[1]
        )
    ]
    assert order != sorted(order), "expected at least one overtake"
