"""Intra-subnet (micro-batch) engine tests."""

import pytest

from repro.engines.intra import IntraSubnetEngine
from repro.errors import ConfigError
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.supernet import Supernet


def _engine(supernet, batch=32, microbatches=4, gpus=4, count=10, seed=3):
    stream = SubnetStream.sample(supernet.space, SeedSequenceTree(seed), count)
    return IntraSubnetEngine(
        supernet, stream, ClusterSpec(num_gpus=gpus), batch=batch,
        microbatches=microbatches,
    )


def test_completes_all_subnets(small_supernet):
    result = _engine(small_supernet).run()
    assert result.subnets_completed == 10
    assert result.makespan_ms > 0
    assert 0.0 <= result.bubble_ratio <= 1.0


def test_subnets_strictly_sequential(small_supernet):
    result = _engine(small_supernet, count=6).run()
    completions = result.trace.subnet_completion_times
    # Each subnet's first task starts after the previous one completed.
    for sid in range(1, 6):
        first_start = min(
            interval.start
            for interval in result.trace.intervals
            if interval.subnet_id == sid
        )
        assert first_start >= completions[sid - 1] - 1e-9


def test_no_gpu_overlap(small_supernet):
    result = _engine(small_supernet, count=6).run()
    by_gpu = {}
    for interval in sorted(result.trace.intervals, key=lambda i: i.start):
        last = by_gpu.get(interval.gpu_id, 0.0)
        assert interval.start >= last - 1e-9
        by_gpu[interval.gpu_id] = interval.end


def test_microbatching_tradeoff_at_supernet_batch_sizes(small_supernet):
    """The paper's §2.2 argument, measured: splitting a supernet-sized
    batch into micro-batches fills the pipeline (bubble falls) but every
    slice pays the GPU latency floor, so total time *rises* — which is
    why intra-subnet task generation is 'non-general'."""
    one = _engine(small_supernet, batch=64, microbatches=1, count=8).run()
    eight = _engine(small_supernet, batch=64, microbatches=8, count=8).run()
    assert eight.bubble_ratio < one.bubble_ratio
    assert eight.makespan_ms > one.makespan_ms


def test_validation():
    from repro.supernet.search_space import get_search_space

    supernet = Supernet(get_search_space("NLP.c3").scaled(num_blocks=8))
    with pytest.raises(ConfigError):
        _engine(supernet, batch=10, microbatches=4)  # not divisible
    with pytest.raises(ConfigError):
        _engine(supernet, microbatches=0)


def test_deterministic(small_supernet):
    a = _engine(small_supernet).run()
    b = _engine(small_supernet).run()
    assert a.makespan_ms == b.makespan_ms
    assert a.trace.gantt_rows() == b.trace.gantt_rows()
