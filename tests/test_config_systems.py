"""SystemConfig validation and baseline factory tests."""

import pytest

from repro.baselines import (
    ABLATIONS,
    ALL_SYSTEMS,
    gpipe,
    naspipe,
    naspipe_wo_mirroring,
    naspipe_wo_predictor,
    naspipe_wo_scheduler,
    pipedream,
    ssp,
    system_by_name,
    vpipe,
)
from repro.config import SystemConfig
from repro.errors import ConfigError


def test_naspipe_config_shape():
    config = naspipe()
    assert config.sync == "csp"
    assert config.partitioning == "balanced"
    assert config.context == "cached"
    assert config.cache_subnets == 3.0
    assert config.predictor and config.mirroring and config.recompute
    assert config.enforces_causal_order


def test_baseline_configs_shape():
    assert gpipe().sync == "bsp" and gpipe().context == "full"
    assert pipedream().sync == "asp" and not pipedream().recompute
    assert vpipe().sync == "bsp" and vpipe().cache_subnets == 1.0
    assert ssp(3).staleness == 3
    for name in ALL_SYSTEMS + ABLATIONS:
        assert system_by_name(name).name == name


def test_ablation_configs():
    assert naspipe_wo_scheduler().in_order_only
    assert naspipe_wo_predictor().context == "full"
    assert not naspipe_wo_predictor().predictor
    assert naspipe_wo_mirroring().partitioning == "static"


def test_unknown_system_raises():
    with pytest.raises(KeyError):
        system_by_name("MegaPipe")


def test_invalid_configs_rejected():
    with pytest.raises(ConfigError):
        SystemConfig(name="x", sync="turbo")
    with pytest.raises(ConfigError):
        SystemConfig(name="x", partitioning="diagonal")
    with pytest.raises(ConfigError):
        SystemConfig(name="x", context="quantum")
    with pytest.raises(ConfigError):
        # balanced partitions need mirroring
        SystemConfig(name="x", partitioning="balanced", mirroring=False)
    with pytest.raises(ConfigError):
        SystemConfig(name="x", cache_subnets=0)
    with pytest.raises(ConfigError):
        # predictor requires cached context
        SystemConfig(
            name="x", context="full", predictor=True,
            partitioning="static", mirroring=False,
        )


def test_with_overrides_returns_new_config():
    base = naspipe()
    tweaked = base.with_overrides(inject_window=12)
    assert tweaked.inject_window == 12
    assert base.inject_window is None
    assert tweaked.name == base.name


def test_default_windows_scale_with_stages():
    assert naspipe().default_window(8) > naspipe().default_window(4)
    assert pipedream().default_window(8) == 8
    assert gpipe().default_window(8) == gpipe().default_bulk(8)


def test_gpipe_bulk_gives_paper_bubble():
    from repro.metrics.bubbles import gpipe_theory_bubble

    bulk = gpipe().default_bulk(8)
    bubble = gpipe_theory_bubble(8, bulk)
    assert 0.5 < bubble < 0.65  # the paper's constant 0.57 regime


def test_explicit_bulk_and_window_respected():
    assert gpipe(bulk_size=9).default_bulk(8) == 9
    assert naspipe(inject_window=17).default_window(8) == 17
