"""The live telemetry plane end to end: typed instruments, the virtual
scrape loop, declarative alerts, and per-tenant usage metering.

The tentpole claims (docs/TELEMETRY.md):

* arming telemetry changes **zero** plane bytes — engine digests and
  service/serving reports are bitwise identical with and without a hub;
* every exporter (JSONL series, Prometheus text, alert log, metering
  table) is byte-identical across identical runs;
* per-tenant GPU-slot-milliseconds reconcile exactly (<= 1e-9 ms) with
  the cluster manager's own usage ledger, including leases split across
  revocation incarnations;
* a seeded fleet storm deterministically fires *and resolves* the SLO
  burn-rate alert inside the outage-impact window, while a healthy run
  fires nothing.
"""

import json

import pytest

from repro.baselines import naspipe
from repro.engines.pipeline import PipelineEngine
from repro.errors import ConfigError
from repro.ft import FaultEvent, FaultSchedule
from repro.ft.fleet import _build_planes
from repro.obs.registry import compare_records, format_compare, run_record
from repro.obs.telemetry import TelemetryHub, replay_telemetry
from repro.obs.telemetry.alerts import AlertEngine, AlertRule, load_rules
from repro.obs.telemetry.registry import MetricsRegistry
from repro.seeding import SeedSequenceTree
from repro.service import run_service
from repro.service.scheduler import service_report_json
from repro.serving import ServingEngine, ServingSpec
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream

OVERRIDES = {"num_blocks": 8, "functional_width": 16}

SERVICE_CONFIG = {
    "total_gpus": 6,
    "quantum": 4,
    "resize_cost_ms": 20.0,
    "jobs": [
        {
            "name": "elastic",
            "space": "NLP.c3",
            "space_overrides": OVERRIDES,
            "system": "NASPipe",
            "subnets": 8,
            "seed": 2022,
            "priority": 2,
            "min_gpus": 2,
            "max_gpus": 4,
        },
        {
            "name": "rigid",
            "space": "CV.c3",
            "space_overrides": OVERRIDES,
            "system": "PipeDream",
            "subnets": 6,
            "seed": 7,
            "priority": 1,
            "min_gpus": 2,
            "max_gpus": 2,
        },
    ],
}

SERVING_CONFIG = {
    "space": "NLP.c3",
    "space_overrides": OVERRIDES,
    "num_gpus": 2,
    "total_gpus": 4,
    "eval_batch": 4,
    "requests": 60,
    "arrival": "poisson",
    "rate_rps": 60.0,
    "skew": 0.7,
    "hot_prefixes": 3,
    "prefix_blocks": 4,
    "repeat_fraction": 0.3,
    "seed": 2022,
    "max_batch": 4,
    "max_linger_ms": 5.0,
    "queue_bound": 16,
    "result_entries": 64,
    "cache_subnets": 3.0,
    "slo_ms": 400.0,
}

FLEET_CONFIG = {
    "quantum": 4,
    "resize_cost_ms": 20.0,
    "max_restarts": 3,
    "requeue_backoff_ms": 20.0,
    "serving": dict(SERVING_CONFIG, requests=80, total_gpus=8),
    "jobs": [SERVICE_CONFIG["jobs"][0]],
}


# ----------------------------------------------------------------------
# instruments: fixed shapes, loud drift
# ----------------------------------------------------------------------
def test_counter_only_goes_up():
    registry = MetricsRegistry()
    counter = registry.counter("t_total", "test")
    counter.inc(2.0)
    counter.inc()
    assert counter.value() == 3.0
    with pytest.raises(ConfigError):
        counter.inc(-1.0)


def test_instrument_registration_is_idempotent_but_shape_checked():
    registry = MetricsRegistry()
    first = registry.counter("t_total", "test", labels=("stage",))
    assert registry.counter("t_total", "test", labels=("stage",)) is first
    with pytest.raises(ConfigError):
        registry.counter("t_total", "test", labels=("gpu",))
    with pytest.raises(ConfigError):
        registry.gauge("t_total", "same name, different type")


def test_label_set_is_closed():
    registry = MetricsRegistry()
    counter = registry.counter("t_total", "test", labels=("stage",))
    counter.inc(1.0, stage="0")
    with pytest.raises(ConfigError):
        counter.inc(1.0, gpu="0")
    with pytest.raises(ConfigError):
        counter.inc(1.0)  # missing the declared label


def test_gauge_tracks_peak():
    registry = MetricsRegistry()
    gauge = registry.gauge("t_depth", "test")
    gauge.set(3.0)
    gauge.add(2.0)
    gauge.set(1.0)
    assert gauge.value() == 1.0
    assert gauge.peak() == 5.0


def test_histogram_buckets_must_ascend():
    registry = MetricsRegistry()
    with pytest.raises(ConfigError):
        registry.histogram("t_ms", "test", buckets=(10.0, 5.0))
    with pytest.raises(ConfigError):
        registry.histogram("t2_ms", "test", buckets=())


def test_histogram_samples_are_cumulative_with_inf():
    registry = MetricsRegistry()
    histogram = registry.histogram("t_ms", "test", buckets=(10.0, 100.0))
    for value in (5.0, 7.0, 50.0, 500.0):
        histogram.observe(value)
    assert histogram.bucket_counts() == [2, 1, 1]
    assert histogram.count() == 4
    assert histogram.sum() == 562.0
    samples = dict(
        ((name, labels), value) for name, labels, value in histogram.samples()
    )
    assert samples[("t_ms_bucket", ("10",))] == 2
    assert samples[("t_ms_bucket", ("100",))] == 3  # cumulative
    assert samples[("t_ms_bucket", ("+Inf",))] == 4
    assert samples[("t_ms_count", ())] == 4


# ----------------------------------------------------------------------
# scraper
# ----------------------------------------------------------------------
def test_scrape_series_never_duplicates_a_timestamp():
    hub = TelemetryHub()
    counter = hub.registry.counter("t_total", "test")
    counter.inc()
    hub.scraper.scrape(100.0)
    counter.inc()
    hub.scraper.finalize(100.0)  # quiescence flush at a sampled instant
    assert len(hub.scraper.samples) == 1
    # the flush overwrote the sample with the post-increment state
    assert hub.scraper.samples[0][1]["t_total"] == 2.0


def test_series_jsonl_is_canonical():
    hub = TelemetryHub()
    hub.registry.counter("t_total", "test").inc()
    hub.scraper.scrape(0.0)
    hub.scraper.scrape(100.0)
    text = hub.scraper.series_jsonl()
    assert text == (
        '{"samples":{"t_total":1.0},"t_ms":0.0}\n'
        '{"samples":{"t_total":1.0},"t_ms":100.0}\n'
    )


# ----------------------------------------------------------------------
# alert rules on synthetic series
# ----------------------------------------------------------------------
def _series(*points):
    return [(float(t), dict(sample)) for t, sample in points]


def test_threshold_rule_holds_for_for_ms_before_firing():
    rule = AlertRule(
        {
            "name": "hot",
            "kind": "threshold",
            "metric": "depth",
            "op": ">",
            "threshold": 2.0,
            "for_ms": 100.0,
        }
    )
    series = _series(
        (0, {"depth": 0}),
        (100, {"depth": 5}),  # pending starts here
        (200, {"depth": 5}),  # held 100ms -> fires
        (300, {"depth": 1}),  # resolves
        (400, {"depth": 5}),  # pending restarts; never held long enough
    )
    log = AlertEngine([rule]).evaluate(series)
    assert log == [
        {
            "rule": "hot",
            "kind": "threshold",
            "fired_at_ms": 200.0,
            "resolved_at_ms": 300.0,
        }
    ]


def test_threshold_rule_still_firing_at_end_has_null_resolution():
    rule = AlertRule(
        {"name": "down", "metric": "down_slots", "op": ">", "threshold": 0.0}
    )
    series = _series((0, {"down_slots": 0}), (100, {"down_slots": 2}))
    log = AlertEngine([rule]).evaluate(series)
    assert log[0]["fired_at_ms"] == 100.0
    assert log[0]["resolved_at_ms"] is None


def test_burn_rate_needs_every_window_burning():
    rule = AlertRule(
        {
            "name": "burn",
            "kind": "burn_rate",
            "good": "good",
            "bad": "bad",
            "objective": 0.9,  # 10% budget
            "windows": [
                {"window_ms": 100.0, "factor": 2.0},  # needs >= 20% bad
                {"window_ms": 300.0, "factor": 1.0},  # needs >= 10% bad
            ],
        }
    )
    series = _series(
        (0, {"good": 0, "bad": 0}),
        (100, {"good": 10, "bad": 0}),
        # short window: 5/10 bad = 50% >= 20%; long: 5/20 = 25% >= 10%
        (200, {"good": 15, "bad": 5}),
        # short window clean again -> resolves even though long still burns
        (300, {"good": 25, "bad": 5}),
    )
    log = AlertEngine([rule]).evaluate(series)
    assert log == [
        {
            "rule": "burn",
            "kind": "burn_rate",
            "fired_at_ms": 200.0,
            "resolved_at_ms": 300.0,
        }
    ]


def test_rule_validation_is_loud():
    with pytest.raises(ConfigError):
        AlertRule({"name": "x", "metric": "m", "op": "!=", "threshold": 1})
    with pytest.raises(ConfigError):
        AlertRule({"name": "x", "kind": "threshold"})  # no metric
    with pytest.raises(ConfigError):
        AlertRule({"name": "x", "kind": "burn_rate", "good": "g", "bad": "b",
                   "objective": 1.5, "windows": [{"window_ms": 10}]})
    with pytest.raises(ConfigError):
        AlertRule({"name": "x", "kind": "burn_rate", "good": "g", "bad": "b"})
    with pytest.raises(ConfigError):
        AlertRule({"name": "x", "metric": "m", "surprise": 1})
    with pytest.raises(ConfigError):
        AlertRule({"metric": "m"})  # nameless


def test_load_rules_from_file_and_defaults(tmp_path):
    defaults = load_rules(None)
    assert [rule.name for rule in defaults] == [
        "fleet_slots_down",
        "service_job_failed",
        "serving_slo_burn",
    ]
    path = tmp_path / "rules.json"
    path.write_text(
        json.dumps(
            {
                "rules": [
                    {"name": "a", "metric": "m", "op": ">=", "threshold": 1}
                ]
            }
        )
    )
    loaded = load_rules(path)
    assert [rule.name for rule in loaded] == ["a"]


# ----------------------------------------------------------------------
# service plane: byte identity, digest preservation, reconciliation
# ----------------------------------------------------------------------
def _service_run_with_hub(payload):
    hub = TelemetryHub(scrape_interval_ms=50.0)
    report = run_service(payload, telemetry=hub)
    return hub, report


def test_service_telemetry_is_byte_identical_across_runs():
    hub_a, _ = _service_run_with_hub(SERVICE_CONFIG)
    hub_b, _ = _service_run_with_hub(SERVICE_CONFIG)
    assert hub_a.scraper.series_jsonl() == hub_b.scraper.series_jsonl()
    assert hub_a.scraper.prometheus_text() == hub_b.scraper.prometheus_text()
    assert hub_a.alert_report() == hub_b.alert_report()
    assert json.dumps(hub_a.metering_report(), sort_keys=True) == json.dumps(
        hub_b.metering_report(), sort_keys=True
    )
    assert hub_a.meter.format_report() == hub_b.meter.format_report()


def test_service_report_bytes_unchanged_by_telemetry():
    plain = run_service(SERVICE_CONFIG)
    _, observed = _service_run_with_hub(SERVICE_CONFIG)
    assert service_report_json(plain) == service_report_json(observed)


def test_service_metering_reconciles_to_manager_ledger():
    hub, report = _service_run_with_hub(SERVICE_CONFIG)
    metering = hub.metering_report()
    reconciliation = metering["reconciliation"]
    assert reconciliation["ok"]
    assert abs(reconciliation["residual_ms"]) <= 1e-9
    assert set(metering["tenants"]) == {"elastic", "rigid"}
    # every tenant that ran holds slot-time
    for tenant in metering["tenants"].values():
        assert tenant["gpu_slot_ms"] > 0.0


def test_service_metering_reconciles_across_revocations():
    payload = dict(
        SERVICE_CONFIG,
        faults=[
            {
                "kind": "slot_preempt",
                "time_ms": 60.0,
                "target": 0,
                "duration_ms": 120.0,
            },
            {
                "kind": "slot_preempt",
                "time_ms": 300.0,
                "target": 2,
                "duration_ms": 120.0,
            },
        ],
    )
    hub, report = _service_run_with_hub(payload)
    assert hub.manager.total_revocations > 0
    metering = hub.metering_report()
    assert metering["reconciliation"]["ok"]
    assert abs(metering["reconciliation"]["residual_ms"]) <= 1e-9
    # the struck tenant's usage splits across lease incarnations, at
    # least one of which is marked revoked
    revoked = [
        lease
        for tenant in metering["tenants"].values()
        for lease in tenant["leases"]
        if lease["revoked"]
    ]
    assert revoked
    # and the fleet_slots_down alert fired (a slot really went down)
    log = hub.alert_report()["log"]
    assert any(entry["rule"] == "fleet_slots_down" for entry in log)


def test_healthy_service_run_fires_no_default_alerts():
    hub, _ = _service_run_with_hub(SERVICE_CONFIG)
    assert hub.alert_report()["firings"] == 0


# ----------------------------------------------------------------------
# serving plane
# ----------------------------------------------------------------------
def _serving_run(telemetry=None):
    engine = ServingEngine(
        ServingSpec.from_payload(SERVING_CONFIG), telemetry=telemetry
    )
    return engine, engine.run()


def test_serving_report_bytes_unchanged_by_telemetry():
    _, plain = _serving_run()
    _, observed = _serving_run(telemetry=TelemetryHub())
    assert json.dumps(
        plain.scenario_report(), sort_keys=True
    ) == json.dumps(observed.scenario_report(), sort_keys=True)


def test_serving_telemetry_counts_match_the_scenario_report():
    hub = TelemetryHub(scrape_interval_ms=50.0)
    _, result = _serving_run(telemetry=hub)
    scenario = result.scenario_report()
    snapshot = hub.registry.snapshot()
    assert snapshot["serving_requests_total"] == scenario["requests"]
    assert snapshot["serving_latency_ms_count"] == scenario["completed"]
    histogram = hub.registry.get("serving_latency_ms")
    assert histogram.count() == scenario["completed"]
    assert histogram.sum() == pytest.approx(
        sum(r.latency_ms for r in result.records if r.done_ms is not None)
    )
    assert hub.alert_report()["firings"] == 0  # healthy serving demo


def test_serving_metering_reconciles():
    hub = TelemetryHub()
    _serving_run(telemetry=hub)
    metering = hub.metering_report()
    assert metering["reconciliation"]["ok"]
    assert set(metering["tenants"]) == {"serving"}


# ----------------------------------------------------------------------
# engine plane: replay, registry records, digest preservation
# ----------------------------------------------------------------------
def _engine_result(tiny_supernet, telemetry=None):
    stream = SubnetStream.sample(
        tiny_supernet.space, SeedSequenceTree(11), 12
    )
    engine = PipelineEngine(
        tiny_supernet,
        stream,
        naspipe(),
        ClusterSpec(num_gpus=4),
        batch=32,
        telemetry=telemetry,
    )
    return engine.run()


def test_engine_timing_unchanged_by_telemetry(tiny_supernet):
    plain = _engine_result(tiny_supernet)
    observed = _engine_result(tiny_supernet, telemetry=TelemetryHub())
    assert plain.makespan_ms == observed.makespan_ms
    assert plain.trace.gantt_rows() == observed.trace.gantt_rows()


def test_result_telemetry_replays_the_trace(tiny_supernet):
    result = _engine_result(tiny_supernet)
    hub = result.telemetry()
    snapshot = hub.registry.snapshot()
    assert snapshot["engine_subnets_completed_total"] == 12.0
    tasks = sum(
        value
        for key, value in snapshot.items()
        if key.startswith("engine_tasks_total{")
    )
    assert tasks > 0
    # replay is deterministic
    assert (
        result.telemetry().registry.snapshot()
        == replay_telemetry(result.trace).registry.snapshot()
    )


def test_run_record_carries_telemetry_but_not_in_run_id(tiny_supernet):
    result = _engine_result(tiny_supernet)
    record = run_record(result, git_sha=None)
    assert record["telemetry"]["schema"] == 1
    assert record["telemetry"]["scrapes"] == 1  # replay: final sample only
    assert record["telemetry"]["gpu_slot_ms"] == {}  # no manager leased
    # the run_id digests summary+critical_path only; a record stripped of
    # the block resolves identically
    stripped = dict(record)
    stripped.pop("telemetry")
    assert stripped["run_id"] == record["run_id"]

    comparison = compare_records(record, record)
    assert comparison["telemetry"]["alerts_fired"]["delta"] == 0.0
    rendered = format_compare(comparison)
    assert "telemetry:" in rendered
    assert "peak_queue_depth" in rendered

    # pre-telemetry records still compare cleanly
    legacy = compare_records(stripped, stripped)
    assert legacy["telemetry"] == {}
    assert "telemetry:" not in format_compare(legacy)


# ----------------------------------------------------------------------
# chaos fleet: the storm fires and resolves the burn-rate alert
# ----------------------------------------------------------------------
def _storm_fleet_run():
    hub = TelemetryHub(scrape_interval_ms=50.0)
    manager, serving, scheduler = _build_planes(
        FLEET_CONFIG, 8, serving_telemetry=hub
    )
    serving_slots = frozenset(serving.lease.slots)
    storm = FaultSchedule(
        [
            FaultEvent(
                "slot_preempt",
                120.0,
                target=min(serving_slots),
                duration_ms=250.0,
            )
        ]
    )
    serving.inject_fleet_faults(storm, slots=serving_slots)
    scheduler.run()
    result = serving.run()
    return hub, manager, result


def test_storm_fires_and_resolves_slo_burn_inside_outage_window():
    hub, manager, result = _storm_fleet_run()
    assert result.outage_windows  # the revocation really happened
    log = hub.alert_report()["log"]
    burns = [e for e in log if e["rule"] == "serving_slo_burn"]
    assert len(burns) == 1
    burn = burns[0]
    assert burn["resolved_at_ms"] is not None  # it resolves, not latches
    # the firing interval overlaps the outage-impact window
    overlaps = any(
        burn["fired_at_ms"] <= end and start <= burn["resolved_at_ms"]
        for start, end in result.outage_windows
    )
    assert overlaps
    # the threshold rule tracked the down slot going down and back up
    downs = [e for e in log if e["rule"] == "fleet_slots_down"]
    assert len(downs) == 1
    assert downs[0]["resolved_at_ms"] is not None
    # and the whole thing is deterministic
    hub_b, _, _ = _storm_fleet_run()
    assert hub.alert_report() == hub_b.alert_report()
    assert hub.scraper.series_jsonl() == hub_b.scraper.series_jsonl()


def test_storm_metering_reconciles_both_planes():
    hub, manager, _ = _storm_fleet_run()
    metering = hub.metering_report()
    assert metering["reconciliation"]["ok"]
    assert abs(metering["reconciliation"]["residual_ms"]) <= 1e-9
    assert {"elastic", "serving"} <= set(metering["tenants"])
    # the serving tenant's lease was split by the revocation
    serving_leases = metering["tenants"]["serving"]["leases"]
    assert any(lease["revoked"] for lease in serving_leases)
    assert len(serving_leases) >= 2  # original + recovered incarnation
