"""Synthetic data generator tests."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticTaskData, batch_for_subnet
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import get_search_space


@pytest.fixture(params=["NLP.c3", "CV.c3"])
def space(request):
    return get_search_space(request.param).scaled(functional_width=16)


def test_batch_shapes_and_dtypes(space):
    data = SyntheticTaskData(space, SeedSequenceTree(1))
    features, targets = data.batch(subnet_id=0, batch_size=12)
    assert features.shape == (12, 16)
    assert features.dtype == np.float32
    assert targets.shape == (12,)
    assert targets.dtype == np.int64
    assert (0 <= targets).all() and (targets < space.num_classes).all()


def test_batches_deterministic_per_subnet_id(space):
    a = SyntheticTaskData(space, SeedSequenceTree(1)).batch(5, 8)
    b = SyntheticTaskData(space, SeedSequenceTree(1)).batch(5, 8)
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[1], b[1])


def test_different_subnets_get_different_batches(space):
    data = SyntheticTaskData(space, SeedSequenceTree(1))
    a = data.batch(0, 8)
    b = data.batch(1, 8)
    assert not np.array_equal(a[0], b[0])


def test_eval_batches_disjoint_from_train(space):
    data = SyntheticTaskData(space, SeedSequenceTree(1))
    train = data.batch(0, 8)[0]
    evals = data.eval_batches(3, 8)
    assert len(evals) == 3
    for features, _targets in evals:
        assert not np.array_equal(features, train)


def test_labels_are_learnable_signal(space):
    """The teacher must make labels predictable from features — a linear
    readout on the raw features should beat chance comfortably."""
    data = SyntheticTaskData(space, SeedSequenceTree(1))
    features, targets = data.batch(0, 512)
    logits = features @ data.teacher
    accuracy = (np.argmax(logits, axis=1) == targets).mean()
    assert accuracy > 0.75  # label noise keeps it below 1.0


def test_convenience_wrapper(space):
    features, targets = batch_for_subnet(space, SeedSequenceTree(1), 0, 4)
    assert features.shape[0] == 4
