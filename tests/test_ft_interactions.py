"""Fault-kind interactions: compound and edge-timed non-fatal schedules."""

import pytest

from repro.baselines import naspipe
from repro.errors import ConfigError, DeadlockError
from repro.ft import (
    FaultEvent,
    FaultSchedule,
    RecoverySpec,
    run_uninterrupted,
    run_with_recovery,
)
from repro.obs import validate_trace
from repro.supernet.search_space import get_search_space


@pytest.fixture(scope="module")
def mix_space():
    return get_search_space("NLP.c3").scaled(
        name="mix", num_blocks=8, functional_width=16
    )


@pytest.fixture(scope="module")
def mix_baseline(mix_space):
    return run_uninterrupted(mix_space, naspipe(), num_gpus=4, steps=20, seed=11)


# ----------------------------------------------------------------------
# schedule validation hardening
# ----------------------------------------------------------------------
def test_overlapping_nic_windows_rejected():
    with pytest.raises(ConfigError) as exc:
        FaultSchedule(
            [
                FaultEvent(
                    "nic_degrade", 10.0, target=1, duration_ms=100.0, magnitude=2.0
                ),
                FaultEvent(
                    "nic_degrade", 50.0, target=1, duration_ms=10.0, magnitude=2.0
                ),
            ]
        )
    assert "overlaps" in str(exc.value)
    # touching windows and distinct links are both fine
    FaultSchedule(
        [
            FaultEvent(
                "nic_degrade", 10.0, target=1, duration_ms=40.0, magnitude=2.0
            ),
            FaultEvent(
                "nic_degrade", 50.0, target=1, duration_ms=10.0, magnitude=2.0
            ),
            FaultEvent(
                "nic_degrade", 20.0, target=2, duration_ms=100.0, magnitude=2.0
            ),
        ]
    )


def test_unknown_payload_keys_name_the_event():
    with pytest.raises(ConfigError) as exc:
        FaultSchedule.from_payload(
            [
                {"kind": "copy_stall", "time_ms": 5.0, "duration_ms": 1.0},
                {"kind": "copy_stall", "time_ms": 9.0, "durationms": 1.0},
            ]
        )
    message = str(exc.value)
    assert "fault event 1" in message and "durationms" in message


def test_deadlock_error_carries_blocked_edges():
    blocked = {0: [{"subnet": 4, "waiting_on": 2, "layer": "blk3"}], 1: []}
    error = DeadlockError("2 tasks", blocked=blocked)
    assert error.blocked == blocked
    assert "blocked edges by stage" in str(error)
    bare = DeadlockError("2 tasks")
    assert bare.blocked is None
    assert "blocked edges" not in str(bare)


# ----------------------------------------------------------------------
# fault kinds interacting with engine machinery and each other
# ----------------------------------------------------------------------
def test_copy_stall_during_warmup_prefetch(mix_space, mix_baseline):
    """A stall landing while the cold-start prefetches are still in
    flight delays the first dispatches but changes nothing else."""
    faults = FaultSchedule(
        [FaultEvent("copy_stall", 1.0, target=0, duration_ms=80.0)]
    )
    result = run_uninterrupted(
        mix_space, naspipe(), num_gpus=4, steps=20, seed=11, faults=faults
    )
    assert result.subnets_completed == 20
    assert result.digest == mix_baseline.digest
    assert result.losses == mix_baseline.losses


def test_nic_degrade_across_checkpoint_cut(mix_space, mix_baseline, tmp_path):
    """A degrade window open while consistent cuts materialise must not
    leak into the checkpoints: a cut is stream state, not timing."""
    schedule = FaultSchedule(
        [
            FaultEvent(
                "nic_degrade",
                30.0,
                target=1,
                duration_ms=mix_baseline.makespan_ms,
                magnitude=6.0,
            )
        ]
    )
    result = run_with_recovery(
        mix_space,
        naspipe(),
        schedule,
        num_gpus=4,
        steps=20,
        seed=11,
        checkpoint_dir=tmp_path,
        spec=RecoverySpec(checkpoint_interval=4),
    )
    assert result.num_attempts == 1  # degraded-mode continue, no restart
    assert list(result.final.trace.events_of("checkpoint_commit"))
    assert result.digest == mix_baseline.digest
    assert result.losses == mix_baseline.losses


def test_task_error_backoff_escalates(mix_space, mix_baseline):
    faults = FaultSchedule(
        [FaultEvent("task_error", 100.0, target=0, magnitude=6)]
    )
    result = run_uninterrupted(
        mix_space, naspipe(), num_gpus=4, steps=20, seed=11, faults=faults
    )
    assert result.task_retries == 6
    retries = list(result.trace.events_of("task_retry"))
    assert [e.attr("attempt") for e in retries] == [1, 2, 3, 4, 5, 6]
    assert [e.attr("delay_ms") for e in retries] == [
        2.0 * 2**k for k in range(6)
    ]
    assert result.digest == mix_baseline.digest


def test_compound_fault_storm_with_mitigation(mix_space, mix_baseline):
    """All three non-fatal kinds in one overlapping window, mitigation
    armed: the run completes, retries fire, and the bits hold."""
    faults = FaultSchedule(
        [
            FaultEvent(
                "nic_degrade", 60.0, target=1, duration_ms=400.0, magnitude=8.0
            ),
            FaultEvent("copy_stall", 80.0, target=2, duration_ms=60.0),
            FaultEvent("copy_stall", 120.0, target=2, duration_ms=60.0),
            FaultEvent("task_error", 100.0, target=3, magnitude=2),
        ]
    )
    result = run_uninterrupted(
        mix_space,
        naspipe(),
        num_gpus=4,
        steps=20,
        seed=11,
        faults=faults,
        degradation=True,
    )
    assert result.subnets_completed == 20
    assert result.task_retries == 2
    assert result.digest == mix_baseline.digest
    assert result.losses == mix_baseline.losses
    assert validate_trace(result.trace) == []
