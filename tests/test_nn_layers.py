"""Gradient and contract checks for every candidate-layer family.

Every family's manual backward is verified against central-difference
numerical gradients — in float64 replicas of the float32 math, with loose
but meaningful tolerances.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    LAYER_IMPLEMENTATIONS,
    build_parameters,
    layer_backward,
    layer_forward,
)
from repro.errors import SearchSpaceError

WIDTH = 10
BATCH = 6
FAMILIES = sorted(LAYER_IMPLEMENTATIONS)


def _rng():
    return np.random.Generator(np.random.PCG64(1234))


@pytest.mark.parametrize("family", FAMILIES)
def test_forward_shapes_and_dtype(family):
    rng = _rng()
    params = build_parameters(family, WIDTH, rng)
    x = rng.standard_normal((BATCH, WIDTH)).astype(np.float32)
    y, cache = layer_forward(family, x, params)
    assert y.shape == (BATCH, WIDTH)
    assert y.dtype == np.float32
    for name, array in params.items():
        assert array.dtype == np.float32, name


@pytest.mark.parametrize("family", FAMILIES)
def test_backward_shapes(family):
    rng = _rng()
    params = build_parameters(family, WIDTH, rng)
    x = rng.standard_normal((BATCH, WIDTH)).astype(np.float32)
    y, cache = layer_forward(family, x, params)
    dy = rng.standard_normal(y.shape).astype(np.float32)
    dx, grads = layer_backward(family, dy, cache, params)
    assert dx.shape == x.shape
    assert set(grads) == set(params)
    for name in params:
        assert grads[name].shape == params[name].shape


def _numeric_grad(f, array, epsilon=1e-3):
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        up = f()
        flat[index] = original - epsilon
        down = f()
        flat[index] = original
        grad_flat[index] = (up - down) / (2 * epsilon)
    return grad


@pytest.mark.parametrize("family", FAMILIES)
def test_gradients_match_numerical(family):
    rng = _rng()
    params = build_parameters(family, WIDTH, rng)
    x = rng.standard_normal((BATCH, WIDTH)).astype(np.float32) * 0.5
    # Scalar objective: weighted sum of outputs (fixed weights).
    weights = rng.standard_normal((BATCH, WIDTH)).astype(np.float32)

    def objective() -> float:
        y, _ = layer_forward(family, x, params)
        return float((y.astype(np.float64) * weights).sum())

    y, cache = layer_forward(family, x, params)
    dx, grads = layer_backward(family, weights, cache, params)

    num_dx = _numeric_grad(objective, x)
    assert np.allclose(dx, num_dx, rtol=2e-2, atol=2e-2), family
    for name in params:
        num = _numeric_grad(objective, params[name])
        assert np.allclose(grads[name], num, rtol=2e-2, atol=2e-2), (
            family,
            name,
        )


@pytest.mark.parametrize("family", FAMILIES)
def test_forward_is_deterministic(family):
    rng = _rng()
    params = build_parameters(family, WIDTH, rng)
    x = rng.standard_normal((BATCH, WIDTH)).astype(np.float32)
    y1, _ = layer_forward(family, x, params)
    y2, _ = layer_forward(family, x, params)
    assert np.array_equal(y1, y2)


def test_build_is_deterministic_per_seed():
    for family in FAMILIES:
        a = build_parameters(family, WIDTH, _rng())
        b = build_parameters(family, WIDTH, _rng())
        assert set(a) == set(b)
        for name in a:
            assert np.array_equal(a[name], b[name])


def test_unknown_family_raises():
    with pytest.raises(SearchSpaceError):
        layer_forward("nope", np.zeros((1, 4), np.float32), {})
    with pytest.raises(SearchSpaceError):
        build_parameters("nope", 4, _rng())


def test_family_count_covers_catalog_needs():
    # The NLP and CV catalogs reference these families; removing one
    # silently breaks supernet construction.
    assert {"conv", "sepconv", "glu", "attention", "branch", "linear"} <= set(
        LAYER_IMPLEMENTATIONS
    )
