"""Fleet-scale unreliability: storm schedules, the revocation model on
the cluster manager, and the fleet chaos harness end to end.

The tentpole claim (docs/FAULT_TOLERANCE.md § Fleet-scale faults):
seeded preemption storms revoking leases out from under three tenant
classes cannot change a surviving CSP tenant's bits, leak a lease, or
deadlock either plane — and the whole sweep report is byte-stable.
"""

import pytest

from repro.errors import ConfigError, LeaseError
from repro.ft import (
    ALL_KINDS,
    FAULT_KINDS,
    FLEET_KINDS,
    FaultEvent,
    FaultSchedule,
    fleet_report_json,
    fleet_sweep,
    run_fleet_scenario,
)
from repro.seeding import SeedSequenceTree
from repro.service import ClusterManager
from repro.sim.cluster import ClusterSpec

# CI-sized three-tenant mix: elastic CSP + rigid PipeDream + serving,
# same shape as examples/chaos_fleet_demo.json but smaller.
FLEET_CONFIG = {
    "fleet_slots": [8],
    "scenarios": 1,
    "seed": 7,
    "storm_mtbf_fraction": 0.3,
    "slots_per_node": 4,
    "node_down_weight": 0.25,
    "preempt_outage_ms": 100.0,
    "node_outage_ms": 220.0,
    "quantum": 4,
    "resize_cost_ms": 20.0,
    "max_restarts": 3,
    "requeue_backoff_ms": 20.0,
    "serving": {
        "space": "NLP.c3",
        "space_overrides": {"num_blocks": 8, "functional_width": 16},
        "num_gpus": 2,
        "eval_batch": 4,
        "requests": 40,
        "arrival": "poisson",
        "rate_rps": 60.0,
        "skew": 0.7,
        "hot_prefixes": 3,
        "prefix_blocks": 4,
        "repeat_fraction": 0.3,
        "seed": 2022,
        "max_batch": 4,
        "max_linger_ms": 5.0,
        "queue_bound": 16,
        "result_entries": 64,
        "cache_subnets": 3.0,
        "slo_ms": 400.0,
    },
    "jobs": [
        {
            "name": "elastic",
            "space": "NLP.c3",
            "space_overrides": {"num_blocks": 8, "functional_width": 16},
            "system": "NASPipe",
            "subnets": 8,
            "seed": 2022,
            "priority": 2,
            "min_gpus": 2,
            "max_gpus": 4,
        },
        {
            "name": "rigid",
            "space": "CV.c3",
            "space_overrides": {"num_blocks": 8, "functional_width": 16},
            "system": "PipeDream",
            "subnets": 6,
            "seed": 7,
            "priority": 1,
            "min_gpus": 2,
            "max_gpus": 2,
        },
    ],
}


# ----------------------------------------------------------------------
# fleet fault kinds and storm generation
# ----------------------------------------------------------------------
def test_fleet_kinds_are_disjoint_from_engine_kinds():
    assert not set(FLEET_KINDS) & set(FAULT_KINDS)
    assert set(ALL_KINDS) == set(FLEET_KINDS) | set(FAULT_KINDS)


def test_fleet_event_requires_positive_outage():
    with pytest.raises(ConfigError):
        FaultEvent("slot_preempt", 10.0, target=1)  # duration_ms 0
    with pytest.raises(ConfigError):
        FaultEvent("node_down", 10.0, target=0, duration_ms=0.0)
    event = FaultEvent("slot_preempt", 10.0, target=1, duration_ms=50.0)
    assert not event.fatal  # fleet kinds are plane-level, not fail-stop


def test_storm_is_a_pure_function_of_the_seed():
    kwargs = dict(mtbf_ms=40.0, horizon_ms=500.0, fleet_slots=8)
    first = FaultSchedule.fleet_from_mtbf(SeedSequenceTree(3), **kwargs)
    second = FaultSchedule.fleet_from_mtbf(SeedSequenceTree(3), **kwargs)
    assert first.to_payload() == second.to_payload()
    assert len(first) > 0
    other = FaultSchedule.fleet_from_mtbf(SeedSequenceTree(4), **kwargs)
    assert first.to_payload() != other.to_payload()


def test_storm_respects_horizon_kinds_and_targets():
    storm = FaultSchedule.fleet_from_mtbf(
        SeedSequenceTree(11),
        mtbf_ms=30.0,
        horizon_ms=600.0,
        fleet_slots=8,
        slots_per_node=4,
    )
    for event in storm:
        assert event.kind in FLEET_KINDS
        assert 0.0 <= event.time_ms < 600.0
        assert event.duration_ms > 0
        if event.kind == "slot_preempt":
            assert 0 <= event.target < 8
        else:  # node index, 8 slots / 4 per node = 2 nodes
            assert 0 <= event.target < 2


def test_node_down_weight_extremes():
    kwargs = dict(mtbf_ms=25.0, horizon_ms=500.0, fleet_slots=8)
    seeds = SeedSequenceTree(5)
    all_preempt = FaultSchedule.fleet_from_mtbf(
        seeds, node_down_weight=0.0, **kwargs
    )
    assert {e.kind for e in all_preempt} == {"slot_preempt"}
    all_node = FaultSchedule.fleet_from_mtbf(
        SeedSequenceTree(5), node_down_weight=1.0, **kwargs
    )
    assert {e.kind for e in all_node} == {"node_down"}


def test_storm_generation_validates_its_knobs():
    seeds = SeedSequenceTree(1)
    with pytest.raises(ConfigError):
        FaultSchedule.fleet_from_mtbf(
            seeds, mtbf_ms=0.0, horizon_ms=100.0, fleet_slots=4
        )
    with pytest.raises(ConfigError):
        FaultSchedule.fleet_from_mtbf(
            seeds, mtbf_ms=10.0, horizon_ms=100.0, fleet_slots=0
        )
    with pytest.raises(ConfigError):
        FaultSchedule.fleet_from_mtbf(
            seeds,
            mtbf_ms=10.0,
            horizon_ms=100.0,
            fleet_slots=4,
            node_down_weight=1.5,
        )


def test_engine_from_mtbf_still_rejects_fleet_kinds():
    # the engine-level sampler must not silently start drawing fleet
    # kinds (that would change every seeded availability sweep)
    with pytest.raises(ConfigError):
        FaultSchedule.from_mtbf(
            SeedSequenceTree(1),
            mtbf_ms=10.0,
            horizon_ms=100.0,
            num_gpus=4,
            kinds=("slot_preempt",),
        )


# ----------------------------------------------------------------------
# the revocation model on the cluster manager
# ----------------------------------------------------------------------
def _manager(n=4):
    return ClusterManager(ClusterSpec(num_gpus=n))


def test_revoke_free_slot_enters_down_pool():
    manager = _manager()
    assert manager.revoke(2, fault="preempt@2") is None
    assert manager.is_down(2)
    assert 2 not in manager.free_slots()
    manager.mark_up(2)
    assert manager.free_slots() == (0, 1, 2, 3)
    manager.mark_up(2)  # idempotent
    assert manager.free_slots() == (0, 1, 2, 3)


def test_revoke_leased_slot_invalidates_the_owning_lease():
    manager = _manager()
    lease = manager.acquire("job", 3)  # slots 0,1,2
    revoked = manager.revoke(1, fault="slot_preempt@1 t=50ms")
    assert revoked is lease
    assert not manager.is_active(lease)
    assert lease.revoked_by == "slot_preempt@1 t=50ms"
    assert manager.revocation_of(lease) == "slot_preempt@1 t=50ms"
    # surviving slots stay reserved (residual) until the holder releases
    assert manager.residual_slots() == (0, 2)
    assert manager.leased_gpus == 0  # residuals are not "live leased"
    with pytest.raises(LeaseError) as err:
        lease.materialize()
    assert "slot_preempt@1" in str(err.value)
    # idempotent release: first call frees the residual, later calls no-op
    lease.release()
    assert manager.residual_slots() == ()
    assert manager.free_slots() == (0, 2, 3)
    lease.release()
    assert manager.free_slots() == (0, 2, 3)
    manager.mark_up(1)
    assert manager.free_slots() == (0, 1, 2, 3)
    assert manager.total_revocations == 1


def test_revoking_a_residual_slot_strikes_it_too():
    manager = _manager()
    lease = manager.acquire("job", 3)
    assert manager.revoke(0, fault="first") is lease
    # second strike on the same lease's surviving slot: no new revocation
    assert manager.revoke(2, fault="second") is None
    assert manager.residual_slots() == (1,)
    assert sorted(manager.down_slots()) == [0, 2]
    lease.release()
    manager.mark_up(0)
    manager.mark_up(2)
    assert manager.free_slots() == (0, 1, 2, 3)
    assert manager.total_revocations == 1


def test_revoke_is_idempotent_while_down_and_bounds_checked():
    manager = _manager()
    manager.revoke(1, fault="x")
    assert manager.revoke(1, fault="y") is None  # already down: no-op
    assert manager.down_slots() == (1,)
    with pytest.raises(LeaseError):
        manager.revoke(99)


def test_strict_double_release_still_raises():
    # the idempotence is *only* for revoked leases; a plain double
    # release is still an ownership violation
    manager = _manager()
    lease = manager.acquire("job", 2)
    lease.release()
    with pytest.raises(LeaseError):
        lease.release()


# ----------------------------------------------------------------------
# the harness end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sweep_report():
    return fleet_sweep(FLEET_CONFIG)


def test_fleet_sweep_passes_the_invariant_suite(sweep_report):
    assert sweep_report["ok"], sweep_report["violations"]
    assert sweep_report["total_scenarios"] == 1
    row = sweep_report["scenarios"][0]
    assert row["storm_events"] > 0
    for job in row["jobs"]:
        assert job["status"] in ("done", "failed")
        if job["status"] == "done":
            assert job["digest_ok"]
    serving = row["serving"]
    assert serving["requests"] == 40
    assert serving["completed"] + serving["shed"] <= 40
    # completed + hit + shed covers everything (invariant 4 held)
    assert not row["violations"]


def test_fleet_report_is_byte_deterministic(sweep_report):
    again = fleet_sweep(FLEET_CONFIG)
    assert fleet_report_json(sweep_report) == fleet_report_json(again)


def test_run_fleet_scenario_leaves_a_clean_fleet():
    row = run_fleet_scenario(
        FLEET_CONFIG, fleet_slots=8, storm_seed=31, horizon_ms=2000.0
    )
    assert row["violations"] == []
    assert row["revocations"] >= 0


def test_fleet_sweep_validates_its_config():
    with pytest.raises(ConfigError):
        fleet_sweep({**FLEET_CONFIG, "bogus_knob": 1})
    with pytest.raises(ConfigError):
        fleet_sweep({k: v for k, v in FLEET_CONFIG.items() if k != "jobs"})
    with pytest.raises(ConfigError):
        fleet_sweep({k: v for k, v in FLEET_CONFIG.items() if k != "serving"})
    with pytest.raises(ConfigError):
        fleet_sweep({**FLEET_CONFIG, "scenarios": 0})
