"""The paper's central claims, as tests (Definition 1, Tables 3-4).

* CSP pipeline training is bitwise equivalent to sequential training on
  any number of GPUs (digest + every per-subnet loss).
* BSP and ASP produce different weights on different cluster sizes.
* Per-layer access orders (Table 4 strings) are preserved only by CSP.
* No schedule produced by the CSP engine ever violates Definition 2
  (checked from the functional access log).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import gpipe, naspipe, pipedream, ssp
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine
from repro.engines.sequential import SequentialEngine
from repro.experiments.figure1 import count_violations
from repro.metrics.reproducibility import compare_digests, verify_csp_equivalence
from repro.errors import ReproducibilityError
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet


def _functional_run(space, config, gpus, steps=24, seed=7):
    supernet = Supernet(space)
    seeds = SeedSequenceTree(seed)
    stream = SubnetStream.sample(space, seeds, steps)
    plane = FunctionalPlane(supernet, seeds, functional_batch=6)
    engine = PipelineEngine(
        supernet, stream, config, ClusterSpec(num_gpus=gpus), batch=32,
        functional=plane,
    )
    result = engine.run()
    return result, plane


def _sequential_run(space, steps=24, seed=7):
    supernet = Supernet(space)
    seeds = SeedSequenceTree(seed)
    stream = SubnetStream.sample(space, seeds, steps)
    plane = FunctionalPlane(supernet, seeds, functional_batch=6)
    return SequentialEngine(supernet, stream, plane, batch=32).run(), plane


@pytest.fixture(scope="module")
def repro_space():
    return get_search_space("NLP.c3").scaled(
        name="repro", num_blocks=12, choices_per_block=6, functional_width=16
    )


@pytest.fixture(scope="module")
def sequential_truth(repro_space):
    return _sequential_run(repro_space)[0]


@pytest.mark.parametrize("gpus", [1, 2, 4, 6])
def test_csp_bitwise_equals_sequential(repro_space, sequential_truth, gpus):
    result, _plane = _functional_run(repro_space, naspipe(), gpus)
    verify_csp_equivalence(sequential_truth, result)


def test_csp_identical_across_gpu_counts(repro_space):
    digests = {
        gpus: _functional_run(repro_space, naspipe(), gpus)[0].digest
        for gpus in (2, 4, 6)
    }
    assert len(set(digests.values())) == 1


def test_bsp_differs_across_gpu_counts(repro_space, sequential_truth):
    d4 = _functional_run(repro_space, gpipe(), 4)[0].digest
    d6 = _functional_run(repro_space, gpipe(), 6)[0].digest
    assert d4 != d6
    assert d4 != sequential_truth.digest


def test_asp_differs_across_gpu_counts(repro_space, sequential_truth):
    d4 = _functional_run(repro_space, pipedream(), 4)[0].digest
    d6 = _functional_run(repro_space, pipedream(), 6)[0].digest
    assert d4 != d6
    assert d4 != sequential_truth.digest


def test_ssp_is_not_reproducible_either(repro_space):
    d4 = _functional_run(repro_space, ssp(4), 4)[0].digest
    d6 = _functional_run(repro_space, ssp(4), 6)[0].digest
    assert d4 != d6


def test_same_system_same_gpus_is_deterministic(repro_space):
    """Even non-CSP systems are deterministic per cluster size in the
    simulator — divergence appears only across cluster sizes, exactly
    the paper's Table 3 protocol."""
    a = _functional_run(repro_space, gpipe(), 4)[0].digest
    b = _functional_run(repro_space, gpipe(), 4)[0].digest
    assert a == b


def test_csp_preserves_per_layer_access_order(repro_space):
    _result4, plane4 = _functional_run(repro_space, naspipe(), 4)
    _result6, plane6 = _functional_run(repro_space, naspipe(), 6)
    shared = [
        layer
        for layer in plane4.store.materialized_layers
        if len(plane4.store.access_order(layer)) >= 4
    ]
    assert shared, "test needs at least one multi-subnet layer"
    for layer in shared[:10]:
        assert plane4.store.access_order_string(
            layer
        ) == plane6.store.access_order_string(layer)


def test_csp_schedule_never_violates_definition_2(repro_space):
    for gpus in (2, 4, 6):
        _result, plane = _functional_run(repro_space, naspipe(), gpus)
        assert count_violations(plane.store) == 0


def test_bsp_and_asp_do_violate(repro_space):
    _result, plane_bsp = _functional_run(repro_space, gpipe(), 6, steps=30)
    _result, plane_asp = _functional_run(repro_space, pipedream(), 6, steps=30)
    assert count_violations(plane_bsp.store) > 0
    assert count_violations(plane_asp.store) > 0


def test_verify_csp_equivalence_raises_on_mismatch(
    repro_space, sequential_truth
):
    bad, _ = _functional_run(repro_space, pipedream(), 4)
    with pytest.raises(ReproducibilityError):
        verify_csp_equivalence(sequential_truth, bad)


def test_compare_digests_none_handling():
    assert not compare_digests(None, None)
    assert not compare_digests("a", None)
    assert compare_digests("a", "a")


@given(seed=st.integers(0, 10_000), gpus=st.sampled_from([2, 3, 4]))
@settings(max_examples=8, deadline=None)
def test_property_csp_equivalence_over_random_streams(seed, gpus):
    """Property: for random seeds and cluster sizes, CSP == sequential."""
    space = get_search_space("CV.c3").scaled(
        name=f"prop{seed}", num_blocks=8, functional_width=16
    )
    sequential, _ = _sequential_run(space, steps=12, seed=seed)
    pipelined, plane = _functional_run(
        space, naspipe(), gpus, steps=12, seed=seed
    )
    verify_csp_equivalence(sequential, pipelined)
    assert count_violations(plane.store) == 0
