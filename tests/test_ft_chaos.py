"""Chaos sweeps: seeded non-fatal fault storms against the invariant suite."""

from types import SimpleNamespace

import pytest

from repro.baselines import naspipe
from repro.ft import (
    NONFATAL_KINDS,
    chaos_invariants,
    chaos_sweep,
    format_chaos_report,
    run_chaos_scenario,
    run_uninterrupted,
)
from repro.supernet.search_space import get_search_space


@pytest.fixture(scope="module")
def chaos_space():
    return get_search_space("NLP.c3").scaled(
        name="chaos", num_blocks=8, functional_width=16
    )


@pytest.fixture(scope="module")
def chaos_report(chaos_space):
    return chaos_sweep(
        chaos_space, naspipe(), scenarios=2, gpus=(2, 4), steps=12, seed=11
    )


@pytest.fixture(scope="module")
def small_run(chaos_space):
    return run_uninterrupted(chaos_space, naspipe(), num_gpus=2, steps=10, seed=3)


def test_sweep_passes_every_invariant(chaos_report):
    assert chaos_report["ok"] is True
    assert chaos_report["violations"] == []
    assert chaos_report["total_scenarios"] == 4
    assert all(row["digest_ok"] for row in chaos_report["scenarios"])
    assert all(row["completed"] == 12 for row in chaos_report["scenarios"])
    assert all(row["violations"] == [] for row in chaos_report["scenarios"])
    # an MTBF at 10% of the makespan makes the sweep genuinely hostile
    assert chaos_report["total_faults"] >= 1
    drawn = set()
    for row in chaos_report["scenarios"]:
        drawn |= set(row["fault_kinds"])
    assert drawn <= set(NONFATAL_KINDS)


def test_sweep_is_deterministic(chaos_space, chaos_report):
    again = chaos_sweep(
        chaos_space, naspipe(), scenarios=2, gpus=(2, 4), steps=12, seed=11
    )
    assert again == chaos_report  # same seeds, bit-for-bit the same report


def test_scenario_is_a_repro_case(chaos_space, chaos_report):
    """A failing row's ``(seed, fault_seed, gpus)`` triple must replay it
    exactly; check the contract on a passing row."""
    row = chaos_report["scenarios"][0]  # gpus=2, scenario index 0
    baseline = run_uninterrupted(
        chaos_space, naspipe(), num_gpus=2, steps=12, seed=11
    )
    replayed = run_chaos_scenario(
        chaos_space,
        naspipe(),
        baseline=baseline,
        num_gpus=2,
        steps=12,
        seed=11,
        fault_seed=row["fault_seed"],
        stream_name="chaos/2gpu/0",
    )
    assert replayed == row


def test_invariants_catch_incomplete_and_divergent_runs(chaos_space, small_run):
    other = run_uninterrupted(chaos_space, naspipe(), num_gpus=2, steps=10, seed=4)
    assert chaos_invariants(small_run, small_run, steps=10) == []
    short = chaos_invariants(small_run, small_run, steps=12)
    assert any("completed 10/12" in v for v in short)
    crossed = chaos_invariants(small_run, other, steps=10)
    assert any("digest diverged" in v for v in crossed)
    assert any("losses diverged" in v for v in crossed)


def test_invariants_flag_cache_blowups(small_run):
    assert small_run.peak_cache_bytes  # cached system: the metric exists
    within = chaos_invariants(
        small_run, small_run, steps=10, capacity_bytes=small_run.peak_cache_bytes
    )
    assert within == []
    # the baseline's own peak widens the allowance (block granularity can
    # put even a fault-free run over raw capacity), so a tiny capacity
    # alone is no violation when the baseline needed the same bytes...
    tolerated = chaos_invariants(
        small_run,
        small_run,
        steps=10,
        capacity_bytes=small_run.peak_cache_bytes // 4,
    )
    assert tolerated == []
    # ...but growth past the margin over both anchors is runaway
    lean_baseline = SimpleNamespace(
        digest=small_run.digest,
        losses=small_run.losses,
        peak_cache_bytes=small_run.peak_cache_bytes // 8,
    )
    blown = chaos_invariants(
        small_run,
        lean_baseline,
        steps=10,
        capacity_bytes=small_run.peak_cache_bytes // 8,
    )
    assert any("peak cache" in v for v in blown)


def test_report_formatting(chaos_report):
    text = format_chaos_report(chaos_report)
    assert "chaos sweep" in text
    assert "PASS" in text
    assert "DIVERGED" not in text
    failing = dict(
        chaos_report,
        violations=["[gpus=2 fault_seed=1] digest diverged"],
        ok=False,
    )
    assert "VIOLATIONS (1)" in format_chaos_report(failing)


# ----------------------------------------------------------------------
# sweep sharding: a parallel run is byte-identical to the serial one
# ----------------------------------------------------------------------
def test_parallel_sweep_matches_serial_exactly(chaos_space, chaos_report):
    parallel = chaos_sweep(
        chaos_space,
        naspipe(),
        scenarios=2,
        gpus=(2, 4),
        steps=12,
        seed=11,
        jobs=2,
    )
    assert parallel == chaos_report


def test_parallel_sweep_preserves_scenario_callback_order(chaos_space):
    seen = []
    chaos_sweep(
        chaos_space,
        naspipe(),
        scenarios=2,
        gpus=(2,),
        steps=10,
        seed=5,
        jobs=2,
        on_scenario=lambda row: seen.append(
            (row["num_gpus"], row["fault_seed"])
        ),
    )
    # merged in deterministic (gpu, scenario-index) order, not completion order
    assert seen == sorted(seen, key=lambda item: item[0])
    assert len(seen) == 2


# ----------------------------------------------------------------------
# event-queue backend is invisible to scheduling decisions under chaos
# ----------------------------------------------------------------------
def test_queue_backend_does_not_change_chaos_decisions(
    chaos_space, chaos_report, monkeypatch
):
    """Fault storms cancel and reschedule events aggressively; the
    calendar and heap stores must still yield identical digests,
    losses and makespans for the whole sweep."""
    import repro.sim.clock as clock

    reports = {}
    for backend in ("heap", "calendar"):
        monkeypatch.setattr(clock, "DEFAULT_BACKEND", backend)
        reports[backend] = chaos_sweep(
            chaos_space, naspipe(), scenarios=2, gpus=(2, 4), steps=12, seed=11
        )
    assert reports["heap"] == reports["calendar"]
    # and both match the auto-policy run the module fixture took
    assert reports["heap"] == chaos_report
