"""Property-based fleet unreliability: no storm schedule — whatever its
shape — may deadlock the scheduler, leak a lease, or make the serving
retry path non-deterministic."""

import json

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.ft import FaultEvent, FaultSchedule
from repro.obs.events import validate_trace
from repro.service import ClusterManager, JobScheduler, JobSpec
from repro.serving import ServingEngine, ServingSpec
from repro.sim.cluster import ClusterSpec

OVERRIDES = {"num_blocks": 8, "functional_width": 16}
FLEET = 6

SERVING_CONFIG = {
    "space": "NLP.c3",
    "space_overrides": OVERRIDES,
    "num_gpus": 2,
    "total_gpus": 4,
    "eval_batch": 4,
    "requests": 30,
    "arrival": "poisson",
    "rate_rps": 60.0,
    "skew": 0.7,
    "hot_prefixes": 3,
    "prefix_blocks": 4,
    "repeat_fraction": 0.3,
    "seed": 2022,
    "max_batch": 4,
    "max_linger_ms": 5.0,
    "queue_bound": 12,
    "result_entries": 64,
    "cache_subnets": 3.0,
    "slo_ms": 400.0,
}


@st.composite
def storms(draw, fleet_slots=FLEET, slots_per_node=2):
    """1-5 fleet events at arbitrary times, targets and outages."""
    nodes = (fleet_slots + slots_per_node - 1) // slots_per_node
    events = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        kind = draw(st.sampled_from(["slot_preempt", "node_down"]))
        events.append(
            FaultEvent(
                kind,
                draw(
                    st.floats(
                        min_value=0.0, max_value=2500.0, allow_nan=False
                    )
                ),
                target=draw(
                    st.integers(
                        min_value=0,
                        max_value=(
                            nodes - 1
                            if kind == "node_down"
                            else fleet_slots - 1
                        ),
                    )
                ),
                duration_ms=draw(
                    st.floats(
                        min_value=20.0, max_value=400.0, allow_nan=False
                    )
                ),
            )
        )
    return FaultSchedule(events)


def _jobs():
    return [
        JobSpec(
            name="elastic",
            space="NLP.c3",
            space_overrides=OVERRIDES,
            system="NASPipe",
            subnets=6,
            seed=2022,
            priority=2,
            min_gpus=2,
            max_gpus=4,
        ),
        JobSpec(
            name="rigid",
            space="CV.c3",
            space_overrides=OVERRIDES,
            system="PipeDream",
            subnets=4,
            seed=7,
            min_gpus=2,
            max_gpus=2,
        ),
    ]


@settings(max_examples=8, deadline=None)
@given(storm=storms())
def test_no_storm_deadlocks_the_scheduler_or_leaks_a_lease(storm):
    manager = ClusterManager(ClusterSpec(num_gpus=FLEET))
    scheduler = JobScheduler(
        manager,
        quantum=3,
        resize_cost_ms=15.0,
        max_restarts=2,
        requeue_backoff_ms=10.0,
        slots_per_node=2,
    )
    for spec in _jobs():
        scheduler.submit(spec)
    scheduler.inject_fleet_faults(storm)
    report = scheduler.run()  # must quiesce: no ServiceError, no hang
    for job in report["jobs"]:
        assert job["status"] in ("done", "failed"), job["name"]
        if job["status"] == "failed":
            assert job["failure"] is not None
    # the fleet ends clean whatever the storm did
    assert manager.leased_gpus == 0
    assert manager.residual_slots() == ()
    assert manager.down_slots() == ()
    assert manager.free_slots() == tuple(range(FLEET))
    assert validate_trace(scheduler.trace) == []


@settings(max_examples=6, deadline=None)
@given(storm=storms(fleet_slots=4, slots_per_node=2))
def test_serving_retry_is_byte_identical_across_runs(storm):
    reports = []
    for _ in range(2):
        engine = ServingEngine(
            ServingSpec.from_payload(SERVING_CONFIG), slots_per_node=2
        )
        engine.inject_fleet_faults(storm)
        result = engine.run()
        # no request may be lost, whatever the storm dissolved
        assert all(r.outcome != "pending" for r in result.records)
        reports.append(
            json.dumps(result.scenario_report(), sort_keys=True)
        )
    assert reports[0] == reports[1]
