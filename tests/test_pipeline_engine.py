"""Pipeline engine behaviour: completion, determinism, policy windows,
stall accounting, per-system invariants."""

import pytest

from repro.baselines import gpipe, naspipe, pipedream, ssp, vpipe
from repro.engines.pipeline import PipelineEngine
from repro.errors import PartitionError
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet


def _run(supernet, config, count=24, gpus=4, batch=32, seed=11, stream=None):
    stream = stream or SubnetStream.sample(
        supernet.space, SeedSequenceTree(seed), count
    )
    engine = PipelineEngine(
        supernet, stream, config, ClusterSpec(num_gpus=gpus), batch=batch
    )
    return engine.run()


@pytest.mark.parametrize(
    "config_factory", [naspipe, gpipe, pipedream, vpipe, lambda: ssp(4)]
)
def test_all_systems_complete_the_stream(tiny_supernet, config_factory):
    result = _run(tiny_supernet, config_factory())
    assert result.subnets_completed == 24
    assert result.makespan_ms > 0
    assert 0.0 <= result.bubble_ratio <= 1.0


def test_timing_runs_are_deterministic(tiny_supernet):
    a = _run(tiny_supernet, naspipe())
    b = _run(tiny_supernet, naspipe())
    assert a.makespan_ms == b.makespan_ms
    assert a.trace.gantt_rows() == b.trace.gantt_rows()


def test_single_gpu_pipeline_degenerates_to_sequential(tiny_supernet):
    result = _run(tiny_supernet, naspipe(), gpus=1, count=6)
    rows = result.trace.gantt_rows()
    # Strict alternation fwd/bwd per subnet, in sequence order.
    kinds = [(row[3], row[4]) for row in rows]
    expected = []
    for sid in range(6):
        expected.extend([("fwd", sid), ("bwd", sid)])
    assert [k for k in kinds if k[0] != "stall"] == expected


def test_too_few_blocks_for_stages_raises():
    space_supernet = Supernet(
        __import__("repro.supernet.search_space", fromlist=["get_search_space"])
        .get_search_space("NLP.c3")
        .scaled(num_blocks=4)
    )
    stream = SubnetStream.sample(space_supernet.space, SeedSequenceTree(0), 2)
    with pytest.raises(PartitionError):
        PipelineEngine(space_supernet, stream, naspipe(), ClusterSpec(num_gpus=8))


def test_bsp_flushes_once_per_bulk(tiny_supernet):
    config = gpipe(bulk_size=4)
    stream = SubnetStream.sample(tiny_supernet.space, SeedSequenceTree(1), 12)
    engine = PipelineEngine(
        tiny_supernet, stream, config, ClusterSpec(num_gpus=4), batch=32
    )
    engine.run()
    assert engine.policy.flushes == 3


def test_bsp_partial_final_bulk_completes(tiny_supernet):
    config = gpipe(bulk_size=5)
    result = _run(tiny_supernet, config, count=7)
    assert result.subnets_completed == 7


def test_asp_window_limits_inflight(tiny_supernet):
    stream = SubnetStream.sample(tiny_supernet.space, SeedSequenceTree(1), 16)
    engine = PipelineEngine(
        tiny_supernet, stream, pipedream(), ClusterSpec(num_gpus=4), batch=32
    )
    max_seen = 0
    original = engine._try_inject

    def spying_inject():
        nonlocal max_seen
        original()
        max_seen = max(max_seen, len(engine.inflight))

    engine._try_inject = spying_inject
    engine.run()
    assert max_seen <= pipedream().default_window(4)


def test_ssp_staleness_zero_serialises(tiny_supernet):
    strict = _run(tiny_supernet, ssp(0), count=10)
    loose = _run(tiny_supernet, ssp(8), count=10)
    assert strict.makespan_ms >= loose.makespan_ms


def test_naspipe_cache_hit_reported(tiny_supernet):
    result = _run(tiny_supernet, naspipe())
    assert result.cache_hit_rate is not None
    assert 0.0 <= result.cache_hit_rate <= 1.0


def test_full_context_systems_report_no_cache(tiny_supernet):
    result = _run(tiny_supernet, gpipe())
    assert result.cache_hit_rate is None


def test_vpipe_small_cache_hit_rate_below_naspipe(small_supernet):
    naspipe_result = _run(small_supernet, naspipe(), count=40, gpus=8)
    vpipe_result = _run(small_supernet, vpipe(), count=40, gpus=8)
    assert vpipe_result.cache_hit_rate < naspipe_result.cache_hit_rate


def test_mirroring_traffic_accounted(small_supernet):
    result = _run(small_supernet, naspipe(), count=16, gpus=4)
    assert result.mirror_push_bytes >= 0
    no_mirror = _run(small_supernet, naspipe(
        name="x", mirroring=False, partitioning="static"
    ), count=16, gpus=4)
    assert no_mirror.mirror_push_bytes == 0


def test_in_order_ablation_slower_than_full(small_supernet):
    stream_seed = 3
    full = _run(small_supernet, naspipe(), count=40, gpus=8, seed=stream_seed)
    from repro.baselines import naspipe_wo_scheduler

    in_order = _run(
        small_supernet, naspipe_wo_scheduler(), count=40, gpus=8, seed=stream_seed
    )
    assert in_order.makespan_ms >= full.makespan_ms


def test_batch_defaults_from_memory_model():
    supernet = Supernet(
        __import__("repro.supernet.search_space", fromlist=["get_search_space"])
        .get_search_space("NLP.c1")
    )
    stream = SubnetStream.sample(supernet.space, SeedSequenceTree(0), 4)
    engine = PipelineEngine(supernet, stream, naspipe(), ClusterSpec(num_gpus=8))
    assert engine.batch == supernet.space.max_batch


def test_throughput_and_exec_metrics_positive(tiny_supernet):
    result = _run(tiny_supernet, naspipe())
    assert result.throughput_samples_per_sec > 0
    assert result.mean_exec_ms > 0
    assert result.total_alu > 0


def test_oom_retry_path(small_supernet):
    """An undersized context cache triggers the simulated CUDA-OOM
    catch/reclaim/re-execute path (paper §4.2) without deadlocking."""
    config = naspipe(cache_subnets=0.2)  # far too small on purpose
    result = _run(small_supernet, config, count=20, gpus=4)
    assert result.subnets_completed == 20
    assert result.oom_retries > 0


def test_no_oom_retries_at_normal_cache(small_supernet):
    result = _run(small_supernet, naspipe(), count=20, gpus=4)
    assert result.oom_retries == 0


def test_migrate_mode_slower_than_mirroring(small_supernet):
    """§2.3: on-demand operator migration 'inevitably incurs high
    initialization and synchronization costs'; mirroring eliminates them
    from the critical path."""
    mirror = _run(small_supernet, naspipe(mirror_mode="mirror"),
                  count=40, gpus=8, batch=192)
    engine_stream = SubnetStream.sample(
        small_supernet.space, SeedSequenceTree(11), 40
    )
    migrate_engine = PipelineEngine(
        small_supernet, engine_stream, naspipe(mirror_mode="migrate"),
        ClusterSpec(num_gpus=8), batch=192,
    )
    migrate = migrate_engine.run()
    assert migrate_engine.migration_count > 0
    assert migrate_engine.migration_ms_total > 0
    assert migrate.makespan_ms > mirror.makespan_ms
    # Migrate mode creates no replicas, hence no push traffic.
    assert migrate.mirror_push_bytes == 0


def test_mirror_mode_validation():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        naspipe(mirror_mode="teleport")
