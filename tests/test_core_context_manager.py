"""Stage context manager tests: residency, LRU, pins, hit accounting."""

import pytest

from repro.core.context_manager import StageContextManager
from repro.sim.devices import CopyEngine
from repro.sim.trace import ExecutionTrace
from repro.supernet.supernet import Supernet


@pytest.fixture
def manager(tiny_supernet):
    engine = CopyEngine(gpu_id=0, bandwidth_bytes_per_ms=1_000_000.0)
    capacity = 4 * tiny_supernet.profile((0, 0)).param_bytes
    return StageContextManager(0, tiny_supernet, engine, capacity_bytes=capacity)


def _layer_bytes(supernet: Supernet, layer):
    return supernet.profile(layer).param_bytes


def test_prefetch_makes_layers_resident_later(manager):
    ready = manager.prefetch([(0, 0)], now=0.0)
    assert ready > 0.0
    assert not manager.is_resident((0, 0), now=0.0)
    assert manager.is_resident((0, 0), now=ready)


def test_acquire_counts_hit_after_prefetch(manager):
    ready = manager.prefetch([(0, 0)], now=0.0)
    plan = manager.acquire_for_task([(0, 0)], now=ready)
    assert plan.is_hit
    assert manager.hits == 1 and manager.misses == 0


def test_acquire_counts_miss_and_stalls(manager):
    plan = manager.acquire_for_task([(1, 0)], now=0.0)
    assert not plan.is_hit
    assert plan.ready_time > 0.0
    assert manager.misses == 1


def test_in_flight_prefetch_counts_as_miss_but_no_refetch(manager):
    manager.prefetch([(0, 0)], now=0.0)
    bytes_after_prefetch = manager.fetch_bytes
    plan = manager.acquire_for_task([(0, 0)], now=0.0)  # copy not landed
    assert plan.misses == 1
    assert manager.fetch_bytes == bytes_after_prefetch  # no duplicate copy


def test_lru_eviction_under_pressure(manager, tiny_supernet):
    # Fill beyond capacity with unpinned layers; the oldest must go.
    ready = manager.prefetch([(0, 0), (1, 0), (2, 0), (3, 0)], now=0.0)
    manager.prefetch([(4, 0)], now=ready + 1)
    assert manager.resident_bytes <= manager.capacity_bytes
    assert not manager.is_resident((0, 0), now=ready + 1000)


def test_pinned_layers_survive_pressure(manager):
    plan = manager.acquire_for_task([(0, 0)], now=0.0)
    ready = plan.ready_time
    manager.prefetch([(1, 0), (2, 0), (3, 0), (4, 0), (5, 0)], now=ready + 1)
    assert manager.is_resident((0, 0), now=ready + 1000)


def test_release_unpins_and_dirty_writeback_on_evict(manager):
    plan = manager.acquire_for_task([(0, 0)], now=0.0)
    manager.release_after_task([(0, 0)], now=plan.ready_time, dirty=True)
    manager.evict_subnet([(0, 0)], now=plan.ready_time)
    assert manager.writeback_bytes > 0
    assert not manager.is_resident((0, 0), now=plan.ready_time + 1000)


def test_evict_skips_pinned(manager):
    plan = manager.acquire_for_task([(0, 0)], now=0.0)
    manager.evict_subnet([(0, 0)], now=plan.ready_time)
    assert manager.is_resident((0, 0), now=plan.ready_time)


def test_clean_evict_no_writeback(manager):
    plan = manager.acquire_for_task([(0, 0)], now=0.0)
    manager.release_after_task([(0, 0)], now=plan.ready_time, dirty=False)
    manager.evict_subnet([(0, 0)], now=plan.ready_time)
    assert manager.writeback_bytes == 0


def test_hit_rate_and_trace_integration(tiny_supernet):
    trace = ExecutionTrace(num_gpus=1)
    engine = CopyEngine(0, 1_000_000.0)
    manager = StageContextManager(
        0, tiny_supernet, engine, capacity_bytes=10**12, trace=trace
    )
    assert manager.hit_rate() is None
    plan = manager.acquire_for_task([(0, 0), (1, 0)], now=0.0)
    manager.release_after_task([(0, 0), (1, 0)], now=plan.ready_time, dirty=False)
    manager.acquire_for_task([(0, 0), (1, 0)], now=plan.ready_time)
    assert manager.hit_rate() == pytest.approx(0.5)
    assert trace.cache_hits == 2 and trace.cache_misses == 2


def test_evict_subnet_skips_in_flight_prefetch(manager):
    # EVICT arriving while the prefetch copy is still crossing PCIe must
    # not drop the entry — otherwise the next acquire pays the copy twice.
    ready = manager.prefetch([(0, 0)], now=0.0)
    fetched_once = manager.fetch_bytes
    manager.evict_subnet([(0, 0)], now=0.0)  # copy not landed yet
    assert manager.is_resident((0, 0), now=ready)
    plan = manager.acquire_for_task([(0, 0)], now=ready)
    assert plan.is_hit
    # Single-fetch accounting: one copy ever issued, bytes charged once.
    assert manager.fetch_bytes == fetched_once
    assert manager.copy_engine.total_copies == 1
    # Once the copy has landed (and the layer is unpinned), EVICT works.
    manager.release_after_task([(0, 0)], now=plan.ready_time, dirty=False)
    manager.evict_subnet([(0, 0)], now=plan.ready_time)
    assert not manager.is_resident((0, 0), now=plan.ready_time + 1000)


def test_acquire_fetched_bytes_excludes_in_flight_prefetch(manager, tiny_supernet):
    # fetched_bytes counts only copies started by the acquire itself;
    # a miss on a still-in-flight prefetch stalls but re-pays nothing.
    manager.prefetch([(0, 0)], now=0.0)
    plan = manager.acquire_for_task([(0, 0), (1, 0)], now=0.0)
    assert plan.misses == 2
    assert plan.fetched_bytes == _layer_bytes(tiny_supernet, (1, 0))
    assert manager.copy_engine.total_copies == 2


def test_oversized_working_set_tolerated(tiny_supernet):
    engine = CopyEngine(0, 1_000_000.0)
    tiny_capacity = 1  # smaller than any layer
    manager = StageContextManager(0, tiny_supernet, engine, tiny_capacity)
    plan = manager.acquire_for_task([(0, 0), (1, 0)], now=0.0)
    assert plan.misses == 2
    # Runs oversubscribed rather than deadlocking.
    assert manager.resident_bytes > tiny_capacity
