"""FunctionalPlane and SequentialEngine tests."""

import numpy as np
import pytest

from repro.engines.functional_plane import FunctionalPlane
from repro.engines.sequential import SequentialEngine
from repro.seeding import SeedSequenceTree
from repro.supernet.sampler import SubnetStream
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet


@pytest.fixture
def plane(tiny_supernet):
    return FunctionalPlane(tiny_supernet, SeedSequenceTree(3), functional_batch=5)


def test_input_shapes(plane, tiny_space):
    subnet = Subnet(0, tuple([0] * tiny_space.num_blocks))
    x = plane.input_for(subnet)
    assert x.shape == (5, tiny_space.functional_width)
    assert x.dtype == np.float32


def test_forward_stage_and_loss(plane, tiny_space):
    subnet = Subnet(0, tuple([1] * tiny_space.num_blocks))
    x = plane.input_for(subnet)
    activation = plane.forward_stage(subnet, 0, (0, tiny_space.num_blocks), x, 0.0)
    loss, dfinal = plane.loss_and_grad(subnet, activation.stage_output)
    assert float(loss) > 0
    assert dfinal.shape == x.shape
    assert dfinal.dtype == np.float32


def test_stage_split_matches_whole_forward(plane, tiny_space):
    """Splitting the chain across stages is bit-identical to one stage."""
    subnet = Subnet(0, tuple([2] * tiny_space.num_blocks))
    x = plane.input_for(subnet)
    whole = plane.forward_stage(subnet, 0, (0, tiny_space.num_blocks), x, 0.0)
    mid = tiny_space.num_blocks // 2
    first = plane.forward_stage(subnet, 0, (0, mid), x, 0.0)
    second = plane.forward_stage(subnet, 1, (mid, tiny_space.num_blocks),
                                 first.stage_output, 0.0)
    assert np.array_equal(whole.stage_output, second.stage_output)


def test_inference_forward_matches_training_forward(plane, tiny_space):
    subnet = Subnet(0, tuple([1] * tiny_space.num_blocks))
    x = plane.input_for(subnet)
    activation = plane.forward_stage(subnet, 0, (0, tiny_space.num_blocks), x, 0.0)
    from repro.nn import functional as F

    train_logits = F.f32(activation.stage_output @ plane.head)
    infer_logits = plane.inference_forward(subnet, x)
    assert np.array_equal(train_logits, infer_logits)


def test_evaluate_subnet_does_not_log_or_mutate(plane, tiny_space):
    subnet = Subnet(0, tuple([0] * tiny_space.num_blocks))
    batches = plane.data.eval_batches(2, 4)
    plane.evaluate_subnet(subnet, batches)  # materialise lazily-built layers
    digest_before = plane.digest()
    log_before = len(plane.store.access_log)
    loss = plane.evaluate_subnet(subnet, batches)
    assert loss > 0
    assert plane.digest() == digest_before
    assert len(plane.store.access_log) == log_before


def test_sequential_engine_trains_and_reports(tiny_supernet):
    seeds = SeedSequenceTree(3)
    stream = SubnetStream.sample(tiny_supernet.space, seeds, 10)
    plane = FunctionalPlane(tiny_supernet, seeds, functional_batch=5)
    result = SequentialEngine(tiny_supernet, stream, plane).run()
    assert result.subnets_completed == 10
    assert len(result.losses) == 10
    assert result.digest is not None
    assert result.final_loss == result.losses[9]
    assert result.makespan_ms > 0


def test_sequential_engine_deterministic(tiny_supernet):
    def run():
        seeds = SeedSequenceTree(3)
        stream = SubnetStream.sample(tiny_supernet.space, seeds, 8)
        plane = FunctionalPlane(tiny_supernet, seeds, functional_batch=5)
        return SequentialEngine(tiny_supernet, stream, plane).run().digest

    assert run() == run()


def test_losses_decrease_with_training():
    """On a small space with few candidates, repeated training of the
    same layers must reduce loss — the substrate really learns."""
    from repro.supernet.search_space import get_search_space

    space = get_search_space("NLP.c3").scaled(
        name="learn", num_blocks=8, choices_per_block=2, functional_width=16
    )
    supernet = Supernet(space)
    seeds = SeedSequenceTree(0)
    from repro.nn.optim import MomentumSGD

    plane = FunctionalPlane(
        supernet, seeds, functional_batch=16, optimizer=MomentumSGD(0.1, 0.9)
    )
    stream = SubnetStream.sample(space, seeds, 300)
    result = SequentialEngine(supernet, stream, plane).run()
    ids = sorted(result.losses)
    first = np.mean([result.losses[i] for i in ids[:50]])
    last = np.mean([result.losses[i] for i in ids[-50:]])
    assert last < first - 0.05
