"""Simulator tests: event ordering, devices, cluster, traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, GpuOutOfMemoryError, SimulationError
from repro.sim import (
    Cluster,
    ClusterSpec,
    CopyEngine,
    EventQueue,
    ExecutionTrace,
    GpuDevice,
    Link,
    SimulationEngine,
)


# ----------------------------------------------------------------------
# event queue
# ----------------------------------------------------------------------
def test_events_fire_in_time_order():
    queue = EventQueue()
    fired = []
    queue.schedule(3.0, lambda: fired.append("c"))
    queue.schedule(1.0, lambda: fired.append("a"))
    queue.schedule(2.0, lambda: fired.append("b"))
    while True:
        event = queue.pop()
        if event is None:
            break
        event.callback()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_priority_then_sequence():
    queue = EventQueue()
    fired = []
    queue.schedule(1.0, lambda: fired.append("late"), priority=1)
    queue.schedule(1.0, lambda: fired.append("first"), priority=0)
    queue.schedule(1.0, lambda: fired.append("second"), priority=0)
    for _ in range(3):
        queue.pop().callback()
    assert fired == ["first", "second", "late"]


def test_cannot_schedule_in_past():
    queue = EventQueue()
    queue.schedule(5.0, lambda: None)
    queue.pop()
    with pytest.raises(ValueError):
        queue.schedule(1.0, lambda: None)


def test_cancelled_events_skipped():
    queue = EventQueue()
    event = queue.schedule(1.0, lambda: None)
    event.cancel()
    assert queue.pop() is None
    assert len(queue) == 0


def test_engine_runs_chained_events():
    engine = SimulationEngine()
    fired = []

    def first():
        fired.append(("first", engine.now))
        engine.schedule_after(2.0, second)

    def second():
        fired.append(("second", engine.now))

    engine.schedule(1.0, first)
    end = engine.run()
    assert fired == [("first", 1.0), ("second", 3.0)]
    assert end == 3.0


def test_engine_until_budget():
    engine = SimulationEngine()
    engine.schedule(10.0, lambda: None)
    assert engine.run(until=5.0) == 0.0
    assert engine.run() == 10.0


def test_engine_event_budget_guards_livelock():
    engine = SimulationEngine(max_events=10)

    def loop():
        engine.schedule_after(0.0, loop)

    engine.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        engine.run()
    # the budget check runs BEFORE firing the over-budget event: exactly
    # max_events callbacks executed, never max_events + 1
    assert engine.events_processed == 10


def test_engine_budget_not_charged_for_unfired_events():
    engine = SimulationEngine(max_events=5)
    fired = []
    for i in range(8):
        engine.schedule(float(i), lambda i=i: fired.append(i))
    with pytest.raises(SimulationError):
        engine.run()
    assert fired == [0, 1, 2, 3, 4]
    assert engine.events_processed == 5


# ----------------------------------------------------------------------
# devices
# ----------------------------------------------------------------------
def test_gpu_memory_ledger():
    gpu = GpuDevice(gpu_id=0, memory_capacity=1000, reserved_bytes=100)
    assert gpu.free_bytes == 900
    gpu.allocate("a", 500)
    assert gpu.free_bytes == 400
    with pytest.raises(GpuOutOfMemoryError):
        gpu.allocate("b", 500)
    assert gpu.free("a") == 500
    assert gpu.free("missing") == 0
    gpu.allocate("b", 900)


def test_gpu_is_busy_tracks_busy_until():
    gpu = GpuDevice(gpu_id=0, memory_capacity=1000)
    assert not gpu.is_busy(0.0)
    gpu.busy_until = 5.0
    assert gpu.is_busy(0.0)
    assert gpu.is_busy(4.999)
    assert not gpu.is_busy(5.0)  # free exactly when the task ends
    assert not gpu.is_busy(6.0)


def test_copy_engine_fifo_queueing():
    engine = CopyEngine(gpu_id=0, bandwidth_bytes_per_ms=100.0)
    first = engine.enqueue(1000, now=0.0)  # 10 ms
    second = engine.enqueue(500, now=0.0)  # queued behind: ends at 15
    assert first == 10.0
    assert second == 15.0
    assert engine.total_copies == 2
    # idle gap: a copy at t=100 starts immediately
    assert engine.enqueue(100, now=100.0) == 101.0


def test_copy_engine_would_complete_does_not_enqueue():
    engine = CopyEngine(gpu_id=0, bandwidth_bytes_per_ms=100.0)
    t = engine.would_complete_at(1000, now=0.0)
    assert t == 10.0
    assert engine.next_free == 0.0


def test_link_transfer_includes_latency():
    link = Link(src=0, dst=1, bandwidth_bytes_per_ms=100.0, latency_ms=0.5)
    assert link.transfer(1000, now=0.0) == 10.5
    # FIFO: second transfer waits for the pipe, latency applies once each
    assert link.transfer(1000, now=0.0) == 20.5


# ----------------------------------------------------------------------
# cluster
# ----------------------------------------------------------------------
def test_cluster_defaults_match_testbed():
    spec = ClusterSpec()
    assert spec.num_gpus == 8
    assert spec.gpu_memory_bytes == 11 * 1_000_000_000
    cluster = Cluster(spec)
    assert len(cluster.gpus) == 8
    assert len(cluster.forward_links) == 7
    assert cluster.forward_link(0).dst == 1
    assert cluster.backward_link(3).dst == 2


def test_cluster_spec_validation():
    with pytest.raises(ConfigError):
        ClusterSpec(num_gpus=0)
    with pytest.raises(ConfigError):
        ClusterSpec(gpu_memory_bytes=10, reserved_bytes=20)


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------
def test_trace_bubble_and_alu():
    trace = ExecutionTrace(num_gpus=2)
    trace.record_interval(0, 0.0, 10.0, "fwd", 0)
    trace.record_interval(1, 0.0, 5.0, "bwd", 0)
    # makespan 10: gpu0 fully busy, gpu1 half busy -> bubble 0.25
    assert trace.bubble_ratio() == pytest.approx(0.25)
    assert trace.total_alu_utilization(1.0) == pytest.approx(1.5)
    assert trace.total_alu_utilization(0.5) == pytest.approx(0.75)


def test_trace_stall_not_counted_as_compute():
    trace = ExecutionTrace(num_gpus=1)
    trace.record_interval(0, 0.0, 4.0, "stall", 0)
    trace.record_interval(0, 4.0, 8.0, "fwd", 0)
    assert trace.busy_time(0, compute_only=True) == 4.0
    assert trace.busy_time(0, compute_only=False) == 8.0
    assert trace.stall_time_total == 4.0


def test_trace_cache_and_throughput():
    trace = ExecutionTrace(num_gpus=1)
    assert trace.cache_hit_rate() is None
    trace.record_cache_access(True, 9)
    trace.record_cache_access(False, 1)
    assert trace.cache_hit_rate() == pytest.approx(0.9)
    trace.record_interval(0, 0.0, 1000.0, "fwd", 0)
    trace.record_subnet_complete(0, 500.0)
    trace.record_subnet_complete(1, 1000.0)
    # 2 subnets x 32 samples over 1 virtual second
    assert trace.throughput_samples_per_sec(32) == pytest.approx(64.0)


def test_trace_rejects_negative_interval():
    trace = ExecutionTrace(num_gpus=1)
    with pytest.raises(ValueError):
        trace.record_interval(0, 5.0, 4.0, "fwd", 0)
