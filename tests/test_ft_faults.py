"""Fault schedules, injection mechanics, and trace instrumentation."""

import json

import pytest

from repro.baselines import naspipe
from repro.errors import ConfigError
from repro.ft import FaultEvent, FaultSchedule, run_uninterrupted, run_with_recovery
from repro.obs import validate_trace
from repro.obs.events import EVENT_SCHEMAS
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import get_search_space


@pytest.fixture(scope="module")
def ft_space():
    return get_search_space("NLP.c3").scaled(
        name="ft", num_blocks=8, functional_width=16
    )


@pytest.fixture(scope="module")
def csp_baseline(ft_space):
    return run_uninterrupted(ft_space, naspipe(), num_gpus=4, steps=20, seed=11)


# ----------------------------------------------------------------------
# schedule model
# ----------------------------------------------------------------------
def test_fault_event_validation():
    with pytest.raises(ConfigError):
        FaultEvent("meteor_strike", 10.0)
    with pytest.raises(ConfigError):
        FaultEvent("gpu_crash", -1.0)
    with pytest.raises(ConfigError):
        FaultEvent("gpu_crash", 10.0, target=-2)
    with pytest.raises(ConfigError):
        FaultEvent("nic_degrade", 10.0, magnitude=0.5)  # must slow down
    with pytest.raises(ConfigError):
        FaultEvent("task_error", 10.0, magnitude=0.0)  # failure count
    assert FaultEvent("gpu_crash", 5.0, target=1).fatal
    assert not FaultEvent("copy_stall", 5.0, duration_ms=3.0).fatal


def test_schedule_sorts_and_serialises(tmp_path):
    schedule = FaultSchedule(
        [
            FaultEvent("task_error", 300.0, target=2, magnitude=2),
            FaultEvent("gpu_crash", 100.0, target=0),
            FaultEvent("nic_degrade", 200.0, target=1, duration_ms=50.0, magnitude=4.0),
        ]
    )
    assert [e.time_ms for e in schedule] == [100.0, 200.0, 300.0]
    assert len(schedule.fatal_events()) == 1

    # payload / JSON / file round-trips all preserve the schedule
    assert FaultSchedule.from_payload(schedule.to_payload()).events == schedule.events
    assert FaultSchedule.from_json(schedule.to_json()).events == schedule.events
    path = tmp_path / "faults.json"
    schedule.save(path)
    assert FaultSchedule.load(path).events == schedule.events
    # the JSON is plain data a human can write by hand
    payload = json.loads(schedule.to_json())
    assert payload[0]["kind"] == "gpu_crash"


def test_mtbf_sampling_is_deterministic():
    a = FaultSchedule.from_mtbf(SeedSequenceTree(7), 100.0, 1000.0, num_gpus=4)
    b = FaultSchedule.from_mtbf(SeedSequenceTree(7), 100.0, 1000.0, num_gpus=4)
    assert a.events == b.events
    assert len(a) > 0
    assert all(e.time_ms < 1000.0 for e in a)
    # a different mtbf draws from a different named stream
    c = FaultSchedule.from_mtbf(SeedSequenceTree(7), 200.0, 1000.0, num_gpus=4)
    assert c.events != a.events
    with pytest.raises(ConfigError):
        FaultSchedule.from_mtbf(SeedSequenceTree(7), -5.0, 1000.0, num_gpus=4)
    with pytest.raises(ConfigError):
        FaultSchedule.from_mtbf(
            SeedSequenceTree(7), 100.0, 1000.0, num_gpus=4, kinds=["bad_kind"]
        )


# ----------------------------------------------------------------------
# non-fatal injection: degraded mode, stalls, transient retries
# ----------------------------------------------------------------------
def test_non_fatal_faults_slow_but_do_not_change_csp_bits(
    ft_space, csp_baseline, tmp_path
):
    """NIC degradation, copy stalls and transient task errors perturb
    *timing* only; CSP's final weights are timing-independent."""
    schedule = FaultSchedule(
        [
            FaultEvent("nic_degrade", 80.0, target=1, duration_ms=300.0, magnitude=8.0),
            FaultEvent("copy_stall", 150.0, target=2, duration_ms=40.0),
            FaultEvent("task_error", 200.0, target=0, magnitude=3),
        ]
    )
    result = run_with_recovery(
        ft_space,
        naspipe(),
        schedule,
        num_gpus=4,
        steps=20,
        seed=11,
        checkpoint_dir=tmp_path,
    )
    assert result.num_attempts == 1  # nothing fatal: degraded-mode continue
    assert result.fault_count == 3
    assert result.task_retries == 3  # magnitude-3 fails 3 consecutive dispatches
    assert result.makespan_ms > csp_baseline.makespan_ms
    assert result.digest == csp_baseline.digest
    assert result.losses == csp_baseline.losses


def test_nic_degrade_restores_bandwidth(ft_space, tmp_path):
    schedule = FaultSchedule(
        [FaultEvent("nic_degrade", 50.0, target=0, duration_ms=100.0, magnitude=4.0)]
    )
    result = run_with_recovery(
        ft_space,
        naspipe(),
        schedule,
        num_gpus=4,
        steps=12,
        seed=3,
        checkpoint_dir=tmp_path,
    )
    # the restoration event fired inside the run: the trace records the
    # injection and the run still completed everything
    assert result.fault_count == 1
    assert result.subnets_completed == 12


def test_fatal_fault_interrupts_engine(ft_space, csp_baseline, tmp_path):
    """A crash clears the event queue and the result says so."""
    schedule = FaultSchedule(
        [FaultEvent("gpu_crash", csp_baseline.makespan_ms / 2, target=1)]
    )
    result = run_with_recovery(
        ft_space,
        naspipe(),
        schedule,
        num_gpus=4,
        steps=20,
        seed=11,
        checkpoint_dir=tmp_path,
    )
    first = result.results[0]
    assert first.interrupted
    assert first.interrupt_kind == "gpu_crash"
    assert first.interrupt_time_ms == pytest.approx(csp_baseline.makespan_ms / 2)
    assert first.subnets_completed < 20
    assert not result.final.interrupted


def test_faults_aimed_at_absent_hardware_are_skipped(ft_space, tmp_path):
    """An elastic restart may not have the schedule's target GPU."""
    schedule = FaultSchedule(
        [
            FaultEvent("gpu_crash", 1e9, target=99),  # no such stage
            FaultEvent("nic_degrade", 1e9, target=50, magnitude=2.0),
            FaultEvent("host_crash", 1e9, target=40),
        ]
    )
    result = run_with_recovery(
        ft_space,
        naspipe(),
        schedule,
        num_gpus=4,
        steps=12,
        seed=3,
        checkpoint_dir=tmp_path,
    )
    assert result.num_attempts == 1
    assert result.fault_count == 0


# ----------------------------------------------------------------------
# trace instrumentation
# ----------------------------------------------------------------------
def test_faulted_run_traces_validate_against_schema(ft_space, csp_baseline, tmp_path):
    schedule = FaultSchedule(
        [
            FaultEvent("task_error", 100.0, target=0, magnitude=1),
            FaultEvent("gpu_crash", csp_baseline.makespan_ms / 2, target=1),
        ]
    )
    result = run_with_recovery(
        ft_space,
        naspipe(),
        schedule,
        num_gpus=4,
        steps=20,
        seed=11,
        checkpoint_dir=tmp_path,
    )
    emitted = set()
    for attempt_result in result.results:
        assert validate_trace(attempt_result.trace) == []
        emitted |= set(attempt_result.trace.event_kinds())
    # the fault-tolerance plane actually showed up, with declared kinds
    for kind in (
        "fault_inject",
        "gpu_down",
        "gpu_up",
        "checkpoint_begin",
        "checkpoint_commit",
        "recovery_begin",
        "recovery_done",
        "task_retry",
    ):
        assert kind in EVENT_SCHEMAS
        assert kind in emitted, f"{kind} never emitted in the crash scenario"


def test_faulted_trace_exports_to_chrome_format(ft_space, csp_baseline, tmp_path):
    from repro.obs import to_perfetto, validate_chrome_trace

    schedule = FaultSchedule(
        [FaultEvent("gpu_crash", csp_baseline.makespan_ms / 2, target=1)]
    )
    result = run_with_recovery(
        ft_space,
        naspipe(),
        schedule,
        num_gpus=4,
        steps=20,
        seed=11,
        checkpoint_dir=tmp_path,
    )
    for attempt_result in result.results:
        assert validate_chrome_trace(to_perfetto(attempt_result.trace)) == []
