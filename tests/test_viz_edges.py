"""Visualisation edge cases: empty traces, single buckets, and
zero-duration intervals.

``naspipe monitor`` renders sparklines for whatever trace the config
produced — including a run that never dispatched a task — so the
renderers must degrade gracefully instead of dividing by a zero span.
"""

import json

from repro.sim.trace import ExecutionTrace
from repro.viz import ascii_gantt, to_chrome_trace, utilization_sparklines


def _empty_trace(gpus=2):
    return ExecutionTrace(num_gpus=gpus)


def _zero_duration_trace():
    trace = ExecutionTrace(num_gpus=1)
    trace.record_interval(0, 5.0, 5.0, "fwd", 0)  # zero-width work
    trace.record_interval(0, 5.0, 5.0, "stall", 1)
    trace.record_subnet_complete(0, 5.0)
    return trace


# ----------------------------------------------------------------------
# empty trace: zero intervals, zero makespan
# ----------------------------------------------------------------------
def test_gantt_of_empty_trace_renders_blank_rows():
    text = ascii_gantt(_empty_trace(), width=30)
    lines = text.splitlines()
    assert len(lines) == 3  # two GPU rows + legend
    for line in lines[:2]:
        assert line.startswith("GPU")
        assert set(line.split("|")[1]) <= {" "}


def test_sparklines_of_empty_trace_are_flat():
    text = utilization_sparklines(_empty_trace(), buckets=10)
    lines = text.splitlines()
    assert len(lines) == 2
    for line in lines:
        marks = line.split(" ", 1)[1].strip()
        assert set(marks) <= {""} or set(marks) <= {" "}


def test_chrome_trace_of_empty_trace_is_valid_json():
    payload = json.loads(to_chrome_trace(_empty_trace(), label="empty"))
    events = payload["traceEvents"]
    # only the thread-name metadata rows
    assert all(event["ph"] == "M" for event in events)
    assert len(events) == 2


# ----------------------------------------------------------------------
# degenerate shapes
# ----------------------------------------------------------------------
def test_sparklines_single_bucket():
    trace = ExecutionTrace(num_gpus=1)
    trace.record_interval(0, 0.0, 10.0, "fwd", 0)
    text = utilization_sparklines(trace, buckets=1)
    assert len(text.splitlines()) == 1
    marks = text.split(" ", 1)[1].strip()
    assert len(marks) == 1
    assert marks != " "  # fully busy bucket renders a block


def test_gantt_zero_duration_intervals_do_not_crash():
    text = ascii_gantt(_zero_duration_trace(), width=20)
    assert text.splitlines()[0].startswith("GPU0 |")


def test_sparklines_zero_duration_intervals_do_not_crash():
    text = utilization_sparklines(_zero_duration_trace(), buckets=8)
    assert len(text.splitlines()) == 1


def test_chrome_trace_zero_duration_intervals_keep_nonnegative_dur():
    payload = json.loads(to_chrome_trace(_zero_duration_trace()))
    durations = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
    assert durations
    assert all(e["dur"] >= 0 for e in durations)
    completions = [
        e for e in payload["traceEvents"] if e.get("cat") == "completion"
    ]
    assert len(completions) == 1


def test_gantt_window_past_the_end_is_blank():
    trace = _zero_duration_trace()
    text = ascii_gantt(trace, width=20, start=100.0, end=200.0)
    assert set(text.splitlines()[0].split("|")[1]) <= {" "}
