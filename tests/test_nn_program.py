"""Stage program tests: recompute equivalence, residuals, commit order."""

import numpy as np
import pytest

from repro.nn.optim import SGD
from repro.nn.parameter_store import ParameterStore
from repro.nn.program import SubnetSegmentProgram

WIDTH = 8


def _factory(layer):
    block, choice = layer
    rng = np.random.Generator(np.random.PCG64(block * 97 + choice))
    from repro.nn.layers import build_parameters

    families = ["linear", "conv", "sepconv", "glu", "attention", "branch"]
    return build_parameters(families[block % len(families)], WIDTH, rng)


def _refs(blocks):
    families = ["linear", "conv", "sepconv", "glu", "attention", "branch"]
    return [((block, 0), families[block % len(families)]) for block in range(blocks)]


def _input(batch=5):
    rng = np.random.Generator(np.random.PCG64(7))
    return rng.standard_normal((batch, WIDTH)).astype(np.float32)


def test_forward_output_float32_and_deterministic():
    store = ParameterStore(_factory)
    program = SubnetSegmentProgram(store)
    activation = program.forward(0, 0, _refs(4), _input())
    again = program.forward(0, 0, _refs(4), _input())
    assert activation.stage_output.dtype == np.float32
    assert np.array_equal(activation.stage_output, again.stage_output)


def test_recompute_is_bit_identical_to_cached():
    store = ParameterStore(_factory)
    cached = SubnetSegmentProgram(store, recompute=False)
    recomputed = SubnetSegmentProgram(store, recompute=True)
    dy = _input() * 0.1
    act_cached = cached.forward(0, 0, _refs(5), _input())
    act_recomp = recomputed.forward(0, 0, _refs(5), _input())
    assert act_recomp.caches is None and act_cached.caches is not None
    dx_c, upd_c = cached.backward(act_cached, dy)
    dx_r, upd_r = recomputed.backward(act_recomp, dy)
    assert np.array_equal(dx_c, dx_r)
    for a, b in zip(upd_c, upd_r):
        assert a.layer == b.layer
        for name in a.grads:
            assert np.array_equal(a.grads[name], b.grads[name])


def test_residual_gradient_matches_numerical():
    store = ParameterStore(_factory)
    program = SubnetSegmentProgram(store)
    refs = _refs(3)
    x = _input(batch=3) * 0.5
    weights = np.ones((3, WIDTH), np.float32)

    def objective():
        activation = program.forward(0, 0, refs, x)
        return float(activation.stage_output.astype(np.float64).sum())

    activation = program.forward(0, 0, refs, x)
    dx, _updates = program.backward(activation, weights)
    eps = 1e-3
    numeric = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    num_flat = numeric.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        up = objective()
        flat[index] = original - eps
        down = objective()
        flat[index] = original
        num_flat[index] = (up - down) / (2 * eps)
    assert np.allclose(dx, numeric, rtol=3e-2, atol=3e-2)


def test_non_residual_mode_changes_output():
    store = ParameterStore(_factory)
    residual = SubnetSegmentProgram(store, residual_blocks=True)
    plain = SubnetSegmentProgram(store, residual_blocks=False)
    x = _input()
    out_res = residual.forward(0, 0, _refs(3), x).stage_output
    out_plain = plain.forward(0, 0, _refs(3), x).stage_output
    assert not np.array_equal(out_res, out_plain)


def test_commit_updates_writes_and_logs():
    store = ParameterStore(_factory)
    program = SubnetSegmentProgram(store)
    activation = program.forward(3, 0, _refs(2), _input())
    _dx, updates = program.backward(activation, _input() * 0.01)
    versions_before = [store.version(u.layer) for u in updates]
    program.commit_updates(updates, SGD(0.1))
    for update, before in zip(updates, versions_before):
        assert store.version(update.layer) == before + 1
    writes = [r for r in store.access_log if r.kind.value == "W"]
    assert [w.subnet_id for w in writes] == [3, 3]


def test_updates_ordered_front_to_back():
    store = ParameterStore(_factory)
    program = SubnetSegmentProgram(store)
    activation = program.forward(0, 0, _refs(4), _input())
    _dx, updates = program.backward(activation, _input() * 0.01)
    assert [u.layer[0] for u in updates] == [0, 1, 2, 3]
