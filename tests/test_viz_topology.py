"""Visualisation, Chrome-trace export, and multi-host topology tests."""

import json

import pytest

from repro.errors import ConfigError
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.trace import ExecutionTrace
from repro.viz import ascii_gantt, to_chrome_trace, utilization_sparklines


def _sample_trace():
    trace = ExecutionTrace(num_gpus=2)
    trace.record_interval(0, 0.0, 10.0, "fwd", 3)
    trace.record_interval(0, 10.0, 12.0, "stall", 4)
    trace.record_interval(0, 12.0, 30.0, "bwd", 3)
    trace.record_interval(1, 5.0, 20.0, "fwd", 4)
    trace.record_subnet_complete(3, 30.0)
    return trace


def test_ascii_gantt_marks_kinds():
    text = ascii_gantt(_sample_trace(), width=40)
    lines = text.splitlines()
    assert lines[0].startswith("GPU0 |")
    assert "3" in lines[0]  # forward of SN3
    assert "d" in lines[0]  # backward of SN3 -> chr('a'+3)
    assert "." in lines[0]  # stall
    assert "4" in lines[1]


def test_ascii_gantt_window():
    text = ascii_gantt(_sample_trace(), width=40, start=12.0, end=30.0)
    # The window contains only SN3's backward on GPU0.
    assert "3" not in text.splitlines()[0]
    assert "d" in text.splitlines()[0]


def test_sparklines_shape():
    text = utilization_sparklines(_sample_trace(), buckets=20)
    lines = text.splitlines()
    assert len(lines) == 2
    assert len(lines[0]) == len(lines[1])


def test_chrome_trace_valid_json_and_complete():
    payload = json.loads(to_chrome_trace(_sample_trace(), label="test"))
    events = payload["traceEvents"]
    names = {event["name"] for event in events}
    assert "SN3 forward" in names
    assert "SN3 backward" in names
    assert "SN4 swap stall" in names
    assert "SN3 complete" in names
    duration_events = [e for e in events if e.get("ph") == "X"]
    assert all(e["dur"] >= 0 for e in duration_events)
    assert {e["tid"] for e in duration_events} == {0, 1}


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
def test_uniform_network_default():
    spec = ClusterSpec(num_gpus=8)
    bandwidth, latency = spec.link_parameters(3, 4)
    assert bandwidth == spec.network_bandwidth_bytes_per_ms
    assert latency == spec.network_latency_ms


def test_topology_aware_links():
    spec = ClusterSpec(num_gpus=8, uniform_network=False, gpus_per_host=4)
    intra_bw, intra_lat = spec.link_parameters(1, 2)  # same host
    inter_bw, inter_lat = spec.link_parameters(3, 4)  # host boundary
    assert intra_bw > inter_bw
    assert intra_lat < inter_lat
    assert spec.host_of(3) == 0 and spec.host_of(4) == 1
    assert spec.num_hosts == 2


def test_cluster_builds_topology_links():
    spec = ClusterSpec(num_gpus=8, uniform_network=False, gpus_per_host=4)
    cluster = Cluster(spec)
    # link 2->3 intra-host, link 3->4 inter-host
    assert (
        cluster.forward_links[2].bandwidth_bytes_per_ms
        > cluster.forward_links[3].bandwidth_bytes_per_ms
    )


def test_topology_speeds_up_pipeline():
    from repro.baselines import naspipe
    from repro.engines.pipeline import PipelineEngine
    from repro.seeding import SeedSequenceTree
    from repro.supernet.sampler import SubnetStream
    from repro.supernet.search_space import get_search_space
    from repro.supernet.supernet import Supernet

    space = get_search_space("NLP.c2")
    supernet = Supernet(space)

    def run(uniform):
        stream = SubnetStream.sample_generational(
            space, SeedSequenceTree(5), 40
        )
        spec = ClusterSpec(num_gpus=8, uniform_network=uniform)
        return PipelineEngine(
            supernet, stream, naspipe(), spec, batch=192
        ).run()

    uniform = run(True)
    topo = run(False)
    # 6 of 7 hops become intra-host (faster): makespan cannot get worse.
    assert topo.makespan_ms <= uniform.makespan_ms * 1.01


def test_gpus_per_host_validation():
    with pytest.raises(ConfigError):
        ClusterSpec(gpus_per_host=0)
