"""Metrics helpers and Retiarii parameter-server baseline tests."""

import pytest

from repro.engines.functional_plane import FunctionalPlane
from repro.baselines import RetiariiParameterServer
from repro.metrics.bubbles import gpipe_theory_bubble, pipeline_theory_bubble
from repro.metrics.reproducibility import ReproducibilityReport
from repro.metrics.throughput import (
    normalize_throughput,
    speedup_table,
    subnets_per_hour,
)
from repro.seeding import SeedSequenceTree
from repro.supernet.sampler import SubnetStream
from repro.supernet.supernet import Supernet


def test_gpipe_theory_bubble():
    assert gpipe_theory_bubble(8, 5) == pytest.approx(7 / 12)
    assert gpipe_theory_bubble(1, 4) == 0.0
    with pytest.raises(ValueError):
        gpipe_theory_bubble(0, 4)


def test_pipeline_theory_bubble():
    assert pipeline_theory_bubble(8, 8) == 0.0
    assert pipeline_theory_bubble(8, 4) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        pipeline_theory_bubble(8, 0)


def test_normalize_throughput_handles_oom():
    normalized = normalize_throughput(
        {"NASPipe": 200.0, "GPipe": 50.0, "PipeDream": None}, "NASPipe"
    )
    assert normalized["NASPipe"] == 1.0
    assert normalized["GPipe"] == pytest.approx(0.25)
    assert normalized["PipeDream"] is None
    with pytest.raises(ValueError):
        normalize_throughput({"GPipe": 10.0}, "NASPipe")


def test_speedup_table():
    rows = [
        ("NLP.c1", {"NASPipe": 100.0, "GPipe": 20.0}),
        ("NLP.c0", {"NASPipe": 100.0, "GPipe": None}),
    ]
    table = speedup_table(rows, "NASPipe", "GPipe")
    assert table[0] == ("NLP.c1", pytest.approx(5.0))
    assert table[1] == ("NLP.c0", None)


def test_subnets_per_hour():
    assert subnets_per_hour(60, 3_600_000.0) == pytest.approx(60.0)
    assert subnets_per_hour(5, 0.0) == 0.0


def test_reproducibility_report_rows():
    report = ReproducibilityReport(space="NLP.c2")
    for gpus in (4, 8):
        report.record("CSP", gpus, loss=1.0, score=20.0, digest="same")
    report.record("BSP", 4, loss=1.1, score=19.0, digest="x")
    report.record("BSP", 8, loss=1.2, score=19.5, digest="y")
    assert report.is_reproducible("CSP")
    assert not report.is_reproducible("BSP")
    assert report.gpu_counts("CSP") == [4, 8]
    assert "reproducible" in report.row("CSP")
    assert "DIVERGENT" in report.row("BSP")


def test_retiarii_ps_trains_and_reports(tiny_supernet):
    seeds = SeedSequenceTree(6)
    stream = SubnetStream.sample(tiny_supernet.space, seeds, 12)
    plane = FunctionalPlane(tiny_supernet, seeds, functional_batch=4)
    result = RetiariiParameterServer(
        tiny_supernet, stream, plane, num_workers=4, batch=32
    ).run()
    assert result.subnets_completed == 12
    assert result.makespan_ms > 0
    assert 0.0 <= result.ps_utilisation <= 1.0
    assert result.digest is not None


def test_retiarii_ps_bulk_semantics_differ_from_sequential(tiny_supernet):
    """The PS's bulk updates read stale snapshots: its result diverges
    from sequential training — the non-reproducibility Retiarii shares
    with BSP (paper §2.3)."""
    from repro.engines.sequential import SequentialEngine

    def stream_and_plane():
        seeds = SeedSequenceTree(6)
        return (
            SubnetStream.sample(tiny_supernet.space, seeds, 12),
            FunctionalPlane(tiny_supernet, seeds, functional_batch=4),
        )

    stream, plane = stream_and_plane()
    sequential = SequentialEngine(tiny_supernet, stream, plane).run()
    stream, plane = stream_and_plane()
    ps4 = RetiariiParameterServer(
        tiny_supernet, stream, plane, num_workers=4, batch=32
    ).run()
    stream, plane = stream_and_plane()
    ps8 = RetiariiParameterServer(
        tiny_supernet, stream, plane, num_workers=8, batch=32
    ).run()
    assert ps4.digest != sequential.digest
    assert ps4.digest != ps8.digest
