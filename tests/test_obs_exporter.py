"""Observability layer: trace-of-the-trace reproducibility.

The exporter must be as deterministic as the runs it renders: two
identical runs produce **byte-identical** Chrome trace JSON (golden-file
double-run), every emitted event must match its declared schema, the
bubble-attribution summary must sum back to ``bubble_ratio()`` within
1e-9, and ``docs/TRACING.md`` must document every event kind the
instrumentation can emit.
"""

import json
from pathlib import Path

import pytest

from repro.baselines import gpipe, naspipe, pipedream, ssp
from repro.engines.pipeline import PipelineEngine
from repro.obs import (
    EVENT_SCHEMAS,
    bubble_attribution,
    export_chrome_trace,
    run_summary,
    to_perfetto,
    validate_chrome_trace,
    validate_event,
    validate_trace,
)
from repro.obs.summary import csp_wait_windows
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.sim.trace import TraceEvent
from repro.supernet.sampler import SubnetStream
from repro.supernet.supernet import Supernet

TRACING_DOC = Path(__file__).resolve().parents[1] / "docs" / "TRACING.md"


def _run(supernet, config, count=4, gpus=2, batch=16, seed=7):
    stream = SubnetStream.sample(supernet.space, SeedSequenceTree(seed), count)
    engine = PipelineEngine(
        supernet, stream, config, ClusterSpec(num_gpus=gpus), batch=batch
    )
    return engine.run()


# ----------------------------------------------------------------------
# golden file: the trace of a run is itself reproducible
# ----------------------------------------------------------------------
def test_two_identical_runs_export_byte_identical_json(tiny_supernet):
    first = _run(tiny_supernet, naspipe())
    second = _run(tiny_supernet, naspipe())
    text_a = export_chrome_trace(first.trace, system="NASPipe")
    text_b = export_chrome_trace(second.trace, system="NASPipe")
    assert text_a == text_b
    # and the serialisation itself is canonical (sorted keys, no floats
    # formatted differently on re-parse/re-dump)
    payload = json.loads(text_a)
    assert (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        == text_a
    )


def test_trace_export_writes_loadable_file(tiny_supernet, tmp_path):
    result = _run(tiny_supernet, naspipe())
    out = tmp_path / "run.trace.json"
    text = result.trace_export(path=out, label="unit")
    assert out.read_text() == text
    payload = json.loads(text)
    assert validate_chrome_trace(payload) == []


# ----------------------------------------------------------------------
# schema validation of every emitted event, across policies
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "config_factory", [naspipe, gpipe, pipedream, lambda: ssp(2)]
)
def test_every_emitted_event_matches_its_schema(tiny_supernet, config_factory):
    result = _run(tiny_supernet, config_factory(), count=8, gpus=2)
    assert result.trace.events, "instrumented run emitted no events"
    assert validate_trace(result.trace) == []


def test_validate_event_rejects_bad_shapes():
    ok = TraceEvent(
        kind="task_done", time=1.0, stage=0, subnet_id=3,
        attrs=(("direction", "fwd"),),
    )
    assert validate_event(ok) == []
    assert validate_event(ok._replace(kind="nope"))
    missing = TraceEvent(kind="task_done", time=1.0, stage=0, subnet_id=3)
    assert any("missing" in p for p in validate_event(missing))
    extra = TraceEvent(
        kind="task_done", time=1.0, stage=0, subnet_id=3,
        attrs=(("direction", "fwd"), ("bogus", 1)),
    )
    assert any("undeclared" in p for p in validate_event(extra))
    unscoped = TraceEvent(
        kind="task_done", time=1.0, stage=-1, subnet_id=3,
        attrs=(("direction", "fwd"),),
    )
    assert any("stage" in p for p in validate_event(unscoped))
    badtype = TraceEvent(
        kind="task_done", time=1.0, stage=0, subnet_id=3,
        attrs=(("direction", 7),),
    )
    assert any("direction" in p for p in validate_event(badtype))
    # bool is an int subclass — must still be rejected for int fields
    booled = TraceEvent(
        kind="ready_set", time=1.0, stage=0, attrs=(("size", True),),
    )
    assert any("bool" in p for p in validate_event(booled))


def test_rare_event_kinds_also_validate(small_supernet):
    # migration: on-demand operator movement (mirror_mode="migrate")
    migrate = _run(
        small_supernet, naspipe(mirror_mode="migrate"), count=12, gpus=2
    )
    assert migrate.trace.event_counts().get("migration", 0) > 0
    assert validate_trace(migrate.trace) == []
    # oom_retry: undersized cache forces the reclaim-and-retry path
    oomed = _run(
        small_supernet,
        naspipe().with_overrides(cache_subnets=0.6),
        count=12,
        gpus=2,
    )
    assert oomed.trace.event_counts().get("oom_retry", 0) > 0
    assert validate_trace(oomed.trace) == []


# ----------------------------------------------------------------------
# Chrome trace structure: required tracks, valid phases
# ----------------------------------------------------------------------
def test_chrome_trace_has_gpu_copy_and_nic_tracks(tiny_supernet):
    result = _run(tiny_supernet, naspipe(), count=8, gpus=2)
    payload = to_perfetto(result.trace, system="NASPipe")
    assert validate_chrome_trace(payload) == []
    events = payload["traceEvents"]
    process_names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert set(process_names.values()) >= {"GPU compute", "Copy engines", "NIC"}
    by_pid = {}
    for e in events:
        if e["ph"] == "X":
            by_pid.setdefault(e["pid"], 0)
            by_pid[e["pid"]] += 1
    name_to_pid = {v: k for k, v in process_names.items()}
    for track in ("GPU compute", "Copy engines", "NIC"):
        assert by_pid.get(name_to_pid[track], 0) > 0, f"no spans on {track}"


def test_validate_chrome_trace_flags_malformed_events():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    bad = {
        "traceEvents": [
            {"name": "x", "ph": "X", "pid": 0},  # no ts/dur/tid
            {"name": "c", "ph": "C", "pid": 0, "ts": 0, "args": {"v": "s"}},
            {"name": "i", "ph": "i", "pid": 0, "ts": 0, "s": "z"},
            {"name": "m", "ph": "M", "pid": 0, "args": {}},
            {"name": "q", "ph": "?", "pid": 0},
        ]
    }
    problems = validate_chrome_trace(bad)
    assert len(problems) >= 6


# ----------------------------------------------------------------------
# bubble attribution: a decomposition, not an estimate
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "config_factory", [naspipe, gpipe, pipedream, lambda: ssp(2)]
)
@pytest.mark.parametrize("gpus", [2, 4])
def test_bubble_attribution_sums_to_bubble_ratio(
    tiny_supernet, config_factory, gpus
):
    result = _run(tiny_supernet, config_factory(), count=12, gpus=gpus)
    trace = result.trace
    stages = bubble_attribution(trace)
    assert len(stages) == gpus
    for stage in stages:
        total = (
            stage.startup_ms
            + stage.fetch_stall_ms
            + stage.csp_wait_ms
            + stage.drain_ms
            + stage.other_idle_ms
        )
        assert total == pytest.approx(stage.idle_ms, abs=1e-9)
        assert stage.startup_ms >= 0 and stage.drain_ms >= 0
        assert stage.fetch_stall_ms >= 0 and stage.csp_wait_ms >= 0
    summary = run_summary(result)
    attributed = sum(summary["bubble_attribution"].values())
    assert attributed == pytest.approx(trace.bubble_ratio(), abs=1e-9)


def test_csp_wait_windows_pair_up(tiny_supernet):
    result = _run(tiny_supernet, naspipe(), count=16, gpus=4)
    trace = result.trace
    begins = len(list(trace.events_of("csp_wait_begin")))
    windows = csp_wait_windows(trace)
    assert sum(len(w) for w in windows.values()) == begins
    for stage, stage_windows in windows.items():
        for window in stage_windows:
            assert window.end >= window.start
            assert window.stage == stage
            assert window.blocking_subnet < window.blocked


# ----------------------------------------------------------------------
# docs: TRACING.md documents every emittable / emitted kind
# ----------------------------------------------------------------------
def test_tracing_doc_covers_every_schema_kind():
    doc = TRACING_DOC.read_text()
    undocumented = [kind for kind in EVENT_SCHEMAS if f"`{kind}`" not in doc]
    assert undocumented == [], (
        f"docs/TRACING.md is missing event kinds: {undocumented}"
    )


def test_tracing_doc_covers_every_kind_actually_emitted(tiny_supernet):
    doc = TRACING_DOC.read_text()
    emitted = set()
    for factory in (naspipe, gpipe, pipedream, lambda: ssp(2)):
        result = _run(tiny_supernet, factory(), count=8, gpus=2)
        emitted |= set(result.trace.event_kinds())
    assert emitted <= set(EVENT_SCHEMAS)
    missing = [kind for kind in sorted(emitted) if f"`{kind}`" not in doc]
    assert missing == [], f"docs/TRACING.md is missing emitted kinds: {missing}"


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
def test_cli_trace_exports_and_summarises(tmp_path, capsys):
    from repro.cli import main

    config = tmp_path / "cfg.json"
    config.write_text(
        json.dumps(
            {
                "space": "NLP.c3",
                "system": "NASPipe",
                "num_gpus": 2,
                "subnets": 4,
                "batch": 16,
                "seed": 7,
            }
        )
    )
    out = tmp_path / "run.trace.json"
    assert main(["trace", str(config), "--out", str(out), "--summary"]) == 0
    captured = capsys.readouterr().out
    assert "bubble attribution" in captured
    payload = json.loads(out.read_text())
    assert validate_chrome_trace(payload) == []
