"""NAS layer tests: evaluator, evolution, random search, trainer, hybrid."""

import numpy as np
import pytest

from repro.baselines import naspipe
from repro.engines.functional_plane import FunctionalPlane
from repro.errors import SearchSpaceError
from repro.nas.evaluator import SubnetEvaluator, proxy_bleu, top_k_accuracy
from repro.nas.evolution import EvolutionSearch
from repro.nas.hybrid import HybridSupernet, hybrid_space, hybrid_stream
from repro.nas.random_search import RandomSearch
from repro.nas.trainer import SupernetTrainer
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import get_search_space
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet


# ----------------------------------------------------------------------
# evaluator
# ----------------------------------------------------------------------
def test_proxy_bleu_monotone():
    assert proxy_bleu(1.0) > proxy_bleu(2.0) > proxy_bleu(3.0)
    assert proxy_bleu(2.5) == pytest.approx(100 * np.exp(-1.0))


def test_top_k_accuracy():
    logits = np.array(
        [[5.0, 4.0, 0.0, 0.0], [0.0, 1.0, 2.0, 3.0]], dtype=np.float32
    )
    targets = np.array([1, 0])
    assert top_k_accuracy(logits, targets, k=2) == pytest.approx(0.5)
    assert top_k_accuracy(logits, targets, k=4) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        top_k_accuracy(np.zeros(3, np.float32), targets)


def test_evaluator_scores_by_domain(tiny_supernet, cv_space):
    plane = FunctionalPlane(tiny_supernet, SeedSequenceTree(1), functional_batch=4)
    evaluator = SubnetEvaluator(plane, eval_batch_count=2, eval_batch_size=8)
    scored = evaluator.score(Subnet(0, tuple([0] * tiny_supernet.space.num_blocks)))
    assert scored.loss > 0
    assert scored.score == pytest.approx(proxy_bleu(scored.loss))

    cv_supernet = Supernet(cv_space)
    cv_plane = FunctionalPlane(cv_supernet, SeedSequenceTree(1), functional_batch=4)
    cv_eval = SubnetEvaluator(cv_plane, eval_batch_count=2, eval_batch_size=8)
    cv_scored = cv_eval.score(Subnet(0, tuple([0] * cv_space.num_blocks)))
    assert 0.0 <= cv_scored.score <= 100.0


# ----------------------------------------------------------------------
# search
# ----------------------------------------------------------------------
def _evaluator(space):
    plane = FunctionalPlane(Supernet(space), SeedSequenceTree(1), functional_batch=4)
    return SubnetEvaluator(plane, eval_batch_count=2, eval_batch_size=8)


def test_evolution_deterministic(tiny_space):
    def run():
        search = EvolutionSearch(
            tiny_space, _evaluator(tiny_space), SeedSequenceTree(9),
            population_size=6, tournament_size=3,
        )
        return search.run(evaluations=14)

    a, b = run(), run()
    assert a.best_choices == b.best_choices
    assert a.best_score == b.best_score
    assert a.history == b.history


def test_evolution_history_monotone(tiny_space):
    outcome = EvolutionSearch(
        tiny_space, _evaluator(tiny_space), SeedSequenceTree(9),
        population_size=6, tournament_size=3,
    ).run(evaluations=14)
    assert outcome.evaluated == 14
    assert all(b >= a for a, b in zip(outcome.history, outcome.history[1:]))
    assert outcome.history[-1] == outcome.best_score


def test_evolution_validates_budget_and_tournament(tiny_space):
    with pytest.raises(ValueError):
        EvolutionSearch(
            tiny_space, _evaluator(tiny_space), SeedSequenceTree(9),
            population_size=4, tournament_size=5,
        )
    search = EvolutionSearch(
        tiny_space, _evaluator(tiny_space), SeedSequenceTree(9),
        population_size=6,
    )
    with pytest.raises(ValueError):
        search.run(evaluations=3)


def test_random_search_baseline(tiny_space):
    outcome = RandomSearch(
        tiny_space, _evaluator(tiny_space), SeedSequenceTree(9)
    ).run(evaluations=10)
    assert outcome.evaluated == 10
    assert len(outcome.history) == 10


# ----------------------------------------------------------------------
# trainer facade
# ----------------------------------------------------------------------
def test_trainer_end_to_end(small_space):
    trainer = SupernetTrainer(small_space, seed=4, num_gpus=4)
    run = trainer.train(naspipe(), steps=16, batch=32)
    assert run.result.subnets_completed == 16
    assert run.digest is not None
    assert run.final_loss is not None
    assert run.mean_tail_loss(4) is not None
    outcome = trainer.search(run, evaluations=10, population_size=6)
    assert outcome.best_score > 0


def test_trainer_accepts_space_name():
    trainer = SupernetTrainer("NLP.c3", seed=4)
    assert trainer.space.name == "NLP.c3"
    with pytest.raises(ValueError):
        SupernetTrainer("NLP.c3", stream_kind="chaotic")


def test_trainer_streams_identical_across_systems(small_space):
    trainer = SupernetTrainer(small_space, seed=4)
    a = [s.choices for s in trainer.make_stream(6)]
    b = [s.choices for s in trainer.make_stream(6)]
    assert a == b


# ----------------------------------------------------------------------
# hybrid traversal (§5.5 future application)
# ----------------------------------------------------------------------
def test_hybrid_space_concatenates_choices():
    members = [get_search_space("NLP.c2"), get_search_space("NLP.c3")]
    union = hybrid_space(members)
    assert union.num_blocks == 48
    assert union.choices_per_block == 48 + 24
    assert "NLP.c2" in union.name and "NLP.c3" in union.name


def test_hybrid_space_rejects_mismatched_members():
    with pytest.raises(SearchSpaceError):
        hybrid_space([get_search_space("NLP.c2"), get_search_space("CV.c2")])
    with pytest.raises(SearchSpaceError):
        hybrid_space([])


def test_hybrid_supernet_delegates_profiles():
    members = [
        get_search_space("NLP.c2").scaled(num_blocks=8),
        get_search_space("NLP.c3").scaled(num_blocks=8),
    ]
    hybrid = HybridSupernet(members)
    direct = Supernet(members[1]).profile((0, 3))
    via_hybrid = hybrid.profile((0, members[0].choices_per_block + 3))
    assert via_hybrid.type_profile == direct.type_profile
    assert via_hybrid.size_scale == direct.size_scale


def test_hybrid_stream_no_cross_space_conflicts():
    members = [
        get_search_space("NLP.c2").scaled(num_blocks=8, functional_width=16),
        get_search_space("NLP.c3").scaled(num_blocks=8, functional_width=16),
    ]
    stream = hybrid_stream(members, SeedSequenceTree(2), count_per_member=4)
    assert len(stream) == 8
    offset = members[0].choices_per_block
    for subnet in stream:
        member_index = subnet.subnet_id % 2
        for choice in subnet.choices:
            if member_index == 0:
                assert choice < offset
            else:
                assert choice >= offset


def test_hybrid_pipeline_runs_under_csp():
    from repro.engines.pipeline import PipelineEngine
    from repro.sim.cluster import ClusterSpec

    members = [
        get_search_space("NLP.c2").scaled(num_blocks=8, functional_width=16),
        get_search_space("NLP.c3").scaled(num_blocks=8, functional_width=16),
    ]
    hybrid = HybridSupernet(members)
    stream = hybrid_stream(members, SeedSequenceTree(2), count_per_member=6)
    engine = PipelineEngine(
        hybrid, stream, naspipe(), ClusterSpec(num_gpus=4), batch=32
    )
    result = engine.run()
    assert result.subnets_completed == 12


def test_trainer_fair_stream(small_space):
    trainer = SupernetTrainer(small_space, seed=4, stream_kind="fair")
    subnets = list(trainer.make_stream(small_space.choices_per_block))
    # One strict-fairness round: every candidate of block 0 appears once.
    first_block = sorted(s.choices[0] for s in subnets)
    assert first_block == list(range(small_space.choices_per_block))
