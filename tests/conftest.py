"""Shared fixtures: small search spaces, seed trees, supernets."""

from __future__ import annotations

import pytest

from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet


@pytest.fixture
def seeds() -> SeedSequenceTree:
    return SeedSequenceTree(1234)


@pytest.fixture
def tiny_space():
    """A scaled NLP space small enough for exhaustive checks."""
    return get_search_space("NLP.c3").scaled(
        name="tiny", num_blocks=8, choices_per_block=4, functional_width=16
    )


@pytest.fixture
def small_space():
    """A mid-size space for functional pipeline tests."""
    return get_search_space("NLP.c2").scaled(
        name="small", num_blocks=16, functional_width=16
    )


@pytest.fixture
def cv_space():
    return get_search_space("CV.c2").scaled(
        name="small-cv", num_blocks=16, functional_width=16
    )


@pytest.fixture
def tiny_supernet(tiny_space) -> Supernet:
    return Supernet(tiny_space)


@pytest.fixture
def small_supernet(small_space) -> Supernet:
    return Supernet(small_space)
