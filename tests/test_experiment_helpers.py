"""Unit tests for experiment-support helpers (figure4 math, common)."""

import pytest

from repro.experiments.common import ExperimentScale, make_stream, run_system
from repro.experiments.figure4 import ConvergenceCurve, _smooth


def test_smooth_is_trailing_mean():
    series = [(0.0, 4.0), (1.0, 2.0), (2.0, 0.0)]
    smoothed = _smooth(series, window=2)
    assert smoothed[0] == (0.0, 4.0)
    assert smoothed[1] == (1.0, 3.0)
    assert smoothed[2] == (2.0, 1.0)


def test_smooth_window_clamps_at_start():
    series = [(float(i), float(i)) for i in range(5)]
    smoothed = _smooth(series, window=10)
    # Trailing mean over everything seen so far.
    assert smoothed[4][1] == pytest.approx(2.0)


def test_score_at_budget():
    curve = ConvergenceCurve(
        space="x", system="y",
        points=[(1.0, 3.0, 10.0), (2.0, 2.0, 20.0), (3.0, 1.0, 30.0)],
        final_score=30.0,
    )
    assert curve.score_at(0.5) is None
    assert curve.score_at(2.5) == 20.0
    assert curve.score_at(9.0) == 30.0


def test_make_stream_kinds():
    spos = make_stream("NLP.c3", ExperimentScale(subnets=8, stream_kind="spos"))
    generational = make_stream(
        "NLP.c3", ExperimentScale(subnets=8, stream_kind="generational")
    )
    assert len(spos) == len(generational) == 8
    # Generational: first 8 (one generation) are pairwise independent.
    members = list(generational)
    assert not any(
        a.depends_on(b)
        for i, a in enumerate(members)
        for b in members[i + 1:]
    )


def test_make_stream_salted_streams_differ():
    scale = ExperimentScale(subnets=8)
    a = make_stream("NLP.c3", scale, salt="alpha")
    b = make_stream("NLP.c3", scale, salt="beta")
    assert [s.choices for s in a] != [s.choices for s in b]


def test_run_system_returns_none_on_oom():
    scale = ExperimentScale(subnets=4)
    assert run_system("NLP.c0", "GPipe", scale) is None
    result = run_system("NLP.c0", "NASPipe", scale)
    assert result is not None and result.subnets_completed == 4


def test_run_system_overrides_forwarded():
    scale = ExperimentScale(subnets=4)
    result = run_system("NLP.c3", "NASPipe", scale, inject_window=3)
    assert result is not None
