"""Vocabulary/tokenizer, engine event-listener, and CPU-memory tests."""

import numpy as np
import pytest

from repro.data.vocab import (
    BOS_TOKEN,
    EOS_TOKEN,
    PAD_TOKEN,
    UNK_TOKEN,
    Vocabulary,
    synthetic_vocabulary,
)
from repro.seeding import SeedSequenceTree


@pytest.fixture(scope="module")
def vocab():
    return synthetic_vocabulary(SeedSequenceTree(5), size=64)


def test_vocab_size_and_specials(vocab):
    assert len(vocab) == 64
    assert vocab.tokens[0] == PAD_TOKEN
    assert vocab.id_of(UNK_TOKEN) == vocab.unk_id
    assert len(set(vocab.tokens)) == 64


def test_vocab_deterministic():
    a = synthetic_vocabulary(SeedSequenceTree(5), size=64)
    b = synthetic_vocabulary(SeedSequenceTree(5), size=64)
    assert a.tokens == b.tokens
    c = synthetic_vocabulary(SeedSequenceTree(6), size=64)
    assert a.tokens != c.tokens


def test_encode_pads_and_truncates(vocab):
    word = vocab.tokens[10]
    ids = vocab.encode(f"{word} {word}", seq_len=6)
    assert ids.shape == (6,)
    assert ids[0] == vocab.bos_id
    assert ids[1] == ids[2] == 10
    assert ids[3] == vocab.eos_id
    assert list(ids[4:]) == [vocab.pad_id, vocab.pad_id]
    truncated = vocab.encode(" ".join([word] * 20), seq_len=4)
    assert truncated.shape == (4,)


def test_unknown_words_map_to_unk(vocab):
    ids = vocab.encode("zzzzzzz", seq_len=4)
    assert vocab.unk_id in ids


def test_roundtrip_decode(vocab):
    words = [vocab.tokens[12], vocab.tokens[20]]
    ids = vocab.encode(" ".join(words), seq_len=8)
    assert vocab.decode(ids) == " ".join(words)


def test_encode_batch(vocab):
    batch = vocab.encode_batch(["a b", "c"], seq_len=5)
    assert batch.shape == (2, 5)
    assert batch.dtype == np.int64


def test_vocab_validation():
    with pytest.raises(ValueError):
        Vocabulary(tokens=["not-pad", "x"])
    with pytest.raises(ValueError):
        synthetic_vocabulary(SeedSequenceTree(1), size=2)


# ----------------------------------------------------------------------
# engine event listener
# ----------------------------------------------------------------------
def test_event_listener_receives_ordered_events(tiny_supernet):
    from repro.baselines import naspipe
    from repro.engines.pipeline import PipelineEngine
    from repro.sim.cluster import ClusterSpec
    from repro.supernet.sampler import SubnetStream

    events = []
    stream = SubnetStream.sample(tiny_supernet.space, SeedSequenceTree(2), 6)
    engine = PipelineEngine(
        tiny_supernet, stream, naspipe(), ClusterSpec(num_gpus=2),
        batch=16, event_listener=lambda *e: events.append(e),
    )
    engine.run()
    kinds = [e[0] for e in events]
    assert kinds.count("subnet-complete") == 6
    assert kinds.count("fwd-start") == 6 * 2
    assert kinds.count("bwd-done") == 6 * 2
    # Completion times non-decreasing per emission order of completions.
    completions = [e for e in events if e[0] == "subnet-complete"]
    times = [e[3] for e in completions]
    assert times == sorted(times)
    # First event of any subnet is its stage-0 forward start.
    first_for_zero = next(e for e in events if e[2] == 0)
    assert first_for_zero[0] == "fwd-start" and first_for_zero[1] == 0


# ----------------------------------------------------------------------
# CPU pinned-memory feasibility
# ----------------------------------------------------------------------
def test_cpu_memory_model():
    from repro.baselines import gpipe, naspipe
    from repro.memory_model import (
        cpu_memory_feasible,
        cpu_pinned_bytes_per_stage,
    )
    from repro.sim.cluster import ClusterSpec
    from repro.supernet.search_space import get_search_space
    from repro.supernet.supernet import Supernet

    supernet = Supernet(get_search_space("NLP.c0"))
    cluster = ClusterSpec(num_gpus=8)
    pinned = cpu_pinned_bytes_per_stage(supernet, naspipe(), 8)
    assert pinned > 5 * 10**9  # ~10 GB of an ~80 GB supernet
    assert cpu_pinned_bytes_per_stage(supernet, gpipe(), 8) == 0
    # 64 GB hosts hold 4 stages' partitions of even the largest space...
    assert cpu_memory_feasible(supernet, naspipe(), cluster)
    # ...but a 16 GB workstation would not.
    assert not cpu_memory_feasible(
        supernet, naspipe(), cluster, host_memory_bytes=16 * 10**9
    )
