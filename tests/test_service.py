"""The service plane: leases, fair-share allocation, and the job
scheduler's per-tenant determinism guarantee."""

import json

import pytest

from repro.errors import LeaseError, ServiceError
from repro.ft import run_uninterrupted
from repro.obs.events import validate_trace
from repro.service import (
    ClusterManager,
    JobScheduler,
    JobSpec,
    fair_share,
    format_service_report,
    run_service,
    service_report_json,
)
from repro.baselines import system_by_name
from repro.sim.cluster import ClusterSpec
from repro.supernet.search_space import get_search_space

SPACE_OVERRIDES = {"num_blocks": 8, "functional_width": 16}


def _space(name="NLP.c3"):
    return get_search_space(name).scaled(**SPACE_OVERRIDES)


# ----------------------------------------------------------------------
# ClusterManager / DeviceLease
# ----------------------------------------------------------------------
class TestClusterManager:
    def test_acquires_lowest_free_slots(self):
        manager = ClusterManager(ClusterSpec(num_gpus=8))
        a = manager.acquire("a", 3)
        b = manager.acquire("b", 2)
        assert a.slots == (0, 1, 2)
        assert b.slots == (3, 4)
        assert manager.available_gpus == 3
        assert manager.leased_gpus == 5

    def test_released_slots_return_and_resort(self):
        manager = ClusterManager(ClusterSpec(num_gpus=4))
        a = manager.acquire("a", 2)  # 0, 1
        manager.acquire("b", 2)  # 2, 3
        a.release()
        c = manager.acquire("c", 2)
        assert c.slots == (0, 1)

    def test_never_double_leases(self):
        manager = ClusterManager(ClusterSpec(num_gpus=4))
        a = manager.acquire("a", 3)
        with pytest.raises(LeaseError):
            manager.acquire("b", 2)
        assert manager.owner_of(0) == a.lease_id
        b = manager.acquire("b", 1)
        assert set(a.slots).isdisjoint(b.slots)

    def test_double_release_is_an_error(self):
        manager = ClusterManager(ClusterSpec(num_gpus=4))
        lease = manager.acquire("a", 2)
        lease.release()
        with pytest.raises(LeaseError):
            lease.release()

    def test_zero_gpu_lease_rejected(self):
        manager = ClusterManager(ClusterSpec(num_gpus=4))
        with pytest.raises(LeaseError):
            manager.acquire("a", 0)

    def test_materialize_after_release_rejected(self):
        manager = ClusterManager(ClusterSpec(num_gpus=4))
        lease = manager.acquire("a", 2)
        lease.release()
        assert not lease.active
        with pytest.raises(LeaseError):
            lease.materialize()

    def test_materialized_cluster_brands_physical_slots(self):
        manager = ClusterManager(ClusterSpec(num_gpus=8))
        manager.acquire("a", 3)
        lease = manager.acquire("b", 2)  # slots 3, 4
        cluster = lease.materialize()
        assert [g.gpu_id for g in cluster.gpus] == [0, 1]
        assert [g.physical_slot for g in cluster.gpus] == [3, 4]

    def test_lease_spec_reindexes_speed_factors(self):
        speeds = (1.0, 1.0, 2.0, 4.0)
        manager = ClusterManager(
            ClusterSpec(num_gpus=4, gpu_speed_factors=speeds)
        )
        manager.acquire("a", 2)
        lease = manager.acquire("b", 2)  # slots 2, 3
        assert lease.spec.gpu_speed_factors == (2.0, 4.0)

    def test_fresh_devices_per_materialize(self):
        manager = ClusterManager(ClusterSpec(num_gpus=2))
        lease = manager.acquire("a", 2)
        first = lease.materialize()
        first.gpus[0].busy_until = 123.0
        second = lease.materialize()
        assert second.gpus[0].busy_until == 0.0


# ----------------------------------------------------------------------
# fair_share
# ----------------------------------------------------------------------
class TestFairShare:
    def test_minimums_reserved_in_precedence_order(self):
        alloc = fair_share(
            4, [("a", 2, 3, 4), ("b", 1, 3, 4)]
        )
        assert alloc == {"a": 4, "b": 0}

    def test_surplus_split_by_priority(self):
        alloc = fair_share(
            8, [("a", 2, 1, 8), ("b", 1, 1, 8)]
        )
        assert alloc["a"] + alloc["b"] == 8
        assert alloc["a"] > alloc["b"]

    def test_caps_respected_and_remainder_flows_down(self):
        alloc = fair_share(
            8, [("a", 5, 1, 2), ("b", 1, 1, 8)]
        )
        assert alloc == {"a": 2, "b": 6}

    def test_single_gpu_fallback_when_floors_round_to_zero(self):
        alloc = fair_share(
            3, [("a", 1, 1, 4), ("b", 1, 1, 4), ("c", 1, 1, 4)]
        )
        assert alloc == {"a": 1, "b": 1, "c": 1}

    def test_never_exceeds_total(self):
        alloc = fair_share(
            5, [("a", 3, 2, 5), ("b", 2, 2, 5), ("c", 1, 2, 5)]
        )
        assert sum(alloc.values()) <= 5
        assert alloc["c"] == 0  # minimum no longer fits


# ----------------------------------------------------------------------
# JobSpec validation
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_unknown_payload_keys_rejected(self):
        with pytest.raises(ServiceError, match="unknown job config keys"):
            JobSpec.from_payload({"name": "a", "space": "NLP.c3", "gpus": 4})

    def test_invalid_gpu_range_rejected(self):
        with pytest.raises(ServiceError):
            JobSpec(name="a", space="NLP.c3", min_gpus=4, max_gpus=2)

    def test_priority_floor(self):
        with pytest.raises(ServiceError):
            JobSpec(name="a", space="NLP.c3", priority=0)

    def test_duplicate_job_name_rejected(self):
        scheduler = JobScheduler(ClusterManager(ClusterSpec(num_gpus=4)))
        spec = JobSpec(
            name="a", space="NLP.c3", space_overrides=SPACE_OVERRIDES
        )
        scheduler.submit(spec)
        with pytest.raises(ServiceError, match="duplicate"):
            scheduler.submit(spec)

    def test_unsatisfiable_minimum_rejected_at_submit(self):
        scheduler = JobScheduler(ClusterManager(ClusterSpec(num_gpus=2)))
        with pytest.raises(ServiceError, match="never be satisfied"):
            scheduler.submit(
                JobSpec(
                    name="a",
                    space="NLP.c3",
                    space_overrides=SPACE_OVERRIDES,
                    min_gpus=4,
                    max_gpus=8,
                )
            )


# ----------------------------------------------------------------------
# JobScheduler end-to-end
# ----------------------------------------------------------------------
def _demo_payload(**overrides):
    payload = {
        "total_gpus": 8,
        "quantum": 4,
        "jobs": [
            {
                "name": "a",
                "space": "NLP.c3",
                "space_overrides": SPACE_OVERRIDES,
                "subnets": 10,
                "seed": 3,
                "priority": 2,
                "min_gpus": 2,
                "max_gpus": 6,
            },
            {
                "name": "b",
                "space": "CV.c3",
                "space_overrides": SPACE_OVERRIDES,
                "system": "PipeDream",
                "subnets": 8,
                "seed": 5,
                "priority": 1,
                "min_gpus": 2,
                "max_gpus": 4,
            },
            {
                "name": "c",
                "space": "NLP.c2",
                "space_overrides": SPACE_OVERRIDES,
                "subnets": 6,
                "seed": 7,
                "priority": 3,
                "submit_ms": 1.0,
                "min_gpus": 2,
                "max_gpus": 4,
            },
        ],
    }
    payload.update(overrides)
    return payload


class TestJobScheduler:
    def test_cotenant_digests_match_solo_runs(self):
        report = run_service(_demo_payload(), verify_solo=True)
        assert report["ok"]
        assert len(report["jobs"]) == 3
        for job in report["jobs"]:
            assert job["digest_matches_solo"], job["name"]
            assert job["losses_match_solo"], job["name"]

    def test_elastic_job_resized_mid_run(self):
        report = run_service(_demo_payload(), verify_solo=True)
        resized = [j for j in report["jobs"] if j["resizes"] > 0]
        assert resized, "the mix should force at least one elastic resize"
        sizes = {seg["gpus"] for j in resized for seg in j["segments"]}
        assert len(sizes) > 1
        assert report["ok"]

    def test_rigid_job_runs_one_fixed_segment(self):
        report = run_service(_demo_payload())
        rigid = next(j for j in report["jobs"] if j["name"] == "b")
        assert not rigid["elastic"]
        assert len(rigid["segments"]) == 1
        assert rigid["resizes"] == 0

    def test_report_is_byte_deterministic(self):
        first = service_report_json(run_service(_demo_payload()))
        second = service_report_json(run_service(_demo_payload()))
        assert first == second

    def test_trace_is_schema_valid(self):
        manager = ClusterManager(ClusterSpec(num_gpus=8))
        scheduler = JobScheduler(manager, quantum=4)
        for entry in _demo_payload()["jobs"]:
            scheduler.submit(JobSpec.from_payload(entry))
        scheduler.run()
        assert validate_trace(scheduler.trace) == []
        kinds = {e.kind for e in scheduler.trace.events}
        assert {"job_submit", "job_start", "job_done"} <= kinds
        assert manager.available_gpus == manager.total_gpus

    def test_preemption_requeues_and_preserves_bits(self):
        # b (priority 5, min 4 of 4) lands while a is mid-stream: at a's
        # next boundary the whole fleet goes to b and a is preempted,
        # resuming only after b finishes — with unchanged bits.
        payload = {
            "total_gpus": 4,
            "quantum": 3,
            "jobs": [
                {
                    "name": "a",
                    "space": "NLP.c3",
                    "space_overrides": SPACE_OVERRIDES,
                    "subnets": 9,
                    "seed": 3,
                    "priority": 1,
                    "min_gpus": 2,
                    "max_gpus": 4,
                },
                {
                    "name": "b",
                    "space": "NLP.c2",
                    "space_overrides": SPACE_OVERRIDES,
                    "subnets": 6,
                    "seed": 5,
                    "priority": 5,
                    "submit_ms": 1.0,
                    "min_gpus": 4,
                    "max_gpus": 4,
                },
            ],
        }
        report = run_service(payload, verify_solo=True)
        assert report["ok"]
        preempted = next(j for j in report["jobs"] if j["name"] == "a")
        assert preempted["preemptions"] >= 1
        # while b held the fleet, a ran nothing
        b = next(j for j in report["jobs"] if j["name"] == "b")
        b_span = (b["segments"][0]["start_ms"], b["segments"][-1]["end_ms"])
        for seg in preempted["segments"]:
            assert seg["end_ms"] <= b_span[0] or seg["start_ms"] >= b_span[1]

    def test_solo_job_on_shared_fleet_equals_direct_run(self):
        # degenerate service of one job == the recovery module's
        # uninterrupted run, segment boundaries and all
        payload = {
            "total_gpus": 4,
            "quantum": 3,
            "jobs": [
                {
                    "name": "only",
                    "space": "NLP.c3",
                    "space_overrides": SPACE_OVERRIDES,
                    "subnets": 10,
                    "seed": 11,
                    "min_gpus": 4,
                    "max_gpus": 4,
                }
            ],
        }
        report = run_service(payload)
        direct = run_uninterrupted(
            _space(),
            system_by_name("NASPipe"),
            num_gpus=4,
            steps=10,
            seed=11,
        )
        assert report["jobs"][0]["digest"] == direct.digest

    def test_unknown_service_keys_rejected(self):
        with pytest.raises(ServiceError, match="unknown service config"):
            run_service({"gpus": 8, "jobs": [{"name": "a", "space": "NLP.c3"}]})

    def test_empty_job_list_rejected(self):
        with pytest.raises(ServiceError, match="non-empty"):
            run_service({"jobs": []})

    def test_format_report_mentions_every_job(self):
        report = run_service(_demo_payload(), verify_solo=True)
        text = format_service_report(report)
        for job in report["jobs"]:
            assert job["name"] in text
        assert "matches its solo run bitwise" in text


def test_cli_serve_roundtrip(tmp_path, capsys):
    from repro.cli import main

    config = tmp_path / "jobs.json"
    config.write_text(json.dumps(_demo_payload()))
    out = tmp_path / "report.json"
    assert main(["serve", str(config), "--json", str(out)]) == 0
    text = capsys.readouterr().out
    assert "service:" in text
    report = json.loads(out.read_text())
    assert report["schema"] == 1
    assert {j["name"] for j in report["jobs"]} == {"a", "b", "c"}
