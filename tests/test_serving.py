"""Serving plane: determinism, cache effect, shedding, SLO, trace schema.

The structural claims the benchmark's CI gate enforces are asserted
here directly on a CI-sized config: two runs are byte-identical
(including shed decisions under overload), the cache strictly raises
the hit rate and lowers p99, and overload sheds deterministically while
every admitted request stays inside the SLO.
"""

import json

import pytest

from repro.core.context_manager import StageContextManager
from repro.errors import ConfigError
from repro.obs.events import validate_trace
from repro.serving import (
    BatchPolicy,
    BoundedBatcher,
    EvalRequest,
    ResultCache,
    ServingEngine,
    ServingSpec,
    WorkloadSpec,
    check_regression,
    generate_requests,
    run_bench,
    serving_report_json,
    subnet_digest,
)
from repro.sim.devices import CopyEngine
from repro.supernet.search_space import get_search_space

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

# One CI-sized config shared by the whole file (small space, short
# stream) — the same three-scenario shape as examples/serving_demo.json.
SMALL_CONFIG = {
    "space": "NLP.c3",
    "space_overrides": {"num_blocks": 4, "functional_width": 8},
    "num_gpus": 2,
    "total_gpus": 4,
    "eval_batch": 4,
    "requests": 60,
    "arrival": "poisson",
    "rate_rps": 80.0,
    "skew": 0.7,
    "hot_prefixes": 3,
    "prefix_blocks": 3,
    "repeat_fraction": 0.3,
    "seed": 2022,
    "max_batch": 4,
    "max_linger_ms": 4.0,
    "queue_bound": 8,
    "result_entries": 64,
    "cache_subnets": 3.0,
    "slo_ms": 400.0,
    "overload_rate_factor": 8.0,
}


@pytest.fixture(scope="module")
def bench():
    return run_bench(SMALL_CONFIG)


def _small_space():
    return get_search_space("NLP.c3").scaled(num_blocks=4, functional_width=8)


def _request(request_id, arrival_ms=0.0):
    # The batcher never inspects the subnet, so admission-control unit
    # tests can run without sampling one.
    return EvalRequest(request_id=request_id, arrival_ms=arrival_ms, subnet=None)


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------
def test_workload_is_deterministic():
    space = _small_space()
    spec = WorkloadSpec(num_requests=40, prefix_blocks=3, seed=7)
    first = generate_requests(spec, space)
    second = generate_requests(spec, space)
    assert [r.arrival_ms for r in first] == [r.arrival_ms for r in second]
    assert [r.subnet.choices for r in first] == [
        r.subnet.choices for r in second
    ]


def test_arrivals_strictly_increase():
    space = _small_space()
    for arrival in ("poisson", "bursty"):
        spec = WorkloadSpec(
            num_requests=50, arrival=arrival, prefix_blocks=3, seed=3
        )
        times = [r.arrival_ms for r in generate_requests(spec, space)]
        assert all(b > a for a, b in zip(times, times[1:]))


def test_full_repeat_fraction_only_replays_history():
    space = _small_space()
    spec = WorkloadSpec(
        num_requests=30, repeat_fraction=1.0, prefix_blocks=3, seed=5
    )
    requests = generate_requests(spec, space)
    seen = {requests[0].subnet.choices}
    for request in requests[1:]:
        assert request.subnet.choices in seen
        seen.add(request.subnet.choices)


def test_repeats_share_the_result_cache_key():
    space = _small_space()
    spec = WorkloadSpec(
        num_requests=30, repeat_fraction=0.9, prefix_blocks=3, seed=5
    )
    requests = generate_requests(spec, space)
    digests = [subnet_digest(space.name, r.subnet) for r in requests]
    assert len(set(digests)) < len(digests)  # verbatim repeats collide
    # ... and distinct choice paths never collide.
    by_choices = {r.subnet.choices for r in requests}
    assert len(set(digests)) == len(by_choices)


def test_workload_validation_rejects_bad_specs():
    space = _small_space()
    with pytest.raises(ConfigError):
        WorkloadSpec(arrival="uniform").validate(space)
    with pytest.raises(ConfigError):
        WorkloadSpec(rate_rps=0.0, prefix_blocks=3).validate(space)
    with pytest.raises(ConfigError):
        WorkloadSpec(prefix_blocks=99).validate(space)
    with pytest.raises(ConfigError):
        WorkloadSpec(skew=0.5, hot_prefixes=0, prefix_blocks=3).validate(space)


# ----------------------------------------------------------------------
# batcher + admission control
# ----------------------------------------------------------------------
def test_batch_policy_validation():
    with pytest.raises(ConfigError):
        BatchPolicy(max_batch=0).validate()
    with pytest.raises(ConfigError):
        BatchPolicy(max_linger_ms=-1.0).validate()
    with pytest.raises(ConfigError):
        BatchPolicy(max_batch=8, queue_bound=4).validate()


def test_offer_sheds_at_the_backlog_bound():
    batcher = BoundedBatcher(BatchPolicy(max_batch=4, queue_bound=4))
    for i in range(3):
        assert batcher.offer(_request(i), now=float(i), backlog=0)
    # Queue depth 3 + external backlog 1 == bound: shed.
    assert not batcher.offer(_request(3), now=3.0, backlog=1)
    assert batcher.shed == 1 and batcher.admitted == 3
    # With no external backlog the same offer is admitted.
    assert batcher.offer(_request(3), now=3.0, backlog=0)


def test_flush_full_emits_in_admission_order():
    batcher = BoundedBatcher(BatchPolicy(max_batch=3, queue_bound=8))
    for i in range(3):
        batcher.offer(_request(i, arrival_ms=float(i)), now=float(i), backlog=0)
    batch = batcher.flush_full(now=2.0)
    assert batch is not None and batch.cause == "full"
    assert [r.request_id for r in batch.requests] == [0, 1, 2]
    assert batch.oldest_wait_ms == 2.0
    assert batcher.depth() == 0


def test_linger_timer_flushes_partial_and_stale_timers_noop():
    batcher = BoundedBatcher(BatchPolicy(max_batch=4, queue_bound=8))
    batcher.offer(_request(0), now=0.0, backlog=0)
    batcher.offer(_request(1), now=1.0, backlog=0)
    batch = batcher.flush_due(now=5.0, request_id=0)
    assert batch is not None and batch.cause == "linger"
    assert len(batch) == 2 and batch.oldest_wait_ms == 5.0
    # Request 1 left with that batch; its own timer is now stale.
    assert batcher.flush_due(now=6.0, request_id=1) is None


def test_drain_empties_the_queue_in_chunks():
    batcher = BoundedBatcher(BatchPolicy(max_batch=2, queue_bound=8))
    for i in range(5):
        batcher.offer(_request(i), now=0.0, backlog=0)
    batches = batcher.drain(now=1.0)
    assert [len(b) for b in batches] == [2, 2, 1]
    assert all(b.cause == "drain" for b in batches)
    assert batcher.depth() == 0


def test_result_cache_lru_evicts_least_recently_hit():
    cache = ResultCache(capacity=2)
    cache.put("a", 0.1)
    cache.put("b", 0.2)
    assert cache.get("a") == 0.1  # refresh "a"
    cache.put("c", 0.3)  # evicts "b", the stalest
    assert cache.get("b") is None
    assert cache.get("a") == 0.1 and cache.get("c") == 0.3
    assert cache.evictions == 1


# ----------------------------------------------------------------------
# end-to-end: determinism, cache effect, overload
# ----------------------------------------------------------------------
def test_bench_double_run_is_byte_identical(bench):
    again = run_bench(SMALL_CONFIG)
    assert serving_report_json(again) == serving_report_json(bench)


def test_accounting_tiles_the_workload(bench):
    for name in ("primary", "no_cache", "overload"):
        scenario = bench[name]
        assert scenario["completed"] + scenario["shed"] == scenario["requests"]


def test_cache_strictly_raises_hit_rate_and_lowers_p99(bench):
    assert bench["primary"]["hit_rate"] > bench["no_cache"]["hit_rate"]
    assert (
        bench["primary"]["latency_ms"]["p99"]
        < bench["no_cache"]["latency_ms"]["p99"]
    )


def test_overload_sheds_and_admitted_requests_meet_slo(bench):
    overload = bench["overload"]
    assert overload["shed"] > 0
    assert overload["slo_attainment"] == 1.0
    assert overload["latency_ms"]["max"] <= overload["slo_ms"]


def test_self_baseline_gate_passes(bench, tmp_path):
    baseline = tmp_path / "serving_baseline.json"
    baseline.write_text(serving_report_json(bench))
    assert check_regression(bench, baseline) == []


def test_gate_flags_determinism_violation(bench, tmp_path):
    baseline = tmp_path / "serving_baseline.json"
    baseline.write_text(serving_report_json(bench))
    mutated = json.loads(serving_report_json(bench))
    mutated["primary"]["completed"] += 1
    failures = check_regression(mutated, baseline)
    assert any("determinism violation" in f for f in failures)


def test_gate_flags_p99_regression(bench, tmp_path):
    baseline = tmp_path / "serving_baseline.json"
    baseline.write_text(serving_report_json(bench))
    mutated = json.loads(serving_report_json(bench))
    mutated["config"]["seed"] = 1  # different config: factor gate only
    mutated["primary"]["latency_ms"]["p99"] = (
        bench["primary"]["latency_ms"]["p99"] * 10.0
    )
    failures = check_regression(mutated, baseline)
    assert any("p99" in f and "primary" in f for f in failures)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_replay_is_byte_identical_even_under_shedding(seed):
    # Heavily overloaded on purpose: every seed sheds, and the shed
    # decisions themselves must replay bitwise.
    payload = dict(
        SMALL_CONFIG, requests=40, rate_rps=1000.0, seed=seed
    )
    spec = ServingSpec.from_payload(payload)
    first = ServingEngine(spec).run().scenario_report()
    second = ServingEngine(spec).run().scenario_report()
    assert first["shed"] > 0
    assert serving_report_json(first) == serving_report_json(second)


# ----------------------------------------------------------------------
# trace events
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def overload_result():
    payload = dict(SMALL_CONFIG, rate_rps=640.0)
    return ServingEngine(ServingSpec.from_payload(payload)).run()


def test_serving_trace_schema_validates(overload_result):
    assert validate_trace(overload_result.trace) == []


def test_serving_trace_carries_the_lifecycle_kinds(overload_result):
    kinds = overload_result.trace.event_kinds()
    for kind in (
        "request_arrive",
        "request_admit",
        "request_shed",
        "batch_form",
        "cache_hit",
        "cache_miss",
    ):
        assert kind in kinds, f"missing {kind}"


def test_shed_events_match_the_records(overload_result):
    shed_events = list(overload_result.trace.events_of("request_shed"))
    shed_records = [r for r in overload_result.records if r.outcome == "shed"]
    assert len(shed_events) == len(shed_records) > 0
    assert [e.subnet_id for e in shed_events] == [
        r.request_id for r in shed_records
    ]


# ----------------------------------------------------------------------
# CLI + config validation
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_keys():
    with pytest.raises(ConfigError):
        ServingSpec.from_payload({"spaec": "NLP.c3"})


def test_cli_bench_serving_writes_canonical_json(tmp_path, capsys):
    from repro.cli import main

    config = tmp_path / "serving.json"
    config.write_text(json.dumps(SMALL_CONFIG))
    out = tmp_path / "BENCH_serving.json"
    assert main(["bench-serving", str(config), "--json", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "serving"
    assert out.read_text() == serving_report_json(payload)
    text = capsys.readouterr().out
    assert "Serving bench" in text and "cache effect" in text


def test_cli_bench_serving_gates_against_baseline(tmp_path, capsys):
    from repro.cli import main

    config = tmp_path / "serving.json"
    config.write_text(json.dumps(SMALL_CONFIG))
    out = tmp_path / "BENCH_serving.json"
    assert main(["bench-serving", str(config), "--json", str(out)]) == 0
    # Second run gated against the first: identical, so it passes.
    assert (
        main(
            [
                "bench-serving",
                str(config),
                "--baseline",
                str(out),
            ]
        )
        == 0
    )
    assert "no regression" in capsys.readouterr().out


# ----------------------------------------------------------------------
# peek_residency: a pure observation
# ----------------------------------------------------------------------
def test_peek_residency_has_no_side_effects(tiny_supernet):
    engine = CopyEngine(gpu_id=0, bandwidth_bytes_per_ms=1_000_000.0)
    capacity = 4 * tiny_supernet.profile((0, 0)).param_bytes
    manager = StageContextManager(
        0, tiny_supernet, engine, capacity_bytes=capacity
    )
    ready = manager.prefetch([(0, 0)], now=0.0)
    before = (
        manager.hits,
        manager.misses,
        manager.fetch_bytes,
        manager.prefetch_requests,
    )
    # In flight at t=0, resident once the copy lands.
    assert manager.peek_residency([(0, 0), (1, 0)], now=0.0) == (0, 2)
    assert manager.peek_residency([(0, 0), (1, 0)], now=ready) == (1, 1)
    after = (
        manager.hits,
        manager.misses,
        manager.fetch_bytes,
        manager.prefetch_requests,
    )
    assert after == before
    assert not manager.is_resident((1, 0), now=ready)  # no fetch started
