"""What-if projection: lower bounds, ranking, and the ASP acceptance gate.

The replay scenarios are monotone relaxations of the observed task DAG,
so every projection must come in at or below the measured makespan.  The
``no_csp_constraint`` scenario is held to the paper-level acceptance
criterion: it must land within 5% of an *actually simulated* ASP run on
the same stream — the emulated dispatch is a faithful stand-in for the
engine's, not a loose analytic guess.
"""

import json

import pytest

from repro.baselines import naspipe, pipedream
from repro.engines.pipeline import PipelineEngine
from repro.experiments.common import ExperimentScale, make_stream
from repro.obs import SCENARIOS, project, rerun_projection, what_if_report
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

_EPS = 1e-6


def _run(supernet, config, count=8, gpus=2, batch=16, seed=7):
    stream = SubnetStream.sample(supernet.space, SeedSequenceTree(seed), count)
    engine = PipelineEngine(
        supernet, stream, config, ClusterSpec(num_gpus=gpus), batch=batch
    )
    return engine.run()


# ----------------------------------------------------------------------
# lower-bound property
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "config", [naspipe(), pipedream()], ids=lambda c: c.name
)
@pytest.mark.parametrize("gpus", [2, 4])
def test_every_replay_scenario_is_a_lower_bound(tiny_supernet, config, gpus):
    result = _run(tiny_supernet, config, gpus=gpus)
    measured = result.trace.makespan
    for scenario in SCENARIOS:
        projected = project(result.trace, scenario)
        assert projected <= measured + _EPS, (scenario, projected, measured)
        assert projected > 0


def test_stall_relaxations_never_beat_the_combined_one(small_supernet):
    """``perfect_predictor`` drops a superset of ``zero_fetch_stalls``'s
    stall classes, so it can only project lower."""
    result = _run(
        small_supernet, naspipe(cache_subnets=1.0, predictor=False),
        count=8, gpus=4,
    )
    zero_fetch = project(result.trace, "zero_fetch_stalls")
    perfect = project(result.trace, "perfect_predictor")
    assert perfect <= zero_fetch + _EPS
    assert zero_fetch <= project(result.trace, "as_scheduled") + _EPS


def test_unknown_scenario_rejected(tiny_supernet):
    result = _run(tiny_supernet, naspipe())
    with pytest.raises(KeyError):
        project(result.trace, "free_lunch")


# ----------------------------------------------------------------------
# report shape + determinism
# ----------------------------------------------------------------------
def test_what_if_report_structure_and_ranking(tiny_supernet):
    result = _run(tiny_supernet, naspipe())
    report = what_if_report(result.trace)
    assert report["schema"] == 1
    assert report["measured_makespan_ms"] == pytest.approx(
        result.trace.makespan
    )
    assert set(report["scenarios"]) == set(SCENARIOS)
    # key order is sorted — part of the byte-determinism contract
    assert list(report["scenarios"]) == sorted(report["scenarios"])
    for name, entry in report["scenarios"].items():
        assert entry["projected_makespan_ms"] <= result.trace.makespan + _EPS
        assert entry["savings_ms"] == pytest.approx(
            result.trace.makespan - entry["projected_makespan_ms"]
        )
    # ranked covers exactly the relaxations, best savings first
    assert sorted(report["ranked"]) == sorted(
        name for name in SCENARIOS if name != "as_scheduled"
    )
    savings = [
        report["scenarios"][name]["savings_ms"] for name in report["ranked"]
    ]
    assert savings == sorted(savings, reverse=True)


def test_what_if_report_is_byte_deterministic(tiny_supernet):
    first = what_if_report(_run(tiny_supernet, naspipe()).trace)
    second = what_if_report(_run(tiny_supernet, naspipe()).trace)
    dumps = lambda payload: json.dumps(  # noqa: E731
        payload, sort_keys=True, separators=(",", ":")
    )
    assert dumps(first) == dumps(second)


# ----------------------------------------------------------------------
# acceptance: the ASP bound tracks a real ASP simulation within 5%
# ----------------------------------------------------------------------
def test_no_csp_constraint_matches_simulated_asp_within_5pct():
    """Same supernet, same stream, 4 GPUs: project the CSP run's ASP
    bound and compare against an actually simulated ``sync="asp"`` run.
    Durations depend only on (subnet, stage, direction, config shape),
    so the two runs price identical task sets."""
    scale = ExperimentScale(subnets=12, num_gpus=4, seed=2022)
    space = get_search_space("NLP.c3")
    supernet = Supernet(space)
    cluster = ClusterSpec(num_gpus=4)

    csp_stream = make_stream("NLP.c3", scale, salt="NLP.c3/NASPipe")
    asp_stream = make_stream("NLP.c3", scale, salt="NLP.c3/NASPipe")
    csp = PipelineEngine(
        supernet, csp_stream, naspipe(), cluster, batch=32
    ).run()
    asp = PipelineEngine(
        Supernet(space),
        asp_stream,
        naspipe(
            name="NASPipe-asp", sync="asp", context="full", predictor=False
        ),
        cluster,
        batch=32,
    ).run()

    projected = project(csp.trace, "no_csp_constraint")
    assert asp.makespan_ms > 0
    relative_error = abs(projected - asp.makespan_ms) / asp.makespan_ms
    assert relative_error < 0.05, (projected, asp.makespan_ms)


# ----------------------------------------------------------------------
# empirical rerun projection
# ----------------------------------------------------------------------
def test_rerun_projection_diffs_two_real_runs():
    scale = ExperimentScale(subnets=6, num_gpus=2, seed=5)
    report = rerun_projection(
        "NLP.c3", "NASPipe", scale, knob="predictor", value=False, batch=16
    )
    assert report["schema"] == 1
    assert report["knob"] == "predictor" and report["value"] is False
    assert report["baseline"]["makespan_ms"] > 0
    assert report["changed"]["makespan_ms"] > 0
    assert report["deltas"]["makespan_ms"] == pytest.approx(
        report["changed"]["makespan_ms"] - report["baseline"]["makespan_ms"]
    )
    # every delta key exists in both summaries and is numeric
    for key, value in report["deltas"].items():
        assert isinstance(value, (int, float))
        assert key in report["baseline"] and key in report["changed"]
