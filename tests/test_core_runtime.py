"""CspStageState (Algorithm 1 bookkeeping) and Task tests."""

import pytest

from repro.core.runtime import CspStageState
from repro.core.task import Task, TaskKind
from repro.errors import SchedulingError
from repro.supernet.subnet import Subnet


def test_task_properties_and_str():
    fwd = Task(3, 1, TaskKind.FORWARD)
    bwd = Task(3, 1, TaskKind.BACKWARD)
    assert fwd.is_forward and not fwd.is_backward
    assert bwd.is_backward and not bwd.is_forward
    assert str(fwd) == "SN3.fwd@P1"
    assert bwd.sort_key < fwd.sort_key  # "bwd" sorts before "fwd"
    assert Task(0, 0).sort_key < Task(1, 0).sort_key


def test_queue_kept_sorted_by_id():
    state = CspStageState(stage=0)
    state.enqueue_forward(5)
    state.enqueue_forward(2)
    state.enqueue_forward(9)
    assert state.queue == [2, 5, 9]


def test_duplicate_arrivals_raise():
    state = CspStageState(stage=0)
    state.enqueue_forward(1)
    with pytest.raises(SchedulingError):
        state.enqueue_forward(1)
    state.enqueue_backward(1)
    with pytest.raises(SchedulingError):
        state.enqueue_backward(1)


def test_pop_forward_moves_to_busy():
    state = CspStageState(stage=0)
    state.enqueue_forward(4)
    state.pop_forward(4)
    assert state.queue == []
    assert 4 in state.busy_subnets
    with pytest.raises(SchedulingError):
        state.pop_forward(4)


def test_backward_ready_lowest_first():
    state = CspStageState(stage=0)
    assert state.pop_backward() is None
    state.enqueue_backward(7)
    state.enqueue_backward(3)
    assert state.pop_backward() == 3
    assert state.pop_backward() == 7


def test_finish_backward_prunes_by_frontier():
    state = CspStageState(stage=0)
    for sid in (0, 1, 2):
        state.enqueue_forward(sid)
        state.pop_forward(sid)
    state.finish_backward(0, frontier=0)
    state.finish_backward(1, frontier=0)
    assert state.stage_finished == {0, 1}
    state.finish_backward(2, frontier=2)
    assert state.stage_finished == {2}
    assert state.busy_subnets == set()


def test_retrieve_and_subnet_lookup():
    state = CspStageState(stage=1)
    subnet = Subnet(0, (1, 2))
    state.retrieve(subnet)
    assert state.subnet(0) is subnet
    with pytest.raises(SchedulingError):
        state.subnet(1)


def test_has_work():
    state = CspStageState(stage=0)
    assert not state.has_work
    state.enqueue_forward(0)
    assert state.has_work
