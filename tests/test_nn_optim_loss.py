"""Optimizer and loss tests."""

import numpy as np
import pytest

from repro.nn.loss import cross_entropy_with_logits, softmax
from repro.nn.optim import SGD, MomentumSGD


def test_sgd_basic_step():
    params = {"w": np.ones(3, np.float32)}
    grads = {"w": np.full(3, 2.0, np.float32)}
    updated = SGD(0.5).apply((0, 0), params, grads)
    assert np.allclose(updated["w"], 0.0)
    # inputs untouched
    assert np.allclose(params["w"], 1.0)


def test_sgd_rejects_bad_lr():
    with pytest.raises(ValueError):
        SGD(0.0)
    with pytest.raises(ValueError):
        MomentumSGD(momentum=1.0)


def test_momentum_accumulates_velocity():
    opt = MomentumSGD(learning_rate=1.0, momentum=0.5)
    params = {"w": np.zeros(1, np.float32)}
    grads = {"w": np.ones(1, np.float32)}
    p1 = opt.apply((0, 0), params, grads)
    # v1 = 1 -> w = -1
    assert np.allclose(p1["w"], -1.0)
    p2 = opt.apply((0, 0), p1, grads)
    # v2 = 0.5*1 + 1 = 1.5 -> w = -2.5
    assert np.allclose(p2["w"], -2.5)


def test_momentum_state_keyed_per_layer():
    opt = MomentumSGD(learning_rate=1.0, momentum=0.9)
    params = {"w": np.zeros(1, np.float32)}
    grads = {"w": np.ones(1, np.float32)}
    opt.apply((0, 0), params, grads)
    # A different layer starts from zero velocity.
    fresh = opt.apply((1, 0), params, grads)
    assert np.allclose(fresh["w"], -1.0)


def test_momentum_layerwise_commit_order_invariance():
    """Committing two different layers in either order yields identical
    bits — the property that lets CSP commit per-stage without changing
    the sequential result."""
    def run(order):
        opt = MomentumSGD(0.3, 0.9)
        state = {
            (0, 0): {"w": np.ones(2, np.float32)},
            (1, 0): {"w": np.full(2, 2.0, np.float32)},
        }
        grads = {"w": np.full(2, 0.5, np.float32)}
        for layer in order:
            state[layer] = opt.apply(layer, state[layer], grads)
        return state

    a = run([(0, 0), (1, 0)])
    b = run([(1, 0), (0, 0)])
    for layer in a:
        assert np.array_equal(a[layer]["w"], b[layer]["w"])


def test_updates_stay_float32():
    opt = MomentumSGD(0.3, 0.9)
    params = {"w": np.ones(4, np.float32)}
    grads = {"w": np.full(4, 0.1, np.float32)}
    for _ in range(5):
        params = opt.apply((0, 0), params, grads)
        assert params["w"].dtype == np.float32


# ----------------------------------------------------------------------
# loss
# ----------------------------------------------------------------------
def test_softmax_rows_sum_to_one():
    rng = np.random.Generator(np.random.PCG64(3))
    logits = rng.standard_normal((5, 7)).astype(np.float32) * 10
    probs = softmax(logits)
    assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)
    assert (probs >= 0).all()


def test_cross_entropy_perfect_prediction_near_zero():
    logits = np.full((2, 4), -20.0, np.float32)
    logits[0, 1] = 20.0
    logits[1, 2] = 20.0
    loss, grad = cross_entropy_with_logits(logits, np.array([1, 2]))
    assert loss < 1e-4
    assert grad.shape == logits.shape


def test_cross_entropy_uniform_is_log_classes():
    logits = np.zeros((3, 8), np.float32)
    loss, _ = cross_entropy_with_logits(logits, np.array([0, 1, 2]))
    assert np.isclose(loss, np.log(8), atol=1e-5)


def test_cross_entropy_gradient_numerical():
    rng = np.random.Generator(np.random.PCG64(5))
    logits = rng.standard_normal((4, 6)).astype(np.float32)
    targets = np.array([0, 2, 5, 3])
    _loss, grad = cross_entropy_with_logits(logits, targets)
    eps = 1e-3
    for i in range(4):
        for j in range(6):
            original = logits[i, j]
            logits[i, j] = original + eps
            up, _ = cross_entropy_with_logits(logits, targets)
            logits[i, j] = original - eps
            down, _ = cross_entropy_with_logits(logits, targets)
            logits[i, j] = original
            numeric = (float(up) - float(down)) / (2 * eps)
            assert abs(numeric - grad[i, j]) < 5e-3


def test_cross_entropy_rejects_bad_shape():
    with pytest.raises(ValueError):
        cross_entropy_with_logits(np.zeros(3, np.float32), np.array([0]))


# ----------------------------------------------------------------------
# gradient clipping
# ----------------------------------------------------------------------
def test_clip_gradients_noop_under_norm():
    from repro.nn.optim import clip_gradients

    grads = {"w": np.full(4, 0.1, np.float32)}
    clipped = clip_gradients(grads, max_norm=10.0)
    assert np.array_equal(clipped["w"], grads["w"])


def test_clip_gradients_scales_to_norm():
    from repro.nn.optim import clip_gradients

    grads = {"w": np.full(4, 3.0, np.float32), "b": np.full(4, 4.0, np.float32)}
    clipped = clip_gradients(grads, max_norm=1.0)
    total = sum(float((g.astype(np.float64) ** 2).sum()) for g in clipped.values())
    assert np.sqrt(total) == pytest.approx(1.0, rel=1e-4)
    # Direction preserved.
    assert clipped["b"][0] / clipped["w"][0] == pytest.approx(4.0 / 3.0, rel=1e-4)


def test_optimizers_apply_clipping():
    big = {"w": np.full(2, 1e6, np.float32)}
    params = {"w": np.zeros(2, np.float32)}
    clipped = SGD(1.0, max_grad_norm=1.0).apply((0, 0), params, big)
    assert np.abs(clipped["w"]).max() <= 1.0
    clipped_m = MomentumSGD(1.0, 0.0, max_grad_norm=1.0).apply((0, 0), params, big)
    assert np.abs(clipped_m["w"]).max() <= 1.0


def test_clip_validation():
    with pytest.raises(ValueError):
        SGD(0.1, max_grad_norm=0.0)
    with pytest.raises(ValueError):
        MomentumSGD(0.1, 0.9, max_grad_norm=-1.0)
