"""Ranking-stability experiment and CSV export tests."""

import dataclasses

import pytest

from repro.experiments import ranking
from repro.experiments.export import rows_to_csv, write_csv


@pytest.fixture(scope="module")
def ranking_rows():
    return ranking.run(panel_size=10, steps=24, num_blocks=16, seed=5)


def test_csp_ranking_perfectly_stable(ranking_rows):
    csp = next(r for r in ranking_rows if r.system.startswith("CSP"))
    assert csp.identical_scores
    assert csp.kendall_tau == pytest.approx(1.0)


def test_non_csp_rankings_shuffle(ranking_rows):
    for row in ranking_rows:
        if row.system.startswith("CSP"):
            continue
        assert not row.identical_scores, row.system


def test_format_text(ranking_rows):
    text = ranking.format_text(ranking_rows)
    assert "Kendall" in text
    assert "True" in text


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _Row:
    space: str
    value: float
    batch: int
    tags: list


def test_rows_to_csv():
    text = rows_to_csv([_Row("NLP.c1", 1.5, 192, ["a", "b"])])
    lines = text.strip().splitlines()
    assert lines[0] == "space,value,batch,tags"
    assert lines[1] == "NLP.c1,1.5,192,a;b"


def test_rows_to_csv_empty_and_type_errors():
    assert rows_to_csv([]) == ""
    with pytest.raises(TypeError):
        rows_to_csv([{"not": "a dataclass"}])


def test_write_csv(tmp_path):
    path = write_csv([_Row("CV.c2", 2.0, 64, [])], tmp_path / "out.csv")
    assert path.read_text().startswith("space,value,batch")


def test_export_real_experiment_rows(tmp_path):
    from repro.experiments import table5

    rows = table5.run()
    text = rows_to_csv(rows)
    assert "conv3x1" in text
    assert text.count("\n") == len(rows) + 1
