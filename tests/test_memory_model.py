"""Memory model tests: batch feasibility, OOM cases, Table 2 shapes."""

import pytest

from repro.baselines import gpipe, naspipe, pipedream, vpipe
from repro.memory_model import (
    activation_bytes_per_sample,
    max_feasible_batch,
    memory_breakdown,
    resident_param_bytes_per_stage,
)
from repro.sim.cluster import ClusterSpec
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec(num_gpus=8)


def _supernet(name):
    return Supernet(get_search_space(name))


def test_full_context_residency_scales_with_supernet(cluster):
    c1 = resident_param_bytes_per_stage(_supernet("NLP.c1"), gpipe(), 8)
    c3 = resident_param_bytes_per_stage(_supernet("NLP.c3"), gpipe(), 8)
    assert c1 > c3 * 2.5  # 72 vs 24 choices per block


def test_cached_residency_independent_of_choices(cluster):
    c1 = resident_param_bytes_per_stage(_supernet("NLP.c1"), naspipe(), 8)
    c3 = resident_param_bytes_per_stage(_supernet("NLP.c3"), naspipe(), 8)
    # A subnet's size does not depend on how many candidates exist.
    assert c1 == pytest.approx(c3, rel=0.1)


def test_naspipe_cache_is_three_subnets(cluster):
    one = resident_param_bytes_per_stage(
        _supernet("NLP.c1"), vpipe(), 8
    )
    three = resident_param_bytes_per_stage(_supernet("NLP.c1"), naspipe(), 8)
    assert three == pytest.approx(3 * one, rel=0.05)


def test_nlp_c0_oom_for_full_context_systems(cluster):
    supernet = _supernet("NLP.c0")
    assert max_feasible_batch(supernet, gpipe(), cluster) is None
    assert max_feasible_batch(supernet, pipedream(), cluster) is None
    assert max_feasible_batch(supernet, naspipe(), cluster) is not None
    assert max_feasible_batch(supernet, vpipe(), cluster) is not None


def test_batch_ordering_matches_table2(cluster):
    """NASPipe ≥ VPipe > GPipe > PipeDream on NLP.c1 (Table 2)."""
    supernet = _supernet("NLP.c1")
    batches = {
        name: max_feasible_batch(supernet, config, cluster)
        for name, config in (
            ("naspipe", naspipe()),
            ("vpipe", vpipe()),
            ("gpipe", gpipe()),
            ("pipedream", pipedream()),
        )
    }
    assert batches["naspipe"] == supernet.space.max_batch
    assert batches["vpipe"] == supernet.space.max_batch
    assert batches["gpipe"] is not None
    assert batches["pipedream"] is not None
    assert batches["gpipe"] < batches["naspipe"]
    assert batches["pipedream"] < batches["gpipe"]


def test_baseline_batch_grows_as_space_shrinks(cluster):
    """GPipe's supported batch grows from c1 to c3 (Table 2's 32→128)."""
    batches = [
        max_feasible_batch(_supernet(name), gpipe(), cluster)
        for name in ("NLP.c1", "NLP.c2", "NLP.c3")
    ]
    assert batches[0] < batches[1] <= batches[2]


def test_batches_are_multiples_of_granularity(cluster):
    batch = max_feasible_batch(_supernet("NLP.c2"), gpipe(), cluster)
    assert batch % 4 == 0


def test_breakdown_components_positive(cluster):
    supernet = _supernet("CV.c1")
    breakdown = memory_breakdown(supernet, naspipe(), cluster, batch=32)
    assert breakdown.param_bytes > 0
    assert breakdown.stash_bytes > 0
    assert breakdown.working_bytes > 0
    assert breakdown.total == (
        breakdown.param_bytes + breakdown.stash_bytes + breakdown.working_bytes
    )


def test_no_recompute_costs_more_activation(cluster):
    supernet = _supernet("NLP.c1")
    with_recompute = activation_bytes_per_sample(supernet, gpipe(), 8)
    without = activation_bytes_per_sample(supernet, pipedream(), 8)
    assert without > with_recompute


def test_feasible_batch_monotone_in_gpu_memory():
    supernet = _supernet("NLP.c2")
    small = ClusterSpec(num_gpus=8, gpu_memory_bytes=9 * 10**9)
    large = ClusterSpec(num_gpus=8, gpu_memory_bytes=13 * 10**9)
    b_small = max_feasible_batch(supernet, gpipe(), small)
    b_large = max_feasible_batch(supernet, gpipe(), large)
    assert (b_small or 0) <= (b_large or 0)
