"""Tests for the versioned, access-logged parameter store."""

import numpy as np
import pytest

from repro.errors import SearchSpaceError
from repro.nn.parameter_store import AccessKind, ParameterStore


def _factory(layer):
    block, choice = layer
    rng = np.random.Generator(np.random.PCG64(block * 1000 + choice))
    return {"weight": rng.standard_normal((4, 4)).astype(np.float32)}


def test_lazy_materialization_and_len():
    store = ParameterStore(_factory)
    assert len(store) == 0
    store.materialize((0, 1))
    assert len(store) == 1
    assert (0, 1) in store
    assert (0, 2) not in store


def test_read_returns_snapshot_not_alias():
    store = ParameterStore(_factory)
    snapshot = store.read((0, 0), subnet_id=0)
    snapshot["weight"][...] = 0.0
    assert not np.array_equal(store.materialize((0, 0))["weight"], snapshot["weight"])


def test_write_updates_in_place_and_bumps_version():
    store = ParameterStore(_factory)
    before = store.read((1, 1), subnet_id=0)
    assert store.version((1, 1)) == 0
    store.write((1, 1), 0, {"weight": np.zeros((4, 4), np.float32)})
    assert store.version((1, 1)) == 1
    after = store.read((1, 1), subnet_id=1)
    assert np.all(after["weight"] == 0.0)
    assert not np.array_equal(before["weight"], after["weight"])


def test_write_rejects_mismatched_names():
    store = ParameterStore(_factory)
    store.materialize((0, 0))
    with pytest.raises(SearchSpaceError):
        store.write((0, 0), 0, {"bias": np.zeros(4, np.float32)})


def test_factory_must_produce_float32():
    def bad(layer):
        return {"weight": np.zeros((2, 2), np.float64)}

    store = ParameterStore(bad)
    with pytest.raises(SearchSpaceError):
        store.materialize((0, 0))


def test_access_log_records_order_and_renders_table4_style():
    store = ParameterStore(_factory)
    layer = (3, 2)
    store.read(layer, subnet_id=2)
    store.write(layer, 2, store.read(layer, subnet_id=2))
    # The extra read above logs 2F twice; use a fresh store for clarity.
    store = ParameterStore(_factory)
    for sid in (2, 5, 7):
        snapshot = store.read(layer, sid)
        store.write(layer, sid, snapshot)
    assert store.access_order_string(layer) == "2F-2B-5F-5B-7F-7B"
    kinds = [record.kind for record in store.access_order(layer)]
    assert kinds == [
        AccessKind.READ,
        AccessKind.WRITE,
    ] * 3


def test_access_log_can_be_disabled():
    store = ParameterStore(_factory, record_accesses=False)
    store.read((0, 0), 0)
    assert store.access_log == []


def test_digest_detects_single_bit_change():
    store = ParameterStore(_factory)
    store.materialize((0, 0))
    store.materialize((0, 1))
    digest = store.digest()
    weights = store.materialize((0, 0))["weight"]
    view = weights.view(np.uint32)
    view[0, 0] ^= 1  # flip one mantissa bit
    assert store.digest() != digest


def test_digest_independent_of_materialization_order():
    a = ParameterStore(_factory)
    b = ParameterStore(_factory)
    a.materialize((0, 0))
    a.materialize((5, 3))
    b.materialize((5, 3))
    b.materialize((0, 0))
    assert a.digest() == b.digest()


def test_digest_layer_filter():
    store = ParameterStore(_factory)
    store.materialize((0, 0))
    store.materialize((1, 0))
    assert store.digest([(0, 0)]) != store.digest([(1, 0)])
    assert store.digest([(0, 0)]) == store.digest([(0, 0)])


def test_checkpoint_roundtrip(tmp_path):
    store = ParameterStore(_factory)
    store.materialize((0, 0))
    store.write((0, 0), 0, {"weight": np.full((4, 4), 7.0, np.float32)})
    store.materialize((3, 2))
    digest = store.digest()
    path = tmp_path / "ckpt.npz"
    assert store.save(path) == 2

    fresh = ParameterStore(_factory)
    assert fresh.load(path) == 2
    assert fresh.digest() == digest
    # Versions bumped on restore.
    assert fresh.version((0, 0)) == 1


def test_checkpoint_shape_mismatch_rejected(tmp_path):
    store = ParameterStore(_factory)
    store.materialize((0, 0))
    path = tmp_path / "ckpt.npz"
    store.save(path)

    def other_factory(layer):
        return {"weight": np.zeros((2, 2), np.float32)}

    wrong = ParameterStore(other_factory)
    with pytest.raises(SearchSpaceError):
        wrong.load(path)


def test_checkpoint_name_mismatch_rejected(tmp_path):
    store = ParameterStore(_factory)
    store.materialize((0, 0))
    path = tmp_path / "ckpt.npz"
    store.save(path)

    def other_factory(layer):
        return {"kernel": np.zeros((4, 4), np.float32)}

    wrong = ParameterStore(other_factory)
    with pytest.raises(SearchSpaceError):
        wrong.load(path)
