"""Replay manifest tests: record, serialise, replay, detect tampering."""

import pytest

from repro.errors import ReproducibilityError
from repro.replay import RunManifest, execute_manifest, record_run, verify_replay

_KWARGS = dict(
    space_overrides={"num_blocks": 12, "functional_width": 16},
    num_gpus=4,
    seed=11,
    steps=16,
    batch=32,
)


@pytest.fixture(scope="module")
def manifest():
    return record_run("NLP.c3", "NASPipe", **_KWARGS)


def test_record_fills_outcome(manifest):
    assert manifest.digest is not None
    assert len(manifest.losses) == 16
    assert sorted(manifest.completion_order) == list(range(16))
    assert manifest.makespan_ms > 0


def test_verify_replay_passes(manifest):
    result = verify_replay(manifest)
    assert result.digest == manifest.digest


def test_json_roundtrip(manifest, tmp_path):
    path = tmp_path / "run.json"
    manifest.save(path)
    loaded = RunManifest.load(path)
    assert loaded == manifest
    verify_replay(loaded)


def test_tampered_digest_detected(manifest):
    tampered = RunManifest.from_json(manifest.to_json())
    tampered.digest = "0" * 64
    with pytest.raises(ReproducibilityError):
        verify_replay(tampered)


def test_tampered_loss_detected(manifest):
    tampered = RunManifest.from_json(manifest.to_json())
    key = next(iter(tampered.losses))
    tampered.losses[key] += 1.0
    with pytest.raises(ReproducibilityError):
        verify_replay(tampered)


def test_unrecorded_manifest_rejected(manifest):
    blank = RunManifest.from_json(manifest.to_json())
    blank.digest = None
    with pytest.raises(ReproducibilityError):
        verify_replay(blank)


def test_version_gate(manifest):
    payload = manifest.to_json().replace('"version": 1', '"version": 99')
    with pytest.raises(ReproducibilityError):
        RunManifest.from_json(payload)


def test_non_csp_manifest_still_replays_deterministically():
    """BSP is not reproducible *across cluster sizes*, but any single
    configuration replays bitwise — determinism and causal reproducibility
    are different properties, and replay only needs the former."""
    manifest = record_run("NLP.c3", "GPipe", **_KWARGS)
    verify_replay(manifest)


def test_different_seeds_give_different_digests():
    a = record_run("NLP.c3", "NASPipe", **{**_KWARGS, "seed": 1})
    b = record_run("NLP.c3", "NASPipe", **{**_KWARGS, "seed": 2})
    assert a.digest != b.digest


# ----------------------------------------------------------------------
# faulted-run manifests (repro.ft)
# ----------------------------------------------------------------------
_FAULT_KWARGS = dict(
    space_overrides={"num_blocks": 8, "functional_width": 16},
    num_gpus=4,
    seed=11,
    steps=16,
    checkpoint_interval=8,
)


@pytest.fixture(scope="module")
def faulted_manifest():
    from repro.ft import FaultEvent, FaultSchedule

    schedule = FaultSchedule([FaultEvent("gpu_crash", 400.0, target=1)])
    return record_run(
        "NLP.c3",
        "NASPipe",
        fault_events=schedule.to_payload(),
        **_FAULT_KWARGS,
    )


def test_faulted_manifest_records_recovery_outcome(faulted_manifest):
    assert faulted_manifest.fault_events
    assert faulted_manifest.attempts == 2
    assert faulted_manifest.checkpoint_cuts == [8]
    assert faulted_manifest.digest is not None
    assert len(faulted_manifest.completion_order) == 16


def test_faulted_manifest_verifies_bitwise(faulted_manifest):
    result = verify_replay(faulted_manifest)
    assert result.num_attempts == 2


def test_faulted_manifest_json_roundtrip(faulted_manifest, tmp_path):
    path = tmp_path / "faulted.json"
    faulted_manifest.save(path)
    loaded = RunManifest.load(path)
    assert loaded == faulted_manifest
    verify_replay(loaded)


def test_faulted_manifest_matches_fault_free_digest(faulted_manifest):
    """repro-check for faulted runs: the crash-restart history lands on
    the same bits as the never-crashed manifest."""
    clean = record_run(
        "NLP.c3",
        "NASPipe",
        **{k: v for k, v in _FAULT_KWARGS.items() if k != "checkpoint_interval"},
    )
    assert faulted_manifest.digest == clean.digest


def test_completion_length_mismatch_fails_loudly(manifest):
    tampered = RunManifest.from_json(manifest.to_json())
    tampered.completion_order = tampered.completion_order[:-2]
    del tampered.losses[next(iter(tampered.losses))]
    with pytest.raises(ReproducibilityError, match="not the same length"):
        verify_replay(tampered)


def test_loss_key_set_mismatch_fails_loudly(manifest):
    tampered = RunManifest.from_json(manifest.to_json())
    removed = next(iter(tampered.losses))
    loss = tampered.losses.pop(removed)
    tampered.losses["999"] = loss  # same count, different subnet ids
    with pytest.raises(ReproducibilityError, match="loss set differs"):
        verify_replay(tampered)


def test_tampered_checkpoint_cuts_detected(faulted_manifest):
    tampered = RunManifest.from_json(faulted_manifest.to_json())
    tampered.checkpoint_cuts = [4]
    with pytest.raises(ReproducibilityError, match="checkpoint cuts"):
        verify_replay(tampered)
