"""Replay manifest tests: record, serialise, replay, detect tampering."""

import pytest

from repro.errors import ReproducibilityError
from repro.replay import RunManifest, execute_manifest, record_run, verify_replay

_KWARGS = dict(
    space_overrides={"num_blocks": 12, "functional_width": 16},
    num_gpus=4,
    seed=11,
    steps=16,
    batch=32,
)


@pytest.fixture(scope="module")
def manifest():
    return record_run("NLP.c3", "NASPipe", **_KWARGS)


def test_record_fills_outcome(manifest):
    assert manifest.digest is not None
    assert len(manifest.losses) == 16
    assert sorted(manifest.completion_order) == list(range(16))
    assert manifest.makespan_ms > 0


def test_verify_replay_passes(manifest):
    result = verify_replay(manifest)
    assert result.digest == manifest.digest


def test_json_roundtrip(manifest, tmp_path):
    path = tmp_path / "run.json"
    manifest.save(path)
    loaded = RunManifest.load(path)
    assert loaded == manifest
    verify_replay(loaded)


def test_tampered_digest_detected(manifest):
    tampered = RunManifest.from_json(manifest.to_json())
    tampered.digest = "0" * 64
    with pytest.raises(ReproducibilityError):
        verify_replay(tampered)


def test_tampered_loss_detected(manifest):
    tampered = RunManifest.from_json(manifest.to_json())
    key = next(iter(tampered.losses))
    tampered.losses[key] += 1.0
    with pytest.raises(ReproducibilityError):
        verify_replay(tampered)


def test_unrecorded_manifest_rejected(manifest):
    blank = RunManifest.from_json(manifest.to_json())
    blank.digest = None
    with pytest.raises(ReproducibilityError):
        verify_replay(blank)


def test_version_gate(manifest):
    payload = manifest.to_json().replace('"version": 1', '"version": 99')
    with pytest.raises(ReproducibilityError):
        RunManifest.from_json(payload)


def test_non_csp_manifest_still_replays_deterministically():
    """BSP is not reproducible *across cluster sizes*, but any single
    configuration replays bitwise — determinism and causal reproducibility
    are different properties, and replay only needs the former."""
    manifest = record_run("NLP.c3", "GPipe", **_KWARGS)
    verify_replay(manifest)


def test_different_seeds_give_different_digests():
    a = record_run("NLP.c3", "NASPipe", **{**_KWARGS, "seed": 1})
    b = record_run("NLP.c3", "NASPipe", **{**_KWARGS, "seed": 2})
    assert a.digest != b.digest
