"""Health monitoring, deterministic mitigation, weighted rebalancing."""

from types import SimpleNamespace

import pytest

from repro.baselines import naspipe
from repro.engines.pipeline import PipelineEngine
from repro.errors import ConfigError, PartitionError
from repro.ft import (
    DegradationManager,
    DegradationPolicy,
    FaultEvent,
    FaultSchedule,
    HealthMonitor,
    as_manager,
    run_uninterrupted,
)
from repro.obs import validate_trace
from repro.obs.events import EVENT_SCHEMAS
from repro.partition.balanced import (
    balanced_partition,
    weighted_balanced_partition,
)
from repro.sim.trace import ExecutionTrace, TraceEvent
from repro.supernet.search_space import get_search_space


@pytest.fixture(scope="module")
def deg_space():
    return get_search_space("NLP.c3").scaled(
        name="deg", num_blocks=8, functional_width=16
    )


@pytest.fixture(scope="module")
def deg_baseline(deg_space):
    return run_uninterrupted(deg_space, naspipe(), num_gpus=4, steps=20, seed=11)


# ----------------------------------------------------------------------
# policy model
# ----------------------------------------------------------------------
def test_policy_validation():
    DegradationPolicy()  # defaults are self-consistent
    with pytest.raises(ConfigError):
        DegradationPolicy(ewma_alpha=0.0)
    with pytest.raises(ConfigError):
        DegradationPolicy(ewma_alpha=1.5)
    with pytest.raises(ConfigError):
        DegradationPolicy(min_samples=0)
    with pytest.raises(ConfigError):
        DegradationPolicy(straggler_enter_ratio=1.2, straggler_exit_ratio=1.4)
    with pytest.raises(ConfigError):
        DegradationPolicy(link_enter_ratio=0.7, link_exit_ratio=0.5)
    with pytest.raises(ConfigError):
        DegradationPolicy(stall_enter_ratio=0.2, stall_exit_ratio=0.4)
    with pytest.raises(ConfigError):
        DegradationPolicy(min_window=0)
    with pytest.raises(ConfigError):
        DegradationPolicy(window_shrink=-1)
    with pytest.raises(ConfigError):
        DegradationPolicy(weight_quantum=0.0)
    with pytest.raises(ConfigError):
        DegradationPolicy(max_weight=0.5)


def test_policy_payload_round_trip():
    policy = DegradationPolicy(straggler_enter_ratio=2.0, min_window=3)
    assert DegradationPolicy.from_payload(policy.to_payload()) == policy
    with pytest.raises(ConfigError) as exc:
        DegradationPolicy.from_payload({"no_such_knob": 1})
    assert "no_such_knob" in str(exc.value)


def test_as_manager_coercions():
    assert as_manager(None) is None
    default = as_manager(True)
    assert isinstance(default, DegradationManager)
    assert default.policy == DegradationPolicy()
    policy = DegradationPolicy(min_window=3)
    assert as_manager(policy).policy is policy
    manager = DegradationManager(policy)
    assert as_manager(manager) is manager
    assert as_manager(policy.to_payload()).policy == policy
    with pytest.raises(ConfigError):
        as_manager("yes please")


# ----------------------------------------------------------------------
# the monitor, fed synthetic events
# ----------------------------------------------------------------------
def _monitor(policy=None, slice_ms=10.0):
    transitions = []
    monitor = HealthMonitor(
        policy or DegradationPolicy(),
        slice_cost_fn=lambda stage, subnet_id, direction: slice_ms,
        link_params_fn=lambda link: (100.0, 0.5),
        on_transition=lambda *args: transitions.append(args),
    )
    return monitor, transitions


def _task(monitor, duration, t=0.0, stage=0):
    monitor.observe(
        TraceEvent(
            "task_dispatch",
            t,
            stage=stage,
            subnet_id=1,
            attrs=(("start", t), ("end", t + duration), ("direction", "fwd")),
        )
    )


def test_monitor_waits_for_min_samples():
    monitor, transitions = _monitor()
    for i in range(3):
        _task(monitor, 50.0, float(i))  # ratio 5: flagrant, but unproven
    assert transitions == []
    _task(monitor, 50.0, 3.0)
    assert [t[:3] for t in transitions] == [("stage", 0, "straggler")]


def test_monitor_hysteresis_band_holds_state():
    monitor, transitions = _monitor()
    # inside the band (exit 1.25 < 1.4 < enter 1.6): never unhealthy
    for i in range(8):
        _task(monitor, 14.0, float(i))
    assert transitions == []
    # cross the enter threshold
    for i in range(8):
        _task(monitor, 20.0, float(8 + i))
    assert monitor.status[("stage", 0)] == "straggler"
    assert transitions[-1][:3] == ("stage", 0, "straggler")
    count = len(transitions)
    # decay back into the band: hysteresis keeps the straggler status
    while monitor.estimate("stage", 0) > 1.45:
        _task(monitor, 14.0, 99.0)
    assert monitor.status[("stage", 0)] == "straggler"
    assert len(transitions) == count
    # only the exit threshold flips it back
    while monitor.estimate("stage", 0) > 1.25:
        _task(monitor, 10.0, 99.0)
    assert monitor.status[("stage", 0)] == "healthy"
    assert transitions[-1][:3] == ("stage", 0, "healthy")


def test_monitor_ignores_unprofiled_slices_and_own_plane():
    monitor, transitions = _monitor(slice_ms=0.0)
    for i in range(8):
        _task(monitor, 50.0, float(i))  # no nominal => no estimate
    assert monitor.estimate("stage", 0) is None
    # the kinds the mitigation plane itself emits are skipped outright
    monitor.observe(TraceEvent("health_report", 0.0))
    monitor.observe(TraceEvent("mitigation_apply", 0.0))
    monitor.observe(TraceEvent("rebalance", 0.0))
    assert transitions == []


# ----------------------------------------------------------------------
# the manager, bound to a stub engine
# ----------------------------------------------------------------------
def _fake_engine(stages=4, window=4):
    profile = SimpleNamespace(fwd_ms_ref=10.0, bwd_ms_ref=20.0)
    return SimpleNamespace(
        stages=stages,
        trace=ExecutionTrace(num_gpus=stages),
        sim=SimpleNamespace(now=0.0),
        policy=SimpleNamespace(window=window),
        admission_cap=None,
        contexts=[SimpleNamespace(throttled=False) for _ in range(stages)],
        cluster=SimpleNamespace(
            spec=SimpleNamespace(link_parameters=lambda a, b: (100.0, 0.5))
        ),
        runs={7: object()},
        stage_layers=lambda subnet_id, stage: ["block"],
        supernet=SimpleNamespace(
            profile=lambda layer: profile,
            batch_time_scale=lambda batch: 1.0,
        ),
        config=SimpleNamespace(recompute=False),
        batch=4,
    )


def _dispatch(engine, stage, duration, t):
    engine.sim.now = t
    engine.trace.record_event(
        "task_dispatch",
        t,
        stage=stage,
        subnet_id=7,
        start=t,
        end=t + duration,
        direction="fwd",
    )


def _transfer(engine, t, ratio):
    # 100 bytes at nominal 100 B/ms with 0.5 ms latency: a ratio-r
    # transfer spends 1/r ms on the wire
    engine.sim.now = t
    engine.trace.record_event(
        "nic_transfer",
        t,
        stage=0,
        src=0,
        dst=1,
        nbytes=100,
        arrive=t + 0.5 + 1.0 / ratio,
    )


def test_manager_is_single_use():
    manager = DegradationManager()
    engine = _fake_engine()
    manager.bind(engine)
    assert manager.monitor.observe in engine.trace.listeners
    with pytest.raises(ConfigError):
        manager.bind(engine)


def test_degraded_link_caps_admission_then_lifts():
    manager = DegradationManager()
    engine = _fake_engine(window=4)
    manager.bind(engine)
    t = 0.0
    for _ in range(4):
        t += 5.0
        _transfer(engine, t, 0.1)
    assert engine.admission_cap == 2  # window 4 shrunk by 2, floor 2
    # healthy transfers drive the EWMA past the exit ratio
    for _ in range(6):
        t += 5.0
        _transfer(engine, t, 1.0)
    assert engine.admission_cap is None
    caps = [a for a in manager.actions if a["action"] == "admission_cap"]
    assert [c["active"] for c in caps] == [True, False]
    counts = engine.trace.event_counts()
    assert counts["health_report"] == 2
    assert counts["mitigation_apply"] == 2


def test_straggler_rebalances_but_never_caps_admission():
    manager = DegradationManager()
    engine = _fake_engine()
    manager.bind(engine)
    t = 0.0
    for _ in range(4):
        t += 10.0
        _dispatch(engine, 1, 25.0, t)  # 2.5x the 10 ms nominal
    assert manager.stage_weights == {1: 2.5}  # snapped to the 0.25 quantum
    assert manager.partition_weights() == [1.0, 2.5, 1.0, 1.0]
    # backpressure exempts compute stragglers: rebalancing handles them
    assert engine.admission_cap is None
    rebalances = [a for a in manager.actions if a["action"] == "rebalance"]
    assert rebalances[-1]["target"] == 1
    assert rebalances[-1]["value"] == 2.5
    assert "rebalance" in engine.trace.event_counts()
    # recovery resets the weight and the fast path returns None
    for _ in range(12):
        t += 10.0
        _dispatch(engine, 1, 10.0, t)
    assert manager.partition_weights() is None
    assert manager.actions[-1]["action"] == "rebalance"
    assert manager.actions[-1]["active"] is False


def test_stalled_copy_engine_throttles_prefetch():
    manager = DegradationManager()
    engine = _fake_engine()
    manager.bind(engine)
    t = 0.0
    for _ in range(4):
        t += 10.0
        engine.sim.now = t
        engine.trace.record_event("fetch_stall", t, stage=2, wait_ms=8.0)
        _dispatch(engine, 2, 10.0, t)
    assert engine.contexts[2].throttled is True
    assert engine.admission_cap == 2  # a sick copy engine is an I/O fault
    throttles = [
        a for a in manager.actions if a["action"] == "prefetch_throttle"
    ]
    assert throttles[-1]["target"] == 2
    assert throttles[-1]["active"] is True
    # stall-free dispatches mix zero samples in until the status exits
    for _ in range(8):
        t += 10.0
        _dispatch(engine, 2, 10.0, t)
    assert engine.contexts[2].throttled is False
    assert engine.admission_cap is None


def test_effective_window_clamps_to_cap():
    stub = SimpleNamespace(admission_cap=None)
    assert PipelineEngine.effective_window(stub, 4) == 4
    stub.admission_cap = 2
    assert PipelineEngine.effective_window(stub, 4) == 2
    assert PipelineEngine.effective_window(stub, 1) == 1  # never widens
    stub.admission_cap = 0
    assert PipelineEngine.effective_window(stub, 4) == 1  # one stays in flight


# ----------------------------------------------------------------------
# weighted partitioning
# ----------------------------------------------------------------------
def test_weighted_partition_uniform_weights_match_balanced():
    costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    assert weighted_balanced_partition(costs, 3, [2.0, 2.0, 2.0]) == (
        balanced_partition(costs, 3)
    )


def test_weighted_partition_shifts_blocks_off_the_straggler():
    assert weighted_balanced_partition([1, 1, 1, 1], 2, [3.0, 1.0]) == [
        (0, 1),
        (1, 4),
    ]
    costs = [1.0] * 8
    weights = [1.0, 2.0, 1.0, 1.0]
    uniform = balanced_partition(costs, 4)
    weighted = weighted_balanced_partition(costs, 4, weights)
    assert (weighted[1][1] - weighted[1][0]) < (uniform[1][1] - uniform[1][0])

    def load(partition):
        return max(
            weights[i] * sum(costs[start:stop])
            for i, (start, stop) in enumerate(partition)
        )

    assert load(weighted) <= load(uniform)


def test_weighted_partition_validation_and_coverage():
    with pytest.raises(PartitionError):
        weighted_balanced_partition([1, 1], 3, [1.0, 1.0, 1.0])
    with pytest.raises(PartitionError):
        weighted_balanced_partition([1, 1, 1], 2, [1.0])
    with pytest.raises(PartitionError):
        weighted_balanced_partition([1, 1, 1], 2, [1.0, 0.0])
    with pytest.raises(PartitionError):
        weighted_balanced_partition([1, -1, 1], 2, [1.0, 2.0])
    # the final stage absorbs every remaining block even over its cap
    # (regression: a heavily-weighted last stage used to strand blocks)
    partition = weighted_balanced_partition(
        [5.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0], 4, [1.0, 1.0, 1.0, 4.0]
    )
    assert partition[0][0] == 0 and partition[-1][1] == 8
    assert all(stop > start for start, stop in partition)
    assert all(partition[i][1] == partition[i + 1][0] for i in range(3))


# ----------------------------------------------------------------------
# end to end: detection + mitigation inside real runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_gpus", [2, 4, 8])
def test_healthy_run_applies_no_mitigations(deg_space, deg_baseline, num_gpus):
    """Calibration regression: with mitigation armed, a fault-free run
    must look healthy at every GPU count — zero transitions, zero
    actions, and (CSP) the same bits as the 4-GPU baseline."""
    armed = run_uninterrupted(
        deg_space, naspipe(), num_gpus=num_gpus, steps=20, seed=11,
        degradation=True,
    )
    assert armed.mitigation_actions == []
    assert list(armed.trace.events_of("health_report", "mitigation_apply")) == []
    assert armed.digest == deg_baseline.digest
    assert armed.losses == deg_baseline.losses


def test_straggler_run_rebalances_with_identical_digest(deg_space, deg_baseline):
    speed = (1.0, 2.5, 1.0, 1.0)
    unmitigated = run_uninterrupted(
        deg_space, naspipe(), num_gpus=4, steps=20, seed=11,
        speed_factors=speed,
    )
    mitigated = run_uninterrupted(
        deg_space, naspipe(), num_gpus=4, steps=20, seed=11,
        speed_factors=speed, degradation=True,
    )
    # CSP: per-GPU speeds and repartitioning change timing only
    assert unmitigated.digest == deg_baseline.digest
    assert mitigated.digest == deg_baseline.digest
    assert mitigated.losses == deg_baseline.losses
    rebalances = [
        a for a in mitigated.mitigation_actions if a["action"] == "rebalance"
    ]
    assert rebalances and rebalances[0]["target"] == 1
    assert rebalances[0]["value"] > 1.0
    # compute stragglers are rebalanced, never used as backpressure
    assert not any(
        a["action"] == "admission_cap" for a in mitigated.mitigation_actions
    )
    assert validate_trace(mitigated.trace) == []
    for kind in ("health_report", "mitigation_apply", "rebalance"):
        assert kind in EVENT_SCHEMAS
        assert kind in mitigated.trace.event_kinds()


def test_nic_degrade_fault_caps_admission(deg_space, deg_baseline):
    faults = FaultSchedule(
        [
            FaultEvent(
                "nic_degrade", 40.0, target=1, duration_ms=500.0, magnitude=8.0
            )
        ]
    )
    mitigated = run_uninterrupted(
        deg_space, naspipe(), num_gpus=4, steps=20, seed=11,
        faults=faults, degradation=True,
    )
    assert mitigated.digest == deg_baseline.digest
    assert mitigated.losses == deg_baseline.losses
    caps = [
        a for a in mitigated.mitigation_actions if a["action"] == "admission_cap"
    ]
    assert caps and caps[0]["active"] is True
    assert validate_trace(mitigated.trace) == []


def test_copy_stall_fault_throttles_prefetch(deg_space, deg_baseline):
    faults = FaultSchedule(
        [
            FaultEvent(
                "copy_stall", 30.0 + 25.0 * i, target=2, duration_ms=50.0
            )
            for i in range(6)
        ]
    )
    mitigated = run_uninterrupted(
        deg_space, naspipe(), num_gpus=4, steps=20, seed=11,
        faults=faults, degradation=True,
    )
    assert mitigated.digest == deg_baseline.digest
    assert mitigated.losses == deg_baseline.losses
    throttles = [
        a
        for a in mitigated.mitigation_actions
        if a["action"] == "prefetch_throttle"
    ]
    assert throttles and throttles[0]["target"] == 2
    assert throttles[0]["active"] is True
    assert validate_trace(mitigated.trace) == []
