"""Serving under lease revocation: deterministic retry, honest SLO
accounting, and byte-identical reports under the same storm.

Companion to tests/test_serving.py (docs/SERVING.md § Lease revocation
and deterministic retry).
"""

import json

import pytest

from repro.errors import ConfigError, ServiceError
from repro.ft import FaultEvent, FaultSchedule
from repro.obs.events import validate_trace
from repro.serving import ServingEngine, ServingSpec

CONFIG = {
    "space": "NLP.c3",
    "space_overrides": {"num_blocks": 8, "functional_width": 16},
    "num_gpus": 2,
    "total_gpus": 4,
    "eval_batch": 4,
    "requests": 50,
    "arrival": "poisson",
    "rate_rps": 60.0,
    "skew": 0.7,
    "hot_prefixes": 3,
    "prefix_blocks": 4,
    "repeat_fraction": 0.3,
    "seed": 2022,
    "max_batch": 4,
    "max_linger_ms": 5.0,
    "queue_bound": 16,
    "result_entries": 64,
    "cache_subnets": 3.0,
    "slo_ms": 400.0,
}


def _engine(storm=None, **overrides):
    spec = ServingSpec.from_payload({**CONFIG, **overrides})
    engine = ServingEngine(spec)
    if storm is not None:
        engine.inject_fleet_faults(storm)
    return engine


@pytest.fixture(scope="module")
def faultfree_makespan():
    return _engine().run().makespan_ms


def _storm(makespan, frac=0.4, outage_ms=80.0):
    # strike the serving lease's first slot mid-stream
    return FaultSchedule(
        [
            FaultEvent(
                "slot_preempt",
                makespan * frac,
                target=0,
                duration_ms=outage_ms,
            )
        ]
    )


@pytest.fixture(scope="module")
def revoked_result(faultfree_makespan):
    engine = _engine(storm=_storm(faultfree_makespan))
    result = engine.run()
    return engine, result


def test_revocation_loses_no_request(revoked_result):
    engine, result = revoked_result
    assert engine.revocations == 1
    # invariant: every record reaches a terminal outcome
    outcomes = {r.outcome for r in result.records}
    assert "pending" not in outcomes
    assert all(
        r.outcome in ("hit", "completed", "shed") for r in result.records
    )
    # the dissolved in-flight requests were retried, not dropped
    retried = [r for r in result.records if r.retries > 0]
    assert retried
    assert all(
        r.outcome in ("completed", "shed") for r in retried
    )
    assert validate_trace(result.trace) == []


def test_retry_and_revocation_are_trace_visible(revoked_result):
    _, result = revoked_result
    revokes = list(result.trace.events_of("lease_revoke"))
    assert len(revokes) == 1
    assert revokes[0].attr("job") == "serving"
    assert "slot_preempt" in revokes[0].attr("fault")
    retries = list(result.trace.events_of("request_retry"))
    assert retries
    assert all(e.attr("retries") >= 1 for e in retries)


def test_outage_window_is_recorded(revoked_result):
    engine, result = revoked_result
    assert len(result.outage_windows) == 1
    start, end = result.outage_windows[0]
    assert start < end
    # the engine re-acquired a lease and released it at quiescence
    assert engine.lease is None


def test_retried_requests_do_not_pollute_the_slo(revoked_result):
    _, result = revoked_result
    report = result.scenario_report()
    assert report["revocations"] == 1
    assert report["retries"] >= 1
    retried = report["retried"]
    assert retried["completed"] >= 1
    # slo_attainment is computed over *fresh* completions only; the
    # outage-inflated latencies live in the separate retried dict
    assert 0.0 <= report["slo_attainment"] <= 1.0
    # total completions still cover both populations
    fresh_and_retried = retried["completed"] + sum(
        1
        for r in result.records
        if r.outcome in ("hit", "completed") and r.retries == 0
    )
    assert fresh_and_retried == report["completed"]


def test_same_storm_twice_is_byte_identical(faultfree_makespan):
    reports = []
    for _ in range(2):
        engine = _engine(storm=_storm(faultfree_makespan))
        reports.append(
            json.dumps(
                engine.run().scenario_report(), sort_keys=True
            )
        )
    assert reports[0] == reports[1]


def test_unfaulted_run_unchanged_by_the_machinery(faultfree_makespan):
    # the deferred-merge / retry plumbing must be invisible without a
    # storm: no revocations, no retries, no outage windows
    engine = _engine()
    result = engine.run()
    report = result.scenario_report()
    assert report["revocations"] == 0
    assert report["retries"] == 0
    assert result.outage_windows == []
    assert report["retried"]["completed"] == 0


def test_inject_rejects_engine_kinds_and_double_arming():
    engine = _engine()
    with pytest.raises(ConfigError):
        engine.inject_fleet_faults(
            FaultSchedule([FaultEvent("copy_stall", 5.0, duration_ms=10.0)])
        )
    engine.run()
    with pytest.raises((ConfigError, ServiceError)):
        engine.inject_fleet_faults(
            FaultSchedule(
                [
                    FaultEvent(
                        "slot_preempt", 5.0, target=0, duration_ms=10.0
                    )
                ]
            )
        )
