"""Critical-path analysis: exact tiling, attribution, determinism.

The headline invariant (docs/ANALYSIS.md): the walked path **tiles the
active window exactly**, so segment lengths sum to the measured makespan
within 1e-9 — first on a hand-built golden 2-stage trace where the path
is known by inspection, then across systems and GPU counts on simulated
runs.  The breakdown dict must also be byte-deterministic, because the
registry hashes it into ``run_id``.
"""

import json

import pytest

from repro.baselines import gpipe, naspipe, pipedream, vpipe
from repro.engines.pipeline import PipelineEngine
from repro.obs import (
    RESOURCE_CLASSES,
    critical_path,
    critical_path_breakdown,
    run_summary,
)
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.sim.trace import ExecutionTrace
from repro.supernet.sampler import SubnetStream
from repro.supernet.supernet import Supernet


def _run(supernet, config, count=6, gpus=2, batch=16, seed=7):
    stream = SubnetStream.sample(supernet.space, SeedSequenceTree(seed), count)
    engine = PipelineEngine(
        supernet, stream, config, ClusterSpec(num_gpus=gpus), batch=batch
    )
    return engine.run()


# ----------------------------------------------------------------------
# golden hand-built traces: the path is known by inspection
# ----------------------------------------------------------------------
def _golden_trace():
    """One subnet through two stages, no idle anywhere:

    P0: fwd [0,10]            bwd [34,44]
    P1:        fwd [12,22] bwd [22,32]
    links: fwd 10->12 (P0->P1), bwd 32->34 (P1->P0)
    """
    trace = ExecutionTrace(num_gpus=2)
    trace.record_event("subnet_inject", 0.0, subnet_id=0)
    trace.record_interval(0, 0.0, 10.0, "fwd", 0)
    trace.record_event(
        "nic_transfer", 10.0, stage=0, subnet_id=0,
        src=0, dst=1, nbytes=1024, arrive=12.0, direction="fwd",
    )
    trace.record_interval(1, 12.0, 22.0, "fwd", 0)
    trace.record_interval(1, 22.0, 32.0, "bwd", 0)
    trace.record_event(
        "nic_transfer", 32.0, stage=1, subnet_id=0,
        src=1, dst=0, nbytes=1024, arrive=34.0, direction="bwd",
    )
    trace.record_interval(0, 34.0, 44.0, "bwd", 0)
    trace.record_subnet_complete(0, 44.0)
    return trace


def test_golden_path_length_equals_makespan_exactly():
    trace = _golden_trace()
    path = critical_path(trace)
    # exact equality, not approx: the segments telescope
    assert path.length_ms == trace.makespan == 44.0


def test_golden_attribution_sums_to_makespan_at_1e9():
    trace = _golden_trace()
    path = critical_path(trace)
    by_resource = path.by_resource()
    assert abs(sum(by_resource.values()) - trace.makespan) < 1e-9
    # 4 compute tasks of 10 ms + 2 transfers of 2 ms, nothing else
    assert by_resource["alu_busy"] == pytest.approx(40.0, abs=1e-9)
    assert by_resource["nic_transfer"] == pytest.approx(4.0, abs=1e-9)
    for resource in RESOURCE_CLASSES:
        if resource not in ("alu_busy", "nic_transfer"):
            assert by_resource[resource] == 0.0


def test_golden_segments_tile_the_window():
    trace = _golden_trace()
    segments = critical_path(trace).segments
    assert segments[0].start == trace.start_time
    assert segments[-1].end == trace.end_time
    for left, right in zip(segments, segments[1:]):
        assert left.end == right.start  # adjacent segments share endpoints
    # chronological resource sequence matches the diagram above
    assert [s.resource for s in segments] == [
        "alu_busy", "nic_transfer", "alu_busy",
        "alu_busy", "nic_transfer", "alu_busy",
    ]


def test_golden_idle_gap_under_open_wait_window_is_csp_wait():
    """Delay fwd@P1 by 3 ms under an open CSP wait window: the gap must
    land on the path charged to ``csp_wait`` and the tiling must hold."""
    trace = ExecutionTrace(num_gpus=2)
    trace.record_event("subnet_inject", 0.0, subnet_id=0)
    trace.record_interval(0, 0.0, 10.0, "fwd", 0)
    trace.record_event(
        "nic_transfer", 10.0, stage=0, subnet_id=0,
        src=0, dst=1, nbytes=1024, arrive=12.0, direction="fwd",
    )
    trace.record_event(
        "csp_wait_begin", 12.0, stage=1, subnet_id=0,
        blocking_subnet=0, block=0, choice=0,
    )
    trace.record_event("csp_wait_end", 15.0, stage=1, subnet_id=0, waited_ms=3.0)
    trace.record_interval(1, 15.0, 25.0, "fwd", 0)
    trace.record_interval(1, 25.0, 35.0, "bwd", 0)
    trace.record_event(
        "nic_transfer", 35.0, stage=1, subnet_id=0,
        src=1, dst=0, nbytes=1024, arrive=37.0, direction="bwd",
    )
    trace.record_interval(0, 37.0, 47.0, "bwd", 0)
    trace.record_subnet_complete(0, 47.0)

    path = critical_path(trace)
    by_resource = path.by_resource()
    assert path.length_ms == pytest.approx(trace.makespan, abs=1e-9)
    assert by_resource["csp_wait"] == pytest.approx(3.0, abs=1e-9)
    assert by_resource["alu_busy"] == pytest.approx(40.0, abs=1e-9)
    # per-stage totals also tile the window
    assert sum(path.by_stage().values()) == pytest.approx(
        trace.makespan, abs=1e-9
    )


# ----------------------------------------------------------------------
# simulated runs: the invariant holds for every system and GPU count
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "config",
    [naspipe(), pipedream(), gpipe(), vpipe()],
    ids=lambda c: c.name,
)
@pytest.mark.parametrize("gpus", [2, 4])
def test_breakdown_sums_to_makespan_across_systems(tiny_supernet, config, gpus):
    result = _run(tiny_supernet, config, count=8, gpus=gpus)
    breakdown = critical_path_breakdown(result.trace)
    assert abs(breakdown["path_ms"] - result.trace.makespan) < 1e-9
    assert abs(breakdown["makespan_ms"] - result.trace.makespan) < 1e-9
    assert abs(
        sum(breakdown["by_resource_ms"].values()) - breakdown["path_ms"]
    ) < 1e-9
    assert abs(sum(breakdown["by_stage_ms"].values()) - breakdown["path_ms"]) < 1e-9


def test_breakdown_covers_every_resource_class(tiny_supernet):
    breakdown = critical_path_breakdown(_run(tiny_supernet, naspipe()).trace)
    assert set(breakdown["by_resource_ms"]) == set(RESOURCE_CLASSES)
    assert set(breakdown["by_resource_fraction"]) == set(RESOURCE_CLASSES)
    assert sum(breakdown["by_resource_fraction"].values()) == pytest.approx(1.0)
    assert sum(breakdown["per_stage_share"].values()) == pytest.approx(1.0)


def test_breakdown_is_byte_deterministic(tiny_supernet):
    first = critical_path_breakdown(_run(tiny_supernet, naspipe()).trace)
    second = critical_path_breakdown(_run(tiny_supernet, naspipe()).trace)
    dumps = lambda payload: json.dumps(  # noqa: E731
        payload, sort_keys=True, separators=(",", ":")
    )
    assert dumps(first) == dumps(second)


def test_stall_heavy_run_attributes_copy_fetch(small_supernet):
    """An undersized cache forces synchronous fetches; some must surface
    on the critical path as ``copy_fetch`` (or the run had no stalls)."""
    result = _run(
        small_supernet, naspipe(cache_subnets=1.0, predictor=False),
        count=8, gpus=4,
    )
    breakdown = critical_path_breakdown(result.trace)
    stalls = [i for i in result.trace.intervals if i.kind == "stall"]
    assert abs(breakdown["path_ms"] - result.trace.makespan) < 1e-9
    if stalls:
        non_alu = breakdown["path_ms"] - breakdown["by_resource_ms"]["alu_busy"]
        assert non_alu > 0


def test_run_summary_stage_rows_carry_cp_share(tiny_supernet):
    result = _run(tiny_supernet, naspipe())
    summary = run_summary(result)
    shares = [row["cp_share"] for row in summary["per_stage"]]
    assert len(shares) == result.num_gpus
    assert all(share >= 0.0 for share in shares)
    assert sum(shares) == pytest.approx(1.0, abs=1e-9)


def test_empty_trace_degenerates_cleanly():
    trace = ExecutionTrace(num_gpus=2)
    path = critical_path(trace)
    assert path.segments == []
    assert path.length_ms == 0.0
    breakdown = critical_path_breakdown(trace)
    assert breakdown["path_ms"] == 0.0
    assert breakdown["num_segments"] == 0
