"""Readiness index ≡ scan reference, property-fuzzed (differential tests).

The incremental readiness index is an optimisation over the rescanning
reference scheduler, never a semantic change.  Three layers of evidence:

1. decision-level: both modes driven over the same randomized stream
   emit the identical ``(qidx, qval)`` sequence;
2. structural: under random register/index/release/finish interleavings,
   the index's ready set always equals the brute-force recomputation
   from :meth:`DependencyTracker.is_clear`;
3. end-to-end: full pipeline runs under ``scheduler_mode="scan"`` and
   ``"index"`` produce the identical event sequence and the identical
   final-parameter digest through the functional plane.

The engine-level tests must build both runs from the *same* space name —
the name seeds sampling and initialisation, so differing names would
compare different streams, not different schedulers.
"""

from random import Random

from hypothesis import given, settings, strategies as st

from repro.baselines import naspipe
from repro.core.dependency import DependencyTracker
from repro.core.scheduler import CspScheduler
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine
from repro.profiling import profile_scheduler_stream
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet

SCOPE = 0


# ----------------------------------------------------------------------
# 1. decision-level differential over synthetic streams
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_subnets=st.integers(5, 80),
    queue_cap=st.integers(2, 12),
    inflight_cap=st.integers(1, 5),
    straggler=st.booleans(),
)
def test_index_and_scan_make_identical_decisions(
    seed, num_subnets, queue_cap, inflight_cap, straggler
):
    profiles = [
        profile_scheduler_stream(
            mode,
            num_subnets,
            queue_cap=queue_cap,
            inflight_cap=inflight_cap,
            seed=seed,
            straggler=straggler,
        )
        for mode in ("scan", "index")
    ]
    assert profiles[0].decisions == profiles[1].decisions
    assert profiles[0].calls == profiles[1].calls


# ----------------------------------------------------------------------
# 2. structural: ready set == brute-force recomputation, any interleaving
# ----------------------------------------------------------------------
def _assert_ready_set_exact(tracker, layers_of):
    ready = set(tracker.ready_ids(SCOPE))
    expected = {
        sid
        for sid in tracker.indexed_ids(SCOPE)
        if tracker.is_clear(sid, layers_of[sid])
    }
    assert ready == expected


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_subnets=st.integers(3, 24),
    num_blocks=st.integers(2, 8),
    num_choices=st.integers(2, 5),
)
def test_ready_set_matches_brute_force_under_random_ops(
    seed, num_subnets, num_blocks, num_choices
):
    rng = Random(seed)
    subnets = [
        Subnet(i, tuple(rng.randrange(num_choices) for _ in range(num_blocks)))
        for i in range(num_subnets)
    ]
    slice_stop = max(1, num_blocks // 2)
    layers_of = {
        s.subnet_id: s.layers_in_range(0, slice_stop) for s in subnets
    }

    tracker = DependencyTracker()
    registered = []
    indexed = set()
    released = []
    for _ in range(num_subnets * 4):
        op = rng.randrange(4)
        if op == 0 and len(registered) < num_subnets:
            subnet = subnets[len(registered)]
            tracker.register(subnet)
            registered.append(subnet.subnet_id)
        elif op == 1 and registered:
            # Index a random registered subnet (re-adds are allowed).
            sid = rng.choice(registered)
            tracker.index_add(SCOPE, sid, layers_of[sid])
            indexed.add(sid)
        elif op == 2 and indexed and rng.random() < 0.5:
            sid = rng.choice(sorted(indexed))
            tracker.index_discard(SCOPE, sid)
            indexed.discard(sid)
        elif registered:
            # Release or finish a random subnet not yet finished.
            pending = [s for s in registered if s not in released]
            if not pending:
                continue
            sid = rng.choice(pending)
            if rng.random() < 0.5:
                tracker.release_layers(sid, subnets[sid].layer_ids())
            else:
                tracker.mark_finished(sid)
                released.append(sid)
        if tracker.has_scope(SCOPE):
            _assert_ready_set_exact(tracker, layers_of)


# ----------------------------------------------------------------------
# 3. end-to-end: identical events and identical parameter digests
# ----------------------------------------------------------------------
def _run_mode(mode: str, seed: int, gpus: int):
    # Identical space *name* across modes: the name seeds sampling, so a
    # differing name would compare different streams (false divergence).
    space = get_search_space("NLP.c3").scaled(
        name=f"equiv-{seed}", num_blocks=12, functional_width=16
    )
    supernet = Supernet(space)
    seeds = SeedSequenceTree(seed)
    stream = SubnetStream.sample(space, seeds, 12)
    plane = FunctionalPlane(supernet, seeds, functional_batch=6)
    events = []
    engine = PipelineEngine(
        supernet,
        stream,
        naspipe().with_overrides(scheduler_mode=mode),
        ClusterSpec(num_gpus=gpus),
        batch=32,
        functional=plane,
        event_listener=lambda *event: events.append(event),
    )
    result = engine.run()
    return result, events


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 2**16 - 1),
    gpus=st.sampled_from([2, 4]),
)
def test_pipeline_digest_identical_across_modes(seed, gpus):
    scan_result, scan_events = _run_mode("scan", seed, gpus)
    index_result, index_events = _run_mode("index", seed, gpus)
    assert scan_result.scheduler_mode == "scan"
    assert index_result.scheduler_mode == "index"
    assert index_result.scheduler_ready_pops > 0
    assert scan_events == index_events
    assert scan_result.digest == index_result.digest
    assert scan_result.trace.makespan == index_result.trace.makespan


# ----------------------------------------------------------------------
# 4. skip-set differential: scan and index agree under exclusions
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_subnets=st.integers(4, 24),
    num_blocks=st.integers(2, 6),
    skip_fraction=st.floats(0.0, 0.9),
)
def test_scan_and_index_agree_with_skip_sets(
    seed, num_subnets, num_blocks, skip_fraction
):
    """The in-flight ``skip`` set prunes both the linear scan and the
    index's first_ready walk; for any readiness state and any skip set
    the two modes must return the same decision."""
    rng = Random(seed)
    subnets = {
        i: Subnet(i, tuple(rng.randrange(3) for _ in range(num_blocks)))
        for i in range(num_subnets)
    }
    layers_of = {
        sid: subnet.layers_in_range(0, num_blocks)
        for sid, subnet in subnets.items()
    }
    tracker = DependencyTracker()
    for subnet in subnets.values():
        tracker.register(subnet)
    queue = sorted(subnets)
    for sid in queue:
        tracker.index_add(SCOPE, sid, layers_of[sid])
    # randomly retire a prefix of blockers so readiness varies
    for sid in list(subnets):
        if rng.random() < 0.4:
            tracker.mark_finished(sid)

    scan = CspScheduler(mode="scan", timing="off")
    index = CspScheduler(mode="index", timing="off")
    stage_layers = lambda sid: layers_of[sid]
    for _ in range(4):
        skip = {sid for sid in queue if rng.random() < skip_fraction}
        got_scan = scan.schedule(
            queue, stage_layers, tracker, skip=skip, scope=SCOPE
        )
        got_index = index.schedule(
            queue, stage_layers, tracker, skip=skip, scope=SCOPE
        )
        assert (got_scan.qidx, got_scan.qval) == (
            got_index.qidx,
            got_index.qval,
        )
        if got_scan.found:
            assert got_scan.qval not in skip
