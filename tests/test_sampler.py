"""Sampler and stream tests: determinism, ordering, generational
diversity, hybrid interleaving."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SearchSpaceError
from repro.seeding import SeedSequenceTree
from repro.supernet import SposSampler, SubnetStream, get_search_space
from repro.supernet.sampler import GenerationalSampler, interleave_streams
from repro.supernet.subnet import Subnet


def test_spos_deterministic_per_seed(tiny_space):
    a = SposSampler(tiny_space, SeedSequenceTree(5)).sample_many(10)
    b = SposSampler(tiny_space, SeedSequenceTree(5)).sample_many(10)
    assert [s.choices for s in a] == [s.choices for s in b]
    c = SposSampler(tiny_space, SeedSequenceTree(6)).sample_many(10)
    assert [s.choices for s in a] != [s.choices for s in c]


def test_spos_ids_dense_and_choices_in_range(tiny_space):
    subnets = SposSampler(tiny_space, SeedSequenceTree(5)).sample_many(20)
    assert [s.subnet_id for s in subnets] == list(range(20))
    for subnet in subnets:
        tiny_space.validate_choices(subnet.choices)


def test_spos_marginals_roughly_uniform():
    space = get_search_space("NLP.c3").scaled(num_blocks=4, choices_per_block=4)
    subnets = SposSampler(space, SeedSequenceTree(0)).sample_many(2000)
    counts = [0] * 4
    for subnet in subnets:
        counts[subnet.choices[0]] += 1
    for count in counts:
        assert 380 < count < 620  # ~500 expected


def test_generational_no_intra_generation_conflicts(tiny_space):
    sampler = GenerationalSampler(tiny_space, SeedSequenceTree(5), generation=4)
    subnets = sampler.sample_many(12)
    for g in range(3):
        generation = subnets[g * 4 : (g + 1) * 4]
        for i, a in enumerate(generation):
            for b in generation[i + 1 :]:
                assert not a.depends_on(b), (a, b)


def test_generational_rejects_oversized_generation(tiny_space):
    with pytest.raises(SearchSpaceError):
        GenerationalSampler(
            tiny_space, SeedSequenceTree(5),
            generation=tiny_space.choices_per_block + 1,
        )


def test_generational_deterministic(tiny_space):
    a = GenerationalSampler(tiny_space, SeedSequenceTree(5), generation=4).sample_many(8)
    b = GenerationalSampler(tiny_space, SeedSequenceTree(5), generation=4).sample_many(8)
    assert [s.choices for s in a] == [s.choices for s in b]


def test_stream_retrieve_and_reset(tiny_space):
    stream = SubnetStream.sample(tiny_space, SeedSequenceTree(5), 5)
    ids = []
    while True:
        subnet = stream.retrieve()
        if subnet is None:
            break
        ids.append(subnet.subnet_id)
    assert ids == [0, 1, 2, 3, 4]
    assert stream.remaining == 0
    stream.reset()
    assert stream.remaining == 5
    assert stream.retrieve().subnet_id == 0


def test_stream_rejects_sparse_ids():
    with pytest.raises(SearchSpaceError):
        SubnetStream([Subnet(1, (0,))])


def test_interleave_streams_round_robin():
    a = [Subnet(0, (0, 0)), Subnet(1, (0, 1))]
    b = [Subnet(0, (1, 0))]
    merged = interleave_streams([a, b])
    assert [s.choices for s in merged] == [(0, 0), (1, 0), (0, 1)]
    assert [s.subnet_id for s in merged] == [0, 1, 2]


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_stream_replay_identical_for_any_seed(seed):
    space = get_search_space("CV.c3").scaled(num_blocks=6)
    stream = SubnetStream.sample(space, SeedSequenceTree(seed), 6)
    first = [s.choices for s in stream]
    stream.reset()
    second = []
    while stream.remaining:
        second.append(stream.retrieve().choices)
    assert first == second
