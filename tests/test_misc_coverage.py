"""Coverage for corners the focused suites skip: the error hierarchy,
policy units, trace renderings, manifest resolution, hybrid functional
reproducibility."""

import pytest

from repro import errors
from repro.baselines import gpipe, naspipe, pipedream
from repro.config import SystemConfig
from repro.engines.policies.asp import AspPolicy
from repro.engines.policies.bsp import BspPolicy


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------
def test_error_hierarchy():
    assert issubclass(errors.ConfigError, errors.ReproError)
    assert issubclass(errors.DeadlockError, errors.SimulationError)
    assert issubclass(errors.DependencyViolationError, errors.SchedulingError)
    oom = errors.GpuOutOfMemoryError(3, requested=100, available=10)
    assert oom.gpu_id == 3 and "100" in str(oom)
    violation = errors.DependencyViolationError("task", 5, (0, 1))
    assert violation.blocking_subnet == 5
    assert "subnet 5" in str(violation)
    deadlock = errors.DeadlockError({"inflight": [1]})
    assert "inflight" in str(deadlock)


# ----------------------------------------------------------------------
# policy units (without a full engine)
# ----------------------------------------------------------------------
class _FakeState:
    def __init__(self, queue):
        self.queue = queue


class _FakeEngine:
    def __init__(self, queue, inflight=0):
        self.stage_states = [_FakeState(queue)]
        self.inflight = set(range(inflight))

    def oldest_unfinished_subnet(self):
        return min(self.inflight) if self.inflight else 0


def test_bsp_policy_bulk_accounting():
    policy = BspPolicy(gpipe(bulk_size=3), stages=4)
    policy.bind(_FakeEngine(queue=[5, 9]))
    assert policy.select_forward(0) == 5
    assert policy.can_inject()
    for sid in (0, 1, 2):
        policy.on_injected(sid)
    assert not policy.can_inject()
    assert policy.on_subnet_complete(1) == []
    assert policy.on_subnet_complete(0) == []
    assert policy.on_subnet_complete(2) == [0, 1, 2]  # sorted flush
    assert policy.flushes == 1
    assert policy.can_inject()


def test_bsp_finalize_flushes_partial_bulk():
    policy = BspPolicy(gpipe(bulk_size=4), stages=4)
    policy.bind(_FakeEngine(queue=[]))
    policy.on_injected(0)
    policy.on_injected(1)
    assert policy.on_subnet_complete(1) == []
    assert policy.finalize() == [1]


def test_asp_policy_fifo():
    policy = AspPolicy(pipedream(), stages=4)
    policy.bind(_FakeEngine(queue=[7, 8]))
    assert policy.select_forward(0) == 7
    policy.bind(_FakeEngine(queue=[]))
    assert policy.select_forward(0) is None


# ----------------------------------------------------------------------
# trace renderings
# ----------------------------------------------------------------------
def test_gantt_rows_sorted_by_gpu_then_time():
    from repro.sim.trace import ExecutionTrace

    trace = ExecutionTrace(num_gpus=2)
    trace.record_interval(1, 0.0, 1.0, "fwd", 0)
    trace.record_interval(0, 2.0, 3.0, "bwd", 0)
    trace.record_interval(0, 0.0, 1.0, "fwd", 1)
    rows = trace.gantt_rows()
    assert rows == [
        (0, 0.0, 1.0, "fwd", 1),
        (0, 2.0, 3.0, "bwd", 0),
        (1, 0.0, 1.0, "fwd", 0),
    ]


# ----------------------------------------------------------------------
# manifest resolution
# ----------------------------------------------------------------------
def test_manifest_resolution_and_overrides():
    from repro.replay import _build_manifest

    manifest = _build_manifest(
        "NLP.c3",
        "GPipe",
        space_overrides={"num_blocks": 10},
        system_overrides={"bulk_size": 7},
    )
    space = manifest.resolve_space()
    assert space.num_blocks == 10
    system = manifest.resolve_system()
    assert isinstance(system, SystemConfig)
    assert system.bulk_size == 7


# ----------------------------------------------------------------------
# hybrid traversal is itself reproducible
# ----------------------------------------------------------------------
def test_hybrid_traverse_reproducible_across_gpu_counts():
    from repro.engines.functional_plane import FunctionalPlane
    from repro.engines.pipeline import PipelineEngine
    from repro.nas.hybrid import HybridSupernet, hybrid_stream
    from repro.seeding import SeedSequenceTree
    from repro.sim.cluster import ClusterSpec
    from repro.supernet.search_space import get_search_space

    members = [
        get_search_space("NLP.c2").scaled(num_blocks=8, functional_width=16),
        get_search_space("NLP.c3").scaled(num_blocks=8, functional_width=16),
    ]

    def run(gpus):
        hybrid = HybridSupernet(members)
        seeds = SeedSequenceTree(4)
        stream = hybrid_stream(members, seeds, count_per_member=6)
        plane = FunctionalPlane(hybrid, seeds, functional_batch=6)
        PipelineEngine(
            hybrid, stream, naspipe(), ClusterSpec(num_gpus=gpus),
            batch=32, functional=plane,
        ).run()
        return plane.digest()

    assert run(2) == run(4)
