"""Crash-restart recovery: CSP recovers bitwise, ASP does not.

The acceptance scenario for the fault-tolerance subsystem: a GPU crash
mid-stream, recovery on the same (4) and on a different (8) GPU count,
both bitwise-identical to the uninterrupted CSP run — while the same
scenario under ASP diverges.  The asymmetry is emergent: both policies
run the identical checkpoint/recovery machinery; only CSP's causal-order
invariant makes the consistent cut actually consistent and the resumed
tail timing-independent.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import naspipe, pipedream
from repro.engines.functional_plane import FunctionalPlane
from repro.errors import FaultToleranceError
from repro.ft import (
    FaultEvent,
    FaultSchedule,
    RecoverySpec,
    availability_summary,
    format_availability,
    mtbf_sweep,
    restore_checkpoint,
    run_uninterrupted,
    run_with_recovery,
)
from repro.nn.optim import MomentumSGD
from repro.seeding import SeedSequenceTree
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

STEPS = 24
SEED = 11


@pytest.fixture(scope="module")
def rec_space():
    return get_search_space("NLP.c3").scaled(
        name="rec", num_blocks=8, functional_width=16
    )


@pytest.fixture(scope="module")
def csp_baseline(rec_space):
    return run_uninterrupted(
        rec_space, naspipe(), num_gpus=4, steps=STEPS, seed=SEED
    )


@pytest.fixture(scope="module")
def asp_baseline(rec_space):
    return run_uninterrupted(
        rec_space, pipedream(), num_gpus=4, steps=STEPS, seed=SEED
    )


def _crash(baseline, frac=0.5, target=1):
    return FaultSchedule(
        [FaultEvent("gpu_crash", baseline.makespan_ms * frac, target=target)]
    )


# ----------------------------------------------------------------------
# the acceptance scenario
# ----------------------------------------------------------------------
def test_csp_crash_recovery_is_bitwise_on_4_and_8_gpus(
    rec_space, csp_baseline, tmp_path
):
    """GPU crash mid-stream; recover on 4 AND on 8 GPUs; both must match
    the uninterrupted run bit for bit."""
    schedule = _crash(csp_baseline)
    for restart_gpus in (None, 8):
        result = run_with_recovery(
            rec_space,
            naspipe(),
            schedule,
            num_gpus=4,
            steps=STEPS,
            seed=SEED,
            checkpoint_dir=tmp_path / f"g{restart_gpus or 4}",
            spec=RecoverySpec(checkpoint_interval=8, restart_gpus=restart_gpus),
        )
        assert result.num_attempts == 2
        assert result.final_gpus == (restart_gpus or 4)
        assert result.subnets_completed == STEPS
        assert sorted(result.completion_order) == list(range(STEPS))
        assert result.digest == csp_baseline.digest
        assert result.losses == csp_baseline.losses


def test_asp_same_scenario_diverges(rec_space, asp_baseline, tmp_path):
    """The identical crash + elastic-restart scenario under ASP does not
    reproduce the uninterrupted run: per-layer writes are not
    subnet-ordered, so the 'consistent' cut isn't, and the resumed tail
    is timing-dependent."""
    result = run_with_recovery(
        rec_space,
        pipedream(),
        _crash(asp_baseline),
        num_gpus=4,
        steps=STEPS,
        seed=SEED,
        checkpoint_dir=tmp_path,
        spec=RecoverySpec(checkpoint_interval=8, restart_gpus=8),
    )
    assert result.subnets_completed == STEPS
    assert result.digest != asp_baseline.digest


@given(frac=st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=10, deadline=None)
def test_csp_recovery_bitwise_for_any_crash_time(frac):
    """Property: wherever the crash lands, CSP recovery reproduces the
    uninterrupted digest — before the first checkpoint (full redo),
    between cuts, or in the drain."""
    import tempfile

    space = get_search_space("NLP.c3").scaled(
        name="rec-prop", num_blocks=6, functional_width=16
    )
    baseline = run_uninterrupted(space, naspipe(), num_gpus=4, steps=16, seed=5)
    schedule = _crash(baseline, frac=frac)
    with tempfile.TemporaryDirectory() as tmp:
        result = run_with_recovery(
            space,
            naspipe(),
            schedule,
            num_gpus=4,
            steps=16,
            seed=5,
            checkpoint_dir=tmp,
            spec=RecoverySpec(checkpoint_interval=4),
        )
    assert result.digest == baseline.digest
    assert result.losses == baseline.losses


# ----------------------------------------------------------------------
# recovery mechanics
# ----------------------------------------------------------------------
def test_crash_before_first_checkpoint_redoes_everything(
    rec_space, csp_baseline, tmp_path
):
    result = run_with_recovery(
        rec_space,
        naspipe(),
        _crash(csp_baseline, frac=0.02),
        num_gpus=4,
        steps=STEPS,
        seed=SEED,
        checkpoint_dir=tmp_path,
        spec=RecoverySpec(checkpoint_interval=8),
    )
    assert result.num_attempts == 2
    assert result.attempts[0].completed_kept == 0  # nothing survived
    assert result.attempts[1].resumed_from == 0
    assert result.digest == csp_baseline.digest


def test_restart_budget_exhaustion_raises(rec_space, csp_baseline, tmp_path):
    # two crashes spaced so the second fires during the restarted attempt
    t1 = csp_baseline.makespan_ms * 0.3
    schedule = FaultSchedule(
        [
            FaultEvent("gpu_crash", t1, target=1),
            FaultEvent("gpu_crash", t1 + 200.0, target=1),
        ]
    )
    with pytest.raises(FaultToleranceError):
        run_with_recovery(
            rec_space,
            naspipe(),
            schedule,
            num_gpus=4,
            steps=STEPS,
            seed=SEED,
            checkpoint_dir=tmp_path,
            spec=RecoverySpec(checkpoint_interval=8, max_restarts=1),
        )


def test_host_crash_takes_down_all_its_stages(rec_space, csp_baseline, tmp_path):
    schedule = FaultSchedule(
        [FaultEvent("host_crash", csp_baseline.makespan_ms * 0.5, target=0)]
    )
    result = run_with_recovery(
        rec_space,
        naspipe(),
        schedule,
        num_gpus=4,
        steps=STEPS,
        seed=SEED,
        checkpoint_dir=tmp_path,
    )
    first = result.results[0]
    assert first.interrupt_kind == "host_crash"
    downs = list(first.trace.events_of("gpu_down"))
    assert len(downs) == 4  # all four stages live on host 0
    assert result.digest == csp_baseline.digest


def test_recovery_onto_heterogeneous_cluster_is_bitwise(
    rec_space, csp_baseline, tmp_path
):
    """Restart on a *slower, unevenly-throttled* replacement cluster:
    timing changes wholesale, bits do not."""
    result = run_with_recovery(
        rec_space,
        naspipe(),
        _crash(csp_baseline),
        num_gpus=4,
        steps=STEPS,
        seed=SEED,
        checkpoint_dir=tmp_path,
        spec=RecoverySpec(checkpoint_interval=8),
        restart_speed_factors=(1.0, 3.0, 0.7, 1.4),
    )
    assert result.num_attempts == 2
    assert result.digest == csp_baseline.digest


def test_stream_slice_preserves_sequence_ids(rec_space):
    stream = SubnetStream.sample(rec_space, SeedSequenceTree(3), 12)
    subnets = list(stream)
    resumed = SubnetStream(subnets[5:], start=5)
    assert resumed.base == 5
    assert resumed[7].subnet_id == 7
    assert len(resumed) == 7
    sliced = stream.slice_from(5)
    assert [s.subnet_id for s in sliced] == [s.subnet_id for s in resumed]


# ----------------------------------------------------------------------
# checkpoint round-trip
# ----------------------------------------------------------------------
def test_committed_checkpoint_round_trips(rec_space, csp_baseline, tmp_path):
    """A cut on disk restores into a fresh plane with the exact digest,
    velocity and RNG state it recorded."""
    result = run_with_recovery(
        rec_space,
        naspipe(),
        _crash(csp_baseline),
        num_gpus=4,
        steps=STEPS,
        seed=SEED,
        checkpoint_dir=tmp_path,
        spec=RecoverySpec(checkpoint_interval=8),
    )
    assert result.checkpoint_cuts, "the run committed no checkpoints"
    first_cut_dir = tmp_path / f"ckpt_{result.checkpoint_cuts[0]:06d}"

    plane = FunctionalPlane(
        Supernet(rec_space),
        SeedSequenceTree(SEED),
        functional_batch=8,
        optimizer=MomentumSGD(0.3, 0.9, 5.0),
    )
    checkpoint = restore_checkpoint(first_cut_dir, plane)
    assert checkpoint.cut == result.checkpoint_cuts[0]
    # the restored store holds exactly the cut's bits
    assert plane.store.digest() == checkpoint.digest
    # velocity came back too
    assert checkpoint.velocity_path.exists()
    assert plane.optimizer._velocity
    # and the cached RNG streams resumed mid-sequence
    assert plane.seeds.snapshot_state() == checkpoint.rng_state


def test_rng_snapshot_restore_round_trip():
    seeds = SeedSequenceTree(42)
    gen = seeds.generator("data/batches")
    gen.standard_normal(16)  # advance the stream
    snapshot = seeds.snapshot_state()
    expected = gen.standard_normal(8)

    fresh = SeedSequenceTree(42)
    fresh.restore_state(snapshot)
    assert (fresh.generator("data/batches").standard_normal(8) == expected).all()

    with pytest.raises(ValueError):
        SeedSequenceTree(43).restore_state(snapshot)  # wrong root seed


# ----------------------------------------------------------------------
# availability accounting
# ----------------------------------------------------------------------
def test_availability_summary_and_formatting(rec_space, csp_baseline, tmp_path):
    result = run_with_recovery(
        rec_space,
        naspipe(),
        _crash(csp_baseline),
        num_gpus=4,
        steps=STEPS,
        seed=SEED,
        checkpoint_dir=tmp_path,
        spec=RecoverySpec(checkpoint_interval=8),
    )
    summary = availability_summary(result, csp_baseline)
    assert summary["crashes"] == 1
    assert summary["subnets_completed"] == STEPS
    assert summary["lost_virtual_ms"] > 0
    assert summary["recovery_latency_ms"] > 0
    assert 0 < summary["goodput_ratio"] < 1
    assert summary["digest_matches_baseline"] is True
    text = format_availability(summary)
    assert "IDENTICAL to fault-free run" in text
    assert "goodput" in text


def test_mtbf_sweep_rows_are_reproducible(rec_space, tmp_path):
    rows = mtbf_sweep(
        rec_space,
        naspipe(),
        mtbf_values_ms=[400.0],
        num_gpus=4,
        steps=12,
        seed=3,
        checkpoint_dir=tmp_path,
    )
    assert len(rows) == 1
    row = rows[0]
    assert row["mtbf_ms"] == 400.0
    assert row["digest_matches_baseline"] is True
    assert row["subnets_completed"] == 12
