"""Property-based service plane: arbitrary co-tenant mixes never change
any job's bits, and the cluster manager never violates lease ownership."""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.errors import LeaseError
from repro.obs.events import validate_trace
from repro.service import ClusterManager, JobScheduler, JobSpec, run_service
from repro.sim.cluster import ClusterSpec

SPACE_OVERRIDES = {"num_blocks": 8, "functional_width": 16}
SPACES = ["NLP.c3", "CV.c3"]
SYSTEMS = ["NASPipe", "NASPipe", "PipeDream"]  # CSP-weighted mix


@st.composite
def job_mixes(draw):
    """2-4 jobs with mixed priorities, arrival times, GPU ranges and
    sync modes on a shared 8-GPU fleet."""
    jobs = []
    for i in range(draw(st.integers(min_value=2, max_value=4))):
        min_gpus = draw(st.integers(min_value=1, max_value=2))
        jobs.append(
            {
                "name": f"job{i}",
                "space": draw(st.sampled_from(SPACES)),
                "space_overrides": SPACE_OVERRIDES,
                "system": draw(st.sampled_from(SYSTEMS)),
                "subnets": draw(st.integers(min_value=3, max_value=8)),
                "seed": draw(st.integers(min_value=1, max_value=50)),
                "priority": draw(st.integers(min_value=1, max_value=3)),
                "submit_ms": draw(
                    st.floats(
                        min_value=0.0, max_value=500.0, allow_nan=False
                    )
                ),
                "min_gpus": min_gpus,
                "max_gpus": draw(st.integers(min_value=min_gpus, max_value=6)),
            }
        )
    return {
        "total_gpus": 8,
        "quantum": draw(st.integers(min_value=2, max_value=5)),
        "jobs": jobs,
    }


@settings(max_examples=8, deadline=None)
@given(payload=job_mixes())
def test_any_cotenant_mix_preserves_every_jobs_bits(payload):
    report = run_service(payload, verify_solo=True)
    # the tentpole guarantee: each job's digest and per-subnet losses are
    # bitwise equal to its solo run, whatever the co-tenants did
    assert report["ok"]
    for job in report["jobs"]:
        assert job["digest_matches_solo"], job["name"]
        assert job["losses_match_solo"], job["name"]
        # segments partition the stream without gaps or overlap
        cursor = 0
        for seg in job["segments"]:
            assert seg["from"] == cursor
            assert seg["to"] > seg["from"]
            cursor = seg["to"]
        assert cursor == job["subnets"]
        # rigid jobs never changed shape
        if not job["elastic"]:
            assert len(job["segments"]) == 1
            assert job["resizes"] == 0 and job["preemptions"] == 0


@settings(max_examples=8, deadline=None)
@given(payload=job_mixes())
def test_service_run_leaves_a_clean_valid_fleet(payload):
    manager = ClusterManager(ClusterSpec(num_gpus=payload["total_gpus"]))
    scheduler = JobScheduler(manager, quantum=payload["quantum"])

    # live co-tenancy invariant, checked at every trace event: leased
    # slot sets are disjoint and within the fleet
    def check(_event):
        seen = set()
        for lease in manager.live_leases():
            slots = set(lease.slots)
            assert slots.isdisjoint(seen)
            assert slots <= set(range(manager.total_gpus))
            seen |= slots
        assert len(seen) == manager.leased_gpus

    scheduler.trace.listeners.append(check)
    for entry in payload["jobs"]:
        scheduler.submit(JobSpec.from_payload(entry))
    report = scheduler.run()
    assert validate_trace(scheduler.trace) == []
    assert manager.available_gpus == manager.total_gpus
    assert manager.free_slots() == tuple(range(manager.total_gpus))
    assert len(report["jobs"]) == len(payload["jobs"])


@st.composite
def lease_op_sequences(draw):
    """Interleaved acquire/release walks over an 8-slot fleet."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["acquire", "release"]),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=40,
        )
    )


@settings(max_examples=50, deadline=None)
@given(ops=lease_op_sequences())
def test_manager_ownership_model(ops):
    """The manager against a reference model: every grant is disjoint
    and lowest-slots-first, every release restores exactly its slots,
    and invalid requests raise without corrupting state."""
    manager = ClusterManager(ClusterSpec(num_gpus=8))
    live = []
    model_free = set(range(8))
    for op, arg in ops:
        if op == "acquire":
            if arg > len(model_free):
                with pytest.raises(LeaseError):
                    manager.acquire("job", arg)
            else:
                lease = manager.acquire("job", arg)
                assert lease.slots == tuple(sorted(model_free)[:arg])
                model_free -= set(lease.slots)
                live.append(lease)
        elif live:
            lease = live.pop(arg % len(live))
            lease.release()
            model_free |= set(lease.slots)
            with pytest.raises(LeaseError):
                lease.release()
        assert manager.free_slots() == tuple(sorted(model_free))
        assert manager.leased_gpus == 8 - len(model_free)
    for lease in live:
        assert lease.active
        assert manager.owner_of(lease.slots[0]) == lease.lease_id
