"""Property-based chaos: arbitrary non-fatal schedules and admission
trajectories never change CSP bits and never wedge the pipeline."""

from functools import lru_cache

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.baselines import naspipe
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine
from repro.ft import FaultEvent, FaultSchedule, run_uninterrupted
from repro.nn.optim import MomentumSGD
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

SPACE = get_search_space("NLP.c3").scaled(
    name="prop", num_blocks=8, functional_width=16
)
STEPS = 10
SEED = 5


@lru_cache(maxsize=1)
def _baseline():
    return run_uninterrupted(SPACE, naspipe(), num_gpus=4, steps=STEPS, seed=SEED)


@st.composite
def nonfatal_schedules(draw):
    """Arbitrary well-formed schedules of the three non-fatal kinds over
    the baseline's horizon (overlapping nic windows are dropped, exactly
    as ``FaultSchedule.from_mtbf`` drops them)."""
    horizon = _baseline().makespan_ms
    events = []
    nic_spans = {}
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(["nic_degrade", "copy_stall", "task_error"]))
        time_ms = draw(
            st.floats(min_value=0.0, max_value=horizon, allow_nan=False)
        )
        if kind == "nic_degrade":
            target = draw(st.integers(min_value=0, max_value=2))
            duration = draw(st.floats(min_value=1.0, max_value=200.0))
            spans = nic_spans.setdefault(target, [])
            if any(s < time_ms + duration and time_ms < e for s, e in spans):
                continue
            spans.append((time_ms, time_ms + duration))
            events.append(
                FaultEvent(
                    "nic_degrade",
                    time_ms,
                    target=target,
                    duration_ms=duration,
                    magnitude=draw(st.floats(min_value=1.5, max_value=10.0)),
                )
            )
        elif kind == "copy_stall":
            events.append(
                FaultEvent(
                    "copy_stall",
                    time_ms,
                    target=draw(st.integers(min_value=0, max_value=3)),
                    duration_ms=draw(st.floats(min_value=1.0, max_value=100.0)),
                )
            )
        else:
            events.append(
                FaultEvent(
                    "task_error",
                    time_ms,
                    target=draw(st.integers(min_value=0, max_value=3)),
                    magnitude=draw(st.integers(min_value=1, max_value=4)),
                )
            )
    return FaultSchedule(events)


@settings(max_examples=8, deadline=None)
@given(nonfatal_schedules())
def test_any_nonfatal_schedule_preserves_bits(schedule):
    baseline = _baseline()
    result = run_uninterrupted(
        SPACE,
        naspipe(),
        num_gpus=4,
        steps=STEPS,
        seed=SEED,
        faults=schedule,
        degradation=True,
    )
    assert result.subnets_completed == STEPS  # completed => no deadlock
    assert result.digest == baseline.digest
    assert result.losses == baseline.losses


def _run_with_caps(caps):
    """One engine run whose admission cap is re-set to the next value in
    ``caps`` at every subnet completion — an adversarial stand-in for
    any backpressure trajectory a mitigation policy could emit."""
    supernet = Supernet(SPACE)
    plane = FunctionalPlane(
        supernet,
        SeedSequenceTree(SEED),
        functional_batch=8,
        optimizer=MomentumSGD(0.3, 0.9, 5.0),
    )
    stream = SubnetStream.sample(SPACE, SeedSequenceTree(SEED), STEPS)
    engine = PipelineEngine(
        supernet,
        stream,
        naspipe(),
        ClusterSpec(num_gpus=4),
        functional=plane,
    )
    pending = list(caps)

    def listener(kind, stage, subnet_id, time):
        if kind == "subnet-complete" and pending:
            engine.admission_cap = pending.pop(0)

    engine.event_listener = listener
    return engine.run()


@settings(max_examples=8, deadline=None)
@given(
    st.lists(
        st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
        max_size=STEPS,
    )
)
def test_any_admission_trajectory_preserves_bits(caps):
    baseline = _baseline()
    result = _run_with_caps(caps)
    assert result.subnets_completed == STEPS  # even a cap of 1 cannot wedge
    assert result.digest == baseline.digest
    assert result.losses == baseline.losses
