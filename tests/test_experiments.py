"""Experiment runner smoke + shape tests (small scales)."""

import pytest

from repro.experiments import ExperimentScale
from repro.experiments import (
    dag_bound,
    figure1,
    figure4,
    figure5,
    figure6,
    figure7,
    table2,
    table3,
    table4,
    table5,
)

_TINY = ExperimentScale(subnets=40, num_gpus=4)


def test_figure1_csp_only_clean():
    runs = figure1.run()
    by_name = {run.policy: run for run in runs}
    assert by_name["CSP (NASPipe)"].violations == 0
    assert by_name["ASP (PipeDream)"].violations > 0
    assert by_name["BSP (GPipe)"].violations > 0
    # ASP has the lowest bubble, CSP the highest (the paper's tradeoff).
    assert (
        by_name["ASP (PipeDream)"].result.bubble_ratio
        < by_name["CSP (NASPipe)"].result.bubble_ratio
    )
    text = figure1.format_text(runs)
    assert "violated-dependencies=0" in text


def test_figure5_rows_and_text():
    cells = figure5.run(_TINY, spaces=["NLP.c3"])
    assert {cell.system for cell in cells} == {
        "NASPipe", "GPipe", "PipeDream", "VPipe",
    }
    naspipe_cell = next(c for c in cells if c.system == "NASPipe")
    assert naspipe_cell.throughput > 0
    text = figure5.format_text(cells)
    assert "NLP.c3" in text


def test_figure5_oom_cells_render():
    cells = figure5.run(_TINY, spaces=["NLP.c0"], systems=["NASPipe", "GPipe"])
    gpipe_cell = next(c for c in cells if c.system == "GPipe")
    assert gpipe_cell.throughput is None
    assert "OOM" in figure5.format_text(
        [c for c in cells if c.system in ("NASPipe", "GPipe")]
        + figure5.run(_TINY, spaces=["NLP.c0"], systems=["PipeDream", "VPipe"])
    )


def test_table2_rows():
    rows = table2.run(_TINY, spaces=["CV.c3"])
    assert len(rows) == 4
    naspipe_row = next(r for r in rows if r.system == "NASPipe")
    assert not naspipe_row.oom
    assert naspipe_row.cache_hit is not None
    assert naspipe_row.cpu_mem_gb > 0
    gpipe_row = next(r for r in rows if r.system == "GPipe")
    assert gpipe_row.cpu_mem_gb == 0.0
    assert gpipe_row.param_count > naspipe_row.param_count
    assert "Table 2" in table2.format_text(rows)


def test_table3_reproducibility_verdicts():
    reports = table3.run(
        spaces=["NLP.c3"],
        scale=table3.Table3Scale(steps=20, num_blocks=16, search_evaluations=10,
                                 population=6),
    )
    report = reports["NLP.c3"]
    assert report.is_reproducible("CSP")
    assert not report.is_reproducible("BSP")
    assert not report.is_reproducible("ASP")
    text = table3.format_text(reports)
    assert "reproducible" in text and "DIVERGENT" in text


def test_table4_orders():
    rows = table4.run()
    by_name = {row.system: row for row in rows}
    assert by_name["NASPipe"].is_reproducible
    assert by_name["NASPipe"].orders[4] == "2F-2B-5F-5B-7F-7B"
    assert not by_name["PipeDream"].is_reproducible
    assert "Table 4" in table4.format_text(rows)


def test_table5_matches_paper_numbers():
    rows = table5.run()
    assert len(rows) == 8
    conv31 = next(r for r in rows if r.layer == "conv3x1")
    assert conv31.fwd_ms == 5.0 and conv31.bwd_ms == 10.0
    assert conv31.swap_ms_simulated == pytest.approx(conv31.swap_ms_profile)
    assert "Table 5" in table5.format_text(rows)


def test_figure6_ablations_ordered():
    cells = figure6.run(_TINY, spaces=["NLP.c3"])
    by_system = {c.system: c for c in cells}
    full = by_system["NASPipe"].throughput
    assert by_system["NASPipe w/o scheduler"].throughput <= full * 1.02
    assert "Figure 6" in figure6.format_text(cells)


def test_figure7_scalability_points():
    points = figure7.run(_TINY, gpu_counts=(4, 8), systems=["NASPipe"])
    alu = {p.num_gpus: p.total_alu for p in points}
    assert alu[8] > alu[4]  # more GPUs, more total compute power
    assert "Figure 7" in figure7.format_text(points)


def test_figure4_curves():
    curves = figure4.run(spaces=["NLP.c3"], steps=24, num_blocks=10)
    assert {c.system for c in curves} == {"NASPipe", "GPipe", "PipeDream", "VPipe"}
    naspipe_curve = next(c for c in curves if c.system == "NASPipe")
    assert naspipe_curve.points
    assert naspipe_curve.final_score > 0
    text = figure4.format_text(curves)
    assert "NLP.c3" in text


def test_dag_bound_generational_beats_uniform():
    bounds = dag_bound.run(space_names=["NLP.c2"], subnets=120)
    by_kind = {b.stream_kind: b for b in bounds}
    assert (
        by_kind["generational"].per_subnet_ms
        < by_kind["uniform-SPOS"].per_subnet_ms
    )
    assert "chain factor" in dag_bound.format_text(bounds)


def test_scale_presets():
    assert ExperimentScale.small().subnets < ExperimentScale.paper().subnets


def test_table2_with_scores():
    rows = table2.run(_TINY, spaces=["CV.c3"], with_scores=True)
    by_system = {r.system: r for r in rows}
    assert by_system["NASPipe"].score is not None
    # CSP enforces the sequential order; its trained quality is at worst
    # level with the hazard-prone baselines.
    assert by_system["NASPipe"].score >= by_system["GPipe"].score - 1.0
    assert "Score" in table2.format_text(rows)
