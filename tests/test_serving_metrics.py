"""Nearest-rank percentile edge cases and serving-report formatting.

The serving benchmark's byte-identity claim rests on percentiles being
pure integer-rank selection (always a measured sample, never an
interpolation), so the boundary arithmetic gets its own test file.
"""

import math

import pytest

from repro.serving.metrics import (
    format_serving_report,
    latency_histogram,
    latency_stats,
    nearest_rank,
    serving_report_json,
)


# ----------------------------------------------------------------------
# nearest_rank: boundaries
# ----------------------------------------------------------------------
def test_single_sample_answers_every_percentile():
    for p in (1, 50, 99, 100):
        assert nearest_rank([7.25], p) == 7.25


def test_wikipedia_worked_example():
    # The canonical nearest-rank example: ranks 2/4/5 for p30/p75/p100.
    values = [15, 20, 35, 40, 50]
    assert nearest_rank(values, 30) == 20
    assert nearest_rank(values, 75) == 40
    assert nearest_rank(values, 100) == 50


def test_exact_boundary_rank_even_n():
    # p50 of n=4: rank = ceil(200/100) = 2 exactly — the *lower* of the
    # two middle samples, where interpolation would invent 2.5.
    assert nearest_rank([1, 2, 3, 4], 50) == 2
    # p25 of n=4 lands exactly on rank 1.
    assert nearest_rank([1, 2, 3, 4], 25) == 1


def test_p100_is_max_and_p1_is_min():
    values = [9.0, 3.0, 5.0, 1.0, 7.0]
    assert nearest_rank(values, 100) == 9.0
    assert nearest_rank(values, 1) == 1.0


def test_ties_collapse_to_the_tied_value():
    assert nearest_rank([4, 4, 4, 4], 99) == 4
    # Ties straddling the rank boundary still return the tied value.
    assert nearest_rank([1, 2, 2, 2, 3], 50) == 2


def test_input_order_is_irrelevant():
    assert nearest_rank([50, 15, 40, 20, 35], 30) == 20


def test_matches_ceil_reference_on_a_grid():
    values = list(range(1, 14))  # n = 13, already sorted, value == rank
    for p in range(1, 101):
        rank = math.ceil(p * len(values) / 100)
        assert nearest_rank(values, p) == values[rank - 1]


def test_result_is_always_a_member_of_the_sample():
    values = [0.3, 11.7, 2.5, 8.125, 5.0625]
    for p in (1, 33, 50, 66, 95, 99, 100):
        assert nearest_rank(values, p) in values


# ----------------------------------------------------------------------
# nearest_rank: rejected inputs
# ----------------------------------------------------------------------
def test_empty_sample_rejected():
    with pytest.raises(ValueError):
        nearest_rank([], 50)


def test_float_percentile_rejected():
    # Float percentiles invite the interpolation ambiguity the whole
    # design avoids; the API forces integers.
    with pytest.raises(TypeError):
        nearest_rank([1, 2, 3], 99.9)


@pytest.mark.parametrize("percentile", [0, -1, 101, 1000])
def test_out_of_range_percentile_rejected(percentile):
    with pytest.raises(ValueError):
        nearest_rank([1, 2, 3], percentile)


# ----------------------------------------------------------------------
# latency_stats / report encoding
# ----------------------------------------------------------------------
def test_latency_stats_empty_is_all_zero():
    assert latency_stats([]) == {
        "p50": 0.0,
        "p95": 0.0,
        "p99": 0.0,
        "mean": 0.0,
        "max": 0.0,
    }


def test_latency_stats_fields():
    stats = latency_stats([10.0, 20.0, 30.0, 40.0])
    assert stats["p50"] == 20.0
    assert stats["p95"] == stats["p99"] == stats["max"] == 40.0
    assert stats["mean"] == 25.0


def test_report_json_is_canonical():
    payload = {"b": 1, "a": {"z": 2, "y": 3}}
    encoded = serving_report_json(payload)
    assert encoded.endswith("\n")
    assert encoded.index('"a"') < encoded.index('"b"')
    assert serving_report_json(payload) == encoded


def test_format_report_mentions_cache_effect():
    scenario = {
        "requests": 10,
        "completed": 10,
        "shed": 0,
        "shed_rate": 0.0,
        "latency_ms": {"p50": 1.0, "p95": 2.0, "p99": 2.0, "max": 2.0},
        "throughput_rps": 100.0,
        "slo_ms": 50.0,
        "slo_attainment": 1.0,
        "result_hit_rate": 0.5,
        "layer_hit_rate": 0.5,
        "hit_rate": 0.5,
    }
    slower = dict(scenario)
    slower["latency_ms"] = {"p50": 2.0, "p95": 4.0, "p99": 4.0, "max": 4.0}
    slower["hit_rate"] = 0.0
    report = {
        "config": {
            "space": "NLP.c3",
            "num_gpus": 4,
            "total_gpus": 8,
            "requests": 10,
            "arrival": "poisson",
        },
        "primary": scenario,
        "no_cache": slower,
    }
    text = format_serving_report(report)
    assert "cache effect" in text
    assert "2.00x" in text


# ----------------------------------------------------------------------
# latency_histogram: shape and consistency with nearest-rank
# ----------------------------------------------------------------------
def test_histogram_counts_sum_to_count():
    values = [3.0, 7.5, 12.0, 40.0, 9999.0]
    hist = latency_histogram(values)
    assert sum(hist["counts"]) == hist["count"] == len(values)
    assert hist["sum_ms"] == sum(values)
    # one overflow bucket past the declared bounds
    assert len(hist["counts"]) == len(hist["buckets_ms"]) + 1
    assert hist["counts"][-1] == 1  # only 9999.0 overflows


def test_histogram_empty_input_is_all_zero():
    hist = latency_histogram([])
    assert hist["count"] == 0
    assert hist["sum_ms"] == 0.0
    assert sum(hist["counts"]) == 0


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        latency_histogram([1.0], buckets=[])
    with pytest.raises(ValueError):
        latency_histogram([1.0], buckets=[10.0, 5.0])
    with pytest.raises(ValueError):
        latency_histogram([1.0], buckets=[5.0, 5.0])


def test_histogram_boundary_value_lands_in_lower_bucket():
    hist = latency_histogram([10.0], buckets=[10.0, 20.0])
    assert hist["counts"] == [1, 0, 0]  # le semantics, like Prometheus


def test_histogram_is_consistent_with_nearest_rank_percentiles():
    # The structural claim: for any percentile p, the nearest-rank
    # value falls in a bucket whose cumulative count reaches rank(p).
    values = [1.0, 4.0, 9.0, 16.0, 25.0, 36.0, 49.0, 64.0, 81.0, 100.0]
    buckets = [5.0, 20.0, 50.0, 90.0]
    hist = latency_histogram(values, buckets=buckets)
    bounds = hist["buckets_ms"] + [math.inf]
    for p in (1, 25, 50, 75, 90, 99, 100):
        value = nearest_rank(values, p)
        rank = -(-p * len(values) // 100)  # ceil(p*n/100)
        bucket = next(i for i, b in enumerate(bounds) if value <= b)
        cumulative = sum(hist["counts"][: bucket + 1])
        assert cumulative >= rank
        # and no earlier bucket already covers the rank while excluding
        # the value (the percentile can't land below its own bucket)
        if bucket > 0:
            assert value > bounds[bucket - 1]
