"""Table 5 bench: per-layer computation vs swap time."""

import pytest

from repro.experiments import table5

from conftest import run_once

#: The paper's Table 5, verbatim: (domain, layer, fwd, bwd, swap ms).
_PAPER_TABLE5 = [
    ("NLP", "conv3x1", 5.0, 10.0, 1.76),
    ("NLP", "sepconv7x1", 4.2, 5.7, 0.56),
    ("NLP", "lightconv5x1", 0.68, 1.4, 0.03),
    ("NLP", "attention8h", 7.9, 13.8, 2.07),
    ("CV", "conv3x3", 7.9, 13.8, 4.6),
    ("CV", "sepconv3x3", 2.8, 4.0, 0.68),
    ("CV", "sepconv5x5", 6.7, 9.9, 2.04),
    ("CV", "dilconv3x3", 2.5, 3.4, 0.58),
]


def test_table5_layer_costs(benchmark):
    rows = run_once(benchmark, table5.run)
    index = {(row.domain, row.layer): row for row in rows}
    for domain, layer, fwd, bwd, swap in _PAPER_TABLE5:
        row = index[(domain, layer)]
        assert row.fwd_ms == pytest.approx(fwd)
        assert row.bwd_ms == pytest.approx(bwd)
        assert row.swap_ms_profile == pytest.approx(swap, rel=1e-2)
        # The simulated copy engine reproduces the analytic swap time.
        assert row.swap_ms_simulated == pytest.approx(row.swap_ms_profile)
    print()
    print(table5.format_text(rows))
