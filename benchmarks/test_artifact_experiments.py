"""The artifact appendix's two one-click experiments (paper §A.5).

Experiment 1 — reproducible parallel training, single GPU vs four GPUs,
search space NLP.c0, comparing all training-step outputs in full
floating-point precision.

Experiment 2 — training throughput ordering across NLP.c0-c3 on four
GPUs: T(NLP.c0) > T(NLP.c1) > T(NLP.c2) > T(NLP.c3).
"""

from repro.baselines import naspipe
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

from conftest import run_once

_STEPS = 64  # scaled from the artifact's 500 for CI wall-clock


def _train_nlp_c0(gpus: int):
    space = get_search_space("NLP.c0").scaled(
        name="NLP.c0-artifact", num_blocks=16, functional_width=16
    )
    supernet = Supernet(space)
    seeds = SeedSequenceTree(2022)
    stream = SubnetStream.sample(space, seeds, _STEPS)
    plane = FunctionalPlane(supernet, seeds, functional_batch=8)
    result = PipelineEngine(
        supernet, stream, naspipe(), ClusterSpec(num_gpus=gpus), batch=32,
        functional=plane,
    ).run()
    return result


def test_artifact_exp1_bitwise_outputs_match(benchmark):
    def both():
        return _train_nlp_c0(1), _train_nlp_c0(4)

    single, quad = run_once(benchmark, both)
    # "All training steps outputs in full precision floating point
    # matches between settings."
    assert single.losses.keys() == quad.losses.keys()
    for sid, loss in single.losses.items():
        assert quad.losses[sid] == loss, sid  # float-exact
    assert single.digest == quad.digest
    print(f"\n{_STEPS} training-step outputs bitwise equal "
          f"(digest {single.digest[:16]}…)")


def test_artifact_exp2_throughput_ordering(benchmark):
    def sweep():
        rates = {}
        seeds = SeedSequenceTree(2022)
        for name in ("NLP.c0", "NLP.c1", "NLP.c2", "NLP.c3"):
            space = get_search_space(name)
            supernet = Supernet(space)
            # Raw SPOS streams (the artifact's setting): conflict density
            # then scales directly with candidates-per-block, which is
            # what separates the four spaces' throughputs.
            stream = SubnetStream.sample(space, seeds.child(name), 300)
            result = PipelineEngine(
                supernet, stream, naspipe(), ClusterSpec(num_gpus=4)
            ).run()
            rates[name] = (
                result.subnets_completed / result.makespan_ms
            )
        return rates

    rates = run_once(benchmark, sweep)
    assert rates["NLP.c0"] > rates["NLP.c1"] > rates["NLP.c2"] > rates["NLP.c3"]
    print()
    for name, rate in rates.items():
        print(f"{name}: {rate * 3_600_000:.0f} subnets/hour")


def test_scheduler_cost_bench(benchmark):
    from repro.experiments import scheduler_cost

    points = run_once(benchmark, scheduler_cost.run)
    worst = max(p.mean_call_us for p in points)
    assert worst < 10_000  # the paper's <0.01 s claim
    print()
    print(scheduler_cost.format_text(points))
