"""Figure 1 bench: ASP/BSP/CSP schedule comparison on the toy stream."""

from repro.experiments import figure1

from conftest import run_once


def test_fig1_policy_comparison(benchmark):
    runs = run_once(benchmark, figure1.run)
    by_name = {run.policy: run for run in runs}
    csp = by_name["CSP (NASPipe)"]
    bsp = by_name["BSP (GPipe)"]
    asp = by_name["ASP (PipeDream)"]
    # Paper Figure 1: only CSP retains every causal dependency...
    assert csp.violations == 0
    assert bsp.violations > 0
    assert asp.violations > 0
    # ...at a bubble rate between full serialisation and ASP's.
    assert asp.result.bubble_ratio < csp.result.bubble_ratio < 0.9
    print()
    print(figure1.format_text(runs))
