"""Extension ablations beyond the paper's Figure 6 (DESIGN.md §6).

Design-choice sweeps: predictor lookahead depth, context cache capacity,
scheduler check mode, SSP staleness, and the dependency-DAG bound
comparison of uniform vs generational streams.
"""

import pytest

from repro.baselines import naspipe, ssp
from repro.engines.pipeline import PipelineEngine
from repro.experiments import dag_bound
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

from conftest import run_once

_SPACE = "NLP.c2"


def _run_config(config, subnets=100, gpus=8, seed=2022):
    space = get_search_space(_SPACE)
    supernet = Supernet(space)
    stream = SubnetStream.sample_generational(
        space, SeedSequenceTree(seed), subnets
    )
    engine = PipelineEngine(
        supernet, stream, config, ClusterSpec(num_gpus=gpus), batch=192
    )
    return engine.run()


def test_predictor_depth_improves_cache_hit(benchmark):
    def sweep():
        return {
            depth: _run_config(naspipe(predictor_depth=depth))
            for depth in (1, 2, 4)
        }

    results = run_once(benchmark, sweep)
    hits = {depth: result.cache_hit_rate for depth, result in results.items()}
    # Every depth keeps the cache effective; the paper's depth 2 sits
    # within a few points of the best.  (Depth 4 can *pollute* the
    # bounded cache with speculative fetches — a finding worth keeping:
    # deeper lookahead is not free.)
    assert all(rate > 0.6 for rate in hits.values())
    assert hits[2] >= max(hits.values()) - 0.05
    print()
    for depth, result in results.items():
        print(f"depth={depth}: hit={hits[depth]:.3f} "
              f"bubble={result.bubble_ratio:.3f}")


def test_cache_capacity_sweep(benchmark):
    def sweep():
        return {
            multiple: _run_config(naspipe(cache_subnets=multiple))
            for multiple in (1.0, 3.0, 6.0)
        }

    results = run_once(benchmark, sweep)
    hits = {m: r.cache_hit_rate for m, r in results.items()}
    # The paper's 3x cache buys a large hit-rate jump over 1x; beyond
    # that, returns diminish.
    assert hits[3.0] > hits[1.0]
    assert hits[6.0] >= hits[3.0] - 0.02
    print()
    for multiple, result in results.items():
        print(f"cache={multiple:.0f}x subnet: hit={hits[multiple]:.3f}")


def test_scheduler_mode_equivalent_results(benchmark):
    def both():
        return (
            _run_config(naspipe(scheduler_mode="exact")),
            _run_config(naspipe(scheduler_mode="conservative")),
        )

    exact, conservative = run_once(benchmark, both)
    assert exact.subnets_completed == conservative.subnets_completed
    # The conservative (paper-verbatim) filter admits a subset of the
    # exact check's schedules per decision, but downstream interactions
    # (cache residency, arrival order) mean neither strictly dominates;
    # they must land within a few percent of each other.
    ratio = conservative.makespan_ms / exact.makespan_ms
    assert 0.9 < ratio < 1.1
    print()
    print(f"exact:        {exact.makespan_ms:10.0f} ms")
    print(f"conservative: {conservative.makespan_ms:10.0f} ms")


def test_ssp_staleness_sweep(benchmark):
    def sweep():
        return {s: _run_config(ssp(s)) for s in (0, 2, 8)}

    results = run_once(benchmark, sweep)
    # More staleness tolerance = more overlap = shorter makespan; yet no
    # staleness bound recovers reproducibility (see test_reproducibility).
    assert results[8].makespan_ms < results[0].makespan_ms
    print()
    for staleness, result in results.items():
        print(f"staleness={staleness}: makespan={result.makespan_ms:.0f} ms "
              f"bubble={result.bubble_ratio:.2f}")


def test_dag_bound_engine_near_optimal(benchmark):
    """The CSP engine tracks the contention-free dependency-DAG bound —
    evidence the scheduler, not the implementation, sets the ceiling."""
    def compute():
        bound = dag_bound.run(space_names=[_SPACE], subnets=200)
        uniform = next(b for b in bound if b.stream_kind == "uniform-SPOS")
        space = get_search_space(_SPACE)
        supernet = Supernet(space)
        stream = SubnetStream.sample(space, SeedSequenceTree(2022), 200)
        engine = PipelineEngine(
            supernet, stream, naspipe(), ClusterSpec(num_gpus=8), batch=192
        )
        result = engine.run()
        measured = result.makespan_ms / result.subnets_completed
        return uniform.per_subnet_ms, measured

    bound_ms, measured_ms = run_once(benchmark, compute)
    assert measured_ms < bound_ms * 1.5
    print()
    print(f"DAG bound {bound_ms:.0f} ms/subnet, engine {measured_ms:.0f} ms/subnet")


def test_mirror_vs_migrate(benchmark):
    """§2.3 quantified: active mirroring vs on-demand migration for
    per-subnet balanced partitions."""
    def both():
        return (
            _run_config(naspipe(mirror_mode="mirror")),
            _run_config(naspipe(mirror_mode="migrate")),
        )

    mirror, migrate = run_once(benchmark, both)
    speedup = migrate.makespan_ms / mirror.makespan_ms
    assert speedup > 1.15
    print()
    print(f"mirror : {mirror.makespan_ms:9.0f} ms  bubble={mirror.bubble_ratio:.2f}")
    print(f"migrate: {migrate.makespan_ms:9.0f} ms  bubble={migrate.bubble_ratio:.2f}")
    print(f"mirroring speedup over on-demand migration: {speedup:.2f}x")
