"""Table 2 bench: resource consumption and micro events."""

from repro.experiments import table2

from conftest import run_once


def test_table2_resource_shapes(benchmark, scale):
    rows = run_once(
        benchmark, table2.run, scale, spaces=["NLP.c1", "NLP.c3", "CV.c1"]
    )
    index = {(row.space, row.system): row for row in rows}

    nas_c1 = index[("NLP.c1", "NASPipe")]
    gpipe_c1 = index[("NLP.c1", "GPipe")]
    vpipe_c1 = index[("NLP.c1", "VPipe")]

    # Parameter footprints: GPipe pins the whole supernet (~14.8B for
    # NLP.c1); NASPipe caches ~3 subnets; VPipe caches one.
    assert gpipe_c1.param_count > 10e9
    assert nas_c1.param_count < 2e9
    assert abs(nas_c1.param_count - 3 * vpipe_c1.param_count) < 0.1 * nas_c1.param_count

    # Batch sizes: NASPipe trains the full batch, GPipe a fraction.
    assert nas_c1.batch == 192
    assert vpipe_c1.batch == 192
    assert gpipe_c1.batch < 64

    # Swapped systems pay CPU pinned memory; full-context systems don't.
    assert nas_c1.cpu_mem_gb > 10
    assert gpipe_c1.cpu_mem_gb == 0.0
    # CPU memory shrinks with the search space (paper: 57.8G -> 20.3G).
    assert index[("NLP.c3", "NASPipe")].cpu_mem_gb < nas_c1.cpu_mem_gb

    # Cache hit rates: NASPipe's predictor vs VPipe's on-demand swaps.
    assert nas_c1.cache_hit > 0.6
    assert vpipe_c1.cache_hit < 0.15
    assert gpipe_c1.cache_hit is None

    # NASPipe's ALU beats GPipe's (larger batch, fewer stalls).
    assert nas_c1.gpu_alu_x > gpipe_c1.gpu_alu_x

    # Bubble: NASPipe's c1 < c3 (dependency sparsity), GPipe's roughly
    # constant (bulk-determined).
    assert nas_c1.bubble < index[("NLP.c3", "NASPipe")].bubble
    gpipe_bubbles = [index[("NLP.c1", "GPipe")].bubble,
                     index[("NLP.c3", "GPipe")].bubble]
    assert abs(gpipe_bubbles[0] - gpipe_bubbles[1]) < 0.08

    print()
    print(table2.format_text(rows))
