"""Scheduler-scaling microbenchmark (paper §3.2's flat-cost claim).

Races the incremental readiness index against the rescanning reference
implementation over 100→1000-subnet streams with a straggler pinning the
elimination frontier — the adversarial regime where per-layer user lists
grow with the stream.  Asserts the three properties the ISSUE's
acceptance criteria name:

1. both modes emit identical ``(qidx, qval)`` decision sequences;
2. the index's mean per-call cost stays flat (within 2×) from the
   shortest to the longest stream;
3. the scan reference grows with stream length (the trap the index
   removes).

Also writes ``BENCH_scheduler.json`` at the repo root so the run's
numbers are inspectable.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import scheduler_cost

STREAM_LENS = (100, 300, 1000)


def _payload():
    return scheduler_cost.run_scaling(stream_lens=STREAM_LENS)


def test_scheduler_scaling(benchmark):
    payload = benchmark.pedantic(_payload, rounds=1, iterations=1)

    # 1. bitwise-identical scheduling decisions — any divergence is a
    # correctness bug, not a perf delta.
    assert payload["decision_identical"]

    by_key = {
        (p["mode"], p["stream_len"]): p["mean_call_us"]
        for p in payload["points"]
    }
    # 2. index per-call cost flat within 2x out to 1000-subnet streams.
    assert payload["index_flatness"] < 2.0, payload
    # 3. the scan reference pays for the growing user lists; at 10x the
    # stream it must be measurably slower than the index is at all.
    assert by_key[("scan", 1000)] > 2.0 * by_key[("index", 1000)], payload

    scheduler_cost.write_bench_json(
        payload, Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"
    )


def test_scheduler_regression_gate():
    """The committed baseline must hold on a reduced stream (CI gate)."""
    payload = scheduler_cost.run_scaling(stream_lens=(50, 200))
    failures = scheduler_cost.check_regression(
        payload,
        Path(__file__).resolve().parent / "scheduler_baseline.json",
    )
    assert not failures, failures


def test_engine_throughput_bench_and_determinism_gate(benchmark):
    """End-to-end event-loop throughput (events/sec) plus the bitwise
    makespan fingerprint the baseline pins.  A makespan mismatch at the
    same workload is a determinism violation, never a perf delta."""
    payload = benchmark.pedantic(
        lambda: scheduler_cost.run_engine_bench(repeats=2),
        rounds=1,
        iterations=1,
    )
    rows = {row["workload"]: row for row in payload["rows"]}
    assert set(rows) == {"pipeline", "event_loop"}
    assert rows["pipeline"]["events_per_sec"] > 0
    assert rows["event_loop"]["events_per_sec"] > 0
    assert rows["pipeline"]["makespan_ms"] is not None

    failures = scheduler_cost.check_regression(
        {"decision_identical": True, "points": [], "engine": payload},
        Path(__file__).resolve().parent / "scheduler_baseline.json",
    )
    assert not failures, failures
