"""Table 4 bench: access & update order of one shared layer."""

from repro.experiments import table4

from conftest import run_once


def test_table4_access_orders(benchmark):
    rows = run_once(benchmark, table4.run)
    by_name = {row.system: row for row in rows}

    naspipe = by_name["NASPipe"]
    # CSP: the sequential order, identical on 4 and 8 GPUs.
    assert naspipe.orders[4] == "2F-2B-5F-5B-7F-7B"
    assert naspipe.orders[8] == "2F-2B-5F-5B-7F-7B"

    # PipeDream reorders (and differently per cluster size).
    pipedream = by_name["PipeDream"]
    assert not pipedream.is_reproducible

    # GPipe's order changes between 4 and 8 GPUs (bulk tracks depth).
    gpipe = by_name["GPipe"]
    assert gpipe.orders[4] != gpipe.orders[8]

    print()
    print(table4.format_text(rows))
