"""Inter- vs intra-subnet task generation (paper §2.2's design argument).

The paper rejects intra-subnet (micro-batch) generation as "non-general":
it is only efficient for large-batch training, while supernet algorithms
favour small batches.  This bench quantifies the claim on the simulator:
at the supernet's small batches the micro-batch slices fall under the
GPU's latency floor and intra-subnet throughput collapses, while the
inter-subnet CSP pipeline keeps the GPUs fed.
"""

from repro.baselines import naspipe
from repro.engines.intra import IntraSubnetEngine
from repro.engines.pipeline import PipelineEngine
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

from conftest import run_once

_SPACE = "NLP.c2"
_SUBNETS = 80


def _inter(batch):
    space = get_search_space(_SPACE)
    supernet = Supernet(space)
    stream = SubnetStream.sample_generational(
        space, SeedSequenceTree(2022), _SUBNETS
    )
    return PipelineEngine(
        supernet, stream, naspipe(), ClusterSpec(num_gpus=8), batch=batch
    ).run()


def _intra(batch, microbatches=8):
    space = get_search_space(_SPACE)
    supernet = Supernet(space)
    stream = SubnetStream.sample_generational(
        space, SeedSequenceTree(2022), _SUBNETS
    )
    return IntraSubnetEngine(
        supernet, stream, ClusterSpec(num_gpus=8), batch=batch,
        microbatches=microbatches,
    ).run()


def test_intra_collapses_at_small_batch(benchmark):
    def compare():
        return {
            "inter@16": _inter(16),
            "intra@16": _intra(16, microbatches=8),
            "inter@192": _inter(192),
            "intra@192": _intra(192, microbatches=8),
        }

    results = run_once(benchmark, compare)
    # Small batch (the supernet regime): inter-subnet wins big — each
    # 2-sample micro-batch is pure latency floor.
    small_ratio = (
        results["inter@16"].throughput_samples_per_sec
        / results["intra@16"].throughput_samples_per_sec
    )
    assert small_ratio > 2.0
    # Large batch: intra-subnet becomes competitive (the GPipe regime);
    # the gap must shrink substantially.
    large_ratio = (
        results["inter@192"].throughput_samples_per_sec
        / results["intra@192"].throughput_samples_per_sec
    )
    assert large_ratio < small_ratio * 0.7
    print()
    for name, result in results.items():
        print(f"{name:>10s}: {result.throughput_samples_per_sec:8.1f} samples/s "
              f"bubble={result.bubble_ratio:.2f}")


def test_intra_is_reproducible_by_construction(benchmark):
    """Sequential subnets mean no causal hazard: the intra engine's
    schedule (and hence any functional execution driven by it) is
    identical for any micro-batch count and cluster size — but the
    throughput cost at supernet batch sizes is why NASPipe exists."""
    def orders():
        result_a = _intra(32, microbatches=4)
        result_b = _intra(32, microbatches=8)
        return result_a, result_b

    a, b = run_once(benchmark, orders)
    completion_a = sorted(a.trace.subnet_completion_times)
    completion_b = sorted(b.trace.subnet_completion_times)
    assert completion_a == completion_b == list(range(_SUBNETS))
