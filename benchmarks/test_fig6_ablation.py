"""Figure 6 bench: component ablations (§5.3)."""

from repro.experiments import figure6

from conftest import run_once


def test_fig6_ablations(benchmark, scale):
    cells = run_once(
        benchmark, figure6.run, scale, spaces=["NLP.c1", "NLP.c3", "CV.c1"]
    )
    table = {}
    for cell in cells:
        table.setdefault(cell.space, {})[cell.system] = cell

    for space, row in table.items():
        full = row["NASPipe"]
        # Every ablation is at best marginally faster, usually slower.
        for name, cell in row.items():
            if cell.throughput is not None:
                assert cell.throughput <= full.throughput * 1.05, (space, name)

    # w/o predictor stores the whole supernet: smaller batch on big
    # spaces (paper: "same as GPipe"), OOM where GPipe OOMs.
    c1 = table["NLP.c1"]
    assert c1["NASPipe w/o predictor"].batch < c1["NASPipe"].batch
    assert (
        c1["NASPipe w/o predictor"].throughput < 0.5 * c1["NASPipe"].throughput
    )

    # w/o scheduler: in-order injection raises the bubble.
    assert c1["NASPipe w/o scheduler"].bubble >= c1["NASPipe"].bubble

    print()
    print(figure6.format_text(cells))
