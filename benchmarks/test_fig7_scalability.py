"""Figure 7 bench: total GPU ALU utilisation vs cluster size (NLP.c1)."""

from repro.experiments import figure7

from conftest import run_once


def test_fig7_scalability(benchmark, scale):
    points = run_once(
        benchmark, figure7.run, scale, gpu_counts=(4, 8, 12, 16)
    )
    naspipe = {
        p.num_gpus: p for p in points if p.system == "NASPipe"
    }
    # Roughly linearly increasing total compute power...
    assert naspipe[8].total_alu > naspipe[4].total_alu
    assert naspipe[16].total_alu > naspipe[8].total_alu * 0.9
    # ...but sub-linear: per-GPU utilisation degrades with depth
    # (communication + causal-dependency bubbles, paper §5.4).
    assert naspipe[16].total_alu / 16 < naspipe[4].total_alu / 4
    assert naspipe[16].bubble > naspipe[8].bubble * 0.9

    # GPipe/PipeDream cannot even hold NLP.c1 on 4 GPUs (44 GB < 59 GB
    # of parameters); they join at larger cluster sizes.
    gpipe = {p.num_gpus: p for p in points if p.system == "GPipe"}
    assert gpipe[4].total_alu is None
    assert gpipe[16].total_alu is not None

    print()
    print(figure7.format_text(points))
