"""Long-stream endurance bench: 1000 subnets through the CSP pipeline.

Exercises what short runs cannot: the finished-list elimination scheme
must keep the dependency tracker's state bounded (the paper's complexity
argument), throughput must hold steady between the first and second half
(no degradation with stream position), and the ranking/ordering
invariants must survive at scale.
"""

from repro.baselines import naspipe
from repro.engines.pipeline import PipelineEngine
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

from conftest import run_once

_SUBNETS = 1000


def test_thousand_subnet_stream(benchmark):
    def long_run():
        space = get_search_space("NLP.c2")
        supernet = Supernet(space)
        stream = SubnetStream.sample_generational(
            space, SeedSequenceTree(2022), _SUBNETS
        )
        engine = PipelineEngine(
            supernet, stream, naspipe(), ClusterSpec(num_gpus=8), batch=192
        )
        result = engine.run()
        return engine, result

    engine, result = run_once(benchmark, long_run)
    assert result.subnets_completed == _SUBNETS

    # Elimination kept the tracker small: the frontier advanced past
    # almost the entire stream and only a bounded suffix stays active.
    tracker = engine.policy.tracker
    assert tracker.frontier == _SUBNETS
    assert tracker.active_subnets() == []

    # Throughput steady: second-half completion rate within 15% of the
    # first half's.
    times = engine.trace.subnet_completion_times
    half = _SUBNETS // 2
    first_half = times[half - 1] - times[24]
    second_half = times[_SUBNETS - 1] - times[half - 1]
    assert 0.85 < second_half / first_half < 1.18

    # Scheduler cost stayed negligible overall (paper: <0.01 s/call).
    scheduler = engine.policy.scheduler
    assert scheduler.mean_call_time_s < 0.01

    print()
    print(result.summary())
    print(f"scheduler: {scheduler.calls} calls, "
          f"{scheduler.mean_call_time_s * 1e6:.1f} µs/call")
