"""Table 3 bench: reproducibility across cluster sizes (CSP/BSP/ASP)."""

from repro.experiments import table3

from conftest import run_once


def test_table3_reproducibility(benchmark):
    reports = run_once(
        benchmark,
        table3.run,
        spaces=["NLP.c2", "CV.c2"],
        scale=table3.Table3Scale(steps=36, num_blocks=16),
    )
    for space, report in reports.items():
        # CSP: identical losses, scores and bits on 4/8/16 GPUs.
        assert report.is_reproducible("CSP"), space
        csp_losses = {
            report.losses[("CSP", gpus)] for gpus in report.gpu_counts("CSP")
        }
        assert len(csp_losses) == 1
        csp_scores = {
            report.scores[("CSP", gpus)] for gpus in report.gpu_counts("CSP")
        }
        assert len(csp_scores) == 1
        # BSP/ASP: different bits per cluster size.
        assert not report.is_reproducible("BSP"), space
        assert not report.is_reproducible("ASP"), space
    print()
    print(table3.format_text(reports))


def test_table3_csp_quality_not_worse(benchmark):
    """The paper's Table 3 shows CSP's losses at or below BSP/ASP's —
    enforcing the causal order costs nothing in final quality."""
    reports = run_once(
        benchmark,
        table3.run,
        spaces=["NLP.c2"],
        scale=table3.Table3Scale(steps=60, num_blocks=16),
    )
    report = reports["NLP.c2"]
    csp_loss = report.losses[("CSP", 8)]
    assert csp_loss <= report.losses[("BSP", 8)] + 1e-6
    assert csp_loss <= report.losses[("ASP", 8)] + 1e-6
