"""Figure 5 bench: normalized throughput, four systems × seven spaces.

Shape assertions against the paper's §5.1:

* GPipe and PipeDream OOM on NLP.c0; NASPipe and VPipe run it.
* NASPipe beats GPipe on every space it wins big on large spaces
  (the speedup grows as the search space grows).
* NASPipe's subnets/hour ordering: T(c0) > T(c1) > T(c2) > T(c3)
  (the artifact's Experiment 2).
"""

from repro.experiments import figure5
from repro.metrics.throughput import normalize_throughput

from conftest import run_once


def _cells_by_space(cells):
    table = {}
    for cell in cells:
        table.setdefault(cell.space, {})[cell.system] = cell
    return table


def test_fig5_throughput_all_spaces(benchmark, scale):
    cells = run_once(benchmark, figure5.run, scale)
    table = _cells_by_space(cells)

    # NLP.c0: only the swapped-context systems survive.
    assert table["NLP.c0"]["GPipe"].throughput is None
    assert table["NLP.c0"]["PipeDream"].throughput is None
    assert table["NLP.c0"]["NASPipe"].throughput is not None
    assert table["NLP.c0"]["VPipe"].throughput is not None

    # NASPipe vs GPipe speedup grows with the search space (NLP.c3->c1).
    def speedup(space):
        gpipe = table[space]["GPipe"].throughput
        return table[space]["NASPipe"].throughput / gpipe

    assert speedup("NLP.c1") > speedup("NLP.c2") > 1.0
    assert speedup("NLP.c1") > speedup("NLP.c3")
    assert speedup("CV.c1") > speedup("CV.c3")

    # NASPipe beats VPipe on the largest spaces (same batch, lower bubble).
    assert (
        table["NLP.c1"]["NASPipe"].throughput
        > table["NLP.c1"]["VPipe"].throughput
    )

    # Artifact Experiment 2: larger spaces traverse subnets faster.
    rates = [
        table[name]["NASPipe"].subnets_per_hour
        for name in ("NLP.c0", "NLP.c1", "NLP.c2", "NLP.c3")
    ]
    assert rates[0] > rates[1] > rates[2] > rates[3]

    print()
    print(figure5.format_text(cells))


def test_fig5_bubble_decreases_with_space_size(benchmark, scale):
    cells = run_once(
        benchmark, figure5.run, scale,
        spaces=["NLP.c1", "NLP.c3"], systems=["NASPipe"],
    )
    bubbles = {cell.space: cell.bubble for cell in cells}
    # Paper Table 2: 0.39 (c1) vs 0.68 (c3) — more candidates per block,
    # fewer dependencies, fuller pipeline.
    assert bubbles["NLP.c1"] < bubbles["NLP.c3"]
