"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure at a CI-friendly scale
and asserts the *shape* properties the paper reports (who wins, growth
directions, reproducibility verdicts).  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale(subnets=120, num_gpus=8)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    Experiment runners are deterministic and heavy; repeated rounds would
    only re-measure the same simulation.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
