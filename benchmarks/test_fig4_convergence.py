"""Figure 4 bench: end-to-end convergence, score vs virtual wall-clock."""

from repro.experiments import figure4

from conftest import run_once


def test_fig4_convergence(benchmark):
    curves = run_once(
        benchmark,
        figure4.run,
        spaces=["NLP.c1", "CV.c1"],
        steps=96,
        num_blocks=16,
    )
    by_key = {(c.space, c.system): c for c in curves}

    for space in ("NLP.c1", "CV.c1"):
        naspipe = by_key[(space, "NASPipe")]
        gpipe = by_key[(space, "GPipe")]
        assert naspipe.points and gpipe.points
        # NASPipe finishes the same stream sooner than GPipe/VPipe
        # (larger batches aren't free lunch — the time axis is what the
        # paper's Figure 4 compares).
        assert naspipe.points[-1][0] < gpipe.points[-1][0]
        assert naspipe.points[-1][0] < by_key[(space, "VPipe")].points[-1][0]
        # Progress within any shared wall-clock budget dominates: by
        # NASPipe's finish time it has logged more training checkpoints
        # than GPipe has managed (the curve that is further along).
        budget = naspipe.points[-1][0]
        naspipe_progress = sum(1 for t, _l, _s in naspipe.points if t <= budget)
        gpipe_progress = sum(1 for t, _l, _s in gpipe.points if t <= budget)
        assert naspipe_progress > gpipe_progress
        # Quality converges to the same band on the same stream; no
        # system beats NASPipe's final score materially.
        assert naspipe.final_score >= gpipe.final_score - 1.0

    print()
    print(figure4.format_text(curves))
