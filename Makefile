# Convenience targets (see README for the underlying commands).

.PHONY: install test bench bench-scheduler bench-obs bench-serving obs-baseline experiments repro-check demo trace-demo analyze-demo faults-demo chaos-smoke chaos-fleet serve-demo serving-demo monitor-demo clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-scheduler:
	python -m repro scheduler-cost --json BENCH_scheduler.json \
		--baseline benchmarks/scheduler_baseline.json

bench-serving:
	python -m repro bench-serving examples/serving_demo.json \
		--json BENCH_serving.json \
		--baseline benchmarks/serving_baseline.json

bench-obs:
	python -m repro analyze examples/trace_demo.json \
		--sweep-gpus 2 4 8 --json BENCH_obs.json

obs-baseline:
	python tools/record_obs_baseline.py benchmarks/obs_baseline.json

experiments:
	python -m repro all --scale small

experiments-paper:
	python -m repro all --scale paper

repro-check:
	python -m repro repro-check

demo:
	python -m repro demo

trace-demo:
	python -m repro trace examples/trace_demo.json \
		--out trace_demo.trace.json --summary

analyze-demo:
	python -m repro analyze examples/analyze_demo.json

faults-demo:
	python -m repro faults examples/faults_demo.json \
		--json faults_demo.availability.json

chaos-smoke:
	python -m repro chaos examples/chaos_demo.json --seeds 10 \
		--json chaos_smoke.report.json

chaos-fleet:
	python -m repro chaos-fleet examples/chaos_fleet_demo.json \
		--json chaos_fleet.report.json

serve-demo:
	python -m repro serve examples/serve_demo.json \
		--json serve_demo.report.json

serving-demo:
	python -m repro bench-serving examples/serving_demo.json

monitor-demo:
	python -m repro monitor examples/serve_demo.json \
		--out monitor_demo.series.jsonl \
		--prom monitor_demo.metrics.prom \
		--json monitor_demo.report.json

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
