"""Setup shim: lets ``pip install -e . --no-build-isolation`` work on the
offline toolchain (setuptools 65 without the wheel package)."""

from setuptools import setup

setup()
