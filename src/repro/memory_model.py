"""GPU memory feasibility: what batch size each system can train.

The paper's Table 2 batch-size gaps (NASPipe 192 vs GPipe 32 vs PipeDream
16 on NLP.c1) and the NLP.c0 out-of-memory failures of GPipe/PipeDream
all derive from one constraint: parameters + activations must fit the
11 GB GPU.  This module prices both sides:

* **parameter residency** — full-context systems pin their whole supernet
  partition (plus gradient/optimizer buffers); cached systems pin only a
  small multiple of one subnet's stage share;
* **activation footprint** — a per-sample *stash* for every in-flight
  subnet (checkpoint boundaries when recomputing, all intermediates when
  not) plus a per-sample *working set* for the task being computed.

Constants are calibrated against the paper's testbed (see
EXPERIMENTS.md); they are deliberately coarse — the reproduction targets
the ordering and growth trends, not exact sample counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SystemConfig
from repro.sim.cluster import ClusterSpec
from repro.supernet.supernet import Supernet

__all__ = [
    "MemoryBreakdown",
    "resident_param_bytes_per_stage",
    "activation_bytes_per_sample",
    "max_feasible_batch",
]

_MB = 1_000_000

#: Per-sample activation stash per stage when recomputing (boundary +
#: checkpoint segments) and the transient working set during a task.
_STASH_BYTES = {"NLP": 4 * _MB, "CV": 12 * _MB}
_WORKING_BYTES = {"NLP": 7 * _MB, "CV": 20 * _MB}
#: Per-layer intermediate kept when NOT recomputing (PipeDream).
_NO_RECOMPUTE_LAYER_BYTES = {"NLP": int(2.5 * _MB), "CV": 6 * _MB}
#: Gradient + optimizer buffers as a multiple of resident parameters.
_PARAM_OVERHEAD_FACTOR = 1.25
#: ASP (PipeDream) additionally keeps stashed weight versions for
#: in-flight minibatches; its effective parameter overhead is higher.
_ASP_PARAM_OVERHEAD_FACTOR = 1.26
#: Batch sizes are searched over multiples of this granularity.
_BATCH_GRANULARITY = 4


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-GPU memory budget decomposition at a given batch size."""

    usable_bytes: int
    param_bytes: int
    stash_bytes: int
    working_bytes: int

    @property
    def total(self) -> int:
        return self.param_bytes + self.stash_bytes + self.working_bytes

    @property
    def fits(self) -> bool:
        return self.total <= self.usable_bytes


def resident_param_bytes_per_stage(
    supernet: Supernet, config: SystemConfig, stages: int
) -> int:
    """Pinned parameter bytes (incl. grad/optimizer buffers) per GPU."""
    if config.context == "full":
        base = supernet.total_param_bytes() / stages
    else:
        subnet_share = supernet.expected_subnet_param_count() * 4 / stages
        base = config.cache_subnets * subnet_share
    factor = (
        _ASP_PARAM_OVERHEAD_FACTOR if config.sync == "asp" else _PARAM_OVERHEAD_FACTOR
    )
    return int(base * factor)


def _layers_per_stage(supernet: Supernet, stages: int) -> float:
    return supernet.space.num_blocks / stages


def activation_bytes_per_sample(
    supernet: Supernet, config: SystemConfig, stages: int
) -> int:
    """Stash (× in-flight window) + working set, per sample, per GPU."""
    domain = supernet.space.domain
    if config.recompute:
        stash = _STASH_BYTES[domain]
    else:
        stash = int(
            _layers_per_stage(supernet, stages) * _NO_RECOMPUTE_LAYER_BYTES[domain]
        )
    window = _stash_window(config, stages)
    return window * stash + _WORKING_BYTES[domain]


def _stash_window(config: SystemConfig, stages: int) -> int:
    """How many in-flight subnets stash activations per stage.

    ASP (1F1B) keeps up to pipeline-depth stashes alive at stage 0 — and
    the worst stage governs the memory budget.  Synchronous policies
    stash their full window.
    """
    if config.sync == "asp":
        return stages
    return config.default_window(stages)


def memory_breakdown(
    supernet: Supernet,
    config: SystemConfig,
    cluster: ClusterSpec,
    batch: int,
) -> MemoryBreakdown:
    stages = cluster.num_gpus
    params = resident_param_bytes_per_stage(supernet, config, stages)
    domain = supernet.space.domain
    if config.recompute:
        stash_unit = _STASH_BYTES[domain]
    else:
        stash_unit = int(
            _layers_per_stage(supernet, stages) * _NO_RECOMPUTE_LAYER_BYTES[domain]
        )
    stash = _stash_window(config, stages) * stash_unit * batch
    working = _WORKING_BYTES[domain] * batch
    return MemoryBreakdown(
        usable_bytes=cluster.gpu_memory_bytes - cluster.reserved_bytes,
        param_bytes=params,
        stash_bytes=stash,
        working_bytes=working,
    )


def cpu_pinned_bytes_per_stage(
    supernet: Supernet, config: SystemConfig, stages: int
) -> int:
    """Pinned host memory a stage needs for its supernet partition.

    Swapped-context systems keep the whole supernet in pinned CPU memory,
    partitioned by choice-block hierarchy across stages (§4.2); the
    paper's artifact demands 100 GB of host RAM for exactly this reason.
    Full-context systems pin nothing (weights live on the GPU).
    """
    if config.context == "full":
        return 0
    return int(supernet.total_param_bytes() / stages)


def cpu_memory_feasible(
    supernet: Supernet,
    config: SystemConfig,
    cluster: ClusterSpec,
    host_memory_bytes: int = 64 * 1_000_000_000,
) -> bool:
    """Whether each host's RAM holds its stages' pinned partitions.

    The testbed had 64 GB per host, 4 GPUs each; NLP.c0's 80 GB supernet
    fits only because it spreads over the stages' hosts.
    """
    per_stage = cpu_pinned_bytes_per_stage(supernet, config, cluster.num_gpus)
    stages_per_host = min(cluster.gpus_per_host, cluster.num_gpus)
    return per_stage * stages_per_host <= host_memory_bytes


def max_feasible_batch(
    supernet: Supernet, config: SystemConfig, cluster: ClusterSpec
) -> Optional[int]:
    """Largest supported batch (multiple of 4, capped by the space's
    ``max_batch``), or None when even the minimum batch overflows — the
    system OOMs on this search space (GPipe/PipeDream on NLP.c0)."""
    best: Optional[int] = None
    batch = _BATCH_GRANULARITY
    while batch <= supernet.space.max_batch:
        if memory_breakdown(supernet, config, cluster, batch).fits:
            best = batch
        else:
            break
        batch += _BATCH_GRANULARITY
    return best
