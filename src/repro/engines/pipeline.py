"""The event-driven pipeline engine.

One engine instance runs one subnet stream through a simulated cluster
under one :class:`~repro.engines.policies.base.SyncPolicy`.  The engine
owns the generic mechanics every system shares:

* per-stage queues and backward-first dispatch (Algorithm 1's skeleton);
* task execution on GPUs (durations from profiled layer costs), activation
  and gradient transfers over inter-stage links;
* context-manager integration (swap-in stalls, prefetches, evictions) for
  cached-context systems;
* the functional plane, executed in event order, with immediate or
  buffered (BSP flush) update commitment.

Policies supply only the decisions that differ between systems: admission
windows, forward selection (CSP's Algorithm 2 vs plain FIFO), and flush
points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config import SystemConfig
from repro.core.context_manager import StageContextManager
from repro.core.runtime import CspStageState
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.policies import make_policy
from repro.errors import (
    ConfigError,
    DeadlockError,
    GpuOutOfMemoryError,
    PartitionError,
)
from repro.memory_model import max_feasible_batch, memory_breakdown
from repro.nn.parameter_store import LayerId
from repro.nn.program import PendingUpdate, StageActivation
from repro.partition.balanced import (
    Partition,
    balanced_partition,
    weighted_balanced_partition,
)
from repro.partition.mirror import MirrorRegistry
from repro.partition.static import static_partition_for_space
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.engine import SimulationEngine
from repro.sim.trace import ExecutionTrace
from repro.supernet.sampler import SubnetStream
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet

__all__ = ["PipelineEngine", "PipelineResult"]


@dataclass
class _SubnetRun:
    """Mutable per-subnet in-flight state.

    The ``stage_layers`` / ``fwd_ms`` / ``bwd_ms`` / ``boundary_bytes``
    tuples are precomputed once at injection: every scheduler decision,
    task dispatch and boundary transfer consults them, and recomputing
    layer slices and profile sums per event dominated the hot path.  The
    duration sums replicate the original per-layer accumulation order
    exactly, so makespans stay bitwise identical.
    """

    subnet: Subnet
    partition: Partition
    injected_at: float
    boundary_in: Dict[int, np.ndarray] = field(default_factory=dict)
    grad_in: Dict[int, np.ndarray] = field(default_factory=dict)
    activations: Dict[int, StageActivation] = field(default_factory=dict)
    buffered_updates: List[PendingUpdate] = field(default_factory=list)
    loss: Optional[float] = None
    #: per-stage interned layer slices (partition applied once)
    stage_layers: Tuple[Tuple[LayerId, ...], ...] = ()
    #: per-stage forward compute, unscaled reference ms
    fwd_ms: Tuple[float, ...] = ()
    #: per-stage backward compute (+ recompute re-forward), unscaled ms
    bwd_ms: Tuple[float, ...] = ()
    #: per-stage boundary activation bytes for the run's batch
    boundary_bytes: Tuple[int, ...] = ()


@dataclass
class PipelineResult:
    """Everything an experiment needs from one pipeline run."""

    system: str
    space: str
    num_gpus: int
    batch: int
    makespan_ms: float
    subnets_completed: int
    trace: ExecutionTrace
    losses: Dict[int, float]
    digest: Optional[str]
    bubble_ratio: float
    total_alu: float
    cache_hit_rate: Optional[float]
    throughput_samples_per_sec: float
    mean_exec_ms: float
    mirror_push_bytes: int
    scheduler_calls: int
    oom_retries: int = 0
    #: worst per-stage cached parameter footprint observed (bytes);
    #: None for full-context systems.
    peak_cache_bytes: Optional[int] = None
    #: scheduler cost accounting (CSP systems; empty/zero otherwise)
    scheduler_mode: str = ""
    scheduler_scans: int = 0
    scheduler_ready_pops: int = 0
    scheduler_mean_call_us: float = 0.0
    # -- fault tolerance (repro.ft) ------------------------------------
    #: True when a fatal fault halted the run before the stream drained;
    #: completions/losses then cover only the surviving prefix
    interrupted: bool = False
    interrupt_kind: str = ""
    interrupt_time_ms: float = 0.0
    fault_count: int = 0
    task_retries: int = 0
    checkpoint_cuts: List[int] = field(default_factory=list)
    #: chronological degradation-mitigation log (repro.ft.degradation);
    #: part of a run's replayable identity, compared by verify_replay
    mitigation_actions: List[Dict] = field(default_factory=list)

    def summary(self) -> str:
        hit = (
            f"{self.cache_hit_rate * 100:.1f}%"
            if self.cache_hit_rate is not None
            else "N/A"
        )
        return (
            f"{self.system:>22s} {self.space:>7s} D={self.num_gpus:<2d} "
            f"batch={self.batch:<4d} thr={self.throughput_samples_per_sec:8.1f}/s "
            f"bubble={self.bubble_ratio:.2f} ALU={self.total_alu:.1f}x hit={hit}"
        )

    # -- observability (repro.obs) -------------------------------------
    def trace_export(self, path=None, label: Optional[str] = None) -> str:
        """Chrome Trace Event Format JSON for this run (Perfetto /
        ``chrome://tracing``); written to ``path`` when given.

        Deterministic byte-for-byte: the same configuration always
        exports the identical file (the trace of the trace is itself
        reproducible).  See ``docs/TRACING.md`` for the track layout.
        """
        from repro.obs import export_chrome_trace

        return export_chrome_trace(
            self.trace,
            path=path,
            label=label or f"{self.system}/{self.space}",
            system=self.system,
            space=self.space,
            batch=self.batch,
        )

    def trace_summary(self):
        """Deterministic run summary dict with per-stage bubble
        attribution (startup / csp-wait / fetch-stall / drain); the
        attribution means sum to :meth:`ExecutionTrace.bubble_ratio`
        within 1e-9.  Render with :func:`repro.obs.format_summary`.
        """
        from repro.obs import run_summary

        return run_summary(self)

    def critical_path(self):
        """Critical-path breakdown of this run: the longest dependency
        chain to final completion, attributed by resource class; its
        segments tile the makespan exactly (1e-9).  See
        ``docs/ANALYSIS.md``.
        """
        from repro.obs import critical_path_breakdown

        return critical_path_breakdown(self.trace)

    def what_if(self):
        """What-if report: projected makespans under relaxed-subsystem
        scenarios (zero fetch stalls, infinite NIC, perfect predictor,
        the no-CSP/ASP bound), ranked by savings.  See
        ``docs/ANALYSIS.md`` for the model's assumptions.
        """
        from repro.obs import what_if_report

        return what_if_report(self.trace)

    def telemetry(self, rules=None):
        """Post-hoc :class:`~repro.obs.telemetry.TelemetryHub` for this
        run: the trace's events replayed through the telemetry listener,
        giving the identical final instrument state a live hub would
        hold (the listener is a pure function of the event stream).  See
        ``docs/TELEMETRY.md``.
        """
        from repro.obs.telemetry import replay_telemetry

        return replay_telemetry(self.trace, rules=rules)


class PipelineEngine:
    """Runs one (system, space, cluster, stream) combination."""

    def __init__(
        self,
        supernet: Supernet,
        stream: SubnetStream,
        config: SystemConfig,
        cluster_spec: Optional[ClusterSpec] = None,
        batch: Optional[int] = None,
        functional: Optional[FunctionalPlane] = None,
        event_listener=None,
        faults=None,
        checkpoints=None,
        degradation=None,
        telemetry=None,
    ) -> None:
        self.supernet = supernet
        self.space = supernet.space
        self.stream = stream
        self.config = config
        self.cluster = self._resolve_cluster(cluster_spec)
        self.stages = self.cluster.num_stages
        if self.space.num_blocks < self.stages:
            raise PartitionError(
                f"{self.space.name}: {self.space.num_blocks} choice blocks "
                f"cannot fill {self.stages} pipeline stages"
            )

        if batch is None:
            batch = max_feasible_batch(supernet, config, self.cluster.spec)
            if batch is None:
                breakdown = memory_breakdown(supernet, config, self.cluster.spec, 4)
                raise GpuOutOfMemoryError(
                    0, breakdown.total, breakdown.usable_bytes
                )
        self.batch = batch
        #: batch-dependent compute scaling, constant for the whole run
        self._batch_scale = supernet.batch_time_scale(batch)

        self.trace = ExecutionTrace(num_gpus=self.stages)
        self.sim = SimulationEngine(trace=self.trace)
        #: optional callback(kind, stage, subnet_id, virtual_time_ms) fired
        #: on task starts/finishes and subnet completions — the hook for
        #: live monitors, progress bars, or custom trace sinks.
        self.event_listener = event_listener
        #: optional :class:`~repro.obs.telemetry.TelemetryHub` — a pure
        #: observer (trace listener + scrape events); arming it changes
        #: no engine decision, so digests stay bitwise identical
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach_engine(self)
        self.functional = functional
        self.policy = make_policy(config, self.stages)

        self.stage_states: List[CspStageState] = [
            CspStageState(stage, trace=self.trace, clock=lambda: self.sim.now)
            for stage in range(self.stages)
        ]
        self._stage_busy: List[bool] = [False] * self.stages
        self._last_was_backward: List[bool] = [False] * self.stages
        # Bind after the stage states exist: policies that mirror the
        # forward queues (CSP's readiness index) subscribe to them here.
        self.policy.bind(self)
        self.runs: Dict[int, _SubnetRun] = {}
        self.inflight: Set[int] = set()
        self.started: Set[int] = set()
        self._active_started = 0
        self.oom_retries = 0
        self.completed: Dict[int, float] = {}
        self.losses: Dict[int, float] = {}

        # Static run facts the offline analyses (critical path, what-if
        # projection) need; emitted as events so a bare ExecutionTrace is
        # self-describing without the engine that produced it.
        self.trace.record_event(
            "run_meta",
            self.sim.now,
            system=config.name,
            num_stages=self.stages,
            batch=self.batch,
            window=config.default_window(self.stages),
            sync=config.sync,
        )
        for link in self.cluster.forward_links + self.cluster.backward_links:
            self.trace.record_event(
                "link_meta",
                self.sim.now,
                src=link.src,
                dst=link.dst,
                bandwidth=link.bandwidth_bytes_per_ms,
                latency=link.latency_ms,
            )

        self.home_partition = static_partition_for_space(supernet, self.stages)
        self.mirror_registry = (
            MirrorRegistry(self.home_partition)
            if config.mirroring and config.mirror_mode == "mirror"
            else None
        )
        #: migrate mode: the single current residence of each layer
        #: (initialised lazily to the layer's static home stage).
        self._layer_location: Dict[LayerId, int] = {}
        self.migration_ms_total = 0.0
        self.migration_count = 0

        self.contexts: Optional[List[StageContextManager]] = None
        if config.context == "cached":
            share = (
                self.supernet.expected_subnet_param_count() * 4 / self.stages
            )
            capacity = int(config.cache_subnets * share)
            self.contexts = [
                StageContextManager(
                    stage,
                    supernet,
                    self.cluster.copy_engines[stage],
                    capacity,
                    self.trace,
                )
                for stage in range(self.stages)
            ]

        # -- fault tolerance (repro.ft), bound last: the injector
        # schedules fault events into the (now fully built) sim queue,
        # the checkpoint manager observes functional-plane commits.
        self.faults = faults
        self.checkpoints = checkpoints
        self.task_retries = 0
        self.interrupted = False
        self.interrupt_kind = ""
        self.interrupt_time_ms = 0.0
        if checkpoints is not None:
            checkpoints.bind(self)
        if faults is not None:
            faults.bind(self)

        # -- graceful degradation (repro.ft.degradation): the health
        # monitor listens to the trace stream; mitigations act through
        # admission_cap, per-stage prefetch throttles and partition
        # weights — all consulted at safe decision points.
        #: in-flight cap imposed by active mitigation (None = no cap)
        self.admission_cap: Optional[int] = None
        from repro.ft.degradation import as_manager  # lazy: import cycle

        self.degradation = as_manager(degradation)
        if self.degradation is not None:
            self.degradation.bind(self)

    @staticmethod
    def _resolve_cluster(source) -> Cluster:
        """Accept the three ways an engine can be given devices.

        A bare :class:`ClusterSpec` (or ``None``) keeps the historical
        behaviour: the engine constructs — and solely owns — its
        cluster.  A pre-built :class:`Cluster` is adopted as-is.  Any
        lease-shaped object (``materialize()`` returning a cluster, see
        :class:`repro.service.lease.DeviceLease`) defers device
        ownership to the granting ``ClusterManager``: the engine runs on
        the materialised view of its leased physical slots and never
        touches devices it was not granted.
        """
        if source is None:
            return Cluster(ClusterSpec())
        if isinstance(source, Cluster):
            return source
        if isinstance(source, ClusterSpec):
            return Cluster(source)
        materialize = getattr(source, "materialize", None)
        if callable(materialize):
            return materialize()
        raise ConfigError(
            f"cannot build a cluster from {type(source).__name__}; expected "
            "ClusterSpec, Cluster or a device lease"
        )

    # ------------------------------------------------------------------
    # helpers used by policies
    # ------------------------------------------------------------------
    def subnet_of(self, subnet_id: int) -> Subnet:
        return self.runs[subnet_id].subnet

    def stage_layers(self, subnet_id: int, stage: int) -> Sequence[LayerId]:
        return self.runs[subnet_id].stage_layers[stage]

    def active_started_count(self) -> int:
        """Subnets whose first forward has begun but which have not
        completed — the set that actually holds activation stashes."""
        return self._active_started

    def oldest_unfinished_subnet(self) -> int:
        if self.inflight:
            return min(self.inflight)
        # stream ids start at the resume base for recovered runs
        return self.stream.base + len(self.completed)

    def prefetch_context(self, stage: int, layers: Sequence[LayerId]) -> None:
        if self.contexts is not None:
            self.contexts[stage].prefetch(layers, self.sim.now)

    def effective_window(self, base: int) -> int:
        """Admission window after degradation backpressure (identity
        when no mitigation is active).  Policies that own their
        admission barrier (BSP's bulk flush) never consult this."""
        if self.admission_cap is None:
            return base
        return max(1, min(base, self.admission_cap))

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def _partition_for(self, subnet: Subnet) -> Partition:
        if self.config.partitioning == "static":
            return list(self.home_partition)
        costs = [
            self.supernet.profile(layer).fwd_ms_ref
            + self.supernet.profile(layer).bwd_ms_ref
            for layer in subnet.layer_ids()
        ]
        weights = (
            self.degradation.partition_weights()
            if self.degradation is not None
            else None
        )
        if weights is not None:
            # Straggler rebalancing: boundaries shift away from weighted
            # (slow) stages; off-home layers materialise as replicas
            # through the mirror registry at registration below.
            return weighted_balanced_partition(costs, self.stages, weights)
        return balanced_partition(costs, self.stages)

    def _try_inject(self) -> None:
        while self.stream.remaining and self.policy.can_inject():
            subnet = self.stream.retrieve()
            assert subnet is not None
            partition = self._partition_for(subnet)
            run = _SubnetRun(subnet, partition, self.sim.now)
            self._precompute_run(run)
            self.runs[subnet.subnet_id] = run
            self.inflight.add(subnet.subnet_id)
            for state in self.stage_states:
                state.retrieve(subnet)
            if self.mirror_registry is not None:
                self.mirror_registry.register_subnet(subnet, partition, self.sim.now)
            if self.functional is not None:
                run.boundary_in[0] = self.functional.input_for(subnet)
            self.policy.on_injected(subnet.subnet_id)
            sid = subnet.subnet_id
            self.trace.record_event("subnet_inject", self.sim.now, subnet_id=sid)
            self.sim.schedule_after(
                0.0, lambda sid=sid: self._on_forward_arrival(0, sid),
                label=f"inject SN{sid}",
            )

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------
    def _on_forward_arrival(self, stage: int, subnet_id: int) -> None:
        self.stage_states[stage].enqueue_forward(subnet_id)
        self._kick(stage)

    def _on_backward_arrival(self, stage: int, subnet_id: int) -> None:
        self.stage_states[stage].enqueue_backward(subnet_id)
        self._kick(stage)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _kick(self, stage: int) -> None:
        if self._stage_busy[stage]:
            return
        state = self.stage_states[stage]
        # Algorithm 1's loop handles one backward then one forward per
        # iteration: backwards take priority (they release downstream
        # dependencies) but alternate with forwards so the forward wave
        # keeps feeding the pipeline (the 1B1F cadence PipeDream's 1F1B
        # also follows).  A pure backward-first rule convoys backwards and
        # periodically starves every stage's forward queue.
        prefer_forward = self._last_was_backward[stage]
        if prefer_forward:
            chosen = self.policy.select_forward(stage)
            if chosen is not None:
                state.pop_forward(chosen)
                self._begin_task(stage, chosen, is_backward=False)
                return
        subnet_id = state.pop_backward()
        if subnet_id is not None:
            self._begin_task(stage, subnet_id, is_backward=True)
            return
        if not prefer_forward:
            chosen = self.policy.select_forward(stage)
            if chosen is not None:
                state.pop_forward(chosen)
                self._begin_task(stage, chosen, is_backward=False)

    def _home_stage(self, layer: LayerId) -> int:
        block = layer[0]
        for stage, (start, stop) in enumerate(self.home_partition):
            if start <= block < stop:
                return stage
        raise KeyError(f"block {block} outside home partition")

    def _migration_delay_ms(self, stage: int, layers, now: float) -> float:
        """On-demand operator migration cost (§2.3's rejected design).

        In ``migrate`` mode a layer lives on exactly one stage; executing
        it elsewhere first moves its parameters over the interconnect,
        synchronously, on the critical path.  Mirroring eliminates this
        ("NASPipe mirrors these operators between stages and eliminates
        these costs") at the price of push-sync traffic.
        """
        if (
            self.config.partitioning != "balanced"
            or self.config.mirror_mode != "migrate"
        ):
            return 0.0
        bandwidth = self.cluster.spec.network_bandwidth_bytes_per_ms
        latency = self.cluster.spec.network_latency_ms
        delay = 0.0
        for layer in layers:
            location = self._layer_location.get(layer)
            if location is None:
                location = self._home_stage(layer)
            if location != stage:
                delay += (
                    self.supernet.profile(layer).param_bytes / bandwidth + latency
                )
                self.migration_count += 1
            self._layer_location[layer] = stage
        if delay:
            self.migration_ms_total += delay
            self.trace.record_interval(stage, now, now + delay, "stall", -1)
            self.trace.record_event(
                "migration", now, stage=stage, delay_ms=delay
            )
        return delay

    def _precompute_run(self, run: _SubnetRun) -> None:
        """Freeze the per-stage views of one injected subnet.

        The backward sums interleave ``bwd + fwd`` per layer exactly as
        the original per-event loop did (float addition is not
        associative; a reordered sum would shift makespans bitwise).
        """
        profile = self.supernet.profile
        recompute = self.config.recompute
        stage_layers = tuple(
            run.subnet.layers_in_range(start, stop)
            for start, stop in run.partition
        )
        fwd_ms: List[float] = []
        bwd_ms: List[float] = []
        boundary: List[int] = []
        for layers in stage_layers:
            fwd = 0.0
            bwd = 0.0
            for layer in layers:
                p = profile(layer)
                fwd += p.fwd_ms_ref
                bwd += p.bwd_ms_ref
                if recompute:
                    bwd += p.fwd_ms_ref  # checkpoint re-forward
            fwd_ms.append(fwd)
            bwd_ms.append(bwd)
            boundary.append(
                profile(layers[-1]).activation_bytes_per_sample * self.batch
                if layers
                else 0
            )
        run.stage_layers = stage_layers
        run.fwd_ms = tuple(fwd_ms)
        run.bwd_ms = tuple(bwd_ms)
        run.boundary_bytes = tuple(boundary)

    def _task_duration_ms(self, subnet_id: int, stage: int, is_backward: bool) -> float:
        run = self.runs[subnet_id]
        base = run.bwd_ms[stage] if is_backward else run.fwd_ms[stage]
        return base * self._batch_scale * self.cluster.spec.speed_factor(stage)

    #: oversubscription level treated as a GPU OOM, and the penalty paid
    #: to catch the exception, reclaim memory and re-execute the stage
    #: (paper §4.2's retry path).
    OOM_THRESHOLD = 1.5
    OOM_RETRY_PENALTY_MS = 5.0

    def _begin_task(
        self, stage: int, subnet_id: int, is_backward: bool,
        retrying: bool = False,
    ) -> None:
        now = self.sim.now
        self._stage_busy[stage] = True
        if stage == 0 and not is_backward and subnet_id not in self.started:
            self.started.add(subnet_id)
            self._active_started += 1
        layers = self.stage_layers(subnet_id, stage)
        if (
            self.contexts is not None
            and not retrying
            and self.contexts[stage].oversubscription() > self.OOM_THRESHOLD
        ):
            # Simulated CUDA OOM: catch, reclaim, re-execute (§4.2).
            # Checked before any other time is spent so the retry stall
            # never overlaps migration or swap-in intervals.
            self.oom_retries += 1
            self.contexts[stage].reclaim(now)
            retry_at = now + self.OOM_RETRY_PENALTY_MS
            self.trace.record_interval(stage, now, retry_at, "stall", subnet_id)
            self.trace.record_event(
                "oom_retry",
                now,
                stage=stage,
                subnet_id=subnet_id,
                penalty_ms=self.OOM_RETRY_PENALTY_MS,
                retry_at=retry_at,
            )
            self.sim.schedule(
                retry_at,
                lambda: self._begin_task(
                    stage, subnet_id, is_backward, retrying=True
                ),
                label=f"oom-retry SN{subnet_id}@P{stage}",
            )
            return
        if self.faults is not None:
            # Transient task error (repro.ft): the dispatch fails, the
            # stage stalls for an exponential backoff, the task retries.
            # Checked on retries too — each armed failure consumes one
            # dispatch, so magnitude-N faults fail N consecutive times.
            fault = self.faults.take_task_fault(stage)
            if fault is not None:
                attempt, delay_ms = fault
                self.task_retries += 1
                retry_at = now + delay_ms
                direction = "bwd" if is_backward else "fwd"
                self.trace.record_interval(stage, now, retry_at, "stall", subnet_id)
                self.trace.record_event(
                    "task_retry",
                    now,
                    stage=stage,
                    subnet_id=subnet_id,
                    attempt=attempt,
                    delay_ms=delay_ms,
                    direction=direction,
                )
                self.sim.schedule(
                    retry_at,
                    lambda: self._begin_task(
                        stage, subnet_id, is_backward, retrying=True
                    ),
                    label=f"task-retry SN{subnet_id}@P{stage}",
                )
                return
        start = now
        start += self._migration_delay_ms(stage, layers, now)
        if self.contexts is not None:
            context = self.contexts[stage]
            plan = context.acquire_for_task(layers, start)
            if plan.ready_time > start:
                # Synchronous swap-in: the GPU idles until the copy lands.
                self.trace.record_interval(
                    stage, start, plan.ready_time, "stall", subnet_id
                )
                self.trace.record_event(
                    "fetch_stall",
                    start,
                    stage=stage,
                    subnet_id=subnet_id,
                    wait_ms=plan.ready_time - start,
                    misses=plan.misses,
                )
                start = plan.ready_time
        self.policy.before_task(stage, subnet_id, is_backward)
        if self.contexts is not None and self.config.predictor:
            # Status passed between stages (paper §3.3): as this task
            # starts, its successor stage prefetches the same subnet's
            # slice — a full task duration of copy lead time.
            if is_backward and stage > 0:
                self.prefetch_context(
                    stage - 1, self.stage_layers(subnet_id, stage - 1)
                )
            elif not is_backward and stage < self.stages - 1:
                self.prefetch_context(
                    stage + 1, self.stage_layers(subnet_id, stage + 1)
                )
        duration = self._task_duration_ms(subnet_id, stage, is_backward)
        self._last_was_backward[stage] = is_backward
        kind = "bwd" if is_backward else "fwd"
        self.trace.record_interval(stage, start, start + duration, kind, subnet_id)
        self.trace.record_event(
            "task_dispatch",
            now,
            stage=stage,
            subnet_id=subnet_id,
            direction=kind,
            start=start,
            end=start + duration,
        )
        self._emit(f"{kind}-start", stage, subnet_id, start)
        self.sim.schedule(
            start + duration,
            lambda: self._on_task_done(stage, subnet_id, is_backward),
            label=f"SN{subnet_id}.{kind}@P{stage}",
        )

    def _emit(self, kind: str, stage: int, subnet_id: int, time: float) -> None:
        if self.event_listener is not None:
            self.event_listener(kind, stage, subnet_id, time)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _on_task_done(self, stage: int, subnet_id: int, is_backward: bool) -> None:
        self._stage_busy[stage] = False
        self.trace.record_event(
            "task_done",
            self.sim.now,
            stage=stage,
            subnet_id=subnet_id,
            direction="bwd" if is_backward else "fwd",
        )
        self._emit(
            "bwd-done" if is_backward else "fwd-done",
            stage,
            subnet_id,
            self.sim.now,
        )
        if is_backward:
            self._finish_backward(stage, subnet_id)
        else:
            self._finish_forward(stage, subnet_id)
        # A backward may have released layers other stages' queued forwards
        # were waiting on (CSP), or lifted an admission barrier (BSP flush,
        # SSP staleness) — re-kick every idle stage, own stage first.
        self._kick(stage)
        for other in range(self.stages):
            if other != stage:
                self._kick(other)
        self._try_inject()

    def _boundary_bytes(self, subnet_id: int, stage: int) -> int:
        return self.runs[subnet_id].boundary_bytes[stage]

    def _finish_forward(self, stage: int, subnet_id: int) -> None:
        now = self.sim.now
        run = self.runs[subnet_id]
        if self.functional is not None:
            activation = self.functional.forward_stage(
                run.subnet, stage, run.partition[stage], run.boundary_in[stage], now
            )
            run.activations[stage] = activation
        if self.contexts is not None:
            # Algorithm 1 line 24: ctxt_manager(fwd_id, EVICT) — the slice
            # leaves the cache after the forward; the pending-backward
            # prefetch (issued when the backward starts upstream) brings
            # it back with a task's worth of lead time.
            context = self.contexts[stage]
            context.release_after_task(
                self.stage_layers(subnet_id, stage), now, dirty=False
            )
            if stage < self.stages - 1:
                # At the last stage the backward runs immediately on the
                # same GPU — evicting there would guarantee a refetch.
                context.evict_subnet(self.stage_layers(subnet_id, stage), now)

        if stage < self.stages - 1:
            if self.functional is not None:
                run.boundary_in[stage + 1] = run.activations[stage].stage_output
            nbytes = self._boundary_bytes(subnet_id, stage)
            arrival = self.cluster.forward_link(stage).transfer(nbytes, now)
            self.trace.record_event(
                "nic_transfer",
                now,
                stage=stage,
                subnet_id=subnet_id,
                src=stage,
                dst=stage + 1,
                nbytes=nbytes,
                arrive=arrival,
                direction="fwd",
            )
            self.sim.schedule(
                arrival,
                lambda: self._on_forward_arrival(stage + 1, subnet_id),
                label=f"fwd-xfer SN{subnet_id}->P{stage + 1}",
            )
        else:
            # Last stage: loss is available; the backward chain begins here.
            if self.functional is not None:
                loss, dfinal = self.functional.loss_and_grad(
                    run.subnet, run.activations[stage].stage_output
                )
                run.loss = float(loss)
                run.grad_in[stage] = dfinal
                self.losses[subnet_id] = float(loss)
            self.stage_states[stage].enqueue_backward(subnet_id)

        self.policy.on_forward_done(stage, subnet_id)

    def _finish_backward(self, stage: int, subnet_id: int) -> None:
        now = self.sim.now
        run = self.runs[subnet_id]
        layers = self.stage_layers(subnet_id, stage)

        if self.functional is not None:
            activation = run.activations.pop(stage)
            dinput, updates = self.functional.backward_stage(
                activation, run.grad_in.pop(stage)
            )
            if stage > 0:
                run.grad_in[stage - 1] = dinput
            if self.policy.commits_immediately:
                self._commit_updates(updates, now)
            else:
                run.buffered_updates.extend(updates)

        if self.mirror_registry is not None:
            for layer in layers:
                self.mirror_registry.record_update_push(
                    layer, self.supernet.profile(layer).param_bytes
                )

        if self.contexts is not None:
            context = self.contexts[stage]
            context.release_after_task(layers, now, dirty=True)
            context.evict_subnet(layers, now)

        self.stage_states[stage].finish_backward(
            subnet_id, self._tracker_frontier()
        )
        self.policy.on_backward_done(stage, subnet_id)

        if stage > 0:
            nbytes = self._boundary_bytes(subnet_id, stage - 1)
            arrival = self.cluster.backward_link(stage).transfer(nbytes, now)
            self.trace.record_event(
                "nic_transfer",
                now,
                stage=stage,
                subnet_id=subnet_id,
                src=stage,
                dst=stage - 1,
                nbytes=nbytes,
                arrive=arrival,
                direction="bwd",
            )
            self.sim.schedule(
                arrival,
                lambda: self._on_backward_arrival(stage - 1, subnet_id),
                label=f"bwd-xfer SN{subnet_id}->P{stage - 1}",
            )
        else:
            self._complete_subnet(subnet_id)

    def _tracker_frontier(self) -> int:
        policy = self.policy
        tracker = getattr(policy, "tracker", None)
        return tracker.frontier if tracker is not None else 0

    def _complete_subnet(self, subnet_id: int) -> None:
        now = self.sim.now
        self.inflight.discard(subnet_id)
        if subnet_id in self.started:
            self._active_started -= 1
        self.completed[subnet_id] = now
        self.trace.record_subnet_complete(subnet_id, now)
        self._emit("subnet-complete", 0, subnet_id, now)
        flush_ids = self.policy.on_subnet_complete(subnet_id)
        self._flush(flush_ids)
        if self.checkpoints is not None:
            self.checkpoints.on_subnet_complete(subnet_id, now)
        if self.faults is not None and len(self.completed) == len(self.stream):
            # the run is over; faults scheduled past this point are moot
            # and must not keep the virtual clock ticking
            self.faults.cancel_pending()
        # Drop the run state we no longer need (keep subnet + partition for
        # late queries; activations and boundaries are already consumed).
        run = self.runs[subnet_id]
        run.boundary_in.clear()
        run.grad_in.clear()

    def _flush(self, flush_ids: Sequence[int]) -> None:
        if self.functional is None:
            return
        for sid in flush_ids:
            run = self.runs[sid]
            updates = sorted(
                run.buffered_updates, key=lambda update: update.layer
            )
            self._commit_updates(updates, self.sim.now)
            run.buffered_updates.clear()

    def _commit_updates(self, updates: Sequence[PendingUpdate], now: float) -> None:
        """Apply updates through the functional plane, letting the
        checkpoint manager capture pre-images first (the undo log must
        see the state the write is about to clobber)."""
        if self.checkpoints is not None:
            self.checkpoints.observe_updates(updates)
        self.functional.commit(updates, now)

    # ------------------------------------------------------------------
    # fault tolerance (repro.ft)
    # ------------------------------------------------------------------
    def _on_fatal_fault(self, event) -> None:
        """Fail-stop: a GPU or host died.  In-flight work vanishes (the
        event queue is cleared), the run returns interrupted, and
        :mod:`repro.ft.recovery` restarts from the latest consistent
        checkpoint."""
        now = self.sim.now
        spec = self.cluster.spec
        if event.kind == "host_crash":
            stages = [
                stage
                for stage in range(self.stages)
                if spec.host_of(stage) == event.target
            ]
        else:
            stages = [event.target]
        for stage in stages:
            self.trace.record_event(
                "gpu_down",
                now,
                stage=stage,
                cause=event.kind,
                down_ms=event.duration_ms,
            )
        self.interrupted = True
        self.interrupt_kind = event.kind
        self.interrupt_time_ms = now
        self.sim.queue.clear()

    # ------------------------------------------------------------------
    def run(self) -> PipelineResult:
        self._try_inject()
        self.sim.run()
        if not self.interrupted:
            self._flush(self.policy.finalize())
            if len(self.completed) != len(self.stream):
                raise DeadlockError(
                    {
                        "completed": len(self.completed),
                        "stream": len(self.stream),
                        "inflight": sorted(self.inflight),
                    },
                    blocked=self._blocked_edges_dump(),
                )
        if self.telemetry is not None:
            self.telemetry.finalize(self.sim.now)
        return self._result()

    def _blocked_edges_dump(self) -> Dict[int, Dict]:
        """Per-stage diagnostic for premature quiescence: every queued
        forward with its first unreleased (blocking subnet, layer) edge
        from the dependency tracker (``None`` = held by an admission or
        window gate, not a causal dependency), plus the backward-ready
        lists."""
        tracker = getattr(self.policy, "tracker", None)
        dump: Dict[int, Dict] = {}
        for state in self.stage_states:
            if not state.queue and not state.backward_ready:
                continue
            edges = []
            for sid in state.queue:
                blocking = (
                    tracker.blocking_user(
                        sid, self.stage_layers(sid, state.stage)
                    )
                    if tracker is not None
                    else None
                )
                if blocking is None:
                    edges.append({"subnet": sid, "blocked_on": None})
                else:
                    user, layer = blocking
                    edges.append(
                        {
                            "subnet": sid,
                            "blocked_on": {"subnet": user, "layer": layer},
                        }
                    )
            dump[state.stage] = {
                "forward": edges,
                "backward_ready": list(state.backward_ready),
            }
        return dump

    # ------------------------------------------------------------------
    def _result(self) -> PipelineResult:
        cache_hit = None
        if self.contexts is not None:
            hits = sum(context.hits for context in self.contexts)
            misses = sum(context.misses for context in self.contexts)
            if hits + misses:
                cache_hit = hits / (hits + misses)
        scheduler = getattr(self.policy, "scheduler", None)
        return PipelineResult(
            system=self.config.name,
            space=self.space.name,
            num_gpus=self.stages,
            batch=self.batch,
            makespan_ms=self.trace.makespan,
            subnets_completed=len(self.completed),
            trace=self.trace,
            losses=dict(self.losses),
            digest=self.functional.digest() if self.functional else None,
            bubble_ratio=self.trace.bubble_ratio(),
            total_alu=self.trace.total_alu_utilization(
                self.supernet.gpu_alu_efficiency(self.batch)
            ),
            cache_hit_rate=cache_hit,
            throughput_samples_per_sec=self.trace.throughput_samples_per_sec(
                self.batch
            ),
            mean_exec_ms=self.trace.mean_exec_ms(),
            mirror_push_bytes=(
                self.mirror_registry.push_bytes_total if self.mirror_registry else 0
            ),
            scheduler_calls=scheduler.calls if scheduler else 0,
            scheduler_mode=scheduler.mode if scheduler else "",
            scheduler_scans=scheduler.scans if scheduler else 0,
            scheduler_ready_pops=scheduler.ready_pops if scheduler else 0,
            scheduler_mean_call_us=(
                scheduler.mean_call_time_s * 1e6 if scheduler else 0.0
            ),
            oom_retries=self.oom_retries,
            peak_cache_bytes=(
                max(c.peak_resident_bytes for c in self.contexts)
                if self.contexts
                else None
            ),
            interrupted=self.interrupted,
            interrupt_kind=self.interrupt_kind,
            interrupt_time_ms=self.interrupt_time_ms,
            fault_count=self.faults.fault_count if self.faults else 0,
            task_retries=self.task_retries,
            checkpoint_cuts=(
                [c.cut for c in self.checkpoints.commits]
                if self.checkpoints
                else []
            ),
            mitigation_actions=(
                list(self.degradation.actions) if self.degradation else []
            ),
        )
