"""BSP policy: bulk-synchronous inter-subnet parallelism (GPipe, VPipe,
Retiarii's pattern).

A *bulk* of B subnets is admitted; all proceed through the pipeline with
no dependency checks; their parameter updates are buffered; when every
subnet in the bulk has drained, the engine flushes all buffered updates
(in subnet-ID order — deterministic *given the bulk composition*) and the
next bulk is admitted.

This is exactly why BSP is not reproducible across cluster sizes: the
bulk size tracks the pipeline depth, so subnets that share a layer land
in the same bulk on one cluster (both read the pre-bulk value) and in
different bulks on another (the later one reads the earlier one's
update).  Figure 1 and Table 4 of the paper illustrate the effect.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SystemConfig
from repro.engines.policies.base import SyncPolicy

__all__ = ["BspPolicy"]


class BspPolicy(SyncPolicy):
    commits_immediately = False

    def __init__(self, config: SystemConfig, stages: int) -> None:
        super().__init__(config, stages)
        self.bulk_size = config.default_bulk(stages)
        self._bulk_members: List[int] = []
        self._completed_in_bulk: List[int] = []
        self.flushes = 0

    # ------------------------------------------------------------------
    def can_inject(self) -> bool:
        # Admission stops at the bulk boundary until the flush happens.
        return len(self._bulk_members) < self.bulk_size

    def on_injected(self, subnet_id: int) -> None:
        self._bulk_members.append(subnet_id)

    def select_forward(self, stage: int) -> Optional[int]:
        assert self.engine is not None
        queue = self.engine.stage_states[stage].queue
        return queue[0] if queue else None

    # ------------------------------------------------------------------
    def on_subnet_complete(self, subnet_id: int) -> List[int]:
        self._completed_in_bulk.append(subnet_id)
        if len(self._completed_in_bulk) < len(self._bulk_members):
            return []
        # Barrier reached: flush the whole bulk in sequence-ID order and
        # open the next bulk.
        flush_order = sorted(self._completed_in_bulk)
        self._bulk_members.clear()
        self._completed_in_bulk.clear()
        self.flushes += 1
        # getattr: policy unit tests drive a bare fake engine with no
        # trace/sim attached
        trace = getattr(self.engine, "trace", None)
        sim = getattr(self.engine, "sim", None)
        if trace is not None and sim is not None:
            trace.record_event(
                "bulk_flush",
                sim.now,
                bulk=len(flush_order),
                flush_index=self.flushes,
            )
        return flush_order

    def finalize(self) -> List[int]:
        remaining = sorted(self._completed_in_bulk)
        self._completed_in_bulk.clear()
        self._bulk_members.clear()
        return remaining
