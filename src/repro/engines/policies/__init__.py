"""Synchronisation policies: CSP (NASPipe), BSP (GPipe/VPipe), ASP
(PipeDream), SSP (stale-synchronous extension)."""

from repro.engines.policies.base import SyncPolicy
from repro.engines.policies.csp import CspPolicy
from repro.engines.policies.bsp import BspPolicy
from repro.engines.policies.asp import AspPolicy, SspPolicy

__all__ = ["SyncPolicy", "CspPolicy", "BspPolicy", "AspPolicy", "SspPolicy"]


def make_policy(config, stages: int) -> SyncPolicy:
    """Instantiate the policy named by ``config.sync``."""
    if config.sync == "csp":
        return CspPolicy(config, stages)
    if config.sync == "bsp":
        return BspPolicy(config, stages)
    if config.sync == "asp":
        return AspPolicy(config, stages)
    if config.sync == "ssp":
        return SspPolicy(config, stages)
    raise ValueError(f"unknown sync mode {config.sync!r}")
