"""CSP policy: the NASPipe scheduler + predictor glued to the engine.

Forward selection runs Algorithm 2 over the stage's sorted queue; every
candidate the (possibly conservative) scheduler proposes is validated
against the exact per-layer :class:`DependencyTracker` before execution —
the context executor's "check ... for safety" (paper §3.1).

When the predictor is enabled, the policy calls Algorithm 3 at the two
paper-specified points (before each backward and each forward) and turns
its predictions into context-manager prefetches.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.config import SystemConfig
from repro.core.dependency import DependencyTracker
from repro.core.predictor import ContextPredictor
from repro.core.scheduler import CspScheduler
from repro.engines.policies.base import SyncPolicy
from repro.nn.parameter_store import LayerId

__all__ = ["CspPolicy"]


class CspPolicy(SyncPolicy):
    commits_immediately = True

    def __init__(self, config: SystemConfig, stages: int) -> None:
        super().__init__(config, stages)
        self.tracker = DependencyTracker()
        self.scheduler = CspScheduler(mode=config.scheduler_mode)
        self._predictors: List[ContextPredictor] = []
        #: per-stage open CSP wait (start time), for csp_wait_begin/end
        #: observability events — a wait opens when the stage has queued
        #: forwards but none is CSP-clear, and closes at the next
        #: successful selection
        self._wait_since: Dict[int, float] = {}
        #: last emitted ready-set size per stage (counter dedup)
        self._ready_size: Dict[int, int] = {}

    def bind(self, engine) -> None:
        super().bind(engine)
        # Recovered runs consume a stream slice that keeps its original
        # sequence IDs; start elimination at the slice base so the
        # frontier's contiguity walk doesn't wait on pre-crash ids.
        # getattr: policy unit tests drive a bare fake engine.
        stream = getattr(engine, "stream", None)
        base = getattr(stream, "base", 0)
        if base:
            self.tracker.reset_frontier(base)
        if self.config.predictor and self.config.context == "cached":
            self._predictors = [
                ContextPredictor(
                    stage,
                    self.scheduler,
                    self._stage_layers_fn(stage),
                    depth=self.config.predictor_depth,
                )
                for stage in range(self.stages)
            ]
        if self.scheduler.uses_index:
            # Mirror each stage's forward queue into the tracker's
            # readiness index: enqueue indexes the (subnet, stage-slice)
            # pair, pop retires it.  All blocked-edge maintenance then
            # rides the release path inside the tracker.
            for state in engine.stage_states:
                state.attach_queue_observer(
                    self._index_enqueue_fn(state.stage),
                    self._index_pop_fn(state.stage),
                )

    def _index_enqueue_fn(self, stage: int) -> Callable[[int], None]:
        def on_enqueue(subnet_id: int) -> None:
            assert self.engine is not None
            self.tracker.index_add(
                stage, subnet_id, self.engine.stage_layers(subnet_id, stage)
            )

        return on_enqueue

    def _index_pop_fn(self, stage: int) -> Callable[[int], None]:
        def on_pop(subnet_id: int) -> None:
            self.tracker.index_discard(stage, subnet_id)

        return on_pop

    # ------------------------------------------------------------------
    def _stage_layers_fn(self, stage: int) -> Callable[[int], Sequence[LayerId]]:
        def stage_layers(subnet_id: int) -> Sequence[LayerId]:
            assert self.engine is not None
            return self.engine.stage_layers(subnet_id, stage)

        return stage_layers

    # ------------------------------------------------------------------
    #: Algorithm 1 retrieves subnets continuously; the queue list holds
    #: descriptors only (no GPU memory), bounded as in the paper's
    #: complexity analysis ("|L_q| is usually ... less than 30").
    QUEUE_CAP = 30

    def can_inject(self) -> bool:
        # Admission is a *descriptor* operation for CSP: a parked subnet
        # costs nothing until its first forward starts, so admission is
        # capped by queue length, not by the execution window.  Count
        # admitted-but-unstarted subnets rather than the stage-0 queue —
        # same-instant injections only reach the queue at their arrival
        # event, and counting the queue would let a burst overshoot.
        assert self.engine is not None
        parked = len(self.engine.inflight) - self.engine.active_started_count()
        return parked < self.QUEUE_CAP

    def can_start_forward(self, stage: int, subnet_id: int) -> bool:
        # The execution window (activation stashes) only counts subnets
        # that have actually started.
        assert self.engine is not None
        if stage != 0:
            return True
        return self.engine.active_started_count() < self.effective_window()

    def on_injected(self, subnet_id: int) -> None:
        assert self.engine is not None
        self.tracker.register(self.engine.subnet_of(subnet_id))

    def select_forward(self, stage: int) -> Optional[int]:
        chosen = self._select_forward_inner(stage)
        self._observe_selection(stage, chosen)
        return chosen

    # ------------------------------------------------------------------
    # observability: CSP wait windows + ready-set counter samples
    # ------------------------------------------------------------------
    def _observe_selection(self, stage: int, chosen: Optional[int]) -> None:
        assert self.engine is not None
        # getattr: policy unit tests drive a bare fake engine with no
        # trace/sim attached
        trace = getattr(self.engine, "trace", None)
        sim = getattr(self.engine, "sim", None)
        if trace is None or sim is None:
            return
        now = sim.now
        state = self.engine.stage_states[stage]
        if self.scheduler.uses_index:
            size = self.tracker.ready_count(stage)
            if self._ready_size.get(stage) != size:
                self._ready_size[stage] = size
                trace.record_event("ready_set", now, stage=stage, size=size)
        if chosen is not None:
            since = self._wait_since.pop(stage, None)
            if since is not None:
                trace.record_event(
                    "csp_wait_end",
                    now,
                    stage=stage,
                    subnet_id=chosen,
                    waited_ms=now - since,
                )
            return
        if not state.queue or stage in self._wait_since:
            return
        head = state.queue[0]
        blocking = self.tracker.blocking_user(
            head, self.engine.stage_layers(head, stage)
        )
        if blocking is None:
            return  # held by the execution window, not by a dependency
        user, layer = blocking
        self._wait_since[stage] = now
        trace.record_event(
            "csp_wait_begin",
            now,
            stage=stage,
            subnet_id=head,
            blocking_subnet=user,
            block=layer[0],
            choice=layer[1],
        )

    def _select_forward_inner(self, stage: int) -> Optional[int]:
        assert self.engine is not None
        state = self.engine.stage_states[stage]
        if stage == 0 and not self.can_start_forward(0, -1):
            return None  # execution window full; queue keeps its parked ids
        if self.config.in_order_only:
            # "w/o scheduler" ablation: only the head of the queue may
            # run; no aggressive advancement of later, independent tasks.
            if not state.queue:
                return None
            head = state.queue[0]
            layers = self.engine.stage_layers(head, stage)
            return head if self.tracker.is_clear(head, layers) else None

        skip: Set[int] = set()
        stage_layers = self._stage_layers_fn(stage)
        while True:
            decision = self.scheduler.schedule(
                state.queue,
                stage_layers,
                self.tracker,
                stage_finished=state.stage_finished,
                subnet_of=state.subnet,
                skip=skip,
                scope=stage,
            )
            if not decision.found:
                return None
            # Safety validation with exact per-layer semantics; only
            # relevant in conservative mode, free in exact mode.
            if self.tracker.is_clear(decision.qval, stage_layers(decision.qval)):
                return decision.qval
            skip.add(decision.qval)

    # ------------------------------------------------------------------
    def before_task(self, stage: int, subnet_id: int, is_backward: bool) -> None:
        if not self._predictors:
            return
        assert self.engine is not None
        predictor = self._predictors[stage]
        state = self.engine.stage_states[stage]
        if is_backward:
            predictions = predictor.predict_on_backward(
                subnet_id,
                state.queue,
                self.tracker,
                pending_backward_hints=sorted(state.busy_subnets),
            )
        else:
            predictions = predictor.predict_on_forward(
                subnet_id, state.queue, self.tracker
            )
        for prediction in predictions:
            layers = self.engine.stage_layers(prediction.task.subnet_id, stage)
            self.engine.prefetch_context(stage, layers)

    # ------------------------------------------------------------------
    def on_backward_done(self, stage: int, subnet_id: int) -> None:
        assert self.engine is not None
        self.tracker.release_layers(
            subnet_id, self.engine.stage_layers(subnet_id, stage)
        )

    def on_subnet_complete(self, subnet_id: int) -> List[int]:
        self.tracker.mark_finished(subnet_id)
        return []
