"""The policy interface the pipeline engine drives.

A policy answers four questions the engine cannot answer generically:

1. may another subnet be injected right now? (``can_inject``)
2. which queued forward task should stage *k* run next?
   (``select_forward``)
3. do parameter updates commit at backward completion, or later?
   (``commits_immediately`` / ``flush_ready``)
4. what bookkeeping follows task completion? (the ``on_*`` hooks)

All policies are backward-first (the engine runs any ready backward
before consulting ``select_forward``) — PipeDream's 1F1B, GPipe's drain
phase and NASPipe's Algorithm 1 all share that priority.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, TYPE_CHECKING

from repro.config import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engines.pipeline import PipelineEngine

__all__ = ["SyncPolicy"]


class SyncPolicy(ABC):
    """Base class wiring a policy to its engine."""

    #: updates commit at each backward completion (CSP/ASP); False means
    #: the engine buffers them until ``flush_ready`` returns subnet ids.
    commits_immediately: bool = True

    def __init__(self, config: SystemConfig, stages: int) -> None:
        self.config = config
        self.stages = stages
        self.engine: Optional["PipelineEngine"] = None

    def bind(self, engine: "PipelineEngine") -> None:
        self.engine = engine

    # ------------------------------------------------------------------
    @property
    def window(self) -> int:
        return self.config.default_window(self.stages)

    def effective_window(self) -> int:
        """The window after any engine-side degradation backpressure
        (``PipelineEngine.admission_cap``).  Policies that manage their
        own admission barrier (BSP's bulk flush) must not consult this —
        shrinking a bulk below its flush size would deadlock the
        barrier.  getattr: policy unit tests drive bare fake engines."""
        clamp = getattr(self.engine, "effective_window", None)
        return clamp(self.window) if clamp is not None else self.window

    def can_inject(self) -> bool:
        assert self.engine is not None
        return len(self.engine.inflight) < self.effective_window()

    def can_start_forward(self, stage: int, subnet_id: int) -> bool:
        """Gate on *starting* a subnet's first forward (stage 0).

        Default policies admit exactly ``window`` subnets, so starting is
        never separately constrained; CSP overrides this (admission is
        queue-capped, starting is window-capped).
        """
        return True

    def on_injected(self, subnet_id: int) -> None:
        """A subnet entered the pipeline."""

    @abstractmethod
    def select_forward(self, stage: int) -> Optional[int]:
        """Pick a queued forward task for ``stage`` (subnet id) or None."""

    def before_task(self, stage: int, subnet_id: int, is_backward: bool) -> None:
        """Called as a task is about to start (predictor hook point)."""

    def on_forward_done(self, stage: int, subnet_id: int) -> None:
        pass

    def on_backward_done(self, stage: int, subnet_id: int) -> None:
        pass

    def on_subnet_complete(self, subnet_id: int) -> List[int]:
        """Returns subnet ids whose buffered updates must flush now, in
        commit order (empty for immediate-commit policies)."""
        return []

    def finalize(self) -> List[int]:
        """End-of-stream flush (BSP's possibly partial last bulk)."""
        return []
