"""ASP policy (PipeDream) and the SSP extension.

ASP keeps the pipeline full (window = pipeline depth, 1F1B steady state)
and commits every update the moment its backward completes, with no
inter-subnet ordering at all — maximum utilisation, zero reproducibility
guarantees: whichever interleaving the cluster's timing produces is the
result.

SSP (stale synchronous parallel) is the classic middle ground the paper
cites as "not designed to tackle causal dependencies": a subnet may only
start its forward if it is within ``staleness`` completed subnets of the
oldest unfinished one.  It bounds staleness, not causal order, so it is
*also* non-reproducible across cluster sizes — included as an extension
baseline to show CSP is not merely "less staleness".
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SystemConfig
from repro.engines.policies.base import SyncPolicy

__all__ = ["AspPolicy", "SspPolicy"]


class AspPolicy(SyncPolicy):
    commits_immediately = True

    def select_forward(self, stage: int) -> Optional[int]:
        assert self.engine is not None
        queue = self.engine.stage_states[stage].queue
        return queue[0] if queue else None


class SspPolicy(SyncPolicy):
    commits_immediately = True

    def __init__(self, config: SystemConfig, stages: int) -> None:
        super().__init__(config, stages)
        self.staleness = max(0, config.staleness)
        #: last (stage, candidate) pair reported held, so the staleness
        #: gate emits one observability event per distinct hold, not one
        #: per scheduler poll
        self._last_hold: dict = {}

    def select_forward(self, stage: int) -> Optional[int]:
        assert self.engine is not None
        queue = self.engine.stage_states[stage].queue
        if not queue:
            return None
        oldest_unfinished = self.engine.oldest_unfinished_subnet()
        candidate = queue[0]
        if candidate - oldest_unfinished > self.staleness:
            if self._last_hold.get(stage) != candidate:
                self._last_hold[stage] = candidate
                # getattr: policy unit tests drive a bare fake engine
                trace = getattr(self.engine, "trace", None)
                sim = getattr(self.engine, "sim", None)
                if trace is not None and sim is not None:
                    trace.record_event(
                        "staleness_hold",
                        sim.now,
                        stage=stage,
                        subnet_id=candidate,
                        oldest_unfinished=oldest_unfinished,
                        staleness=self.staleness,
                    )
            return None
        self._last_hold.pop(stage, None)
        return candidate
