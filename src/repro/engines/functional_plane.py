"""The functional training plane: real numpy math driven in event order.

The pipeline engine decides *when* each stage's forward/backward happens;
this plane performs the corresponding parameter READs, computation and
WRITEs at those instants.  Because the plane is deterministic, the only
thing that can change a run's final weights is the interleaving the sync
policy permits — which is exactly the paper's reproducibility argument.

The plane deliberately uses a small *functional batch* independent of the
timing plane's (memory-limited) batch: Definition 1 is about bit equality
under reordering, which is insensitive to batch width, and a small batch
keeps thousand-subnet experiments fast on a laptop.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.synthetic import SyntheticTaskData
from repro.nn import functional as F
from repro.nn.init import make_factory
from repro.nn.layers import layer_forward
from repro.nn.loss import cross_entropy_with_logits
from repro.nn.parameter_store import LayerId, ParameterStore
from repro.nn.program import PendingUpdate, StageActivation, SubnetSegmentProgram
from repro.nn.optim import SGD
from repro.seeding import SeedSequenceTree
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet

__all__ = ["FunctionalPlane"]


class FunctionalPlane:
    """Owns the parameter store, data source, head, and optimizer."""

    def __init__(
        self,
        supernet: Supernet,
        seeds: SeedSequenceTree,
        functional_batch: int = 8,
        optimizer=None,
        recompute: bool = False,
        record_accesses: bool = True,
    ) -> None:
        self.supernet = supernet
        self.space = supernet.space
        self.seeds = seeds
        self.functional_batch = functional_batch
        self.optimizer = optimizer if optimizer is not None else SGD()
        factory = make_factory(
            seeds, lambda layer: supernet.impl_for(layer), self.space.functional_width
        )
        self.store = ParameterStore(factory, record_accesses=record_accesses)
        self.program = SubnetSegmentProgram(self.store, recompute=recompute)
        self.data = SyntheticTaskData(self.space, seeds)
        # The classification head is frozen: it is shared by *every*
        # subnet, so making it trainable would causally chain all subnets
        # and serialise the pipeline; real supernet systems keep shared
        # stem/head updates out of the per-subnet causal order.  Using the
        # data teacher as the head makes the task well-posed — a subnet
        # close to the identity map already classifies well, and training
        # refines from there (the residual cells start near identity).
        self.head = self.data.teacher
        self._targets: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def layer_refs(
        self, subnet: Subnet, start: int, stop: int
    ) -> List[Tuple[LayerId, str]]:
        return [
            (layer, self.supernet.impl_for(layer))
            for layer in subnet.layers_in_range(start, stop)
        ]

    def input_for(self, subnet: Subnet) -> np.ndarray:
        features, targets = self.data.batch(subnet.subnet_id, self.functional_batch)
        self._targets[subnet.subnet_id] = targets
        return features

    # ------------------------------------------------------------------
    def forward_stage(
        self,
        subnet: Subnet,
        stage: int,
        block_range: Tuple[int, int],
        stage_input: np.ndarray,
        time: float,
    ) -> StageActivation:
        start, stop = block_range
        return self.program.forward(
            subnet.subnet_id,
            stage,
            self.layer_refs(subnet, start, stop),
            stage_input,
            time,
        )

    def loss_and_grad(
        self, subnet: Subnet, final_output: np.ndarray
    ) -> Tuple[np.float32, np.ndarray]:
        """Head projection + cross entropy at the last stage."""
        targets = self._targets.pop(subnet.subnet_id)
        logits = F.f32(final_output @ self.head)
        loss, dlogits = cross_entropy_with_logits(logits, targets)
        dfinal = F.f32(dlogits @ self.head.T)
        return loss, dfinal

    def backward_stage(
        self, activation: StageActivation, doutput: np.ndarray
    ) -> Tuple[np.ndarray, List[PendingUpdate]]:
        return self.program.backward(activation, doutput)

    def commit(self, updates: Sequence[PendingUpdate], time: float) -> None:
        self.program.commit_updates(updates, self.optimizer, time)

    # ------------------------------------------------------------------
    def digest(self, layers=None) -> str:
        return self.store.digest(layers)

    def save_checkpoint(self, params_path, optimizer_path=None) -> None:
        """Checkpoint weights (and optimizer velocity, when present).

        With both files restored, training resumes bit-exactly: the pair
        (parameters, velocity) is the complete mutable state of the
        functional plane (data and init are pure functions of the seed).
        """
        self.store.save(params_path)
        if optimizer_path is not None:
            velocity = getattr(self.optimizer, "_velocity", None)
            if velocity is not None:
                arrays = {
                    f"b{layer[0]}_c{layer[1]}/{name}": array
                    for (layer, name), array in velocity.items()
                }
                np.savez_compressed(optimizer_path, **arrays)

    def load_checkpoint(self, params_path, optimizer_path=None) -> None:
        self.store.load(params_path)
        if optimizer_path is not None:
            velocity = getattr(self.optimizer, "_velocity", None)
            if velocity is None:
                raise ValueError(
                    "optimizer has no velocity state to restore into"
                )
            with np.load(optimizer_path) as payload:
                for key in payload.files:
                    prefix, name = key.split("/", 1)
                    block_str, choice_str = prefix[1:].split("_c")
                    layer = (int(block_str), int(choice_str))
                    velocity[(layer, name)] = payload[key].astype(
                        np.float32, copy=False
                    )

    def inference_forward(self, subnet: Subnet, features: np.ndarray) -> np.ndarray:
        """Un-logged forward of a whole subnet, returning logits.

        Uses the same block-residual structure as the training program so
        evaluation and training see the same function.
        """
        x = features
        for layer_id, impl in self.layer_refs(subnet, 0, subnet.num_blocks):
            params = self.store.materialize(layer_id)
            out, _cache = layer_forward(impl, x, params)
            x = x + self.program.RESIDUAL_SCALE * out if self.program.residual_blocks else out
        return F.f32(x @ self.head)

    def evaluate_subnet(
        self, subnet: Subnet, eval_batches: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> float:
        """Held-out mean loss of a candidate architecture (no WRITEs,
        no access logging — evaluation must not perturb the trace)."""
        was_recording = self.store.record_accesses
        self.store.record_accesses = False
        try:
            total = 0.0
            for features, targets in eval_batches:
                logits = self.inference_forward(subnet, features)
                loss, _dlogits = cross_entropy_with_logits(logits, targets)
                total += float(loss)
            return total / len(eval_batches)
        finally:
            self.store.record_accesses = was_recording
