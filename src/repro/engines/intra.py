"""Intra-subnet (micro-batch) task generation — the §2.2 alternative.

The paper contrasts two ways to generate parallel work from a supernet
stream:

* **inter-subnet** (Retiarii's and NASPipe's choice): each subnet is one
  task; many subnets fill the pipeline concurrently; CSP must referee
  their layer sharing;
* **intra-subnet** (classic GPipe): one subnet at a time, its batch split
  into M micro-batches that pipeline through the stages.

Intra-subnet generation is trivially reproducible — subnets execute
strictly sequentially, so no causal hazard exists — but it is
"non-general": it only utilises the GPUs when the batch is large enough
that a 1/M slice still saturates a stage, and supernet algorithms favour
small batches.  This engine makes that argument measurable: it simulates
the classic all-forward/all-backward micro-batch schedule per subnet on
the same cluster model, so throughput can be compared head-to-head with
the inter-subnet engines (see ``benchmarks/test_intra_vs_inter.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError
from repro.partition.balanced import Partition, balanced_partition
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.trace import ExecutionTrace
from repro.supernet.sampler import SubnetStream
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet

__all__ = ["IntraSubnetEngine", "IntraSubnetResult"]


@dataclass
class IntraSubnetResult:
    space: str
    num_gpus: int
    batch: int
    microbatches: int
    subnets_completed: int
    makespan_ms: float
    trace: ExecutionTrace

    @property
    def throughput_samples_per_sec(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return self.subnets_completed * self.batch / (self.makespan_ms / 1000.0)

    @property
    def bubble_ratio(self) -> float:
        return self.trace.bubble_ratio()


class IntraSubnetEngine:
    """One subnet at a time; M micro-batches pipelined within it.

    The schedule per subnet is GPipe's: the forward wavefront of all M
    micro-batches sweeps the stages, then the backward wavefront drains,
    then the (synchronous) flush ends the subnet.  Because subnets never
    overlap, causal dependencies are satisfied by construction and the
    process is reproducible — the cost is the fill/drain bubble *per
    subnet* plus the latency-floor penalty of computing 1/M batch slices.
    """

    def __init__(
        self,
        supernet: Supernet,
        stream: SubnetStream,
        cluster_spec: Optional[ClusterSpec] = None,
        batch: Optional[int] = None,
        microbatches: int = 4,
        recompute: bool = True,
    ) -> None:
        if microbatches < 1:
            raise ConfigError("microbatches must be >= 1")
        self.supernet = supernet
        self.space = supernet.space
        self.stream = stream
        self.cluster = Cluster(cluster_spec or ClusterSpec())
        self.stages = self.cluster.num_stages
        self.batch = batch if batch is not None else self.space.max_batch
        if self.batch % microbatches:
            raise ConfigError(
                f"batch {self.batch} not divisible into {microbatches} "
                "micro-batches"
            )
        self.microbatches = microbatches
        self.recompute = recompute
        self.trace = ExecutionTrace(num_gpus=self.stages)

    # ------------------------------------------------------------------
    def _stage_times_ms(self, subnet: Subnet, partition: Partition):
        micro = self.batch // self.microbatches
        scale = self.supernet.batch_time_scale(micro)
        fwd: List[float] = []
        bwd: List[float] = []
        for start, stop in partition:
            f_total = 0.0
            b_total = 0.0
            for layer in subnet.layers_in_range(start, stop):
                profile = self.supernet.profile(layer)
                f_total += profile.fwd_ms_ref
                b_total += profile.bwd_ms_ref
                if self.recompute:
                    b_total += profile.fwd_ms_ref
            fwd.append(f_total * scale)
            bwd.append(b_total * scale)
        return fwd, bwd

    def _boundary_ms(self, subnet: Subnet, partition: Partition, stage: int) -> float:
        layers = subnet.layers_in_range(*partition[stage])
        if not layers:
            return 0.0
        micro = self.batch // self.microbatches
        nbytes = self.supernet.profile(layers[-1]).activation_bytes_per_sample * micro
        link = self.cluster.forward_link(stage) if stage < self.stages - 1 else None
        if link is None:
            return 0.0
        return nbytes / link.bandwidth_bytes_per_ms + link.latency_ms

    # ------------------------------------------------------------------
    def run(self) -> IntraSubnetResult:
        clock = 0.0
        completed = 0
        self.stream.reset()
        while True:
            subnet = self.stream.retrieve()
            if subnet is None:
                break
            costs = [
                self.supernet.profile(layer).fwd_ms_ref
                + self.supernet.profile(layer).bwd_ms_ref
                for layer in subnet.layer_ids()
            ]
            partition = balanced_partition(costs, self.stages)
            fwd, bwd = self._stage_times_ms(subnet, partition)

            # Forward wavefront: micro-batch m finishes its stage-k pass
            # no earlier than (its predecessor at k) and (itself at k-1).
            fwd_end = [[0.0] * self.stages for _ in range(self.microbatches)]
            for m in range(self.microbatches):
                for k in range(self.stages):
                    ready = clock
                    if k > 0:
                        ready = max(
                            ready,
                            fwd_end[m][k - 1]
                            + self._boundary_ms(subnet, partition, k - 1),
                        )
                    if m > 0:
                        ready = max(ready, fwd_end[m - 1][k])
                    start = ready
                    fwd_end[m][k] = start + fwd[k]
                    self.trace.record_interval(
                        k, start, fwd_end[m][k], "fwd", subnet.subnet_id
                    )
            # Backward wavefront, reverse order.
            bwd_end = [[0.0] * self.stages for _ in range(self.microbatches)]
            for m in range(self.microbatches):
                for k in range(self.stages - 1, -1, -1):
                    ready = fwd_end[self.microbatches - 1][self.stages - 1]
                    if k < self.stages - 1:
                        ready = max(
                            ready,
                            bwd_end[m][k + 1]
                            + self._boundary_ms(subnet, partition, k),
                        )
                    if m > 0:
                        ready = max(ready, bwd_end[m - 1][k])
                    start = ready
                    bwd_end[m][k] = start + bwd[k]
                    self.trace.record_interval(
                        k, start, bwd_end[m][k], "bwd", subnet.subnet_id
                    )
            clock = bwd_end[self.microbatches - 1][0]
            completed += 1
            self.trace.record_subnet_complete(subnet.subnet_id, clock)
        return IntraSubnetResult(
            space=self.space.name,
            num_gpus=self.stages,
            batch=self.batch,
            microbatches=self.microbatches,
            subnets_completed=completed,
            makespan_ms=clock,
            trace=self.trace,
        )
