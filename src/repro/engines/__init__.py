"""Execution engines: pipelined (simulated cluster) and sequential.

* :class:`PipelineEngine` runs a subnet stream through the discrete-event
  cluster under a sync policy (CSP/BSP/ASP/SSP), optionally carrying a
  :class:`FunctionalPlane` that performs the real numpy training in event
  order — the source of loss curves, parameter digests and access logs.
* :class:`SequentialEngine` is the ground truth: one subnet at a time in
  sequence-ID order, the semantics CSP must be bitwise equivalent to.
"""

from repro.engines.functional_plane import FunctionalPlane
from repro.engines.intra import IntraSubnetEngine, IntraSubnetResult
from repro.engines.pipeline import PipelineEngine, PipelineResult
from repro.engines.sequential import SequentialEngine, SequentialResult

__all__ = [
    "FunctionalPlane",
    "IntraSubnetEngine",
    "IntraSubnetResult",
    "PipelineEngine",
    "PipelineResult",
    "SequentialEngine",
    "SequentialResult",
]
