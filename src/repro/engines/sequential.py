"""The sequential ground-truth trainer.

Trains the subnet stream one subnet at a time, in sequence-ID order, each
subnet's forward fully preceding its backward, updates committed
immediately — the isolated-and-sequential semantics NAS exploration
algorithms assume (paper §2.1) and the reference CSP must be bitwise
equivalent to (Definition 1).

Also reports a virtual single-GPU wall-clock (sum of profiled subnet
times), giving experiments a "1 GPU" point for scalability comparisons
and for the artifact's 1-GPU-vs-4-GPU bitwise check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.engines.functional_plane import FunctionalPlane
from repro.supernet.sampler import SubnetStream
from repro.supernet.supernet import Supernet

__all__ = ["SequentialEngine", "SequentialResult"]


@dataclass
class SequentialResult:
    space: str
    subnets_completed: int
    batch: int
    makespan_ms: float
    losses: Dict[int, float]
    digest: Optional[str]

    @property
    def final_loss(self) -> Optional[float]:
        if not self.losses:
            return None
        return self.losses[max(self.losses)]


class SequentialEngine:
    """One subnet at a time; the semantics CSP reproduces."""

    def __init__(
        self,
        supernet: Supernet,
        stream: SubnetStream,
        functional: FunctionalPlane,
        batch: Optional[int] = None,
    ) -> None:
        self.supernet = supernet
        self.stream = stream
        self.functional = functional
        self.batch = batch if batch is not None else supernet.space.max_batch

    def run(self) -> SequentialResult:
        losses: Dict[int, float] = {}
        clock_ms = 0.0
        self.stream.reset()
        while True:
            subnet = self.stream.retrieve()
            if subnet is None:
                break
            stage_input = self.functional.input_for(subnet)
            activation = self.functional.forward_stage(
                subnet, 0, (0, subnet.num_blocks), stage_input, clock_ms
            )
            loss, dfinal = self.functional.loss_and_grad(
                subnet, activation.stage_output
            )
            _dinput, updates = self.functional.backward_stage(activation, dfinal)
            self.functional.commit(updates, clock_ms)
            losses[subnet.subnet_id] = float(loss)
            clock_ms += self.supernet.subnet_total_ms(subnet, self.batch)
        return SequentialResult(
            space=self.supernet.space.name,
            subnets_completed=len(losses),
            batch=self.batch,
            makespan_ms=clock_ms,
            losses=losses,
            digest=self.functional.digest(),
        )
