"""Forward/backward programs over one pipeline stage's slice of a subnet.

A pipeline stage owns a contiguous run of a subnet's chosen layers.  The
:class:`SubnetSegmentProgram` executes that run against the shared
:class:`~repro.nn.parameter_store.ParameterStore`:

* ``forward`` READs each layer's parameters (logged), stashes the
  snapshots and activation caches, and returns the stage output;
* ``backward`` consumes the stash, produces gradients per layer plus the
  gradient flowing to the previous stage;
* ``commit_updates`` applies the optimizer and WRITEs new parameters.

Gradient computation and update commitment are deliberately split: a sync
policy decides *when* writes land (immediately for CSP/ASP, at the bulk
barrier for BSP), and that decision — not the math — is what makes runs
reproducible or not.

Activation recomputation (GPipe-style checkpointing, used by NASPipe,
GPipe and VPipe per the paper's §4.2) is supported: with
``recompute=True`` the forward keeps only the stage *input* and parameter
snapshots, and the backward first re-runs the forward to rebuild caches.
Because snapshots are used, recomputation is bit-identical to caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import layer_backward, layer_forward
from repro.nn.parameter_store import LayerId, ParameterStore

__all__ = ["StageActivation", "SubnetSegmentProgram", "LayerRef"]

#: A stage layer reference: (layer id, implementation family name).
LayerRef = Tuple[LayerId, str]


@dataclass
class StageActivation:
    """Everything ``backward`` needs from a stage's ``forward``."""

    subnet_id: int
    stage: int
    layers: Sequence[LayerRef]
    stage_input: np.ndarray
    param_snapshots: List[Dict[str, np.ndarray]]
    caches: Optional[List[Any]]
    stage_output: np.ndarray

    @property
    def recomputed(self) -> bool:
        return self.caches is None


@dataclass
class PendingUpdate:
    """A gradient awaiting commitment (used by buffered/BSP policies)."""

    subnet_id: int
    layer: LayerId
    grads: Dict[str, np.ndarray]


class SubnetSegmentProgram:
    """Executes a stage slice of a subnet on the functional plane.

    ``residual_blocks`` wraps every choice block as ``y = x + layer(x)``,
    matching the residual cell structure of the paper's search spaces
    (Evolved Transformer, AmoebaNet); without it, deep randomly
    initialised chains wash out the input signal and nothing trains.
    """

    #: residual-branch scaling (ReZero/DeepNet-style): keeps activations
    #: bounded through up-to-48-block chains while preserving the skip
    #: path's signal.
    RESIDUAL_SCALE = np.float32(0.25)

    def __init__(
        self,
        store: ParameterStore,
        recompute: bool = False,
        residual_blocks: bool = True,
    ) -> None:
        self.store = store
        self.recompute = recompute
        self.residual_blocks = residual_blocks

    # ------------------------------------------------------------------
    def forward(
        self,
        subnet_id: int,
        stage: int,
        layers: Sequence[LayerRef],
        stage_input: np.ndarray,
        time: float = 0.0,
    ) -> StageActivation:
        """Run the stage forward; READs are logged in subnet order."""
        x = stage_input
        snapshots: List[Dict[str, np.ndarray]] = []
        caches: List[Any] = []
        for layer_id, impl in layers:
            params = self.store.read(layer_id, subnet_id, time)
            snapshots.append(params)
            out, cache = layer_forward(impl, x, params)
            x = x + self.RESIDUAL_SCALE * out if self.residual_blocks else out
            caches.append(cache)
        return StageActivation(
            subnet_id=subnet_id,
            stage=stage,
            layers=list(layers),
            stage_input=stage_input,
            param_snapshots=snapshots,
            caches=None if self.recompute else caches,
            stage_output=x,
        )

    # ------------------------------------------------------------------
    def _rebuild_caches(self, activation: StageActivation) -> List[Any]:
        """Re-run the forward from stashed snapshots (checkpointing)."""
        x = activation.stage_input
        caches: List[Any] = []
        for (layer_id, impl), params in zip(
            activation.layers, activation.param_snapshots
        ):
            out, cache = layer_forward(impl, x, params)
            x = x + self.RESIDUAL_SCALE * out if self.residual_blocks else out
            caches.append(cache)
        return caches

    def backward(
        self, activation: StageActivation, doutput: np.ndarray
    ) -> Tuple[np.ndarray, List[PendingUpdate]]:
        """Backprop through the stage; returns (dinput, pending updates).

        Updates are ordered front-to-back by layer position so that
        committing them in list order reproduces the sequential trainer's
        write order within the stage.
        """
        caches = activation.caches
        if caches is None:
            caches = self._rebuild_caches(activation)
        grad = doutput
        reversed_updates: List[PendingUpdate] = []
        for (layer_id, impl), params, cache in zip(
            reversed(activation.layers),
            reversed(activation.param_snapshots),
            reversed(caches),
        ):
            dx, layer_grads = layer_backward(impl, grad, cache, params)
            # With block residuals the skip path carries the upstream
            # gradient straight through: d(input) = d(out) + dx.
            grad = grad + self.RESIDUAL_SCALE * dx if self.residual_blocks else dx
            reversed_updates.append(
                PendingUpdate(activation.subnet_id, layer_id, layer_grads)
            )
        return grad, list(reversed(reversed_updates))

    # ------------------------------------------------------------------
    def commit_updates(
        self,
        updates: Sequence[PendingUpdate],
        optimizer,
        time: float = 0.0,
    ) -> None:
        """Apply ``updates`` through ``optimizer`` and WRITE to the store.

        The read-modify-write uses the store's *current* values (not the
        forward snapshot): under CSP nothing can have intervened, so this
        equals the sequential trainer; under BSP/ASP whatever interleaving
        the policy allowed is faithfully reflected in the result.
        """
        for update in updates:
            current = self.store.materialize(update.layer)
            new_values = optimizer.apply(update.layer, current, update.grads)
            self.store.write(update.layer, update.subnet_id, new_values, time)
