"""Versioned, access-logged storage for supernet parameters.

The store is the single source of truth for every candidate layer's
weights.  All reads and writes go through :meth:`ParameterStore.read` and
:meth:`ParameterStore.write`, which:

* log an :class:`AccessRecord` (subnet id, READ/WRITE, virtual time) — the
  trace behind the paper's Table 4 ("access & update order of a layer");
* bump a per-layer version counter, letting the CSP runtime verify that a
  read really observed the expected predecessor's write.

Bitwise reproducibility (paper Definition 1) is checked with
:meth:`ParameterStore.digest`, a SHA-256 over every float32 weight buffer in
a canonical order.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import SearchSpaceError

__all__ = ["AccessKind", "AccessRecord", "ParameterStore", "LayerId", "intern_layer"]

#: A layer is identified by (choice block index, candidate index) — the
#: paper's l_x^i notation.
LayerId = Tuple[int, int]

#: canonical instance per (block, choice) pair — see :func:`intern_layer`
_LAYER_INTERN: Dict[LayerId, LayerId] = {}


def intern_layer(layer: LayerId) -> LayerId:
    """Canonicalise a layer id so equal pairs share one tuple object.

    Layer ids are the hot dict/set keys of the whole system — the
    dependency tracker's edge maps, the context manager's residency
    table, the parameter store itself.  Sharing one object per distinct
    id makes the equality step of every hash probe an identity hit and
    bounds tuple churn at the search space's (blocks × choices) size.
    """
    return _LAYER_INTERN.setdefault(layer, layer)


class AccessKind(enum.Enum):
    """Whether a parameter access was a forward READ or a backward WRITE."""

    READ = "R"
    WRITE = "W"


@dataclass(frozen=True)
class AccessRecord:
    """One logged parameter access.

    ``time`` is virtual simulation time when the access was committed; it is
    informational — ordering in the log list is the authoritative order.
    """

    layer: LayerId
    subnet_id: int
    kind: AccessKind
    time: float = 0.0

    def short(self) -> str:
        """Render like the paper's Table 4 cells, e.g. ``2F`` / ``2B``."""
        suffix = "F" if self.kind is AccessKind.READ else "B"
        return f"{self.subnet_id}{suffix}"


class ParameterStore:
    """Holds every candidate layer's parameter arrays.

    Parameters are created lazily by a factory callback so that only layers
    that are ever touched get materialised (a supernet can embed tens of
    thousands of candidates).  Creation is deterministic per layer id, so
    lazy materialisation cannot affect reproducibility.
    """

    def __init__(
        self,
        factory: Callable[[LayerId], Dict[str, np.ndarray]],
        record_accesses: bool = True,
    ) -> None:
        self._factory = factory
        self._params: Dict[LayerId, Dict[str, np.ndarray]] = {}
        self._versions: Dict[LayerId, int] = {}
        self.record_accesses = record_accesses
        self.access_log: List[AccessRecord] = []

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def materialize(self, layer: LayerId) -> Dict[str, np.ndarray]:
        """Ensure ``layer``'s parameters exist and return them (no logging)."""
        if layer not in self._params:
            params = self._factory(layer)
            for name, array in params.items():
                if array.dtype != np.float32:
                    raise SearchSpaceError(
                        f"layer {layer} parameter {name!r} must be float32, "
                        f"got {array.dtype}"
                    )
            self._params[layer] = params
            self._versions[layer] = 0
        return self._params[layer]

    def __contains__(self, layer: LayerId) -> bool:
        return layer in self._params

    def __len__(self) -> int:
        return len(self._params)

    @property
    def materialized_layers(self) -> List[LayerId]:
        return sorted(self._params)

    # ------------------------------------------------------------------
    # logged access
    # ------------------------------------------------------------------
    def read(
        self, layer: LayerId, subnet_id: int, time: float = 0.0
    ) -> Dict[str, np.ndarray]:
        """Return a *snapshot* (copy) of ``layer``'s parameters.

        A copy models what a forward pass observes: later in-place updates
        by other subnets must not leak into an already-running computation
        (this is PyTorch's behaviour once tensors are on-GPU for a kernel).
        """
        params = self.materialize(layer)
        if self.record_accesses:
            self.access_log.append(
                AccessRecord(layer, subnet_id, AccessKind.READ, time)
            )
        return {name: array.copy() for name, array in params.items()}

    def write(
        self,
        layer: LayerId,
        subnet_id: int,
        new_values: Mapping[str, np.ndarray],
        time: float = 0.0,
    ) -> None:
        """Replace ``layer``'s parameters (the optimizer-step WRITE)."""
        params = self.materialize(layer)
        if set(new_values) != set(params):
            raise SearchSpaceError(
                f"write to layer {layer} with mismatched parameter names: "
                f"{sorted(new_values)} != {sorted(params)}"
            )
        for name, array in new_values.items():
            params[name][...] = array.astype(np.float32, copy=False)
        self._versions[layer] += 1
        if self.record_accesses:
            self.access_log.append(
                AccessRecord(layer, subnet_id, AccessKind.WRITE, time)
            )

    def version(self, layer: LayerId) -> int:
        """How many writes ``layer`` has received (0 if never written)."""
        return self._versions.get(layer, 0)

    # ------------------------------------------------------------------
    # reproducibility helpers
    # ------------------------------------------------------------------
    def digest(self, layers: Optional[Iterable[LayerId]] = None) -> str:
        """SHA-256 hex digest over parameters, canonical layer order.

        Two training runs are bitwise reproducible (Definition 1) iff their
        digests match.  Restricting ``layers`` lets tests compare only the
        layers a probe stream touched.
        """
        hasher = hashlib.sha256()
        selected = sorted(layers) if layers is not None else sorted(self._params)
        for layer in selected:
            params = self._params.get(layer)
            if params is None:
                continue
            hasher.update(repr(layer).encode())
            for name in sorted(params):
                hasher.update(name.encode())
                hasher.update(np.ascontiguousarray(params[name]).tobytes())
        return hasher.hexdigest()

    def access_order(self, layer: LayerId) -> List[AccessRecord]:
        """The logged access sequence for one layer (Table 4 raw data)."""
        return [record for record in self.access_log if record.layer == layer]

    def access_order_string(self, layer: LayerId) -> str:
        """Table-4-style rendering, e.g. ``"2F-2B-5F-5B-7F-7B"``."""
        return "-".join(record.short() for record in self.access_order(layer))

    def clear_log(self) -> None:
        self.access_log.clear()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def save(self, path) -> int:
        """Checkpoint all materialised parameters to an ``.npz`` file.

        Returns the number of layers saved.  Keys encode layer identity
        and parameter name (``b<block>_c<choice>/<name>``) so a checkpoint
        is self-describing and restorable into a fresh store.
        """
        arrays = {}
        for (block, choice), params in self._params.items():
            for name, array in params.items():
                arrays[f"b{block}_c{choice}/{name}"] = array
        np.savez_compressed(path, **arrays)
        return len(self._params)

    def load(self, path) -> int:
        """Restore a checkpoint produced by :meth:`save`.

        Layers present in the file are materialised (factory-initialised
        first, to validate shapes) and overwritten bitwise; versions are
        bumped so downstream consumers see the weights changed.  Returns
        the number of layers restored.
        """
        with np.load(path) as payload:
            grouped: Dict[LayerId, Dict[str, np.ndarray]] = {}
            for key in payload.files:
                prefix, name = key.split("/", 1)
                block_str, choice_str = prefix[1:].split("_c")
                layer = (int(block_str), int(choice_str))
                grouped.setdefault(layer, {})[name] = payload[key]
        for layer, params in grouped.items():
            current = self.materialize(layer)
            if set(params) != set(current):
                raise SearchSpaceError(
                    f"checkpoint layer {layer} has parameters "
                    f"{sorted(params)}, store expects {sorted(current)}"
                )
            for name, array in params.items():
                if array.shape != current[name].shape:
                    raise SearchSpaceError(
                        f"checkpoint {layer}/{name} shape {array.shape} != "
                        f"store shape {current[name].shape}"
                    )
                current[name][...] = array.astype(np.float32, copy=False)
            self._versions[layer] += 1
        return len(grouped)
