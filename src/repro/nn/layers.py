"""The candidate-layer zoo: distinct differentiable layer families.

The paper's search spaces draw candidates from the Evolved Transformer
(NLP) and AmoebaNet (CV) operator sets — convolutions of several shapes,
separable/light convolutions, attention, pooling-style branches.  The CSP
scheduler only needs layer *identity* and *cost profile*, but the
reproducibility experiments need layers that really compute and really
update weights, so this module implements a functional analogue of each
family over ``(batch, width)`` float32 activations:

============  =====================================================
name          functional form
============  =====================================================
``linear``    ``y = tanh(xW + b)``
``conv``      ``y = relu(x (W ⊙ band-mask) + b)`` — banded mixing, the
              analogue of a small-kernel convolution over channels
``sepconv``   ``y = relu((x ⊙ d) P + b)`` — depthwise scale then
              pointwise projection, like a separable convolution
``glu``       ``y = (xW + b) ⊙ sigmoid(xV + c)`` — gated linear unit,
              the light-convolution analogue
``attention`` ``y = softmax(xQ) V + x`` — content-based mixing with a
              residual path
``branch``    ``y = max(xW₁, xW₂) + b`` — two-branch max, the
              pooling/branching analogue
============  =====================================================

Every implementation provides ``build``, ``forward`` and ``backward``; the
backward returns gradients for the input *and* every parameter, verified
against numerical differentiation in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

import numpy as np

from repro.errors import SearchSpaceError
from repro.nn import functional as F

__all__ = [
    "LayerImplementation",
    "LAYER_IMPLEMENTATIONS",
    "build_parameters",
    "layer_forward",
    "layer_backward",
]

Params = Dict[str, np.ndarray]
Grads = Dict[str, np.ndarray]
Cache = Tuple[Any, ...]


@dataclass(frozen=True)
class LayerImplementation:
    """Bundle of build/forward/backward callables for one layer family."""

    name: str
    build: Callable[[int, np.random.Generator], Params]
    forward: Callable[[np.ndarray, Params], Tuple[np.ndarray, Cache]]
    backward: Callable[[np.ndarray, Cache, Params], Tuple[np.ndarray, Grads]]


# ----------------------------------------------------------------------
# linear
# ----------------------------------------------------------------------
def _linear_build(width: int, rng: np.random.Generator) -> Params:
    from repro.nn.init import glorot, zeros

    return {"weight": glorot(rng, width, width), "bias": zeros(width)}


def _linear_forward(x: np.ndarray, params: Params) -> Tuple[np.ndarray, Cache]:
    pre, affine_cache = F.affine_forward(x, params["weight"], params["bias"])
    y, tanh_cache = F.tanh_forward(pre)
    return y, (affine_cache, tanh_cache)


def _linear_backward(
    dy: np.ndarray, cache: Cache, params: Params
) -> Tuple[np.ndarray, Grads]:
    affine_cache, tanh_cache = cache
    dpre = F.tanh_backward(dy, tanh_cache)
    dx, dw, db = F.affine_backward(dpre, affine_cache)
    return dx, {"weight": dw, "bias": db}


# ----------------------------------------------------------------------
# conv (banded mixing)
# ----------------------------------------------------------------------
_BAND_HALF_WIDTH = 2


def _band_mask(width: int) -> np.ndarray:
    index = np.arange(width)
    return (np.abs(index[:, None] - index[None, :]) <= _BAND_HALF_WIDTH).astype(
        np.float32
    )


def _conv_build(width: int, rng: np.random.Generator) -> Params:
    from repro.nn.init import glorot, zeros

    return {"weight": glorot(rng, width, width), "bias": zeros(width)}


def _conv_forward(x: np.ndarray, params: Params) -> Tuple[np.ndarray, Cache]:
    mask = _band_mask(params["weight"].shape[0])
    banded = F.f32(params["weight"] * mask)
    pre, _ = F.affine_forward(x, banded, params["bias"])
    y, relu_cache = F.relu_forward(pre)
    return y, (x, banded, mask, relu_cache)


def _conv_backward(
    dy: np.ndarray, cache: Cache, params: Params
) -> Tuple[np.ndarray, Grads]:
    x, banded, mask, relu_cache = cache
    dpre = F.relu_backward(dy, relu_cache)
    dx = F.f32(dpre @ banded.T)
    dw = F.f32((x.T @ dpre) * mask)
    db = F.f32(dpre.sum(axis=0))
    return dx, {"weight": dw, "bias": db}


# ----------------------------------------------------------------------
# sepconv (depthwise scale + pointwise projection)
# ----------------------------------------------------------------------
def _sepconv_build(width: int, rng: np.random.Generator) -> Params:
    from repro.nn.init import glorot, ones_like_scale, zeros

    return {
        "depthwise": ones_like_scale(rng, width),
        "pointwise": glorot(rng, width, width),
        "bias": zeros(width),
    }


def _sepconv_forward(x: np.ndarray, params: Params) -> Tuple[np.ndarray, Cache]:
    scaled = F.f32(x * params["depthwise"])
    pre, _ = F.affine_forward(scaled, params["pointwise"], params["bias"])
    y, relu_cache = F.relu_forward(pre)
    return y, (x, scaled, relu_cache)


def _sepconv_backward(
    dy: np.ndarray, cache: Cache, params: Params
) -> Tuple[np.ndarray, Grads]:
    x, scaled, relu_cache = cache
    dpre = F.relu_backward(dy, relu_cache)
    dscaled = F.f32(dpre @ params["pointwise"].T)
    dpointwise = F.f32(scaled.T @ dpre)
    dbias = F.f32(dpre.sum(axis=0))
    ddepthwise = F.f32((dscaled * x).sum(axis=0))
    dx = F.f32(dscaled * params["depthwise"])
    return dx, {"depthwise": ddepthwise, "pointwise": dpointwise, "bias": dbias}


# ----------------------------------------------------------------------
# glu (gated linear unit)
# ----------------------------------------------------------------------
def _glu_build(width: int, rng: np.random.Generator) -> Params:
    from repro.nn.init import glorot, zeros

    return {
        "weight": glorot(rng, width, width),
        "bias": zeros(width),
        "gate_weight": glorot(rng, width, width),
        "gate_bias": zeros(width),
    }


def _glu_forward(x: np.ndarray, params: Params) -> Tuple[np.ndarray, Cache]:
    value = F.f32(x @ params["weight"] + params["bias"])
    gate = F.sigmoid(x @ params["gate_weight"] + params["gate_bias"])
    y = F.f32(value * gate)
    return y, (x, value, gate)


def _glu_backward(
    dy: np.ndarray, cache: Cache, params: Params
) -> Tuple[np.ndarray, Grads]:
    x, value, gate = cache
    dvalue = F.f32(dy * gate)
    dgate = F.f32(dy * value)
    dgate_pre = F.f32(dgate * gate * (1.0 - gate))
    dx = F.f32(dvalue @ params["weight"].T + dgate_pre @ params["gate_weight"].T)
    grads = {
        "weight": F.f32(x.T @ dvalue),
        "bias": F.f32(dvalue.sum(axis=0)),
        "gate_weight": F.f32(x.T @ dgate_pre),
        "gate_bias": F.f32(dgate_pre.sum(axis=0)),
    }
    return dx, grads


# ----------------------------------------------------------------------
# attention (content-based mixing + residual)
# ----------------------------------------------------------------------
_ATTENTION_RANK_DIVISOR = 2


def _attention_build(width: int, rng: np.random.Generator) -> Params:
    from repro.nn.init import glorot

    rank = max(2, width // _ATTENTION_RANK_DIVISOR)
    return {
        "query": glorot(rng, width, rank),
        "value": glorot(rng, rank, width),
    }


def _attention_forward(x: np.ndarray, params: Params) -> Tuple[np.ndarray, Cache]:
    scores = F.f32(x @ params["query"])
    attention = F.softmax_rows(scores)
    y = F.f32(attention @ params["value"] + x)
    return y, (x, attention)


def _attention_backward(
    dy: np.ndarray, cache: Cache, params: Params
) -> Tuple[np.ndarray, Grads]:
    x, attention = cache
    dvalue = F.f32(attention.T @ dy)
    dattention = F.f32(dy @ params["value"].T)
    dscores = F.softmax_rows_backward(dattention, attention)
    dquery = F.f32(x.T @ dscores)
    dx = F.f32(dscores @ params["query"].T + dy)
    return dx, {"query": dquery, "value": dvalue}


# ----------------------------------------------------------------------
# branch (two-branch elementwise max)
# ----------------------------------------------------------------------
def _branch_build(width: int, rng: np.random.Generator) -> Params:
    from repro.nn.init import glorot, zeros

    return {
        "left": glorot(rng, width, width),
        "right": glorot(rng, width, width),
        "bias": zeros(width),
    }


def _branch_forward(x: np.ndarray, params: Params) -> Tuple[np.ndarray, Cache]:
    left = F.f32(x @ params["left"])
    right = F.f32(x @ params["right"])
    chose_left = left >= right
    y = F.f32(np.where(chose_left, left, right) + params["bias"])
    return y, (x, chose_left)


def _branch_backward(
    dy: np.ndarray, cache: Cache, params: Params
) -> Tuple[np.ndarray, Grads]:
    x, chose_left = cache
    dleft_out = F.f32(dy * chose_left)
    dright_out = F.f32(dy * ~chose_left)
    dx = F.f32(dleft_out @ params["left"].T + dright_out @ params["right"].T)
    grads = {
        "left": F.f32(x.T @ dleft_out),
        "right": F.f32(x.T @ dright_out),
        "bias": F.f32(dy.sum(axis=0)),
    }
    return dx, grads


# ----------------------------------------------------------------------
# identity (the NAS skip-connection candidate: no parameters, y = x)
# ----------------------------------------------------------------------
def _identity_build(width: int, rng: np.random.Generator) -> Params:
    # A zero-size marker parameter keeps the store's bookkeeping uniform
    # (every layer has at least one array; this one carries no state).
    return {"marker": np.zeros(0, dtype=np.float32)}


def _identity_forward(x: np.ndarray, params: Params) -> Tuple[np.ndarray, Cache]:
    return x, ()


def _identity_backward(
    dy: np.ndarray, cache: Cache, params: Params
) -> Tuple[np.ndarray, Grads]:
    return dy, {"marker": np.zeros(0, dtype=np.float32)}


# ----------------------------------------------------------------------
# ffn (two-layer MLP with expansion, the transformer feed-forward block)
# ----------------------------------------------------------------------
_FFN_EXPANSION = 2


def _ffn_build(width: int, rng: np.random.Generator) -> Params:
    from repro.nn.init import glorot, zeros

    hidden = width * _FFN_EXPANSION
    return {
        "up": glorot(rng, width, hidden),
        "up_bias": zeros(hidden),
        "down": glorot(rng, hidden, width),
        "down_bias": zeros(width),
    }


def _ffn_forward(x: np.ndarray, params: Params) -> Tuple[np.ndarray, Cache]:
    pre, _ = F.affine_forward(x, params["up"], params["up_bias"])
    hidden, relu_cache = F.relu_forward(pre)
    y, _ = F.affine_forward(hidden, params["down"], params["down_bias"])
    return y, (x, hidden, relu_cache)


def _ffn_backward(
    dy: np.ndarray, cache: Cache, params: Params
) -> Tuple[np.ndarray, Grads]:
    x, hidden, relu_cache = cache
    dhidden = F.f32(dy @ params["down"].T)
    ddown = F.f32(hidden.T @ dy)
    ddown_bias = F.f32(dy.sum(axis=0))
    dpre = F.relu_backward(dhidden, relu_cache)
    dup = F.f32(x.T @ dpre)
    dup_bias = F.f32(dpre.sum(axis=0))
    dx = F.f32(dpre @ params["up"].T)
    return dx, {
        "up": dup,
        "up_bias": dup_bias,
        "down": ddown,
        "down_bias": ddown_bias,
    }


# ----------------------------------------------------------------------
# normlinear (RMS-normalised linear — the layernorm-ish candidate)
# ----------------------------------------------------------------------
_NORM_EPS = np.float32(1e-5)


def _normlinear_build(width: int, rng: np.random.Generator) -> Params:
    from repro.nn.init import glorot, ones_like_scale

    return {"gain": ones_like_scale(rng, width), "weight": glorot(rng, width, width)}


def _normlinear_forward(x: np.ndarray, params: Params) -> Tuple[np.ndarray, Cache]:
    rms = np.sqrt((x * x).mean(axis=1, keepdims=True) + _NORM_EPS).astype(np.float32)
    normed = F.f32(x / rms)
    scaled = F.f32(normed * params["gain"])
    y = F.f32(scaled @ params["weight"])
    return y, (x, rms, normed)


def _normlinear_backward(
    dy: np.ndarray, cache: Cache, params: Params
) -> Tuple[np.ndarray, Grads]:
    x, rms, normed = cache
    width = x.shape[1]
    dscaled = F.f32(dy @ params["weight"].T)
    dweight = F.f32((normed * params["gain"]).T @ dy)
    dgain = F.f32((dscaled * normed).sum(axis=0))
    dnormed = F.f32(dscaled * params["gain"])
    # d(x / rms): rms depends on every element of the row.
    dot = (dnormed * x).sum(axis=1, keepdims=True)
    dx = F.f32(dnormed / rms - x * dot / (width * rms**3))
    return dx, {"gain": dgain, "weight": dweight}


LAYER_IMPLEMENTATIONS: Dict[str, LayerImplementation] = {
    impl.name: impl
    for impl in (
        LayerImplementation("linear", _linear_build, _linear_forward, _linear_backward),
        LayerImplementation("conv", _conv_build, _conv_forward, _conv_backward),
        LayerImplementation(
            "sepconv", _sepconv_build, _sepconv_forward, _sepconv_backward
        ),
        LayerImplementation("glu", _glu_build, _glu_forward, _glu_backward),
        LayerImplementation(
            "attention", _attention_build, _attention_forward, _attention_backward
        ),
        LayerImplementation("branch", _branch_build, _branch_forward, _branch_backward),
        LayerImplementation(
            "identity", _identity_build, _identity_forward, _identity_backward
        ),
        LayerImplementation("ffn", _ffn_build, _ffn_forward, _ffn_backward),
        LayerImplementation(
            "normlinear",
            _normlinear_build,
            _normlinear_forward,
            _normlinear_backward,
        ),
    )
}


def _implementation(name: str) -> LayerImplementation:
    try:
        return LAYER_IMPLEMENTATIONS[name]
    except KeyError:
        raise SearchSpaceError(
            f"unknown layer implementation {name!r}; "
            f"known: {sorted(LAYER_IMPLEMENTATIONS)}"
        ) from None


def build_parameters(name: str, width: int, rng: np.random.Generator) -> Params:
    """Create fresh parameters for layer family ``name`` at ``width``."""
    return _implementation(name).build(width, rng)


def layer_forward(
    name: str, x: np.ndarray, params: Params
) -> Tuple[np.ndarray, Cache]:
    """Run family ``name``'s forward; returns ``(output, cache)``."""
    return _implementation(name).forward(x, params)


def layer_backward(
    name: str, dy: np.ndarray, cache: Cache, params: Params
) -> Tuple[np.ndarray, Grads]:
    """Run family ``name``'s backward; returns ``(dx, parameter grads)``."""
    return _implementation(name).backward(dy, cache, params)
