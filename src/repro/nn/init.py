"""Deterministic weight initialisation.

Each layer's parameters are initialised from a generator derived purely
from the layer's identity ``(block, choice)`` and the experiment's root
seed — never from materialisation order — so lazily creating layers in any
order yields identical weights.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.seeding import SeedSequenceTree

__all__ = ["layer_init_generator", "glorot", "zeros", "ones_like_scale"]


def layer_init_generator(
    seeds: SeedSequenceTree, layer: Tuple[int, int]
) -> np.random.Generator:
    """A pristine generator dedicated to initialising ``layer``."""
    block, choice = layer
    return seeds.fresh_generator(f"init/block{block}/choice{choice}")


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation as float32."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(np.float32)


def zeros(*shape: int) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones_like_scale(rng: np.random.Generator, size: int) -> np.ndarray:
    """A near-one multiplicative scale vector (for depthwise components)."""
    return (1.0 + 0.1 * rng.standard_normal(size)).astype(np.float32)


def make_factory(seeds: SeedSequenceTree, spec_for_layer, width: int):
    """Build a :class:`ParameterStore` factory closure.

    ``spec_for_layer`` maps a layer id to its implementation name (see
    :mod:`repro.nn.layers`); ``width`` is the functional hidden width.
    """
    from repro.nn.layers import build_parameters

    def factory(layer: Tuple[int, int]) -> Dict[str, np.ndarray]:
        rng = layer_init_generator(seeds, layer)
        return build_parameters(spec_for_layer(layer), width, rng)

    return factory
