"""Deterministic numpy mini-framework for the functional training plane.

The paper trains supernets with PyTorch on CUDA; reproducibility there
hinges on deterministic kernels plus a deterministic read/write interleaving
over shared layer parameters.  This package supplies the same contract on a
laptop: float32 tensors, manual backprop, a versioned
:class:`~repro.nn.parameter_store.ParameterStore` that logs every parameter
READ and WRITE (the raw material for the paper's Table 4), and SGD
optimisers whose updates are bit-stable.

Public surface:

* :class:`ParameterStore` / :class:`AccessRecord` — shared supernet weights.
* :mod:`repro.nn.layers` — the candidate-layer zoo with forward/backward.
* :class:`SubnetSegmentProgram` — forward/backward over a slice of a subnet
  (one pipeline stage's worth of layers).
* :mod:`repro.nn.optim` — plain and momentum SGD.
* :mod:`repro.nn.loss` — cross entropy with logits.
"""

from repro.nn.parameter_store import AccessKind, AccessRecord, ParameterStore
from repro.nn.layers import (
    LAYER_IMPLEMENTATIONS,
    LayerImplementation,
    build_parameters,
    layer_forward,
    layer_backward,
)
from repro.nn.program import SubnetSegmentProgram, StageActivation
from repro.nn.loss import cross_entropy_with_logits, softmax
from repro.nn.optim import SGD, MomentumSGD

__all__ = [
    "AccessKind",
    "AccessRecord",
    "ParameterStore",
    "LAYER_IMPLEMENTATIONS",
    "LayerImplementation",
    "build_parameters",
    "layer_forward",
    "layer_backward",
    "SubnetSegmentProgram",
    "StageActivation",
    "cross_entropy_with_logits",
    "softmax",
    "SGD",
    "MomentumSGD",
]
