"""Stateless and stateful SGD update rules.

The optimizer is applied at WRITE time — when a subnet's backward pass
commits a layer update through the :class:`~repro.nn.parameter_store.
ParameterStore`.  Keeping the update rule a pure function of
``(params, grads, state)`` makes the functional plane's interleaving
semantics explicit: whoever applies updates in a different order gets
different float32 bits, which is exactly what the reproducibility
experiments measure.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.parameter_store import LayerId

__all__ = ["SGD", "MomentumSGD", "clip_gradients"]

Params = Mapping[str, np.ndarray]


def clip_gradients(
    grads: Params, max_norm: float
) -> Dict[str, np.ndarray]:
    """Scale a layer's gradients so their global L2 norm ≤ ``max_norm``.

    The clip factor is computed in float32 so clipping is itself
    deterministic and reorder-insensitive per layer.
    """
    total = np.float32(0.0)
    for array in grads.values():
        total += np.float32(np.sum(array.astype(np.float32) ** 2))
    norm = np.sqrt(total, dtype=np.float32)
    if norm <= max_norm:
        return {name: F.f32(array) for name, array in grads.items()}
    scale = np.float32(max_norm) / norm
    return {name: F.f32(array * scale) for name, array in grads.items()}


class SGD:
    """Plain stochastic gradient descent: ``w -= lr * g``.

    ``max_grad_norm`` enables per-layer gradient clipping — cheap
    insurance against the loss spikes deep residual chains can produce
    at brisk learning rates.
    """

    def __init__(
        self, learning_rate: float = 0.05, max_grad_norm: float = None
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive when set")
        self.learning_rate = np.float32(learning_rate)
        self.max_grad_norm = max_grad_norm

    def apply(
        self, layer: LayerId, params: Params, grads: Params
    ) -> Dict[str, np.ndarray]:
        """Return updated parameter arrays (inputs are not mutated)."""
        if self.max_grad_norm is not None:
            grads = clip_gradients(grads, self.max_grad_norm)
        return {
            name: F.f32(params[name] - self.learning_rate * grads[name])
            for name in params
        }


class MomentumSGD:
    """SGD with classical momentum, velocity keyed by (layer, param name).

    Velocity state lives in the optimizer, mirroring how PyTorch keeps
    optimizer state out of the module parameters.  State is keyed by layer
    identity, so the same optimizer instance serves every subnet that
    shares a layer — shared state is itself part of the causal dependency.
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        max_grad_norm: float = None,
    ) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive when set")
        self.learning_rate = np.float32(learning_rate)
        self.momentum = np.float32(momentum)
        self.max_grad_norm = max_grad_norm
        self._velocity: Dict[Tuple[LayerId, str], np.ndarray] = {}

    def apply(
        self, layer: LayerId, params: Params, grads: Params
    ) -> Dict[str, np.ndarray]:
        if self.max_grad_norm is not None:
            grads = clip_gradients(grads, self.max_grad_norm)
        updated = {}
        for name in params:
            key = (layer, name)
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(params[name])
            velocity = F.f32(self.momentum * velocity + grads[name])
            self._velocity[key] = velocity
            updated[name] = F.f32(params[name] - self.learning_rate * velocity)
        return updated
