"""Primitive differentiable ops shared by the candidate-layer zoo.

Each op comes as a ``*_forward`` returning ``(output, cache)`` and a
``*_backward`` taking the upstream gradient and the cache.  Everything is
float32 in and float32 out; the helpers never upcast, because float64
intermediates would mask the very reordering effects (non-commutative
float32 addition) the reproducibility experiments rely on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "f32",
    "affine_forward",
    "affine_backward",
    "tanh_forward",
    "tanh_backward",
    "relu_forward",
    "relu_backward",
    "sigmoid",
    "softmax_rows",
    "softmax_rows_backward",
]


def f32(array: np.ndarray) -> np.ndarray:
    """Cast to float32 without copying when already float32."""
    return np.asarray(array, dtype=np.float32)


def affine_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    """``y = x @ W + b`` with cache for the backward pass."""
    y = f32(x @ weight + bias)
    return y, (x, weight)


def affine_backward(
    dy: np.ndarray, cache: Tuple[np.ndarray, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(dx, dW, db)`` for :func:`affine_forward`."""
    x, weight = cache
    dx = f32(dy @ weight.T)
    dw = f32(x.T @ dy)
    db = f32(dy.sum(axis=0))
    return dx, dw, db


def tanh_forward(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y = np.tanh(x, dtype=np.float32)
    return y, y


def tanh_backward(dy: np.ndarray, y: np.ndarray) -> np.ndarray:
    return f32(dy * (1.0 - y * y))


def relu_forward(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y = np.maximum(x, np.float32(0.0))
    return y, x


def relu_backward(dy: np.ndarray, x: np.ndarray) -> np.ndarray:
    return f32(dy * (x > 0))


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite; the bound is far outside any useful
    # activation range so it does not distort training.
    clipped = np.clip(x, -30.0, 30.0)
    return f32(1.0 / (1.0 + np.exp(-clipped, dtype=np.float32)))


def softmax_rows(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = x - x.max(axis=-1, keepdims=True)
    exps = np.exp(shifted, dtype=np.float32)
    return f32(exps / exps.sum(axis=-1, keepdims=True))


def softmax_rows_backward(dy: np.ndarray, softmax_out: np.ndarray) -> np.ndarray:
    """Backward through :func:`softmax_rows` given its output."""
    dot = (dy * softmax_out).sum(axis=-1, keepdims=True)
    return f32(softmax_out * (dy - dot))
