"""Loss functions for the functional training plane."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import functional as F

__all__ = ["softmax", "cross_entropy_with_logits"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax (re-exported for API convenience)."""
    return F.softmax_rows(logits)


def cross_entropy_with_logits(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[np.float32, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. ``logits``.

    ``targets`` holds integer class indices of shape ``(batch,)``.  The
    gradient is already divided by the batch size, so callers can feed it
    straight into the backward chain.
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (batch, classes), got {logits.shape}")
    batch = logits.shape[0]
    probs = F.softmax_rows(logits)
    picked = probs[np.arange(batch), targets]
    # The clip guards log(0) for a catastrophically confident wrong model.
    loss = np.float32(-np.log(np.clip(picked, 1e-12, None)).mean())
    dlogits = probs.copy()
    dlogits[np.arange(batch), targets] -= 1.0
    dlogits = F.f32(dlogits / np.float32(batch))
    return loss, dlogits
