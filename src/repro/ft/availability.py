"""Availability accounting: what faults cost a training run.

Everything is measured on the virtual clock, so the numbers are exactly
reproducible:

* **lost virtual time** — work done after the last consistent checkpoint
  and discarded by each crash (the PipeDream-style recovery cost CSP's
  consistent cuts bound to at most one checkpoint interval);
* **recovery latency** — restart downtime plus prefetch re-warm per
  attempt;
* **goodput** — the fault-free makespan divided by the faulted global
  makespan: the fraction of wall-clock the cluster spent making forward
  progress.

:func:`mtbf_sweep` runs the same workload under seeded fault schedules
of decreasing MTBF and tabulates the degradation curve.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.config import SystemConfig
from repro.engines.pipeline import PipelineResult
from repro.ft.faults import FaultSchedule
from repro.ft.recovery import (
    FaultedRunResult,
    RecoverySpec,
    run_uninterrupted,
    run_with_recovery,
)
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import SearchSpace

__all__ = [
    "availability_summary",
    "failure_summary",
    "format_availability",
    "mtbf_sweep",
]


def failure_summary(
    job: str,
    *,
    attempts: int,
    max_restarts: int,
    lost_virtual_ms: float,
    fault: str,
) -> Dict[str, object]:
    """Structured record of one job's terminal failure.

    Emitted when a restart budget is exhausted — by the service plane
    for rigid jobs struck by lease revocations, and by
    :func:`~repro.ft.recovery.run_with_recovery` when asked to record
    rather than raise.  It is the machine-readable answer to "why did
    this tenant fail while the fleet kept running": attempts made, the
    budget they exceeded, virtual work discarded, and the last fault.
    """
    return {
        "job": job,
        "attempts": attempts,
        "max_restarts": max_restarts,
        "lost_virtual_ms": lost_virtual_ms,
        "fault": fault,
    }


def availability_summary(
    faulted: FaultedRunResult,
    baseline: Optional[PipelineResult] = None,
) -> Dict[str, object]:
    """Machine-readable availability metrics for one recovered run."""
    summary: Dict[str, object] = {
        "system": faulted.system,
        "space": faulted.space,
        "num_gpus": faulted.num_gpus,
        "final_gpus": faulted.final_gpus,
        "subnets_completed": faulted.subnets_completed,
        "attempts": faulted.num_attempts,
        "crashes": faulted.num_attempts - 1,
        "faults_fired": faulted.fault_count,
        "task_retries": faulted.task_retries,
        "checkpoints_committed": len(faulted.checkpoint_cuts),
        "checkpoint_cuts": list(faulted.checkpoint_cuts),
        "makespan_ms": faulted.makespan_ms,
        "lost_virtual_ms": faulted.lost_virtual_ms,
        "recovery_latency_ms": faulted.recovery_latency_ms,
        "digest": faulted.digest,
    }
    if baseline is not None:
        summary["baseline_makespan_ms"] = baseline.makespan_ms
        summary["goodput_ratio"] = (
            baseline.makespan_ms / faulted.makespan_ms
            if faulted.makespan_ms
            else 1.0
        )
        summary["digest_matches_baseline"] = faulted.digest == baseline.digest
    return summary


def format_availability(summary: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`availability_summary`."""
    lines = [
        f"{summary['system']} on {summary['space']} "
        f"(D={summary['num_gpus']}"
        + (
            f" -> {summary['final_gpus']}"
            if summary["final_gpus"] != summary["num_gpus"]
            else ""
        )
        + f", {summary['subnets_completed']} subnets)",
        f"  attempts            {summary['attempts']} "
        f"({summary['crashes']} crash(es), "
        f"{summary['faults_fired']} fault(s) fired, "
        f"{summary['task_retries']} task retr{'y' if summary['task_retries'] == 1 else 'ies'})",
        f"  checkpoints         {summary['checkpoints_committed']} "
        f"at cuts {summary['checkpoint_cuts']}",
        f"  makespan            {summary['makespan_ms']:.2f} virtual ms",
        f"  lost virtual time   {summary['lost_virtual_ms']:.2f} ms",
        f"  recovery latency    {summary['recovery_latency_ms']:.2f} ms",
    ]
    if "goodput_ratio" in summary:
        lines.append(
            f"  goodput             {summary['goodput_ratio'] * 100:.1f}% "
            f"of fault-free ({summary['baseline_makespan_ms']:.2f} ms)"
        )
    if "digest_matches_baseline" in summary:
        verdict = (
            "IDENTICAL to fault-free run"
            if summary["digest_matches_baseline"]
            else "DIVERGED from fault-free run"
        )
        lines.append(f"  parameter digest    {verdict}")
    return "\n".join(lines)


def mtbf_sweep(
    space: SearchSpace,
    config: SystemConfig,
    *,
    mtbf_values_ms: Sequence[float],
    num_gpus: int,
    steps: int,
    seed: int,
    checkpoint_dir: Union[str, Path],
    spec: Optional[RecoverySpec] = None,
    batch: Optional[int] = None,
    functional_batch: int = 8,
) -> List[Dict[str, object]]:
    """Goodput vs MTBF: one seeded schedule and recovered run per row."""
    baseline = run_uninterrupted(
        space,
        config,
        num_gpus=num_gpus,
        steps=steps,
        seed=seed,
        batch=batch,
        functional_batch=functional_batch,
    )
    seeds = SeedSequenceTree(seed)
    rows: List[Dict[str, object]] = []
    for mtbf in mtbf_values_ms:
        schedule = FaultSchedule.from_mtbf(
            seeds,
            mtbf_ms=mtbf,
            horizon_ms=baseline.makespan_ms,
            num_gpus=num_gpus,
        )
        faulted = run_with_recovery(
            space,
            config,
            schedule,
            num_gpus=num_gpus,
            steps=steps,
            seed=seed,
            checkpoint_dir=Path(checkpoint_dir) / f"mtbf_{int(mtbf)}",
            spec=spec,
            batch=batch,
            functional_batch=functional_batch,
        )
        row = availability_summary(faulted, baseline)
        row["mtbf_ms"] = mtbf
        rows.append(row)
    return rows
