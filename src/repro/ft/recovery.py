"""Crash-restart and elastic-rescale recovery.

:func:`run_with_recovery` drives one logical training run to completion
across any number of fail-stop faults.  Each *attempt* is a fresh
:class:`~repro.engines.pipeline.PipelineEngine` on its own local virtual
clock: a fresh supernet, functional plane and per-stage runtime state
(the paper's ``L_q`` / ``L_f`` / ``L_SN`` lists rebuild naturally from
re-injection), with

* the parameter store, optimizer velocity and cached RNG streams
  restored from the latest consistent checkpoint
  (:class:`~repro.ft.checkpoint.CheckpointManager`);
* the subnet stream resumed at the checkpoint's cut **with original
  sequence IDs** — data batches and causal order are keyed by ID, so the
  resumed prefix replays bitwise;
* the fault schedule re-bound at a global-clock ``offset`` so faults
  fire exactly once across the whole history;
* optionally a **different GPU count** (elastic rescale): under CSP the
  final weights are a pure function of the stream, so recovering on 4 or
  8 GPUs produces the same bits — the strongest production consequence
  of Definition 1, and the thing the recovery tests check.

Recovered stages also re-warm their prefetch caches: before the first
task dispatches, each stage prefetches its slice of the first resumed
subnet, charging the copies to the recovery window instead of a cold
fetch stall on the critical path.

Non-fatal faults never reach this module: NIC degradation is a
degraded-mode *continue* and transient task errors are retried with
backoff inside the engine (see :mod:`repro.ft.injector`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.config import SystemConfig
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine, PipelineResult
from repro.errors import FaultToleranceError
from repro.ft.checkpoint import Checkpoint, CheckpointManager
from repro.ft.degradation import (
    DegradationManager,
    DegradationPolicy,
    as_manager,
)
from repro.ft.faults import FaultSchedule
from repro.ft.injector import FaultInjector
from repro.nn.optim import MomentumSGD
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import SearchSpace
from repro.supernet.supernet import Supernet

__all__ = [
    "RecoverySpec",
    "AttemptRecord",
    "FaultedRunResult",
    "run_with_recovery",
    "run_uninterrupted",
    "build_stream",
    "default_optimizer",
    "rewarm_prefetch",
]


@dataclass(frozen=True)
class RecoverySpec:
    """Restart policy knobs."""

    #: take a consistent checkpoint every this many subnets
    checkpoint_interval: int = 8
    #: give up after this many restarts (a restart budget, not attempts)
    max_restarts: int = 8
    #: GPU count for restarted attempts (None = same as the original);
    #: elastic rescale when it differs
    restart_gpus: Optional[int] = None
    #: virtual downtime charged per restart (detection + respawn + load)
    restart_delay_ms: float = 50.0
    #: re-warm each recovered stage's prefetch cache before resuming
    rewarm: bool = True


@dataclass
class AttemptRecord:
    """What one engine incarnation did."""

    attempt: int
    num_gpus: int
    resumed_from: int  # stream cursor this attempt started at
    interrupted: bool
    interrupt_kind: str
    makespan_ms: float  # local virtual time this attempt ran
    checkpoints: List[int] = field(default_factory=list)
    completed_kept: int = 0  # completions that survive into the merge
    lost_virtual_ms: float = 0.0
    recovery_latency_ms: float = 0.0


@dataclass
class FaultedRunResult:
    """The merged outcome of a crash-restart history.

    Duck-typed to stand in for :class:`PipelineResult` where replay
    verification needs ``digest`` / ``losses`` / ``completion_order`` /
    ``makespan_ms``; ``final`` is the last attempt's full result.
    """

    system: str
    space: str
    num_gpus: int
    final_gpus: int
    digest: Optional[str]
    losses: Dict[int, float]
    completion_order: List[int]
    makespan_ms: float  # global virtual time, downtime included
    subnets_completed: int
    attempts: List[AttemptRecord]
    results: List[PipelineResult]
    checkpoint_cuts: List[int]
    lost_virtual_ms: float
    recovery_latency_ms: float
    fault_count: int
    task_retries: int
    #: concatenated mitigation logs of all attempts (chronological)
    mitigation_actions: List[Dict] = field(default_factory=list)
    #: structured failure record when the restart budget ran out and the
    #: caller asked to record rather than raise (``digest`` is None then)
    failure: Optional[Dict] = None

    @property
    def failed(self) -> bool:
        return self.failure is not None

    @property
    def final(self) -> PipelineResult:
        return self.results[-1]

    @property
    def num_attempts(self) -> int:
        return len(self.attempts)


def _completions_in_order(result: PipelineResult) -> List[int]:
    return [
        sid
        for sid, _t in sorted(
            result.trace.subnet_completion_times.items(), key=lambda kv: kv[1]
        )
    ]


def default_optimizer() -> MomentumSGD:
    """The recorded-run optimizer defaults (mirrors replay.py), so a
    faulted or service-scheduled run and its uninterrupted baseline are
    directly digest-comparable."""
    return MomentumSGD(0.3, 0.9, 5.0)


# historical private name, kept for callers inside this package
_default_optimizer = default_optimizer


def rewarm_prefetch(engine: PipelineEngine, first) -> int:
    """Pre-warm each stage's context cache for the first resumed subnet.

    Shared by crash-restart recovery and the service plane's elastic
    resize: before a resumed engine dispatches its first task, every
    stage prefetches its home slice of ``first``, charging the copies to
    the recovery/resize window instead of a cold fetch stall on the
    critical path.  Returns the number of layers prefetched.
    """
    rewarmed = 0
    if engine.contexts is not None:
        for stage in range(engine.stages):
            start, stop = engine.home_partition[stage]
            layers = first.layers_in_range(start, stop)
            engine.prefetch_context(stage, layers)
            rewarmed += len(layers)
    return rewarmed


def _degradation_policy(value) -> Optional[DegradationPolicy]:
    """Normalise a ``degradation=`` argument to a policy, so recovery
    can build one *fresh* manager per attempt (a manager is single-use)."""
    if value is None:
        return None
    if isinstance(value, DegradationPolicy):
        return value
    if isinstance(value, DegradationManager):
        return value.policy
    return as_manager(value).policy


def build_stream(
    space: SearchSpace, seed: int, steps: int, stream_kind: str
) -> SubnetStream:
    """The seeded subnet stream one logical job trains — shared by
    recovery attempts and the service plane so every incarnation of a
    job resumes the *same* stream with original sequence IDs."""
    seeds = SeedSequenceTree(seed)
    if stream_kind == "generational":
        return SubnetStream.sample_generational(space, seeds, steps)
    return SubnetStream.sample(space, seeds, steps)


_build_stream = build_stream


def run_uninterrupted(
    space: SearchSpace,
    config: SystemConfig,
    *,
    num_gpus: int,
    steps: int,
    seed: int,
    batch: Optional[int] = None,
    functional_batch: int = 8,
    optimizer_factory=None,
    stream_kind: str = "spos",
    speed_factors=None,
    faults=None,
    degradation=None,
) -> PipelineResult:
    """The fault-free baseline a recovered run is compared against.

    ``faults`` (a :class:`FaultSchedule` or bound-ready injector) and
    ``degradation`` (policy / manager / True / payload dict) extend the
    same entry point to single-attempt *non-fatal* fault runs — the
    chaos harness's workhorse.
    """
    supernet = Supernet(space)
    seeds = SeedSequenceTree(seed)
    plane = FunctionalPlane(
        supernet,
        seeds,
        functional_batch=functional_batch,
        optimizer=(optimizer_factory or _default_optimizer)(),
    )
    stream = _build_stream(space, seed, steps, stream_kind)
    if isinstance(faults, FaultSchedule):
        faults = FaultInjector(faults)
    engine = PipelineEngine(
        supernet,
        stream,
        config,
        ClusterSpec(num_gpus=num_gpus, gpu_speed_factors=speed_factors),
        batch=batch,
        functional=plane,
        faults=faults,
        degradation=degradation,
    )
    return engine.run()


def run_with_recovery(
    space: SearchSpace,
    config: SystemConfig,
    schedule: FaultSchedule,
    *,
    num_gpus: int,
    steps: int,
    seed: int,
    checkpoint_dir: Union[str, Path],
    spec: Optional[RecoverySpec] = None,
    batch: Optional[int] = None,
    functional_batch: int = 8,
    optimizer_factory=None,
    stream_kind: str = "spos",
    speed_factors=None,
    restart_speed_factors=None,
    degradation=None,
    on_exhausted: str = "raise",
) -> FaultedRunResult:
    """Run ``steps`` subnets to completion despite ``schedule``.

    ``speed_factors`` apply to the first attempt's cluster;
    ``restart_speed_factors`` to every restarted attempt (so a job can
    recover onto a slower, faster, or differently-sized replacement
    cluster — under CSP the digest is unchanged either way).

    ``on_exhausted`` decides what an exhausted restart budget does:
    ``"raise"`` (default) propagates :class:`FaultToleranceError` as
    before; ``"record"`` returns a partial :class:`FaultedRunResult`
    whose ``failure`` field is a :func:`~repro.ft.availability.
    failure_summary` record (``digest`` is None — there are no final
    weights).  Service runs use ``"record"`` so one doomed tenant fails
    alone instead of aborting the whole fleet.
    """
    if on_exhausted not in ("raise", "record"):
        raise FaultToleranceError(
            f'on_exhausted must be "raise" or "record", got {on_exhausted!r}'
        )
    spec = spec or RecoverySpec()
    checkpoint_dir = Path(checkpoint_dir)
    optimizer_factory = optimizer_factory or _default_optimizer
    degradation_policy = _degradation_policy(degradation)
    full_stream = list(_build_stream(space, seed, steps, stream_kind))

    cursor = 0  # next subnet ID to train
    offset = 0.0  # global virtual time consumed by earlier attempts
    restore_from: Optional[Checkpoint] = None
    attempt = 0
    attempts: List[AttemptRecord] = []
    results: List[PipelineResult] = []
    losses: Dict[int, float] = {}
    completion_order: List[int] = []
    checkpoint_cuts: List[int] = []
    total_lost = 0.0
    total_recovery_latency = 0.0
    total_faults = 0
    total_retries = 0
    mitigation_actions: List[Dict] = []

    while True:
        attempt += 1
        if attempt - 1 > spec.max_restarts:
            if on_exhausted == "record":
                from repro.ft.availability import failure_summary

                last_fault = attempts[-1].interrupt_kind if attempts else None
                return FaultedRunResult(
                    system=config.name,
                    space=space.name,
                    num_gpus=num_gpus,
                    final_gpus=attempts[-1].num_gpus if attempts else num_gpus,
                    digest=None,
                    losses=losses,
                    completion_order=completion_order,
                    makespan_ms=offset,
                    subnets_completed=len(completion_order),
                    attempts=attempts,
                    results=results,
                    checkpoint_cuts=checkpoint_cuts,
                    lost_virtual_ms=total_lost,
                    recovery_latency_ms=total_recovery_latency,
                    fault_count=total_faults,
                    task_retries=total_retries,
                    mitigation_actions=mitigation_actions,
                    failure=failure_summary(
                        f"{config.name}:{space.name}",
                        attempts=attempt - 1,
                        max_restarts=spec.max_restarts,
                        lost_virtual_ms=total_lost,
                        fault=last_fault or "unknown",
                    ),
                )
            raise FaultToleranceError(
                f"restart budget exhausted: {spec.max_restarts} restarts, "
                f"still at subnet {cursor}/{steps}"
            )
        gpus = num_gpus if attempt == 1 else (spec.restart_gpus or num_gpus)
        speeds = speed_factors if attempt == 1 else restart_speed_factors

        supernet = Supernet(space)
        seeds = SeedSequenceTree(seed)
        plane = FunctionalPlane(
            supernet,
            seeds,
            functional_batch=functional_batch,
            optimizer=optimizer_factory(),
        )
        if restore_from is not None:
            restore_from.restore(plane)
        stream = SubnetStream(full_stream[cursor:], start=cursor)
        injector = FaultInjector(schedule, offset=offset)
        manager = CheckpointManager(
            plane,
            checkpoint_dir,
            spec.checkpoint_interval,
            base=cursor,
            end=steps,
            time_offset=offset,
            meta={"seed": seed, "steps": steps, "attempt": attempt},
        )
        engine = PipelineEngine(
            supernet,
            stream,
            config,
            ClusterSpec(num_gpus=gpus, gpu_speed_factors=speeds),
            batch=batch,
            functional=plane,
            faults=injector,
            checkpoints=manager,
            degradation=(
                DegradationManager(degradation_policy)
                if degradation_policy is not None
                else None
            ),
        )

        recovery_latency = 0.0
        if attempt > 1:
            for stage in range(engine.stages):
                engine.trace.record_event(
                    "gpu_up", 0.0, stage=stage, attempt=attempt
                )
            engine.trace.record_event(
                "recovery_begin", 0.0, cut=cursor, attempt=attempt, gpus=gpus
            )
            rewarmed = 0
            if spec.rewarm and stream.remaining:
                rewarmed = rewarm_prefetch(engine, full_stream[cursor])
            copy_warm = max(
                (ce.next_free for ce in engine.cluster.copy_engines),
                default=0.0,
            )
            recovery_latency = spec.restart_delay_ms + copy_warm
            total_recovery_latency += recovery_latency
            engine.trace.record_event(
                "recovery_done",
                0.0,
                cut=cursor,
                attempt=attempt,
                latency_ms=recovery_latency,
                rewarmed=rewarmed,
            )

        result = engine.run()
        results.append(result)
        total_faults += result.fault_count
        total_retries += result.task_retries
        mitigation_actions.extend(result.mitigation_actions)
        record = AttemptRecord(
            attempt=attempt,
            num_gpus=gpus,
            resumed_from=cursor,
            interrupted=result.interrupted,
            interrupt_kind=result.interrupt_kind,
            makespan_ms=result.makespan_ms,
            checkpoints=[c.cut for c in manager.commits],
            recovery_latency_ms=recovery_latency,
        )
        checkpoint_cuts.extend(c.cut for c in manager.commits)

        if not result.interrupted:
            kept = _completions_in_order(result)
            completion_order.extend(kept)
            for sid in kept:
                if sid in result.losses:
                    losses[sid] = result.losses[sid]
            record.completed_kept = len(kept)
            attempts.append(record)
            return FaultedRunResult(
                system=config.name,
                space=space.name,
                num_gpus=num_gpus,
                final_gpus=gpus,
                digest=result.digest,
                losses=losses,
                completion_order=completion_order,
                makespan_ms=offset + result.makespan_ms,
                subnets_completed=len(completion_order),
                attempts=attempts,
                results=results,
                checkpoint_cuts=checkpoint_cuts,
                lost_virtual_ms=total_lost,
                recovery_latency_ms=total_recovery_latency,
                fault_count=total_faults,
                task_retries=total_retries,
                mitigation_actions=mitigation_actions,
            )

        # -- crashed: roll back to the latest consistent cut -----------
        crash_local = result.interrupt_time_ms
        latest = manager.latest()
        if latest is not None:
            restore_from = latest
            new_cursor = latest.cut
            lost = crash_local - (latest.time_ms - offset)
        else:
            # no new checkpoint this attempt: resume from the previous
            # one (or from scratch) — the whole attempt's progress since
            # then is lost
            new_cursor = cursor
            lost = crash_local
        record.lost_virtual_ms = lost
        total_lost += lost
        kept = [
            sid for sid in _completions_in_order(result) if sid < new_cursor
        ]
        completion_order.extend(kept)
        for sid in kept:
            if sid in result.losses:
                losses[sid] = result.losses[sid]
        record.completed_kept = len(kept)
        attempts.append(record)
        cursor = new_cursor
        offset += crash_local + spec.restart_delay_ms
