"""Fault tolerance and elastic recovery (``repro.ft``).

NASPipe's reproducibility claim (Definitions 1-2) has a production
consequence the paper never tests: because CSP makes the final weights a
pure function of the subnet stream — independent of cluster timing — a
crashed training job can resume from a *consistent* checkpoint on the
same or a **different** GPU count and finish with bitwise-identical
parameters.  This package builds the machinery to inject failures,
take consistent-cut checkpoints, recover, and measure the cost:

* :mod:`repro.ft.faults` — deterministic fault schedules (GPU crash,
  host crash, NIC degradation, copy-engine stall, transient task error)
  with explicit trigger times or seeded MTBF sampling;
* :mod:`repro.ft.injector` — turns a schedule into first-class
  simulation events inside a :class:`~repro.engines.pipeline.
  PipelineEngine` run;
* :mod:`repro.ft.checkpoint` — consistent-cut checkpointing driven by
  the CSP frontier (undo-log construction; see
  ``docs/FAULT_TOLERANCE.md``);
* :mod:`repro.ft.recovery` — crash-restart / elastic-rescale driver
  plus retry and degraded-mode policies;
* :mod:`repro.ft.availability` — lost-virtual-time, recovery-latency
  and goodput accounting, including MTBF sweeps;
* :mod:`repro.ft.degradation` — health monitoring over the trace-event
  stream and deterministic adaptive mitigation (admission control,
  prefetch throttling, straggler rebalancing) for *non-fatal* faults;
* :mod:`repro.ft.chaos` — seeded randomized robustness sweeps with an
  invariant suite (completion, bitwise digest, trace validity, memory
  cap, bubble accounting);
* :mod:`repro.ft.fleet` — fleet-scale preemption storms across the
  co-located service and serving planes (lease revocation, rigid
  requeue/fail, serving retry) with their own invariant suite.
"""

from repro.ft.availability import (
    availability_summary,
    failure_summary,
    format_availability,
    mtbf_sweep,
)
from repro.ft.chaos import (
    NONFATAL_KINDS,
    chaos_invariants,
    chaos_sweep,
    format_chaos_report,
    run_chaos_scenario,
)
from repro.ft.checkpoint import Checkpoint, CheckpointManager, restore_checkpoint
from repro.ft.degradation import (
    DegradationManager,
    DegradationPolicy,
    HealthMonitor,
    as_manager,
)
from repro.ft.faults import (
    ALL_KINDS,
    FATAL_KINDS,
    FAULT_KINDS,
    FLEET_KINDS,
    FaultEvent,
    FaultSchedule,
)
from repro.ft.fleet import (
    fleet_report_json,
    fleet_sweep,
    format_fleet_report,
    run_fleet_scenario,
)
from repro.ft.injector import FaultInjector
from repro.ft.recovery import (
    FaultedRunResult,
    RecoverySpec,
    build_stream,
    default_optimizer,
    rewarm_prefetch,
    run_uninterrupted,
    run_with_recovery,
)

__all__ = [
    "ALL_KINDS",
    "FAULT_KINDS",
    "FATAL_KINDS",
    "FLEET_KINDS",
    "NONFATAL_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "Checkpoint",
    "CheckpointManager",
    "restore_checkpoint",
    "RecoverySpec",
    "FaultedRunResult",
    "run_uninterrupted",
    "run_with_recovery",
    "build_stream",
    "default_optimizer",
    "rewarm_prefetch",
    "availability_summary",
    "failure_summary",
    "format_availability",
    "mtbf_sweep",
    "run_fleet_scenario",
    "fleet_sweep",
    "fleet_report_json",
    "format_fleet_report",
    "DegradationPolicy",
    "DegradationManager",
    "HealthMonitor",
    "as_manager",
    "chaos_invariants",
    "run_chaos_scenario",
    "chaos_sweep",
    "format_chaos_report",
]
