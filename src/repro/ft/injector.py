"""Fault injection: schedules become first-class simulation events.

The injector binds one :class:`~repro.ft.faults.FaultSchedule` to one
:class:`~repro.engines.pipeline.PipelineEngine` attempt.  Each attempt
runs on a *local* virtual clock starting at 0; the injector carries the
``offset`` between the global fault clock and the attempt's local clock
(the virtual time consumed by earlier attempts plus restart downtime), so
one schedule drives a whole crash-restart history and no fault fires
twice.

Effects:

* fatal kinds (``gpu_crash`` / ``host_crash``) hand control to the
  engine's :meth:`~repro.engines.pipeline.PipelineEngine._on_fatal_fault`
  — the event queue is cleared (fail-stop: in-flight work vanishes) and
  the run returns interrupted;
* ``nic_degrade`` scales the target inter-stage links' bandwidth down by
  ``magnitude`` and schedules the restoration — degraded-mode continue;
* ``copy_stall`` pushes the target stage's PCIe copy engine ``next_free``
  forward, delaying prefetches behind it;
* ``task_error`` arms the target stage: the next ``magnitude`` task
  dispatches there fail transiently and the engine retries them with
  exponential backoff (:meth:`take_task_fault`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.ft import faults as F
from repro.ft.faults import FaultEvent, FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engines.pipeline import PipelineEngine

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives one schedule into one engine attempt."""

    #: first transient-retry backoff; doubles per consecutive retry
    TASK_RETRY_BASE_MS = 2.0

    def __init__(self, schedule: FaultSchedule, offset: float = 0.0) -> None:
        self.schedule = schedule
        self.offset = offset
        self.engine: "PipelineEngine | None" = None
        #: pending armed transient failures per stage
        self._armed: Dict[int, int] = {}
        #: consecutive retries taken per stage since the last success
        self._attempts: Dict[int, int] = {}
        self._handles: List[object] = []
        self.fault_count = 0

    # ------------------------------------------------------------------
    def bind(self, engine: "PipelineEngine") -> None:
        """Schedule every not-yet-fired fault into the engine's queue."""
        self.engine = engine
        for event in self.schedule:
            local = event.time_ms - self.offset
            if local < 0:
                continue  # fired during an earlier attempt
            if not self._applicable(event, engine):
                continue
            handle = engine.sim.schedule(
                local,
                lambda event=event: self._fire(event),
                label=f"fault {event.kind}@{event.target}",
            )
            self._handles.append(handle)

    @staticmethod
    def _applicable(event: FaultEvent, engine: "PipelineEngine") -> bool:
        """Whether the target exists on this attempt's cluster.

        An elastic restart may run on fewer GPUs than the schedule was
        written for; faults aimed at hardware the new cluster doesn't
        have are skipped rather than remapped.  Fleet-scoped kinds
        (``slot_preempt`` / ``node_down``) target physical fleet slots
        owned by a :class:`~repro.service.manager.ClusterManager`, not
        an engine's stages — they are never bound into an attempt (the
        service plane handles them as lease revocations).
        """
        if event.kind in F.FLEET_KINDS:
            return False
        if event.kind == F.HOST_CRASH:
            return event.target < engine.cluster.spec.num_hosts
        if event.kind == F.NIC_DEGRADE:
            return event.target < len(engine.cluster.forward_links)
        return event.target < engine.stages

    def cancel_pending(self) -> None:
        """Drop faults that have not fired yet (the run completed)."""
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    # ------------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        engine = self.engine
        assert engine is not None
        now = engine.sim.now
        self.fault_count += 1
        engine.trace.record_event(
            "fault_inject",
            now,
            fault=event.kind,
            target=event.target,
            duration_ms=event.duration_ms,
            magnitude=event.magnitude,
        )
        if event.fatal:
            engine._on_fatal_fault(event)
        elif event.kind == F.NIC_DEGRADE:
            self._degrade_nic(engine, event, now)
        elif event.kind == F.COPY_STALL:
            copy_engine = engine.cluster.copy_engines[event.target]
            copy_engine.next_free = max(copy_engine.next_free, now) + event.duration_ms
        elif event.kind == F.TASK_ERROR:
            self._armed[event.target] = (
                self._armed.get(event.target, 0) + int(event.magnitude)
            )

    def _degrade_nic(
        self, engine: "PipelineEngine", event: FaultEvent, now: float
    ) -> None:
        links = [
            engine.cluster.forward_links[event.target],
            engine.cluster.backward_links[event.target],
        ]
        originals = [link.bandwidth_bytes_per_ms for link in links]
        for link in links:
            link.bandwidth_bytes_per_ms /= event.magnitude

        def restore() -> None:
            for link, original in zip(links, originals):
                link.bandwidth_bytes_per_ms = original

        handle = engine.sim.schedule(
            now + event.duration_ms,
            restore,
            label=f"nic-restore L{event.target}",
        )
        self._handles.append(handle)

    # ------------------------------------------------------------------
    # transient task errors (the engine polls this at dispatch)
    # ------------------------------------------------------------------
    def take_task_fault(self, stage: int) -> "tuple[int, float] | None":
        """Consume one armed failure for ``stage``.

        Returns ``(attempt, backoff_ms)`` when the dispatch must fail and
        retry, or None when the task proceeds.  Backoff is exponential in
        the number of consecutive failures the stage has absorbed.
        """
        armed = self._armed.get(stage, 0)
        if armed <= 0:
            self._attempts.pop(stage, None)
            return None
        self._armed[stage] = armed - 1
        attempt = self._attempts.get(stage, 0) + 1
        self._attempts[stage] = attempt
        return attempt, self.TASK_RETRY_BASE_MS * (2 ** (attempt - 1))
