"""Fleet-scale chaos: preemption storms across service + serving planes.

A **fleet scenario** co-locates the three tenant classes of a real
supernet-training cluster on one shared
:class:`~repro.service.manager.ClusterManager`:

* an **elastic CSP** training job (consistent cuts mid-stream — shrinks,
  replans and resumes from its carried functional plane);
* a **rigid** non-CSP training job (no cuts — aborted segments restart
  from subnet 0 with exponential backoff, bounded by ``max_restarts``);
* a **serving** tenant (in-flight batches dissolve and retry through the
  bounded batcher).

Then it unleashes a seeded **preemption storm** — a fleet-scoped
:meth:`~repro.ft.faults.FaultSchedule.fleet_from_mtbf` schedule of
``slot_preempt`` / ``node_down`` events — and routes each struck slot to
the plane that owns it (the serving tenant leases the lowest slots
first; the training scheduler reacts to the rest).  Both planes run
their own virtual clocks over the same physical manager state, the
training plane first (its co-tenancy is resolved by the shared lease
ledger, not by clock interleaving).

The **invariant suite** per scenario:

1. the training plane quiesces — every job ends ``done`` or ``failed``
   (a failed job is a *bounded* outcome: restart budget spent, failure
   record in the report, fleet still running);
2. every finished job's digest is **bitwise identical** to a fault-free
   solo run (elastic jobs regardless of how often they were revoked and
   reshaped — the CSP claim under fleet unreliability);
3. **zero leaked leases**: after both planes finish, every physical
   slot is free, no lease is live, no revoked residual is held, no slot
   is still down;
4. no serving request is lost: every record ends ``hit``, ``completed``
   or ``shed`` — never ``pending``;
5. every *admitted, non-shed, never-retried* serving request whose
   lifetime avoids the revocation outage windows meets the latency SLO;
6. both planes' traces validate against the event-schema registry.

Storm draws, arrival processes and both virtual clocks are seeded, so
``fleet_sweep`` over the same config is byte-deterministic — the CI
``chaos-fleet-smoke`` job runs it twice and ``cmp``'s the reports.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines import system_by_name
from repro.errors import ConfigError, ServiceError
from repro.ft.faults import FaultSchedule
from repro.ft.recovery import run_uninterrupted
from repro.obs.events import validate_trace
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.search_space import get_search_space

# NOTE: repro.service and repro.serving import repro.ft.faults at module
# level, and this module is imported by repro.ft.__init__ — so both
# planes are imported lazily inside the functions that build them, or
# whichever of the three packages is imported first would close an
# import cycle.

__all__ = [
    "run_fleet_scenario",
    "fleet_sweep",
    "fleet_report_json",
    "format_fleet_report",
]

_FLEET_KEYS = frozenset(
    {
        "fleet_slots",
        "scenarios",
        "seed",
        "storm_mtbf_fraction",
        "slots_per_node",
        "node_down_weight",
        "preempt_outage_ms",
        "node_outage_ms",
        "quantum",
        "resize_cost_ms",
        "max_restarts",
        "requeue_backoff_ms",
        "serving",
        "jobs",
    }
)


def _build_planes(
    payload: Mapping, fleet_slots: int, serving_telemetry=None
) -> Tuple[ClusterManager, "ServingEngine", JobScheduler]:
    """One co-tenant deployment: shared manager, serving tenant leasing
    the lowest slots, training scheduler over the rest.

    ``serving_telemetry`` optionally arms a
    :class:`~repro.obs.telemetry.TelemetryHub` on the **serving** plane
    (scrapes live on one virtual clock, so a hub watches one plane; the
    shared manager's usage observer still shows it every fleet slot
    transition, including strikes routed to the training plane).
    """
    from repro.service.manager import ClusterManager
    from repro.service.scheduler import JobScheduler, JobSpec
    from repro.serving.frontend import ServingEngine, ServingSpec

    manager = ClusterManager(ClusterSpec(num_gpus=fleet_slots))
    slots_per_node = int(payload.get("slots_per_node", 4))
    serving_spec = ServingSpec.from_payload(
        {**payload["serving"], "total_gpus": fleet_slots}
    )
    serving = ServingEngine(
        serving_spec,
        manager=manager,
        slots_per_node=slots_per_node,
        telemetry=serving_telemetry,
    )
    scheduler = JobScheduler(
        manager,
        quantum=int(payload.get("quantum", 8)),
        resize_cost_ms=float(payload.get("resize_cost_ms", 50.0)),
        max_restarts=int(payload.get("max_restarts", 3)),
        requeue_backoff_ms=float(payload.get("requeue_backoff_ms", 25.0)),
        slots_per_node=slots_per_node,
    )
    for entry in payload["jobs"]:
        scheduler.submit(JobSpec.from_payload(entry))
    return manager, serving, scheduler


def _unfaulted_horizon(payload: Mapping, fleet_slots: int) -> float:
    """The storm horizon: the slower of the two planes' fault-free
    makespans at this fleet size."""
    _manager, serving, scheduler = _build_planes(payload, fleet_slots)
    training = scheduler.run()
    result = serving.run()
    return max(training["makespan_ms"], result.makespan_ms)


def _solo_digest(
    entry: Mapping, solo_gpus: int, cache: Dict
) -> Tuple[Optional[str], Dict]:
    """Fault-free solo baseline for one job config at ``solo_gpus``,
    memoised across scenarios and fleet sizes."""
    key = (json.dumps(entry, sort_keys=True), solo_gpus)
    if key not in cache:
        from repro.service.scheduler import JobSpec

        spec = JobSpec.from_payload(entry)
        space = get_search_space(spec.space)
        if spec.space_overrides:
            space = space.scaled(**dict(spec.space_overrides))
        solo = run_uninterrupted(
            space,
            system_by_name(spec.system, **dict(spec.overrides or {})),
            num_gpus=solo_gpus,
            steps=spec.subnets,
            seed=spec.seed,
            batch=spec.batch,
            functional_batch=spec.functional_batch,
            stream_kind=spec.stream_kind,
        )
        cache[key] = (
            solo.digest,
            {str(sid): loss for sid, loss in sorted(solo.losses.items())},
        )
    return cache[key]


def _check_training(
    payload: Mapping,
    report: Dict,
    fleet_slots: int,
    solo_cache: Dict,
) -> Tuple[List[Dict], List[str]]:
    """Invariant 2: every finished job bitwise-matches its solo run."""
    from repro.service.scheduler import JobSpec

    job_rows: List[Dict] = []
    violations: List[str] = []
    for entry, job in zip(payload["jobs"], report["jobs"]):
        row = {
            "name": job["name"],
            "sync": job["sync"],
            "elastic": job["elastic"],
            "status": job["status"],
            "restarts": job["restarts"],
            "resizes": job["resizes"],
            "preemptions": job["preemptions"],
            "segments": len(job["segments"]),
            "digest_ok": None,
        }
        if job["status"] == "failed":
            if job["failure"] is None:
                violations.append(
                    f"job {job['name']} failed without a failure record"
                )
            job_rows.append(row)
            continue
        if job["status"] != "done":
            violations.append(
                f"job {job['name']} ended {job['status']!r} (not done/failed)"
            )
            job_rows.append(row)
            continue
        spec = JobSpec.from_payload(entry)
        space = get_search_space(spec.space)
        if spec.space_overrides:
            space = space.scaled(**dict(spec.space_overrides))
        solo_gpus = (
            job["segments"][-1]["gpus"]
            if not job["elastic"]
            else min(spec.max_gpus, fleet_slots, space.num_blocks)
        )
        digest, losses = _solo_digest(entry, solo_gpus, solo_cache)
        row["digest_ok"] = digest == job["digest"] and losses == job["losses"]
        if not row["digest_ok"]:
            violations.append(
                f"job {job['name']} diverged from its fault-free solo run "
                f"({job['restarts']} restart(s), {job['resizes']} resize(s))"
            )
        job_rows.append(row)
    return job_rows, violations


def _check_serving(result, slo_ms: float) -> Tuple[Dict, List[str]]:
    """Invariants 4 and 5: no lost requests; admitted non-shed
    never-retried requests outside outage windows meet the SLO."""
    violations: List[str] = []
    lost = [r.request_id for r in result.records if r.outcome == "pending"]
    if lost:
        violations.append(
            f"{len(lost)} serving request(s) lost (still pending at "
            f"quiescence): {lost[:8]}"
        )
    windows = result.outage_windows
    slo_misses = []
    for record in result.records:
        if record.outcome != "completed" or record.retries > 0:
            continue
        if any(
            record.arrival_ms <= end and start <= record.done_ms
            for start, end in windows
        ):
            continue  # latency inflated by a revocation outage
        if record.latency_ms > slo_ms:
            slo_misses.append(record.request_id)
    if slo_misses:
        violations.append(
            f"{len(slo_misses)} admitted request(s) outside outage windows "
            f"missed the {slo_ms:g} ms SLO: {slo_misses[:8]}"
        )
    scenario = result.scenario_report()
    serving_row = {
        "requests": scenario["requests"],
        "completed": scenario["completed"],
        "shed": scenario["shed"],
        "retries": scenario["retries"],
        "retried_completed": scenario["retried"]["completed"],
        "revocations": scenario["revocations"],
        "outage_windows": len(windows),
        "slo_attainment": scenario["slo_attainment"],
        "p99_ms": scenario["latency_ms"]["p99"],
    }
    return serving_row, violations


def run_fleet_scenario(
    payload: Mapping,
    *,
    fleet_slots: int,
    storm_seed: int,
    horizon_ms: float,
    solo_cache: Optional[Dict] = None,
    serving_telemetry=None,
) -> Dict:
    """One storm seed against one fleet size; returns a JSON-stable row
    with the invariant verdicts."""
    solo_cache = solo_cache if solo_cache is not None else {}
    storm = FaultSchedule.fleet_from_mtbf(
        SeedSequenceTree(storm_seed),
        mtbf_ms=max(
            1.0, horizon_ms * float(payload.get("storm_mtbf_fraction", 0.2))
        ),
        horizon_ms=horizon_ms,
        fleet_slots=fleet_slots,
        slots_per_node=int(payload.get("slots_per_node", 4)),
        node_down_weight=float(payload.get("node_down_weight", 0.2)),
        preempt_outage_ms=float(payload.get("preempt_outage_ms", 120.0)),
        node_outage_ms=float(payload.get("node_outage_ms", 300.0)),
        stream_name=f"faults/fleet/{fleet_slots}",
    )
    kind_counts: Dict[str, int] = {}
    for event in storm:
        kind_counts[event.kind] = kind_counts.get(event.kind, 0) + 1

    manager, serving, scheduler = _build_planes(
        payload, fleet_slots, serving_telemetry=serving_telemetry
    )
    serving_slots = frozenset(serving.lease.slots)
    training_slots = frozenset(range(fleet_slots)) - serving_slots
    scheduler.inject_fleet_faults(storm, slots=training_slots)
    serving.inject_fleet_faults(storm, slots=serving_slots)

    row: Dict = {
        "fleet_slots": fleet_slots,
        "storm_seed": storm_seed,
        "storm_events": len(storm),
        "storm_kinds": {k: kind_counts[k] for k in sorted(kind_counts)},
    }
    violations: List[str] = []

    # -- invariant 1: the training plane quiesces ----------------------
    try:
        training = scheduler.run()
    except ServiceError as exc:
        row.update(
            jobs=[],
            serving=None,
            revocations=manager.total_revocations,
            failed_jobs=None,
            violations=[f"training plane did not quiesce: {exc}"],
        )
        return row
    result = serving.run()

    # -- invariant 2: finished jobs bitwise-match solo -----------------
    job_rows, job_violations = _check_training(
        payload, training, fleet_slots, solo_cache
    )
    violations.extend(job_violations)

    # -- invariant 3: zero leaked leases -------------------------------
    if manager.leased_gpus:
        violations.append(
            f"{manager.leased_gpus} GPU(s) still leased at quiescence"
        )
    if manager.residual_slots():
        violations.append(
            f"revoked residual slots never released: "
            f"{list(manager.residual_slots())}"
        )
    if manager.down_slots():
        violations.append(
            f"slots still down at quiescence: {list(manager.down_slots())}"
        )
    if manager.free_slots() != tuple(range(fleet_slots)):
        violations.append(
            f"free pool {list(manager.free_slots())} != all "
            f"{fleet_slots} slots"
        )

    # -- invariants 4 + 5: serving requests ----------------------------
    serving_row, serving_violations = _check_serving(
        result, serving.spec.slo_ms
    )
    violations.extend(serving_violations)

    # -- invariant 6: both traces schema-valid -------------------------
    for plane, trace in (("training", scheduler.trace), ("serving", result.trace)):
        problems = validate_trace(trace)
        if problems:
            violations.append(
                f"{plane} trace schema violations ({len(problems)}): "
                f"{problems[:3]}"
            )

    row.update(
        jobs=job_rows,
        serving=serving_row,
        revocations=manager.total_revocations + serving.revocations,
        failed_jobs=training["failed_jobs"],
        violations=violations,
    )
    return row


def fleet_sweep(payload: Mapping, on_scenario=None) -> Dict:
    """``scenarios`` storm seeds × every fleet size in the config, each
    with the full invariant suite; ``report["ok"]`` is the CI gate."""
    unknown = sorted(set(payload) - _FLEET_KEYS)
    if unknown:
        raise ConfigError(f"unknown fleet config keys: {unknown}")
    if not payload.get("jobs"):
        raise ConfigError('fleet config needs a non-empty "jobs" list')
    if not payload.get("serving"):
        raise ConfigError('fleet config needs a "serving" tenant entry')
    fleets = [int(f) for f in payload.get("fleet_slots", [8])]
    scenarios = int(payload.get("scenarios", 3))
    seed = int(payload.get("seed", 2022))
    if scenarios < 1:
        raise ConfigError(f"scenarios must be >= 1, got {scenarios}")

    solo_cache: Dict = {}
    horizons = {fleet: _unfaulted_horizon(payload, fleet) for fleet in fleets}
    rows: List[Dict] = []
    violations: List[str] = []
    total_revocations = 0
    total_storm_events = 0
    for fleet in fleets:
        for index in range(scenarios):
            row = run_fleet_scenario(
                payload,
                fleet_slots=fleet,
                storm_seed=seed * 100_003 + index,
                horizon_ms=horizons[fleet],
                solo_cache=solo_cache,
            )
            rows.append(row)
            total_storm_events += row["storm_events"]
            if row["revocations"] is not None:
                total_revocations += row["revocations"]
            for violation in row["violations"]:
                violations.append(
                    f"[fleet={fleet} storm_seed={row['storm_seed']}] "
                    f"{violation}"
                )
            if on_scenario is not None:
                on_scenario(row)
    return {
        "schema": 1,
        "seed": seed,
        "fleet_slots": fleets,
        "scenarios_per_fleet": scenarios,
        "total_scenarios": len(rows),
        "total_storm_events": total_storm_events,
        "total_revocations": total_revocations,
        "horizons_ms": {str(f): horizons[f] for f in fleets},
        "scenarios": rows,
        "violations": violations,
        "ok": not violations,
    }


def fleet_report_json(report: Mapping) -> str:
    """Canonical byte-deterministic serialisation of a fleet report."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def format_fleet_report(report: Mapping) -> str:
    """Stable human-readable rendering of a :func:`fleet_sweep` report."""
    lines = [
        f"fleet chaos sweep — {report['scenarios_per_fleet']} storm(s) x "
        f"fleet sizes {report['fleet_slots']} = "
        f"{report['total_scenarios']} scenario(s), "
        f"{report['total_storm_events']} storm event(s), "
        f"{report['total_revocations']} lease revocation(s)",
        "  fleet  storm_seed  events  revoked  failed  "
        "retries  shed  jobs (status/restarts/digest)",
    ]
    for row in report["scenarios"]:
        if row["serving"] is None:
            lines.append(
                f"  {row['fleet_slots']:<6d} {row['storm_seed']:<11d} "
                f"{row['storm_events']:<7d} DID NOT QUIESCE"
            )
            continue
        jobs = " ".join(
            "{name}:{status}/{restarts}/{digest}".format(
                name=job["name"],
                status=job["status"],
                restarts=job["restarts"],
                digest=(
                    "-"
                    if job["digest_ok"] is None
                    else ("OK" if job["digest_ok"] else "DIVERGED")
                ),
            )
            for job in row["jobs"]
        )
        lines.append(
            f"  {row['fleet_slots']:<6d} {row['storm_seed']:<11d} "
            f"{row['storm_events']:<7d} {row['revocations']:<8d} "
            f"{row['failed_jobs']:<7d} {row['serving']['retries']:<8d} "
            f"{row['serving']['shed']:<5d} {jobs}"
        )
    if report["violations"]:
        lines.append(f"  VIOLATIONS ({len(report['violations'])}):")
        for violation in report["violations"]:
            lines.append(f"    {violation}")
    else:
        lines.append(
            "  PASS: every surviving tenant bitwise-identical to its "
            "fault-free solo run, zero leaked leases, admitted serving "
            "requests inside the SLO"
        )
    return "\n".join(lines)
