"""Graceful degradation: health monitoring + deterministic mitigation.

PR 3 made non-fatal faults (``nic_degrade``, ``copy_stall``,
``task_error``) *survivable*; this module makes them *cheap*.  A
:class:`HealthMonitor` consumes the engine's typed trace-event stream —
task dispatches, NIC transfers, fetch stalls — and maintains per-stage
and per-link EWMA estimates with hysteresis, classifying stages as
healthy / straggler, copy engines as nominal / stalled, and links as
nominal / degraded.  Everything is driven by the virtual clock, so
detection is a pure deterministic function of the run.

On a status transition the :class:`DegradationManager` applies
mitigations at safe decision points:

* **adaptive admission control** — shrink the effective in-flight
  window (backpressure) while any *link or copy engine* is unhealthy,
  via ``PipelineEngine.admission_cap`` which the policy admission hooks
  consult (BSP is exempt: its bulk flush barrier owns admission;
  compute stragglers are handled by rebalancing, not backpressure);
* **prefetch throttling** — when a stage's copy engine is stalled,
  suppress speculative predictor prefetches on that stage so demand
  fetches own the copy engine;
* **deterministic straggler rebalancing** — give a persistently slow
  stage a cost *weight*; the next subnet's balanced partition shifts
  layer boundaries away from it (replicas materialise through the
  mirror registry exactly as for any off-home assignment).

Why this is digest-safe: under CSP the final weights are a pure
function of the subnet stream (Definition 1/2) — admission windows,
prefetch cadence and partition shapes change *timing only*.  Every
mitigation lands in ``PipelineResult.mitigation_actions`` and the run
manifest, so ``replay.py`` reproduces the same mitigation sequence
bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as _dataclass_fields, asdict
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import ConfigError

__all__ = [
    "DegradationPolicy",
    "HealthMonitor",
    "DegradationManager",
    "as_manager",
]

#: status labels, per scope
STAGE_HEALTHY, STAGE_STRAGGLER = "healthy", "straggler"
LINK_NOMINAL, LINK_DEGRADED = "nominal", "degraded"
COPY_NOMINAL, COPY_STALLED = "nominal", "stalled"


@dataclass(frozen=True)
class DegradationPolicy:
    """Detection thresholds and mitigation knobs (all deterministic).

    Ratios are relative to the profiled nominal: a stage's *speed ratio*
    is observed task duration over the slice's reference cost (so it
    estimates the stage's effective speed factor and is invariant under
    repartitioning — rebalancing away from a straggler must not make the
    straggler *look* healthy).  A link's *bandwidth ratio* is effective
    transfer bandwidth over the link's nominal bandwidth.  Hysteresis:
    a scope enters the unhealthy status at ``*_enter_*`` and only exits
    at the (stricter) ``*_exit_*`` threshold.
    """

    # -- detection -----------------------------------------------------
    ewma_alpha: float = 0.25
    min_samples: int = 4
    straggler_enter_ratio: float = 1.6
    straggler_exit_ratio: float = 1.25
    #: link thresholds leave headroom below healthy queueing noise: the
    #: effective-bandwidth estimate charges FIFO queueing to the link, so
    #: healthy bursty traffic sits well under ratio 1.0 (measured EWMA
    #: floor ~0.45 at 8 GPUs) while a 4x NIC degrade drives it to ~0.25
    link_enter_ratio: float = 0.3
    link_exit_ratio: float = 0.6
    #: stall thresholds are stall-per-task *relative to the task's
    #: nominal cost* — scale-invariant across GPU counts (absolute ms
    #: thresholds cannot separate a healthy 2-GPU run, whose tasks and
    #: stalls are both big, from a faulted 8-GPU run)
    stall_enter_ratio: float = 0.5
    stall_exit_ratio: float = 0.25
    # -- mitigation ----------------------------------------------------
    admission_control: bool = True
    min_window: int = 2
    window_shrink: int = 2
    prefetch_throttle: bool = True
    rebalance: bool = True
    #: straggler weights snap to multiples of this (stability: tiny EWMA
    #: drift must not produce a new partition every subnet)
    weight_quantum: float = 0.25
    max_weight: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.min_samples < 1:
            raise ConfigError("min_samples must be >= 1")
        if self.straggler_exit_ratio > self.straggler_enter_ratio:
            raise ConfigError("straggler exit ratio must not exceed enter ratio")
        if self.link_exit_ratio < self.link_enter_ratio:
            raise ConfigError("link exit ratio must not undercut enter ratio")
        if self.stall_exit_ratio > self.stall_enter_ratio:
            raise ConfigError("stall exit ratio must not exceed enter ratio")
        if self.min_window < 1:
            raise ConfigError("min_window must be >= 1")
        if self.window_shrink < 0:
            raise ConfigError("window_shrink must be >= 0")
        if self.weight_quantum <= 0:
            raise ConfigError("weight_quantum must be positive")
        if self.max_weight < 1.0:
            raise ConfigError("max_weight must be >= 1")

    # -- serialisation (travels inside replay manifests) ---------------
    def to_payload(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "DegradationPolicy":
        known = {f.name for f in _dataclass_fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"unknown degradation policy keys: {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**payload)


class HealthMonitor:
    """EWMA + hysteresis classifier over the typed trace-event stream.

    Attach :meth:`observe` as a trace listener.  Three independent
    estimators run per scope:

    * ``("stage", s)`` — speed ratio from ``task_dispatch`` (duration
      over the slice's profiled reference cost);
    * ``("link", l)`` — effective-bandwidth ratio from ``nic_transfer``
      (queueing counts against the link: a congested link *is* slow);
    * ``("copy", s)`` — fetch-stall time per task over the stage's
      *mean* nominal task cost (an EWMA of the same horizon — a burst of
      stall in front of one tiny slice must not read as a stalled copy
      engine), mixing a zero sample at every dispatch so cold-start
      stalls decay instead of pinning the estimate high.

    ``on_transition(scope, index, status, metric, reference)`` fires
    exactly on status changes (after ``min_samples`` observations).
    """

    #: kinds the monitor itself (indirectly) emits — skipped to keep the
    #: listener re-entrant under ``record_event`` recursion
    IGNORED_KINDS = frozenset({"health_report", "mitigation_apply", "rebalance"})

    def __init__(
        self,
        policy: DegradationPolicy,
        *,
        slice_cost_fn: Callable[[int, int, str], float],
        link_params_fn: Callable[[int], Tuple[float, float]],
        on_transition: Callable[[str, int, str, float, float], None],
    ) -> None:
        self.policy = policy
        self._slice_cost = slice_cost_fn
        self._link_params = link_params_fn
        self._notify = on_transition
        self._ewma: Dict[Tuple[str, int], Tuple[float, int]] = {}
        self._pending_stall: Dict[int, float] = {}
        self._mean_cost: Dict[int, float] = {}
        self.status: Dict[Tuple[str, int], str] = {}

    # ------------------------------------------------------------------
    def observe(self, event) -> None:
        kind = event.kind
        if kind in self.IGNORED_KINDS:
            return
        if kind == "task_dispatch":
            self._on_task(event)
        elif kind == "fetch_stall":
            stage = event.stage
            self._pending_stall[stage] = self._pending_stall.get(
                stage, 0.0
            ) + float(event.attr("wait_ms", 0.0))
        elif kind == "nic_transfer":
            self._on_transfer(event)

    # ------------------------------------------------------------------
    def _on_task(self, event) -> None:
        stage = event.stage
        attrs = event.attrs_dict
        duration = float(attrs["end"]) - float(attrs["start"])
        nominal = self._slice_cost(stage, event.subnet_id, str(attrs["direction"]))
        stall = self._pending_stall.pop(stage, 0.0)
        if nominal > 0.0:
            self._update("stage", stage, duration / nominal)
            alpha = self.policy.ewma_alpha
            mean = self._mean_cost.get(stage)
            mean = nominal if mean is None else alpha * nominal + (1.0 - alpha) * mean
            self._mean_cost[stage] = mean
            # one (possibly zero) stall sample per dispatch on this stage
            self._update("copy", stage, stall / mean)

    def _on_transfer(self, event) -> None:
        attrs = event.attrs_dict
        link = min(int(attrs["src"]), int(attrs["dst"]))
        nbytes = int(attrs["nbytes"])
        bandwidth, latency = self._link_params(link)
        elapsed = float(attrs["arrive"]) - event.time - latency
        if nbytes <= 0 or elapsed <= 0.0 or bandwidth <= 0.0:
            return
        self._update("link", link, (nbytes / elapsed) / bandwidth)

    # ------------------------------------------------------------------
    def _update(self, scope: str, index: int, sample: float) -> None:
        key = (scope, index)
        ewma, count = self._ewma.get(key, (0.0, 0))
        alpha = self.policy.ewma_alpha
        ewma = sample if count == 0 else alpha * sample + (1.0 - alpha) * ewma
        self._ewma[key] = (ewma, count + 1)
        if count + 1 >= self.policy.min_samples:
            self._classify(scope, index, ewma)

    def estimate(self, scope: str, index: int) -> Optional[float]:
        entry = self._ewma.get((scope, index))
        return entry[0] if entry is not None else None

    def _classify(self, scope: str, index: int, metric: float) -> None:
        policy = self.policy
        if scope == "stage":
            healthy, unhealthy = STAGE_HEALTHY, STAGE_STRAGGLER
            enters = metric >= policy.straggler_enter_ratio
            exits = metric <= policy.straggler_exit_ratio
            reference = 1.0
        elif scope == "link":
            healthy, unhealthy = LINK_NOMINAL, LINK_DEGRADED
            enters = metric <= policy.link_enter_ratio
            exits = metric >= policy.link_exit_ratio
            reference = 1.0
        else:  # copy
            healthy, unhealthy = COPY_NOMINAL, COPY_STALLED
            enters = metric >= policy.stall_enter_ratio
            exits = metric <= policy.stall_exit_ratio
            reference = policy.stall_enter_ratio
        key = (scope, index)
        current = self.status.get(key, healthy)
        if current != unhealthy and enters:
            self.status[key] = unhealthy
            self._notify(scope, index, unhealthy, metric, reference)
        elif current == unhealthy and exits:
            self.status[key] = healthy
            self._notify(scope, index, healthy, metric, reference)


class DegradationManager:
    """Binds a :class:`HealthMonitor` to one engine and applies
    mitigations on its transitions.

    One manager serves one engine run (it accumulates that run's
    ``actions``); recovery drivers build a fresh manager per attempt
    from the same :class:`DegradationPolicy`.
    """

    def __init__(self, policy: Optional[DegradationPolicy] = None) -> None:
        self.policy = policy or DegradationPolicy()
        self.engine = None
        self.monitor: Optional[HealthMonitor] = None
        #: chronological mitigation log — scalar-only dicts, JSON-stable,
        #: compared bitwise by ``verify_replay``
        self.actions: List[Dict[str, object]] = []
        self.stage_weights: Dict[int, float] = {}
        self._unhealthy: Set[Tuple[str, int]] = set()
        self._cap_active = False

    # ------------------------------------------------------------------
    def bind(self, engine) -> None:
        if self.engine is not None:
            raise ConfigError(
                "a DegradationManager serves one engine run; build a fresh "
                "one (same policy) per attempt"
            )
        self.engine = engine
        self.monitor = HealthMonitor(
            self.policy,
            slice_cost_fn=self._nominal_slice_ms,
            link_params_fn=lambda link: engine.cluster.spec.link_parameters(
                link, link + 1
            ),
            on_transition=self._on_transition,
        )
        engine.trace.listeners.append(self.monitor.observe)

    def _nominal_slice_ms(self, stage: int, subnet_id: int, direction: str) -> float:
        """Reference (speed-factor-1) duration of the dispatched slice —
        the denominator that makes the speed ratio partition-invariant."""
        engine = self.engine
        if subnet_id not in engine.runs:
            return 0.0
        total = 0.0
        for layer in engine.stage_layers(subnet_id, stage):
            profile = engine.supernet.profile(layer)
            if direction == "bwd":
                total += profile.bwd_ms_ref
                if engine.config.recompute:
                    total += profile.fwd_ms_ref
            else:
                total += profile.fwd_ms_ref
        return total * engine.supernet.batch_time_scale(engine.batch)

    # ------------------------------------------------------------------
    def partition_weights(self) -> Optional[List[float]]:
        """Per-stage cost weights for the next balanced partition, or
        None while every stage is nominal (the common fast path)."""
        if self.engine is None or not self.stage_weights:
            return None
        weights = [
            self.stage_weights.get(stage, 1.0)
            for stage in range(self.engine.stages)
        ]
        if all(weight == 1.0 for weight in weights):
            return None
        return weights

    # ------------------------------------------------------------------
    def _on_transition(
        self, scope: str, index: int, status: str, metric: float, reference: float
    ) -> None:
        engine = self.engine
        now = engine.sim.now
        engine.trace.record_event(
            "health_report",
            now,
            scope=scope,
            index=index,
            status=status,
            metric=float(metric),
            reference=float(reference),
        )
        key = (scope, index)
        if status in (STAGE_STRAGGLER, LINK_DEGRADED, COPY_STALLED):
            self._unhealthy.add(key)
        else:
            self._unhealthy.discard(key)
        if self.policy.admission_control:
            self._update_admission(now)
        if self.policy.prefetch_throttle and scope == "copy":
            self._set_throttle(index, status == COPY_STALLED, now)
        if self.policy.rebalance and scope == "stage":
            self._set_weight(
                index, metric if status == STAGE_STRAGGLER else 1.0, now
            )

    def _record(
        self, action: str, target: int, value: float, active: bool, now: float
    ) -> None:
        self.actions.append(
            {
                "time_ms": float(now),
                "action": action,
                "target": int(target),
                "value": float(value),
                "active": bool(active),
            }
        )
        self.engine.trace.record_event(
            "mitigation_apply",
            now,
            action=action,
            target=int(target),
            value=float(value),
            active=bool(active),
        )

    # -- (a) adaptive admission control --------------------------------
    def _update_admission(self, now: float) -> None:
        engine = self.engine
        # Backpressure targets transient I/O contention (degraded links,
        # stalled copy engines): fewer in-flight subnets means less
        # traffic on the sick resource.  A compute straggler is NOT a
        # reason to cap admission — rebalancing fixes it, and shrinking
        # the window would just starve the healthy stages (measured:
        # capping on straggler transitions costs 1.5-4% makespan).
        want = any(scope != "stage" for scope, _ in self._unhealthy)
        if want and not self._cap_active:
            base = engine.policy.window
            cap = max(self.policy.min_window, base - self.policy.window_shrink)
            engine.admission_cap = cap
            self._cap_active = True
            self._record("admission_cap", -1, float(cap), True, now)
        elif not want and self._cap_active:
            engine.admission_cap = None
            self._cap_active = False
            self._record("admission_cap", -1, 0.0, False, now)

    # -- (b) prefetch throttling ---------------------------------------
    def _set_throttle(self, stage: int, throttled: bool, now: float) -> None:
        contexts = self.engine.contexts
        if contexts is None or not (0 <= stage < len(contexts)):
            return
        if contexts[stage].throttled == throttled:
            return
        contexts[stage].throttled = throttled
        self._record(
            "prefetch_throttle", stage, 1.0 if throttled else 0.0, throttled, now
        )

    # -- (c) deterministic straggler rebalancing -----------------------
    def _set_weight(self, stage: int, weight: float, now: float) -> None:
        quantum = self.policy.weight_quantum
        snapped = round(weight / quantum) * quantum
        snapped = min(self.policy.max_weight, max(1.0, snapped))
        if self.stage_weights.get(stage, 1.0) == snapped:
            return
        self.stage_weights[stage] = snapped
        self.engine.trace.record_event(
            "rebalance", now, stage=stage, weight=snapped
        )
        self._record("rebalance", stage, snapped, snapped != 1.0, now)


def as_manager(value) -> Optional[DegradationManager]:
    """Coerce the engine/driver ``degradation=`` argument.

    Accepts None (disabled), a manager, a policy, ``True`` (defaults) or
    a policy payload dict (replay manifests).
    """
    if value is None:
        return None
    if isinstance(value, DegradationManager):
        return value
    if isinstance(value, DegradationPolicy):
        return DegradationManager(value)
    if value is True:
        return DegradationManager()
    if isinstance(value, Mapping):
        return DegradationManager(DegradationPolicy.from_payload(value))
    raise ConfigError(f"cannot build a DegradationManager from {value!r}")
