"""Randomized robustness sweeps ("chaos testing") for degraded-mode runs.

A chaos scenario draws a seeded schedule of **non-fatal** faults
(``nic_degrade``, ``copy_stall``, ``task_error``) over a run's horizon,
executes the run with the degradation manager active, and checks an
invariant suite against the unfaulted CSP baseline:

1. the run completes — no deadlock, every subnet trained;
2. the loss digest is **bitwise identical** to the unfaulted baseline
   (the paper's reproducibility claim extended to adaptive mitigation:
   timing perturbations, admission changes, prefetch throttling and
   repartitioning must not change a single bit);
3. per-stage losses match the baseline exactly;
4. the trace passes :func:`repro.obs.events.validate_trace` (no event
   emitted under fault pressure may violate its schema);
5. bubble attribution still sums to the bubble ratio (1e-9);
6. the per-GPU parameter cache never grows past the oversubscription
   margin over its capacity *or the unfaulted run's own peak* —
   whichever is larger (block granularity floors the working set, so at
   high GPU counts even a fault-free run lives above raw capacity).

Everything is seeded and driven by the virtual clock, so a failing
scenario is a *repro case*, not a flake: re-running the same
``(seed, fault_seed, gpus)`` triple replays it exactly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.errors import DeadlockError
from repro.ft.faults import (
    COPY_STALL,
    NIC_DEGRADE,
    TASK_ERROR,
    FaultSchedule,
)
from repro.ft.injector import FaultInjector
from repro.ft.recovery import run_uninterrupted
from repro.obs.events import validate_trace
from repro.obs.summary import run_summary
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import SearchSpace
from repro.supernet.supernet import Supernet

__all__ = [
    "NONFATAL_KINDS",
    "BaselineSummary",
    "chaos_invariants",
    "run_chaos_scenario",
    "chaos_sweep",
    "format_chaos_report",
]

#: the degraded-mode fault kinds a chaos sweep draws from
NONFATAL_KINDS = (NIC_DEGRADE, COPY_STALL, TASK_ERROR)

#: oversubscription margin on the cache-capacity invariant: the engine
#: tolerates transient oversubscription up to its OOM threshold (1.5)
#: and a single working set may legitimately exceed the cache, so the
#: invariant flags only runaway growth beyond this factor.
MEM_CAP_FACTOR = 2.0

#: bubble attribution must reproduce the bubble ratio to this tolerance
ATTRIBUTION_TOLERANCE = 1e-9


def _cache_capacity(
    space: SearchSpace, config: SystemConfig, num_gpus: int
) -> Optional[int]:
    """The per-stage cache capacity the engine would build (bytes), or
    None for full-context systems."""
    if config.context != "cached":
        return None
    share = Supernet(space).expected_subnet_param_count() * 4 / num_gpus
    return int(config.cache_subnets * share)


def chaos_invariants(
    result,
    baseline,
    *,
    steps: int,
    capacity_bytes: Optional[int] = None,
    mem_cap_factor: float = MEM_CAP_FACTOR,
) -> List[str]:
    """The invariant suite; returns human-readable violations (empty =
    the scenario holds)."""
    violations: List[str] = []
    if result.interrupted:
        violations.append(
            f"run interrupted by {result.interrupt_kind!r} — non-fatal "
            f"schedules must never halt the run"
        )
    if result.subnets_completed != steps:
        violations.append(
            f"completed {result.subnets_completed}/{steps} subnets"
        )
    if result.digest != baseline.digest:
        violations.append(
            f"digest diverged: {result.digest} != baseline {baseline.digest}"
        )
    if result.losses != baseline.losses:
        diverged = sorted(
            sid
            for sid in set(result.losses) | set(baseline.losses)
            if result.losses.get(sid) != baseline.losses.get(sid)
        )
        violations.append(f"losses diverged at subnets {diverged[:8]}")
    problems = validate_trace(result.trace)
    if problems:
        violations.append(
            f"trace schema violations ({len(problems)}): {problems[:3]}"
        )
    summary = run_summary(result)
    attributed = sum(summary["bubble_attribution"].values())
    if abs(attributed - summary["bubble_ratio"]) > ATTRIBUTION_TOLERANCE:
        violations.append(
            f"bubble attribution {attributed!r} != "
            f"bubble ratio {summary['bubble_ratio']!r}"
        )
    if capacity_bytes and result.peak_cache_bytes is not None:
        # a single subnet's working set may exceed the cache (the engine
        # runs oversubscribed rather than deadlock), and with few blocks
        # per stage the unfaulted run itself can sit above raw capacity
        # — so the allowance anchors on whichever is larger
        baseline_peak = getattr(baseline, "peak_cache_bytes", None) or 0
        allowance = max(capacity_bytes, baseline_peak) * mem_cap_factor
        if result.peak_cache_bytes > allowance:
            violations.append(
                f"peak cache {result.peak_cache_bytes} bytes exceeds "
                f"{mem_cap_factor}x max(capacity {capacity_bytes}, "
                f"baseline peak {baseline_peak}) bytes"
            )
    return violations


class BaselineSummary(NamedTuple):
    """The slice of an unfaulted run the invariant suite actually reads.

    The full run result drags the trace and engine state along — too
    heavy (and unnecessary) to ship to worker processes.  Every
    ``baseline`` consumer in this module reads only these four fields,
    so the sharded sweep sends this summary over the process boundary
    and the serial sweep's reports stay byte-identical.
    """

    digest: str
    losses: Dict[int, float]
    makespan_ms: float
    peak_cache_bytes: Optional[int]

    @classmethod
    def from_result(cls, result) -> "BaselineSummary":
        return cls(
            digest=result.digest,
            losses=result.losses,
            makespan_ms=result.makespan_ms,
            peak_cache_bytes=result.peak_cache_bytes,
        )


def run_chaos_scenario(
    space: SearchSpace,
    config: SystemConfig,
    *,
    baseline,
    num_gpus: int,
    steps: int,
    seed: int,
    fault_seed: int,
    mtbf_fraction: float = 0.1,
    stall_ms: float = 20.0,
    nic_slowdown: float = 4.0,
    degradation=True,
    batch: Optional[int] = None,
    functional_batch: int = 8,
    stream_name: str = "chaos",
) -> Dict[str, object]:
    """One seeded scenario: draw non-fatal faults over the baseline's
    horizon, run with mitigation, check every invariant.

    ``mtbf_fraction`` scales the fault rate to the run: the mean time
    between faults is that fraction of the unfaulted makespan, so a
    sweep stays equally hostile across GPU counts and spaces.
    """
    mtbf_ms = max(1.0, baseline.makespan_ms * mtbf_fraction)
    schedule = FaultSchedule.from_mtbf(
        SeedSequenceTree(fault_seed),
        mtbf_ms=mtbf_ms,
        horizon_ms=baseline.makespan_ms,
        num_gpus=num_gpus,
        kinds=NONFATAL_KINDS,
        nic_slowdown=nic_slowdown,
        stall_ms=stall_ms,
        stream_name=stream_name,
    )
    kind_counts: Dict[str, int] = {}
    for event in schedule:
        kind_counts[event.kind] = kind_counts.get(event.kind, 0) + 1
    scenario: Dict[str, object] = {
        "fault_seed": fault_seed,
        "num_gpus": num_gpus,
        "faults": len(schedule),
        "fault_kinds": {kind: kind_counts[kind] for kind in sorted(kind_counts)},
    }
    try:
        result = run_uninterrupted(
            space,
            config,
            num_gpus=num_gpus,
            steps=steps,
            seed=seed,
            batch=batch,
            functional_batch=functional_batch,
            faults=FaultInjector(schedule),
            degradation=degradation,
        )
    except DeadlockError as exc:
        scenario.update(
            completed=0,
            digest_ok=False,
            mitigations=0,
            task_retries=0,
            makespan_ms=0.0,
            violations=[f"deadlock: {exc}"],
        )
        return scenario
    violations = chaos_invariants(
        result,
        baseline,
        steps=steps,
        capacity_bytes=_cache_capacity(space, config, num_gpus),
    )
    scenario.update(
        completed=result.subnets_completed,
        digest_ok=result.digest == baseline.digest,
        mitigations=len(result.mitigation_actions),
        task_retries=result.task_retries,
        makespan_ms=result.makespan_ms,
        violations=violations,
    )
    return scenario


def _baseline_worker(task: Tuple) -> BaselineSummary:
    """Process-pool phase 1: one GPU count's unfaulted baseline."""
    space, config, kwargs = task
    return BaselineSummary.from_result(
        run_uninterrupted(space, config, **kwargs)
    )


def _scenario_worker(task: Tuple) -> Dict[str, object]:
    """Process-pool phase 2: one seeded fault scenario."""
    space, config, baseline, kwargs = task
    return run_chaos_scenario(space, config, baseline=baseline, **kwargs)


def chaos_sweep(
    space: SearchSpace,
    config: SystemConfig,
    *,
    scenarios: int,
    gpus: Sequence[int] = (2, 4, 8),
    steps: int,
    seed: int,
    mtbf_fraction: float = 0.1,
    stall_ms: float = 20.0,
    nic_slowdown: float = 4.0,
    degradation=True,
    batch: Optional[int] = None,
    functional_batch: int = 8,
    on_scenario: Optional[Callable[[Dict[str, object]], None]] = None,
    jobs: int = 1,
) -> Dict[str, object]:
    """``scenarios`` seeded fault schedules × every GPU count, each run
    against that GPU count's unfaulted baseline.

    Returns a JSON-stable report; ``report["ok"]`` is the single gate a
    CI job needs.

    ``jobs > 1`` shards the sweep over a process pool: phase 1 runs the
    per-GPU baselines concurrently, phase 2 runs every ``(gpus, index)``
    scenario concurrently, and the parent merges results in the serial
    loop's ``(gpus, index)`` order — the report is **byte-identical** to
    a ``jobs=1`` run (every run is virtual-clock deterministic; only
    wall-clock completion order varies, and the merge ignores it).
    ``on_scenario`` fires in merged order, in the parent.
    """

    def scenario_kwargs(num_gpus: int, index: int) -> Dict[str, object]:
        return dict(
            num_gpus=num_gpus,
            steps=steps,
            seed=seed,
            fault_seed=seed * 100_003 + index,
            mtbf_fraction=mtbf_fraction,
            stall_ms=stall_ms,
            nic_slowdown=nic_slowdown,
            degradation=degradation,
            batch=batch,
            functional_batch=functional_batch,
            stream_name=f"chaos/{num_gpus}gpu/{index}",
        )

    pairs = [(g, i) for g in gpus for i in range(scenarios)]
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        baseline_kwargs = dict(
            steps=steps, seed=seed, batch=batch,
            functional_batch=functional_batch,
        )
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            baseline_futures = {
                g: pool.submit(
                    _baseline_worker,
                    (space, config, dict(baseline_kwargs, num_gpus=g)),
                )
                for g in gpus
            }
            baselines = {g: f.result() for g, f in baseline_futures.items()}
            scenario_futures = {
                (g, i): pool.submit(
                    _scenario_worker,
                    (space, config, baselines[g], scenario_kwargs(g, i)),
                )
                for g, i in pairs
            }
            ordered = [scenario_futures[pair].result() for pair in pairs]
    else:
        baselines = {}
        ordered = []
        for num_gpus, index in pairs:
            if num_gpus not in baselines:
                baselines[num_gpus] = BaselineSummary.from_result(
                    run_uninterrupted(
                        space,
                        config,
                        num_gpus=num_gpus,
                        steps=steps,
                        seed=seed,
                        batch=batch,
                        functional_batch=functional_batch,
                    )
                )
            ordered.append(
                run_chaos_scenario(
                    space,
                    config,
                    baseline=baselines[num_gpus],
                    **scenario_kwargs(num_gpus, index),
                )
            )

    rows: List[Dict[str, object]] = []
    violations: List[str] = []
    total_faults = 0
    total_mitigations = 0
    for (num_gpus, index), scenario in zip(pairs, ordered):
        rows.append(scenario)
        total_faults += scenario["faults"]
        total_mitigations += scenario["mitigations"]
        for violation in scenario["violations"]:
            violations.append(
                f"[gpus={num_gpus} fault_seed={scenario['fault_seed']}] "
                f"{violation}"
            )
        if on_scenario is not None:
            on_scenario(scenario)
    return {
        "schema": 1,
        "system": config.name,
        "space": space.name,
        "steps": steps,
        "seed": seed,
        "scenarios_per_gpu": scenarios,
        "gpus": list(gpus),
        "total_scenarios": len(rows),
        "total_faults": total_faults,
        "total_mitigations": total_mitigations,
        "scenarios": rows,
        "violations": violations,
        "ok": not violations,
    }


def format_chaos_report(report: Dict[str, object]) -> str:
    """Stable human-readable rendering of a :func:`chaos_sweep` report."""
    lines = [
        "chaos sweep — {system} on {space}, {steps} subnets, seed {seed}".format(
            **report
        ),
        f"  {report['scenarios_per_gpu']} scenarios x GPUs {report['gpus']}"
        f" = {report['total_scenarios']} runs, "
        f"{report['total_faults']} faults injected, "
        f"{report['total_mitigations']} mitigations applied",
        "  gpus  fault_seed  faults  completed  digest  mitig  makespan_ms",
    ]
    for row in report["scenarios"]:
        digest = "OK" if row["digest_ok"] else "DIVERGED"
        lines.append(
            f"  {row['num_gpus']:<5d} {row['fault_seed']:<11d} "
            f"{row['faults']:<7d} {row['completed']:<10d} {digest:<7s} "
            f"{row['mitigations']:<6d} {row['makespan_ms']:.1f}"
        )
    if report["violations"]:
        lines.append(f"  VIOLATIONS ({len(report['violations'])}):")
        for violation in report["violations"]:
            lines.append(f"    {violation}")
    else:
        lines.append(
            "  PASS: all scenarios completed with digests bitwise-identical "
            "to the unfaulted baseline; zero invariant violations"
        )
    return "\n".join(lines)
