"""Consistent-cut checkpointing driven by the CSP frontier.

A checkpoint at cut ``x`` must capture *exactly* the parameter state a
sequential run would have after subnets ``< x`` — every WRITE with
sequence ID below ``x`` applied, no WRITE at or above ``x`` applied
(Definition 1's prefix state).  The pipeline never pauses at ``x``:
subnets ``>= x`` are already in flight and committing while earlier ones
drain, so a naive "snapshot the store when subnet ``x-1`` completes" is
inconsistent.

The manager instead keeps an **undo log** per open cut.  Every commit is
observed *before* it lands: for a write by subnet ``s`` to layer ``L``
and each open cut ``x <= s`` that has no entry for ``L`` yet, the current
(pre-write) value of ``L`` — and the optimizer velocity behind it — is
recorded.  Under CSP, writes to any single layer occur in subnet order
(that is the causal-order invariant), so the pre-image at the *first*
write by any subnet ``>= x`` equals the post-``<x`` state exactly.  When
the completion frontier reaches ``x``, the cut materialises: current
store overlaid with the cut's undo entries, serialised in the same
``.npz`` layout :meth:`ParameterStore.save` uses.

Under ASP the same construction is **silently wrong** — per-layer writes
are not subnet-ordered, so the first ``>= x`` write may land *between*
two ``< x`` writes and the recorded pre-image is not a prefix state.
Recovery from such a checkpoint diverges from the uninterrupted run.
That asymmetry is measured, not asserted: the recovery tests show CSP
restoring bitwise-identical digests while ASP does not.

Alongside parameters and velocity, a checkpoint records the stream
cursor (= the cut: the next subnet ID to train) and the RNG state of
every cached named stream (:meth:`SeedSequenceTree.snapshot_state`), so
a restart rebuilds the complete mutable state of the functional plane.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.nn.parameter_store import LayerId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engines.functional_plane import FunctionalPlane
    from repro.engines.pipeline import PipelineEngine

__all__ = ["Checkpoint", "CheckpointManager", "restore_checkpoint"]

_Params = Dict[str, np.ndarray]


def _snapshot_digest(params: Dict[LayerId, _Params]) -> str:
    """SHA-256 over a parameter snapshot, canonical order — the same
    construction as :meth:`ParameterStore.digest`, so a cut's digest is
    directly comparable to a store restricted to the same layers."""
    hasher = hashlib.sha256()
    for layer in sorted(params):
        hasher.update(repr(layer).encode())
        for name in sorted(params[layer]):
            hasher.update(name.encode())
            hasher.update(np.ascontiguousarray(params[layer][name]).tobytes())
    return hasher.hexdigest()


@dataclass
class Checkpoint:
    """One committed consistent cut on disk."""

    cut: int
    directory: Path
    time_ms: float  # global virtual time of the commit
    digest: str
    num_layers: int
    nbytes: int
    rng_state: Optional[Dict[str, object]] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def params_path(self) -> Path:
        return self.directory / "params.npz"

    @property
    def velocity_path(self) -> Path:
        return self.directory / "velocity.npz"

    @property
    def meta_path(self) -> Path:
        return self.directory / "meta.json"

    # ------------------------------------------------------------------
    def save_meta(self) -> None:
        payload = {
            "cut": self.cut,
            "time_ms": self.time_ms,
            "digest": self.digest,
            "num_layers": self.num_layers,
            "nbytes": self.nbytes,
            "rng_state": self.rng_state,
            "meta": self.meta,
        }
        self.meta_path.write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "Checkpoint":
        directory = Path(directory)
        payload = json.loads((directory / "meta.json").read_text())
        return cls(
            cut=payload["cut"],
            directory=directory,
            time_ms=payload["time_ms"],
            digest=payload["digest"],
            num_layers=payload["num_layers"],
            nbytes=payload["nbytes"],
            rng_state=payload.get("rng_state"),
            meta=payload.get("meta", {}),
        )

    # ------------------------------------------------------------------
    def restore(self, plane: "FunctionalPlane") -> None:
        """Load the cut's parameters and optimizer velocity into a fresh
        functional plane, and resume its cached RNG streams."""
        velocity = self.velocity_path if self.velocity_path.exists() else None
        plane.load_checkpoint(self.params_path, velocity)
        if self.rng_state is not None:
            state = _intify_rng_state(self.rng_state)
            plane.seeds.restore_state(state)


def _intify_rng_state(state: Dict[str, object]) -> Dict[str, object]:
    """JSON round-trips PCG64 state ints fine, but nested dict values may
    arrive as plain dicts — normalise recursively (ints stay ints)."""
    return json.loads(json.dumps(state))


def restore_checkpoint(
    directory: Union[str, Path], plane: "FunctionalPlane"
) -> Checkpoint:
    """Load the checkpoint stored at ``directory`` into ``plane``."""
    checkpoint = Checkpoint.load(directory)
    checkpoint.restore(plane)
    return checkpoint


class CheckpointManager:
    """Observes commits, keeps per-cut undo logs, materialises cuts.

    One manager serves one engine attempt over stream ids
    ``[base, end)``; cut points are the absolute multiples of
    ``interval`` strictly inside that range (so checkpoints from
    different attempts of the same run line up on the same sequence
    IDs).
    """

    def __init__(
        self,
        plane: "FunctionalPlane",
        directory: Union[str, Path],
        interval: int,
        base: int,
        end: int,
        time_offset: float = 0.0,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        if interval < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {interval}")
        self.plane = plane
        self.directory = Path(directory)
        self.interval = interval
        self.base = base
        self.end = end
        self.time_offset = time_offset
        self.meta = dict(meta or {})
        first = ((base // interval) + 1) * interval
        #: open cuts, ascending; a cut leaves when it materialises
        self._pending: List[int] = list(range(first, end, interval))
        #: per-cut undo log: layer -> pre-image params (None = the layer
        #: did not exist before the first >= cut write; omit on restore,
        #: factory init recreates it bitwise)
        self._undo_params: Dict[int, Dict[LayerId, Optional[_Params]]] = {
            cut: {} for cut in self._pending
        }
        #: per-cut velocity pre-images, keyed (layer, name); None = no
        #: velocity existed (omit; a fresh optimizer starts from zeros)
        self._undo_velocity: Dict[
            int, Dict[Tuple[LayerId, str], Optional[np.ndarray]]
        ] = {cut: {} for cut in self._pending}
        self._completed: set = set()
        self._frontier = base
        self.commits: List[Checkpoint] = []
        self.engine: "PipelineEngine | None" = None

    # ------------------------------------------------------------------
    def bind(self, engine: "PipelineEngine") -> None:
        self.engine = engine

    @property
    def pending_cuts(self) -> List[int]:
        return list(self._pending)

    def latest(self) -> Optional[Checkpoint]:
        return self.commits[-1] if self.commits else None

    # ------------------------------------------------------------------
    # the undo log: called by the engine before every commit
    # ------------------------------------------------------------------
    def observe_updates(self, updates) -> None:
        """Record pre-images for every open cut the batch crosses.

        Must run *before* the functional plane applies ``updates`` — the
        whole point is capturing the state the write is about to clobber.
        """
        if not self._pending:
            return
        store = self.plane.store
        velocity = getattr(self.plane.optimizer, "_velocity", None)
        for update in updates:
            subnet_id = update.subnet_id
            for cut in self._pending:
                if cut > subnet_id:
                    break  # ascending: later cuts contain this write
                undo_p = self._undo_params[cut]
                if update.layer in undo_p:
                    continue  # only the first >= cut write matters
                if update.layer in store:
                    current = store.materialize(update.layer)
                    undo_p[update.layer] = {
                        name: array.copy() for name, array in current.items()
                    }
                    if velocity is not None:
                        undo_v = self._undo_velocity[cut]
                        for name in update.grads:
                            key = (update.layer, name)
                            existing = velocity.get(key)
                            undo_v[key] = (
                                existing.copy() if existing is not None else None
                            )
                else:
                    undo_p[update.layer] = None

    # ------------------------------------------------------------------
    # cut materialisation: called by the engine on subnet completion
    # ------------------------------------------------------------------
    def on_subnet_complete(self, subnet_id: int, now: float) -> None:
        self._completed.add(subnet_id)
        while self._frontier in self._completed:
            self._completed.discard(self._frontier)
            self._frontier += 1
        while self._pending and self._pending[0] <= self._frontier:
            self._materialize(self._pending.pop(0), now)

    def _materialize(self, cut: int, now: float) -> None:
        trace = self.engine.trace if self.engine is not None else None
        if trace is not None:
            trace.record_event("checkpoint_begin", now, cut=cut)

        store = self.plane.store
        undo_p = self._undo_params.pop(cut)
        undo_v = self._undo_velocity.pop(cut)

        params: Dict[LayerId, _Params] = {}
        for layer in store.materialized_layers:
            if layer in undo_p:
                pre = undo_p[layer]
                if pre is None:
                    continue  # born after the cut: factory init restores it
                params[layer] = pre
            else:
                current = store.materialize(layer)
                params[layer] = {
                    name: array.copy() for name, array in current.items()
                }

        velocity_state = getattr(self.plane.optimizer, "_velocity", None) or {}
        velocity: Dict[Tuple[LayerId, str], np.ndarray] = {}
        for key, array in velocity_state.items():
            layer, _name = key
            if key in undo_v:
                pre = undo_v[key]
                if pre is None:
                    continue  # no velocity existed before the cut
                velocity[key] = pre
            elif layer in undo_p and undo_p[layer] is None:
                continue  # the whole layer postdates the cut
            else:
                velocity[key] = array.copy()

        directory = self.directory / f"ckpt_{cut:06d}"
        directory.mkdir(parents=True, exist_ok=True)
        arrays = {
            f"b{layer[0]}_c{layer[1]}/{name}": array
            for layer, layer_params in params.items()
            for name, array in layer_params.items()
        }
        np.savez_compressed(directory / "params.npz", **arrays)
        if velocity:
            np.savez_compressed(
                directory / "velocity.npz",
                **{
                    f"b{layer[0]}_c{layer[1]}/{name}": array
                    for (layer, name), array in velocity.items()
                },
            )
        nbytes = sum(a.nbytes for a in arrays.values()) + sum(
            a.nbytes for a in velocity.values()
        )
        checkpoint = Checkpoint(
            cut=cut,
            directory=directory,
            time_ms=now + self.time_offset,
            digest=_snapshot_digest(params),
            num_layers=len(params),
            nbytes=nbytes,
            rng_state=self.plane.seeds.snapshot_state(),
            meta=dict(self.meta),
        )
        checkpoint.save_meta()
        self.commits.append(checkpoint)
        if trace is not None:
            trace.record_event(
                "checkpoint_commit",
                now,
                cut=cut,
                layers=len(params),
                nbytes=nbytes,
            )
