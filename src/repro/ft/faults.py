"""Deterministic fault schedules.

A fault schedule is *data*, not chance: an ordered list of
:class:`FaultEvent` with explicit trigger times on the **global** virtual
clock (virtual milliseconds accumulated across restart attempts, so one
schedule spans a whole crash-recover-resume history).  Schedules come
from two places:

* hand-written JSON (tests, the ``examples/faults_demo.json`` demo, and
  replay manifests — the schedule is part of a faulted run's identity);
* :meth:`FaultSchedule.from_mtbf` — seeded sampling from an exponential
  inter-arrival model, for availability sweeps.  The draw goes through
  :class:`~repro.seeding.SeedSequenceTree`, so a sweep is as reproducible
  as the training it perturbs.

Fault kinds and their targets:

==============  =====================  =======================================
kind            target                 effect
==============  =====================  =======================================
``gpu_crash``   GPU (stage) index      fail-stop: the run halts, state on the
                                       device is lost, recovery restarts from
                                       the latest consistent checkpoint
``host_crash``  host index             fail-stop of every GPU on the host
``nic_degrade`` link index (stage i    the stage i↔i+1 links run at
                → i+1)                 ``bandwidth / magnitude`` for
                                       ``duration_ms`` (degraded mode — the
                                       run continues, slower)
``copy_stall``  GPU (stage) index      the stage's PCIe copy engine is busy
                                       for an extra ``duration_ms`` (models a
                                       host paging storm / ECC scrub)
``task_error``  GPU (stage) index      the next ``magnitude`` tasks dispatched
                                       on the stage fail transiently and are
                                       retried with exponential backoff
==============  =====================  =======================================

**Fleet-scoped kinds** (``FLEET_KINDS``) target the *service plane*, not
one engine attempt: their ``target`` is a physical fleet slot (or node)
index owned by a :class:`~repro.service.manager.ClusterManager`, and the
engine-level :class:`~repro.ft.injector.FaultInjector` never binds them
(an engine has stages, not fleet slots).

================  ===================  =====================================
kind              target               effect
================  ===================  =====================================
``slot_preempt``  fleet slot index     the slot is revoked (spot preemption)
                                       for ``duration_ms``; the owning lease
                                       is invalidated mid-segment
``node_down``     node index           every slot of the contiguous node
                                       group ``[target * slots_per_node,
                                       (target + 1) * slots_per_node)`` is
                                       revoked for ``duration_ms``
================  ===================  =====================================

:meth:`FaultSchedule.fleet_from_mtbf` draws seeded preemption *storms*
of these kinds over a fleet — the generator behind
``naspipe chaos-fleet``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields as _dataclass_fields
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.seeding import SeedSequenceTree

__all__ = [
    "FAULT_KINDS",
    "FATAL_KINDS",
    "FLEET_KINDS",
    "ALL_KINDS",
    "FaultEvent",
    "FaultSchedule",
]

GPU_CRASH = "gpu_crash"
HOST_CRASH = "host_crash"
NIC_DEGRADE = "nic_degrade"
COPY_STALL = "copy_stall"
TASK_ERROR = "task_error"
SLOT_PREEMPT = "slot_preempt"
NODE_DOWN = "node_down"

#: every fault kind the engine-level injector understands
FAULT_KINDS = (GPU_CRASH, HOST_CRASH, NIC_DEGRADE, COPY_STALL, TASK_ERROR)

#: fleet-scoped kinds: handled by the service/serving planes (lease
#: revocation), never bound into a single engine attempt
FLEET_KINDS = (SLOT_PREEMPT, NODE_DOWN)

#: every valid fault kind, engine-scoped and fleet-scoped
ALL_KINDS = FAULT_KINDS + FLEET_KINDS

#: fail-stop kinds: the run halts and recovery takes over
FATAL_KINDS = frozenset({GPU_CRASH, HOST_CRASH})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    ``time_ms`` is on the global virtual clock (cumulative across restart
    attempts); ``target`` is a GPU index, host index or link index
    depending on ``kind`` (see the module table); ``duration_ms`` and
    ``magnitude`` are kind-specific knobs.
    """

    kind: str
    time_ms: float
    target: int = 0
    duration_ms: float = 0.0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(ALL_KINDS)}"
            )
        if self.time_ms < 0:
            raise ConfigError(f"fault time must be >= 0, got {self.time_ms}")
        if self.target < 0:
            raise ConfigError(f"fault target must be >= 0, got {self.target}")
        if self.duration_ms < 0:
            raise ConfigError("fault duration must be >= 0")
        if self.kind == NIC_DEGRADE and self.magnitude <= 1.0:
            raise ConfigError(
                "nic_degrade magnitude is a slowdown factor and must be > 1"
            )
        if self.kind == TASK_ERROR and int(self.magnitude) < 1:
            raise ConfigError(
                "task_error magnitude is a failure count and must be >= 1"
            )
        if self.kind in FLEET_KINDS and self.duration_ms <= 0:
            raise ConfigError(
                f"{self.kind} needs duration_ms > 0: a revoked slot must "
                "come back (permanent fleet shrinkage is a config change, "
                "not a fault)"
            )

    @property
    def fatal(self) -> bool:
        return self.kind in FATAL_KINDS

    def to_payload(self) -> Dict[str, object]:
        return asdict(self)


class FaultSchedule:
    """An ordered, validated collection of :class:`FaultEvent`."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.time_ms, e.kind, e.target)
        )
        self._check_nic_overlaps()

    def _check_nic_overlaps(self) -> None:
        """Reject overlapping ``nic_degrade`` windows on the same link.

        The injector divides the link bandwidth at fire time and
        schedules a restore of the value it *saved*; a second window
        opening inside the first would save the already-degraded
        bandwidth and restore the link to a permanently slow state.
        """
        open_until: Dict[int, Tuple[float, int]] = {}
        for index, event in enumerate(self.events):
            if event.kind != NIC_DEGRADE:
                continue
            previous = open_until.get(event.target)
            if previous is not None and event.time_ms < previous[0]:
                raise ConfigError(
                    f"fault event {index}: nic_degrade on link "
                    f"{event.target} at t={event.time_ms} overlaps the "
                    f"window opened by event {previous[1]} (open until "
                    f"t={previous[0]})"
                )
            open_until[event.target] = (
                event.time_ms + event.duration_ms,
                index,
            )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def fatal_events(self) -> List[FaultEvent]:
        return [event for event in self.events if event.fatal]

    # ------------------------------------------------------------------
    # serialisation — schedules travel inside replay manifests
    # ------------------------------------------------------------------
    def to_payload(self) -> List[Dict[str, object]]:
        return [event.to_payload() for event in self.events]

    @classmethod
    def from_payload(
        cls, payload: Sequence[Dict[str, object]]
    ) -> "FaultSchedule":
        known = {f.name for f in _dataclass_fields(FaultEvent)}
        events: List[FaultEvent] = []
        for index, entry in enumerate(payload):
            unknown = sorted(set(entry) - known)
            if unknown:
                raise ConfigError(
                    f"fault event {index}: unknown keys {unknown}; "
                    f"expected a subset of {sorted(known)}"
                )
            try:
                events.append(FaultEvent(**entry))
            except ConfigError as exc:
                raise ConfigError(f"fault event {index}: {exc}") from None
        return cls(events)

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_payload(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultSchedule":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------
    # seeded sampling — the availability-sweep generator
    # ------------------------------------------------------------------
    @classmethod
    def from_mtbf(
        cls,
        seeds: SeedSequenceTree,
        mtbf_ms: float,
        horizon_ms: float,
        num_gpus: int,
        kinds: Optional[Sequence[str]] = None,
        nic_slowdown: float = 4.0,
        stall_ms: float = 20.0,
        stream_name: str = "faults/mtbf",
    ) -> "FaultSchedule":
        """Draw faults with exponential inter-arrival times (mean
        ``mtbf_ms``) over ``[0, horizon_ms)``.

        Kind and target are uniform draws from ``kinds`` (default: all)
        and the cluster's GPUs.  The draw comes from a named seed stream,
        so a sweep row is a pure function of ``(root seed, mtbf)``.
        """
        if mtbf_ms <= 0:
            raise ConfigError(f"mtbf must be positive, got {mtbf_ms}")
        chosen_kinds = tuple(kinds) if kinds else FAULT_KINDS
        for kind in chosen_kinds:
            if kind not in FAULT_KINDS:
                raise ConfigError(f"unknown fault kind {kind!r}")
        rng = seeds.fresh_generator(f"{stream_name}/{mtbf_ms}")
        events: List[FaultEvent] = []
        nic_open_until: Dict[int, float] = {}
        clock = 0.0
        while True:
            clock += float(rng.exponential(mtbf_ms))
            if clock >= horizon_ms:
                break
            kind = chosen_kinds[int(rng.integers(len(chosen_kinds)))]
            if kind == HOST_CRASH:
                hosts = max(1, (num_gpus + 3) // 4)
                target = int(rng.integers(hosts))
            elif kind == NIC_DEGRADE:
                target = int(rng.integers(max(1, num_gpus - 1)))
            else:
                target = int(rng.integers(num_gpus))
            if kind == NIC_DEGRADE:
                if clock < nic_open_until.get(target, 0.0):
                    # A degrade window is still open on this link; a
                    # second one would be rejected by schedule validation
                    # (the injector could not restore bandwidth sanely).
                    # Drop the draw deterministically.
                    continue
                nic_open_until[target] = clock + stall_ms * 10
                event = FaultEvent(
                    kind, clock, target,
                    duration_ms=stall_ms * 10,
                    magnitude=nic_slowdown,
                )
            elif kind == COPY_STALL:
                event = FaultEvent(kind, clock, target, duration_ms=stall_ms)
            elif kind == TASK_ERROR:
                event = FaultEvent(kind, clock, target, magnitude=1.0)
            else:
                event = FaultEvent(kind, clock, target)
            events.append(event)
        return cls(events)

    @classmethod
    def fleet_from_mtbf(
        cls,
        seeds: SeedSequenceTree,
        mtbf_ms: float,
        horizon_ms: float,
        fleet_slots: int,
        slots_per_node: int = 4,
        node_down_weight: float = 0.2,
        preempt_outage_ms: float = 120.0,
        node_outage_ms: float = 300.0,
        stream_name: str = "faults/fleet",
    ) -> "FaultSchedule":
        """Draw a fleet-scoped preemption *storm* over ``[0, horizon_ms)``.

        Inter-arrival times are exponential with mean ``mtbf_ms`` —
        fleet-wide, not per-slot, so halving the MTBF doubles the storm
        intensity regardless of fleet size.  Each arrival is a
        ``slot_preempt`` on a uniform slot, or (with probability
        ``node_down_weight``) a ``node_down`` taking the contiguous
        group of ``slots_per_node`` slots of a uniform node.  The draw
        comes from a named seed stream, so a storm is a pure function of
        ``(root seed, mtbf, stream name)``.
        """
        if mtbf_ms <= 0:
            raise ConfigError(f"mtbf must be positive, got {mtbf_ms}")
        if fleet_slots < 1:
            raise ConfigError(
                f"fleet_slots must be >= 1, got {fleet_slots}"
            )
        if slots_per_node < 1:
            raise ConfigError(
                f"slots_per_node must be >= 1, got {slots_per_node}"
            )
        if not 0.0 <= node_down_weight <= 1.0:
            raise ConfigError(
                f"node_down_weight must be in [0, 1], got {node_down_weight}"
            )
        rng = seeds.fresh_generator(f"{stream_name}/{mtbf_ms}")
        nodes = max(1, (fleet_slots + slots_per_node - 1) // slots_per_node)
        events: List[FaultEvent] = []
        clock = 0.0
        while True:
            clock += float(rng.exponential(mtbf_ms))
            if clock >= horizon_ms:
                break
            if float(rng.random()) < node_down_weight:
                events.append(
                    FaultEvent(
                        NODE_DOWN,
                        clock,
                        int(rng.integers(nodes)),
                        duration_ms=node_outage_ms,
                    )
                )
            else:
                events.append(
                    FaultEvent(
                        SLOT_PREEMPT,
                        clock,
                        int(rng.integers(fleet_slots)),
                        duration_ms=preempt_outage_ms,
                    )
                )
        return cls(events)
