"""Deterministic training replay (paper §1, §2.1).

The paper motivates reproducibility with post-training analysis: "with the
training reproducibility, the re-runs are deterministic, including all the
collected information, making supernet training much easier to inspect,
analyze, and debug."  This module packages that workflow:

* :class:`RunManifest` — everything needed to replay a training run
  (space, system config, cluster, seed, stream length, and the recorded
  outcome fingerprints), serialisable to JSON;
* :func:`execute_manifest` — run (or re-run) a manifest;
* :func:`verify_replay` — re-execute and assert the digest, every loss,
  and the subnet completion order all match the recorded run.

A manifest is a *claim* about a run; `verify_replay` makes the claim
checkable by any party with the code — the artifact-evaluation story,
in library form.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.baselines import system_by_name
from repro.config import SystemConfig
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine, PipelineResult
from repro.errors import ReproducibilityError
from repro.nn.optim import MomentumSGD
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import SearchSpace, get_search_space
from repro.supernet.supernet import Supernet

__all__ = ["RunManifest", "execute_manifest", "record_run", "verify_replay"]

_MANIFEST_VERSION = 1


@dataclass
class RunManifest:
    """A replayable description of one training run."""

    version: int
    space_name: str
    space_overrides: Dict[str, object]
    system_name: str
    system_overrides: Dict[str, object]
    num_gpus: int
    seed: int
    steps: int
    batch: Optional[int]
    stream_kind: str
    functional_batch: int
    learning_rate: float
    momentum: float
    max_grad_norm: Optional[float]
    # fault tolerance (repro.ft): a faulted run is replayable too — the
    # fault schedule and recovery policy are part of the run's identity
    fault_events: List[Dict[str, object]] = field(default_factory=list)
    checkpoint_interval: Optional[int] = None
    recovery_gpus: Optional[int] = None
    # graceful degradation (repro.ft.degradation): per-GPU speed factors
    # model a heterogeneous/straggling cluster, and the policy payload
    # arms adaptive mitigation — both are part of the run's identity, and
    # the mitigation sequence the run took is a recorded outcome that
    # replay must reproduce action-for-action
    speed_factors: Optional[List[float]] = None
    degradation: Optional[Dict[str, object]] = None
    # recorded outcome
    digest: Optional[str] = None
    losses: Dict[str, float] = field(default_factory=dict)
    completion_order: List[int] = field(default_factory=list)
    makespan_ms: Optional[float] = None
    checkpoint_cuts: List[int] = field(default_factory=list)
    attempts: Optional[int] = None
    mitigation_actions: List[Dict[str, object]] = field(default_factory=list)

    #: fields that record what the run *produced* rather than what it
    #: *was* — excluded from the identity digest so a manifest digests
    #: the same before and after its outcomes are filled in
    OUTCOME_FIELDS = (
        "digest",
        "losses",
        "completion_order",
        "makespan_ms",
        "checkpoint_cuts",
        "attempts",
        "mitigation_actions",
    )

    def config_digest(self) -> str:
        """SHA-256 over the manifest's identity fields (canonical JSON,
        outcomes excluded) — the key the run registry
        (:mod:`repro.obs.registry`) files runs under."""
        payload = dataclasses.asdict(self)
        for field_name in self.OUTCOME_FIELDS:
            payload.pop(field_name, None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        payload = json.loads(text)
        if payload.get("version") != _MANIFEST_VERSION:
            raise ReproducibilityError(
                f"manifest version {payload.get('version')} not supported"
            )
        return cls(**payload)

    def save(self, path: "Path | str") -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: "Path | str") -> "RunManifest":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------
    def resolve_space(self) -> SearchSpace:
        space = get_search_space(self.space_name)
        if self.space_overrides:
            space = space.scaled(**self.space_overrides)
        return space

    def resolve_system(self) -> SystemConfig:
        return system_by_name(self.system_name, **self.system_overrides)


def _build_manifest(
    space_name: str,
    system_name: str,
    *,
    space_overrides: Optional[Dict[str, object]] = None,
    system_overrides: Optional[Dict[str, object]] = None,
    num_gpus: int = 8,
    seed: int = 2022,
    steps: int = 100,
    batch: Optional[int] = None,
    stream_kind: str = "spos",
    functional_batch: int = 8,
    learning_rate: float = 0.3,
    momentum: float = 0.9,
    max_grad_norm: Optional[float] = 5.0,
    fault_events: Optional[List[Dict[str, object]]] = None,
    checkpoint_interval: Optional[int] = None,
    recovery_gpus: Optional[int] = None,
    speed_factors: Optional[List[float]] = None,
    degradation=None,
) -> RunManifest:
    return RunManifest(
        version=_MANIFEST_VERSION,
        space_name=space_name,
        space_overrides=dict(space_overrides or {}),
        system_name=system_name,
        system_overrides=dict(system_overrides or {}),
        num_gpus=num_gpus,
        seed=seed,
        steps=steps,
        batch=batch,
        stream_kind=stream_kind,
        functional_batch=functional_batch,
        learning_rate=learning_rate,
        momentum=momentum,
        max_grad_norm=max_grad_norm,
        fault_events=list(fault_events or []),
        checkpoint_interval=checkpoint_interval,
        recovery_gpus=recovery_gpus,
        speed_factors=list(speed_factors) if speed_factors else None,
        degradation=_degradation_payload(degradation),
    )


def _degradation_payload(value) -> Optional[Dict[str, object]]:
    """Normalise a ``degradation=`` argument (None / True / policy /
    manager / payload dict) to the JSON payload a manifest stores."""
    if value is None:
        return None
    from repro.ft.degradation import as_manager

    return as_manager(value).policy.to_payload()


def execute_manifest(
    manifest: RunManifest,
    checkpoint_dir: Optional[Union[str, Path]] = None,
):
    """Run the training described by ``manifest`` and return the result.

    A manifest with ``fault_events`` replays the full crash-restart
    history through :func:`repro.ft.recovery.run_with_recovery` (the
    checkpoints go to ``checkpoint_dir``, or a temporary directory when
    none is given) and returns a
    :class:`~repro.ft.recovery.FaultedRunResult`; otherwise a plain
    :class:`PipelineResult`.
    """
    if manifest.fault_events:
        return _execute_faulted(manifest, checkpoint_dir)
    space = manifest.resolve_space()
    supernet = Supernet(space)
    seeds = SeedSequenceTree(manifest.seed)
    if manifest.stream_kind == "generational":
        stream = SubnetStream.sample_generational(space, seeds, manifest.steps)
    else:
        stream = SubnetStream.sample(space, seeds, manifest.steps)
    plane = FunctionalPlane(
        supernet,
        seeds,
        functional_batch=manifest.functional_batch,
        optimizer=MomentumSGD(
            manifest.learning_rate, manifest.momentum, manifest.max_grad_norm
        ),
    )
    engine = PipelineEngine(
        supernet,
        stream,
        manifest.resolve_system(),
        ClusterSpec(
            num_gpus=manifest.num_gpus,
            gpu_speed_factors=(
                tuple(manifest.speed_factors)
                if manifest.speed_factors
                else None
            ),
        ),
        batch=manifest.batch,
        functional=plane,
        degradation=(
            dict(manifest.degradation) if manifest.degradation else None
        ),
    )
    return engine.run()


def _execute_faulted(
    manifest: RunManifest, checkpoint_dir: Optional[Union[str, Path]]
):
    from repro.ft.faults import FaultSchedule
    from repro.ft.recovery import RecoverySpec, run_with_recovery

    schedule = FaultSchedule.from_payload(manifest.fault_events)
    spec = RecoverySpec(
        checkpoint_interval=manifest.checkpoint_interval or 8,
        restart_gpus=manifest.recovery_gpus,
    )

    def run(directory: Union[str, Path]):
        return run_with_recovery(
            manifest.resolve_space(),
            manifest.resolve_system(),
            schedule,
            num_gpus=manifest.num_gpus,
            steps=manifest.steps,
            seed=manifest.seed,
            checkpoint_dir=directory,
            spec=spec,
            batch=manifest.batch,
            functional_batch=manifest.functional_batch,
            optimizer_factory=lambda: MomentumSGD(
                manifest.learning_rate, manifest.momentum, manifest.max_grad_norm
            ),
            stream_kind=manifest.stream_kind,
            speed_factors=(
                tuple(manifest.speed_factors)
                if manifest.speed_factors
                else None
            ),
            degradation=(
                dict(manifest.degradation) if manifest.degradation else None
            ),
        )

    if checkpoint_dir is not None:
        return run(checkpoint_dir)
    with tempfile.TemporaryDirectory(prefix="naspipe-ckpt-") as tmp:
        return run(tmp)


def _completion_order(result) -> List[int]:
    # FaultedRunResult carries a merged order; PipelineResult derives it
    # from the trace.
    order = getattr(result, "completion_order", None)
    if order is not None:
        return list(order)
    return [
        sid
        for sid, _t in sorted(
            result.trace.subnet_completion_times.items(), key=lambda kv: kv[1]
        )
    ]


def record_run(space_name: str, system_name: str, **kwargs) -> RunManifest:
    """Execute a fresh run and return its manifest with outcomes filled."""
    manifest = _build_manifest(space_name, system_name, **kwargs)
    result = execute_manifest(manifest)
    manifest.digest = result.digest
    manifest.losses = {str(sid): loss for sid, loss in result.losses.items()}
    manifest.completion_order = _completion_order(result)
    manifest.makespan_ms = result.makespan_ms
    manifest.checkpoint_cuts = list(getattr(result, "checkpoint_cuts", []))
    manifest.attempts = getattr(result, "num_attempts", 1)
    manifest.mitigation_actions = list(
        getattr(result, "mitigation_actions", [])
    )
    return manifest


def verify_replay(manifest: RunManifest):
    """Re-execute ``manifest`` and check every recorded fingerprint.

    Raises :class:`ReproducibilityError` on the first mismatch; returns
    the fresh result when everything matches.  Length mismatches fail
    loudly *before* elementwise comparison: a replay that completed a
    different number of subnets than the recorded run is reported as
    such, not as the first element that happens to differ.
    """
    if manifest.digest is None:
        raise ReproducibilityError("manifest has no recorded outcome to verify")
    result = execute_manifest(manifest)
    if result.digest != manifest.digest:
        raise ReproducibilityError(
            f"replay digest {result.digest} != recorded {manifest.digest}"
        )
    fresh_order = _completion_order(result)
    if len(fresh_order) != len(manifest.completion_order):
        raise ReproducibilityError(
            f"replay completed {len(fresh_order)} subnets, recorded run "
            f"completed {len(manifest.completion_order)} — the runs are "
            "not the same length"
        )
    recorded_loss_ids = {int(sid) for sid in manifest.losses}
    fresh_loss_ids = set(result.losses)
    if recorded_loss_ids != fresh_loss_ids:
        missing = sorted(recorded_loss_ids - fresh_loss_ids)
        extra = sorted(fresh_loss_ids - recorded_loss_ids)
        raise ReproducibilityError(
            f"replay loss set differs from recorded: missing {missing}, "
            f"unexpected {extra}"
        )
    for sid_str, recorded_loss in manifest.losses.items():
        fresh = result.losses.get(int(sid_str))
        if fresh != recorded_loss:
            raise ReproducibilityError(
                f"replay loss for subnet {sid_str}: {fresh!r} != "
                f"recorded {recorded_loss!r}"
            )
    if fresh_order != manifest.completion_order:
        raise ReproducibilityError("replay completion order differs")
    if result.makespan_ms != manifest.makespan_ms:
        raise ReproducibilityError(
            f"replay makespan {result.makespan_ms} != {manifest.makespan_ms}"
        )
    fresh_cuts = list(getattr(result, "checkpoint_cuts", []))
    if manifest.checkpoint_cuts and fresh_cuts != manifest.checkpoint_cuts:
        raise ReproducibilityError(
            f"replay checkpoint cuts {fresh_cuts} != recorded "
            f"{manifest.checkpoint_cuts}"
        )
    fresh_actions = list(getattr(result, "mitigation_actions", []))
    if fresh_actions != manifest.mitigation_actions:
        raise ReproducibilityError(
            f"replay took {len(fresh_actions)} mitigation action(s), "
            f"recorded run took {len(manifest.mitigation_actions)} — the "
            "degraded-mode decisions did not replay deterministically"
            if len(fresh_actions) != len(manifest.mitigation_actions)
            else "replay mitigation sequence differs from the recorded run"
        )
    return result
