"""Vocabulary and deterministic tokenizer for the WNMT-like data path.

The NLP generators in :mod:`repro.data.synthetic` draw token IDs
directly; this module adds the text-shaped layer a translation workload
implies — a fixed vocabulary, a whitespace tokenizer with OOV handling,
padding/truncation to a sequence length — so examples and downstream
users can feed real sentences through the same deterministic pipeline.

The vocabulary itself is synthesised from a seed (a Zipf-ish ranking of
generated word shapes), so the whole path stays network-free and
bit-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.seeding import SeedSequenceTree

__all__ = ["Vocabulary", "synthetic_vocabulary"]

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"
BOS_TOKEN = "<s>"
EOS_TOKEN = "</s>"
_SPECIALS = (PAD_TOKEN, UNK_TOKEN, BOS_TOKEN, EOS_TOKEN)

_CONSONANTS = "bcdfghjklmnprstvz"
_VOWELS = "aeiou"


@dataclass
class Vocabulary:
    """A fixed token↔id mapping with encode/decode helpers."""

    tokens: List[str]

    def __post_init__(self) -> None:
        if list(self.tokens[: len(_SPECIALS)]) != list(_SPECIALS):
            raise ValueError(
                f"vocabulary must start with the special tokens {_SPECIALS}"
            )
        self._index: Dict[str, int] = {
            token: position for position, token in enumerate(self.tokens)
        }
        if len(self._index) != len(self.tokens):
            raise ValueError("vocabulary contains duplicate tokens")

    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def pad_id(self) -> int:
        return self._index[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._index[UNK_TOKEN]

    @property
    def bos_id(self) -> int:
        return self._index[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        return self._index[EOS_TOKEN]

    def id_of(self, token: str) -> int:
        return self._index.get(token, self.unk_id)

    # ------------------------------------------------------------------
    def encode(
        self,
        text: str,
        seq_len: int,
        add_markers: bool = True,
    ) -> np.ndarray:
        """Whitespace-tokenize, map to ids, pad/truncate to ``seq_len``."""
        words = text.strip().lower().split()
        ids: List[int] = []
        if add_markers:
            ids.append(self.bos_id)
        ids.extend(self.id_of(word) for word in words)
        if add_markers:
            ids.append(self.eos_id)
        ids = ids[:seq_len]
        ids.extend([self.pad_id] * (seq_len - len(ids)))
        return np.asarray(ids, dtype=np.int64)

    def encode_batch(self, texts: Sequence[str], seq_len: int) -> np.ndarray:
        return np.stack([self.encode(text, seq_len) for text in texts])

    def decode(self, ids: Iterable[int], strip_special: bool = True) -> str:
        words = []
        for token_id in ids:
            token = self.tokens[int(token_id)]
            if strip_special and token in _SPECIALS:
                continue
            words.append(token)
        return " ".join(words)


def _make_word(rng: np.random.Generator, syllables: int) -> str:
    parts = []
    for _ in range(syllables):
        parts.append(_CONSONANTS[int(rng.integers(0, len(_CONSONANTS)))])
        parts.append(_VOWELS[int(rng.integers(0, len(_VOWELS)))])
    return "".join(parts)


def synthetic_vocabulary(
    seeds: SeedSequenceTree, size: int = 512
) -> Vocabulary:
    """A deterministic pseudo-language vocabulary of ``size`` tokens.

    Word lengths follow a short-word-heavy distribution (frequent words
    are short, like real corpora); collisions are resolved by extending
    the word, so the vocabulary is exactly ``size`` distinct tokens.
    """
    if size <= len(_SPECIALS):
        raise ValueError(f"vocabulary size must exceed {len(_SPECIALS)}")
    rng = seeds.fresh_generator("vocab")
    tokens: List[str] = list(_SPECIALS)
    seen = set(tokens)
    while len(tokens) < size:
        rank_fraction = len(tokens) / size
        syllables = 1 + int(rank_fraction * 3) + int(rng.integers(0, 2))
        word = _make_word(rng, syllables)
        while word in seen:
            word += _make_word(rng, 1)
        seen.add(word)
        tokens.append(word)
    return Vocabulary(tokens)
