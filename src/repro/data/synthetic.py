"""Synthetic WNMT-like and ImageNet-like batch generators.

Each domain builds a fixed (non-trainable) *encoder* from the seed tree:

* NLP: token IDs are drawn per batch, embedded by a frozen embedding
  table, and mean-pooled over a short sequence — a bag-of-words sentence
  encoding;
* CV: small pseudo-images are drawn and projected by a frozen patch
  projection — a linear patch embedding.

Targets are produced by a frozen *teacher* linear map over the encoded
features plus mild label noise, so the classification problem is
learnable (losses fall) yet fully deterministic in
``(root seed, space name, subnet_id)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.nn import functional as F
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import SearchSpace

__all__ = ["SyntheticTaskData", "batch_for_subnet", "evaluation_batches"]

_VOCAB_SIZE = 512
_SEQ_LEN = 12
_IMAGE_PIXELS = 64
_LABEL_NOISE = 0.03


@dataclass(frozen=True)
class _Encoders:
    embedding: np.ndarray  # (vocab, width) or (pixels, width)
    teacher: np.ndarray  # (width, classes)


class SyntheticTaskData:
    """Deterministic batch source for one search space."""

    def __init__(self, space: SearchSpace, seeds: SeedSequenceTree) -> None:
        self.space = space
        self.seeds = seeds
        rng = seeds.fresh_generator(f"data/encoders/{space.name}")
        width = space.functional_width
        if space.domain == "NLP":
            embedding = rng.standard_normal((_VOCAB_SIZE, width))
        else:
            embedding = rng.standard_normal((_IMAGE_PIXELS, width))
        teacher = rng.standard_normal((width, space.num_classes))
        self._encoders = _Encoders(
            embedding=(embedding / np.sqrt(width)).astype(np.float32),
            teacher=teacher.astype(np.float32),
        )

    @property
    def teacher(self) -> np.ndarray:
        """The frozen feature→logit map that generated the labels."""
        return self._encoders.teacher

    # ------------------------------------------------------------------
    def _encode_nlp(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        tokens = rng.integers(0, _VOCAB_SIZE, size=(batch, _SEQ_LEN))
        embedded = self._encoders.embedding[tokens]  # (batch, seq, width)
        return F.f32(embedded.mean(axis=1))

    def _encode_cv(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        images = rng.standard_normal((batch, _IMAGE_PIXELS)).astype(np.float32)
        return F.f32(images @ self._encoders.embedding / np.sqrt(_IMAGE_PIXELS))

    def _make(self, stream: str, batch: int) -> Tuple[np.ndarray, np.ndarray]:
        rng = self.seeds.fresh_generator(stream)
        if self.space.domain == "NLP":
            features = self._encode_nlp(rng, batch)
        else:
            features = self._encode_cv(rng, batch)
        logits = features @ self._encoders.teacher
        noise = _LABEL_NOISE * rng.standard_normal(logits.shape).astype(np.float32)
        targets = np.argmax(logits + noise, axis=1).astype(np.int64)
        return features, targets

    # ------------------------------------------------------------------
    def batch(self, subnet_id: int, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """The training batch for subnet ``subnet_id`` (pure function)."""
        return self._make(f"data/{self.space.name}/train/{subnet_id}", batch_size)

    def eval_batches(
        self, count: int, batch_size: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Held-out batches used by the search evaluator."""
        return [
            self._make(f"data/{self.space.name}/eval/{index}", batch_size)
            for index in range(count)
        ]


def batch_for_subnet(
    space: SearchSpace,
    seeds: SeedSequenceTree,
    subnet_id: int,
    batch_size: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot convenience wrapper around :class:`SyntheticTaskData`."""
    return SyntheticTaskData(space, seeds).batch(subnet_id, batch_size)


def evaluation_batches(
    space: SearchSpace,
    seeds: SeedSequenceTree,
    count: int,
    batch_size: int,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    return SyntheticTaskData(space, seeds).eval_batches(count, batch_size)
