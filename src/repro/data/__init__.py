"""Deterministic synthetic datasets.

The paper trains on WNMT (translation) and ImageNet; neither is available
offline, and the scheduler/reproducibility claims only require that each
subnet's batch is a deterministic function of (seed, subnet sequence ID).
These generators produce domain-flavoured feature batches with learnable
structure, so training losses genuinely decrease and search scores can
rank subnets.
"""

from repro.data.synthetic import (
    SyntheticTaskData,
    batch_for_subnet,
    evaluation_batches,
)
from repro.data.vocab import Vocabulary, synthetic_vocabulary

__all__ = [
    "SyntheticTaskData",
    "batch_for_subnet",
    "evaluation_batches",
    "Vocabulary",
    "synthetic_vocabulary",
]
