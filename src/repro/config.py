"""System configurations: what distinguishes NASPipe from each baseline.

A :class:`SystemConfig` captures every axis the paper varies across
systems and ablations — synchronisation pattern, partitioning strategy,
context management, predictor, activation recomputation, mirroring.
Factories for the concrete systems live in :mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError

__all__ = ["SystemConfig", "SCHEDULER_MODES"]

SYNC_MODES = ("csp", "bsp", "asp", "ssp")
PARTITIONING = ("balanced", "static")
CONTEXT_MODES = ("full", "cached")
#: "index" = incremental readiness index (O(1)-amortized decisions);
#: "scan" = per-layer queue rescan (reference; "exact" is a legacy
#: alias); "conservative" = Algorithm 2 verbatim.
SCHEDULER_MODES = ("index", "scan", "exact", "conservative")


@dataclass(frozen=True)
class SystemConfig:
    """Every knob that defines a pipeline training system.

    ``cache_subnets`` is the context cache capacity as a multiple of one
    subnet's per-stage parameter share (3.0 for NASPipe — current,
    previous, next; 1.0 for VPipe).  ``inject_window``/``bulk_size``
    default per policy when None.  ``staleness`` only applies to SSP.
    """

    name: str
    sync: str = "csp"
    partitioning: str = "balanced"
    context: str = "cached"
    cache_subnets: float = 3.0
    predictor: bool = True
    predictor_depth: int = 2
    recompute: bool = True
    mirroring: bool = True
    scheduler_mode: str = "index"  # see SCHEDULER_MODES
    #: how off-home layers reach their executing stage when partitions are
    #: balanced per subnet: "mirror" = active replication with async push
    #: (NASPipe §4.2); "migrate" = on-demand move over the interconnect,
    #: paying synchronous cost per use (the §2.3 alternative NASPipe
    #: rejects).
    mirror_mode: str = "mirror"
    in_order_only: bool = False  # "w/o scheduler" ablation
    inject_window: Optional[int] = None
    bulk_size: Optional[int] = None
    staleness: int = 0

    def __post_init__(self) -> None:
        if self.sync not in SYNC_MODES:
            raise ConfigError(f"sync must be one of {SYNC_MODES}, got {self.sync!r}")
        if self.partitioning not in PARTITIONING:
            raise ConfigError(
                f"partitioning must be one of {PARTITIONING}, "
                f"got {self.partitioning!r}"
            )
        if self.context not in CONTEXT_MODES:
            raise ConfigError(
                f"context must be one of {CONTEXT_MODES}, got {self.context!r}"
            )
        if self.partitioning == "balanced" and not self.mirroring:
            raise ConfigError(
                f"{self.name}: balanced per-subnet partitions require "
                "mirroring (layers must execute off their home stage)"
            )
        if self.cache_subnets <= 0:
            raise ConfigError("cache_subnets must be positive")
        if self.scheduler_mode not in SCHEDULER_MODES:
            raise ConfigError(
                f"scheduler_mode must be one of {SCHEDULER_MODES}, "
                f"got {self.scheduler_mode!r}"
            )
        if self.mirror_mode not in ("mirror", "migrate"):
            raise ConfigError(
                f"mirror_mode must be 'mirror' or 'migrate', "
                f"got {self.mirror_mode!r}"
            )
        if self.predictor and self.context == "full":
            raise ConfigError(
                f"{self.name}: the predictor only applies to cached context"
            )

    def with_overrides(self, **overrides) -> "SystemConfig":
        """A copy with fields replaced (ablation/sweep helper)."""
        return replace(self, **overrides)

    @property
    def enforces_causal_order(self) -> bool:
        return self.sync == "csp"

    def default_window(self, stages: int) -> int:
        """In-flight subnet window used for injection and memory sizing."""
        if self.inject_window is not None:
            return self.inject_window
        if self.sync == "bsp":
            return self.default_bulk(stages)
        if self.sync == "asp":
            return stages
        if self.sync == "ssp":
            return stages
        return stages + 2  # csp

    def default_bulk(self, stages: int) -> int:
        """BSP bulk size; chosen so the GPipe bubble lands near the
        paper's constant 0.57 at 8 stages ((D-1)/(B+D-1))."""
        if self.bulk_size is not None:
            return self.bulk_size
        return max(2, (3 * stages) // 4 - 1)
