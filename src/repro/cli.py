"""Command-line entry point: regenerate any paper table or figure.

Usage::

    naspipe list
    naspipe figure1
    naspipe figure5 --scale small
    naspipe table3 --spaces NLP.c2 CV.c2
    naspipe all --scale small

(also reachable as ``python -m repro ...``)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import ExperimentScale

__all__ = ["main"]

_EXPERIMENTS = (
    "figure1",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "table2",
    "table3",
    "table4",
    "table5",
    "dag-bound",
    "scheduler-cost",
    "ranking",
    "straggler",
    "repro-check",
    "demo",
)


def _scale_from_args(args) -> ExperimentScale:
    if args.scale == "paper":
        return ExperimentScale.paper()
    return ExperimentScale.small()


def _maybe_csv(name: str, rows, args) -> str:
    """Write rows to ``<csv_dir>/<name>.csv`` when ``--csv`` was given."""
    if not getattr(args, "csv", None):
        return ""
    from pathlib import Path

    from repro.experiments.export import write_csv

    directory = Path(args.csv)
    directory.mkdir(parents=True, exist_ok=True)
    path = write_csv(rows, directory / f"{name.replace('-', '_')}.csv")
    return f"\n[csv written to {path}]"


def _run_one(name: str, args) -> str:
    scale = _scale_from_args(args)
    spaces: Optional[List[str]] = args.spaces or None
    if name == "figure1":
        from repro.experiments import figure1

        return figure1.format_text(figure1.run(seed=args.seed))
    if name == "figure4":
        from repro.experiments import figure4

        return figure4.format_text(figure4.run(spaces=spaces, seed=args.seed))
    if name == "figure5":
        from repro.experiments import figure5

        rows = figure5.run(scale, spaces=spaces)
        return figure5.format_text(rows) + _maybe_csv(name, rows, args)
    if name == "figure6":
        from repro.experiments import figure6

        rows = figure6.run(scale, spaces=spaces)
        return figure6.format_text(rows) + _maybe_csv(name, rows, args)
    if name == "figure7":
        from repro.experiments import figure7

        rows = figure7.run(scale)
        return figure7.format_text(rows) + _maybe_csv(name, rows, args)
    if name == "table2":
        from repro.experiments import table2

        rows = table2.run(scale, spaces=spaces, with_scores=args.scores)
        return table2.format_text(rows) + _maybe_csv(name, rows, args)
    if name == "table3":
        from repro.experiments import table3

        return table3.format_text(table3.run(spaces=spaces, seed=args.seed))
    if name == "table4":
        from repro.experiments import table4

        return table4.format_text(table4.run(seed=args.seed))
    if name == "table5":
        from repro.experiments import table5

        rows = table5.run()
        return table5.format_text(rows) + _maybe_csv(name, rows, args)
    if name == "dag-bound":
        from repro.experiments import dag_bound

        rows = dag_bound.run(space_names=spaces)
        return dag_bound.format_text(rows) + _maybe_csv(name, rows, args)
    if name == "scheduler-cost":
        from repro.experiments import scheduler_cost

        out = []
        if args.json or args.baseline:
            # Stream-length scaling: readiness index vs scan reference,
            # emitted as BENCH_scheduler.json and optionally gated
            # against a committed baseline (CI regression check).
            lens = tuple(args.stream_lens or (100, 300, 1000))
            payload = scheduler_cost.run_scaling(
                stream_lens=lens, seed=args.seed
            )
            # End-to-end simulator throughput (events/sec) rides along:
            # the pipeline row's makespan is additionally gated bitwise
            # against the committed baseline (determinism check).
            payload["engine"] = scheduler_cost.run_engine_bench(
                seed=args.seed
            )
            out.append(scheduler_cost.format_scaling_text(payload))
            if args.json:
                path = scheduler_cost.write_bench_json(payload, args.json)
                out.append(f"[bench written to {path}]")
            if args.baseline:
                failures = scheduler_cost.check_regression(
                    payload, args.baseline
                )
                if failures:
                    raise SystemExit(
                        "scheduler cost regression:\n  "
                        + "\n  ".join(failures)
                    )
                out.append(f"[no regression vs {args.baseline}]")
            return "\n".join(out)
        rows = scheduler_cost.run(seed=args.seed)
        return scheduler_cost.format_text(rows) + _maybe_csv(name, rows, args)
    if name == "ranking":
        from repro.experiments import ranking

        rows = ranking.run(seed=args.seed)
        return ranking.format_text(rows) + _maybe_csv(name, rows, args)
    if name == "straggler":
        from repro.experiments import straggler

        return straggler.format_text(straggler.run(seed=args.seed))
    if name == "repro-check":
        return _repro_check(args.seed)
    if name == "demo":
        return _demo(args.seed)
    raise SystemExit(f"unknown experiment {name!r}")


def _load_run_config(config_path, default_seed=2022):
    """Parse a JSON run config and resolve it to run_system kwargs.

    Shared by ``trace`` and ``analyze``: the same config file drives
    both.  Returns ``(config_dict, scale, run_kwargs)``.
    """
    import json

    config = json.loads(config_path.read_text())
    scale = ExperimentScale(
        subnets=int(config.get("subnets", 24)),
        num_gpus=int(config.get("num_gpus", 4)),
        seed=int(config.get("seed", default_seed)),
        stream_kind=config.get("stream_kind", "generational"),
    )
    run_kwargs = dict(
        batch=config.get("batch"),
        space_overrides=config.get("space_overrides"),
        **config.get("overrides", {}),
    )
    return config, scale, run_kwargs


def _run_config(config, scale, run_kwargs):
    from repro.experiments.common import run_system

    result = run_system(
        config.get("space", "NLP.c3"),
        config.get("system", "NASPipe"),
        scale,
        **run_kwargs,
    )
    if result is None:
        raise SystemExit(
            f"{config.get('system')} ran out of memory on "
            f"{config.get('space')} — no schedule to trace or analyze"
        )
    return result


def _config_identity(config, num_gpus, scale):
    """The registry's config-digest payload for a CLI-config run."""
    return {
        "space": config.get("space", "NLP.c3"),
        "space_overrides": config.get("space_overrides") or {},
        "system": config.get("system", "NASPipe"),
        "overrides": config.get("overrides") or {},
        "num_gpus": num_gpus,
        "subnets": scale.subnets,
        "batch": config.get("batch"),
        "seed": scale.seed,
        "stream_kind": scale.stream_kind,
    }


def _analyze_one_gpu_count(task):
    """One GPU count's analysis — module-level so ``--jobs`` can ship it
    to a worker process.  Returns ``(payload_entry, lines, record)``;
    ``record`` is the registry record (or None), appended by the
    *parent* in sweep order so the registry stays deterministic.
    """
    config, scale, run_kwargs, gpus, register = task

    from repro.obs import what_if_report
    from repro.obs.registry import run_record

    result = _run_config(config, scale, dict(run_kwargs, num_gpus=gpus))
    breakdown = result.critical_path()
    whatif = what_if_report(result.trace)
    entry = {
        "num_gpus": gpus,
        "summary": result.trace_summary(),
        "critical_path": breakdown,
        "what_if": whatif,
    }
    lines = [
        f"{result.system} on {result.space}, D={gpus}: "
        f"makespan {breakdown['makespan_ms']:.1f} ms, "
        f"critical path {breakdown['num_segments']} segments",
        "  critical path by resource (ms / fraction):",
    ]
    for resource, ms in breakdown["by_resource_ms"].items():
        if ms <= 0:
            continue
        fraction = breakdown["by_resource_fraction"][resource]
        lines.append(f"    {resource:<16s} {ms:10.1f}  {fraction:6.1%}")
    lines.append("  what-if projections (ranked by savings):")
    for name in whatif["ranked"]:
        scenario = whatif["scenarios"][name]
        lines.append(
            f"    {name:<20s} -> {scenario['projected_makespan_ms']:10.1f} ms "
            f"(saves {scenario['savings_ms']:8.1f} ms, "
            f"{scenario['savings_fraction']:5.1%})"
        )
    record = None
    if register:
        record = run_record(
            result, identity=_config_identity(config, gpus, scale)
        )
    return entry, lines, record


def _analyze(args) -> str:
    """``naspipe analyze <config>``: run one configured schedule, print
    the critical-path breakdown and what-if projections, and optionally
    file the run in the registry.

    Takes the same JSON config as ``naspipe trace`` (plus optional
    ``space_overrides``).  ``--sweep-gpus 2 4 8`` repeats the analysis
    per GPU count; ``--jobs N`` shards the sweep over N worker
    processes (output and registry order stay byte-identical to a
    serial sweep); ``--json PATH`` writes the machine-readable payload
    (deterministic canonical JSON); ``--register`` appends a run record
    to ``--registry`` (default ``.naspipe/runs.jsonl``).  See
    ``docs/ANALYSIS.md`` for what the numbers mean.
    """
    import json
    from pathlib import Path

    from repro.obs.registry import append_run

    config_path = Path(args.config)
    config, scale, run_kwargs = _load_run_config(
        config_path, default_seed=args.seed
    )
    gpu_counts = [int(g) for g in (args.sweep_gpus or [scale.num_gpus])]
    tasks = [
        (config, scale, run_kwargs, gpus, args.register)
        for gpus in gpu_counts
    ]
    jobs = getattr(args, "jobs", 1) or 1
    if jobs > 1 and len(tasks) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(_analyze_one_gpu_count, tasks))
    else:
        outcomes = [_analyze_one_gpu_count(task) for task in tasks]

    lines = []
    payload = {"schema": 1, "config": str(config_path), "runs": []}
    for entry, gpu_lines, record in outcomes:
        payload["runs"].append(entry)
        lines.extend(gpu_lines)
        if record is not None:
            registry_path = append_run(record, args.registry)
            lines.append(
                f"  [registered run {record['run_id']} in {registry_path}]"
            )
        lines.append("")
    if args.json:
        out = Path(args.json)
        out.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        lines.append(f"[analysis written to {out}]")
    return "\n".join(lines).rstrip()


def _compare(args) -> str:
    """``naspipe compare <run-a> <run-b>``: field-by-field diff of two
    registry records.

    Each reference is a record file (JSON/JSONL, last record wins) or a
    ``run_id`` prefix resolved against ``--registry``.  With
    ``--fail-on-regression PCT`` the command exits non-zero when run B's
    makespan or bubble ratio is worse than run A's by more than PCT
    percent (``100`` = the 2x CI gate).  Output is byte-deterministic.
    """
    from repro.obs.registry import (
        check_regression,
        compare_records,
        format_compare,
        resolve_run,
    )

    record_a = resolve_run(args.config, args.registry)
    record_b = resolve_run(args.config2, args.registry)
    comparison = compare_records(record_a, record_b)
    text = format_compare(comparison).rstrip()
    if args.fail_on_regression is not None:
        failures = check_regression(comparison, args.fail_on_regression)
        if failures:
            print(text)
            raise SystemExit(
                "regression vs baseline:\n  " + "\n  ".join(failures)
            )
        text += (
            f"\n[no regression beyond {args.fail_on_regression:g}% threshold]"
        )
    return text


def _trace(args) -> str:
    """``naspipe trace <config>``: run one configured pipeline schedule,
    export it as Chrome Trace Event JSON (Perfetto-loadable) and print
    where to view it; ``--summary`` adds the bubble-attribution report.

    The config is a small JSON object, e.g. ``examples/trace_demo.json``::

        {"space": "NLP.c3", "system": "NASPipe", "num_gpus": 4,
         "subnets": 24, "batch": 32, "seed": 2022}

    ``system`` accepts any :func:`repro.baselines.system_by_name` name;
    extra keys under ``"overrides"`` are forwarded to it (e.g.
    ``{"overrides": {"cache_capacity_mb": 64}}``).  ``--summary-json
    PATH`` writes the same summary as canonical machine-readable JSON
    (byte-identical across identical runs — the registry's input).
    """
    from pathlib import Path

    from repro.obs import format_summary, run_summary, summary_json

    config_path = Path(args.config)
    config, scale, run_kwargs = _load_run_config(
        config_path, default_seed=args.seed
    )
    result = _run_config(config, scale, run_kwargs)
    out = Path(args.out or "run.trace.json")
    result.trace_export(path=out, label=config.get("label", config_path.stem))
    lines = [
        f"wrote {out} ({out.stat().st_size} bytes, "
        f"{len(result.trace.events)} typed events) — "
        "open in https://ui.perfetto.dev or chrome://tracing",
    ]
    summary = None
    if args.summary:
        summary = run_summary(result)
        lines.append("")
        lines.append(format_summary(summary))
    if args.summary_json:
        if summary is None:
            summary = run_summary(result)
        json_path = Path(args.summary_json)
        json_path.write_text(summary_json(summary))
        lines.append(f"[summary JSON written to {json_path}]")
    return "\n".join(lines)


def _faults(args) -> str:
    """``naspipe faults <config>``: run one fault-injection scenario and
    report availability metrics plus the digest comparison against the
    fault-free baseline.

    The config is a small JSON object, e.g. ``examples/faults_demo.json``::

        {"space": "NLP.c3", "system": "NASPipe", "num_gpus": 4,
         "subnets": 24, "seed": 2022, "checkpoint_interval": 8,
         "faults": [{"kind": "gpu_crash", "time_ms": 600.0, "target": 1}]}

    Instead of an explicit ``"faults"`` list, ``"mtbf_ms"`` draws a
    seeded schedule over the baseline's makespan.  ``"recovery_gpus"``
    restarts on a different GPU count (elastic rescale); under CSP the
    digest still matches the fault-free run bitwise.  ``--json PATH``
    also writes the machine-readable availability summary.
    """
    import json
    import tempfile
    from pathlib import Path

    from repro.baselines import system_by_name
    from repro.ft import (
        FaultSchedule,
        RecoverySpec,
        availability_summary,
        format_availability,
        run_uninterrupted,
        run_with_recovery,
    )
    from repro.seeding import SeedSequenceTree
    from repro.supernet.search_space import get_search_space

    config_path = Path(args.config)
    config = json.loads(config_path.read_text())
    space = get_search_space(config.get("space", "NLP.c3"))
    if config.get("space_overrides"):
        space = space.scaled(**config["space_overrides"])
    system = system_by_name(
        config.get("system", "NASPipe"), **config.get("overrides", {})
    )
    num_gpus = int(config.get("num_gpus", 4))
    steps = int(config.get("subnets", 24))
    seed = int(config.get("seed", args.seed))
    batch = config.get("batch")
    common = dict(num_gpus=num_gpus, steps=steps, seed=seed, batch=batch)

    baseline = run_uninterrupted(space, system, **common)
    if "faults" in config:
        schedule = FaultSchedule.from_payload(config["faults"])
    else:
        schedule = FaultSchedule.from_mtbf(
            SeedSequenceTree(seed),
            mtbf_ms=float(config.get("mtbf_ms", baseline.makespan_ms / 2)),
            horizon_ms=baseline.makespan_ms,
            num_gpus=num_gpus,
        )
    spec = RecoverySpec(
        checkpoint_interval=int(config.get("checkpoint_interval", 8)),
        restart_gpus=config.get("recovery_gpus"),
    )

    def run(directory):
        return run_with_recovery(
            space,
            system,
            schedule,
            checkpoint_dir=directory,
            spec=spec,
            **common,
        )

    if config.get("checkpoint_dir"):
        faulted = run(config["checkpoint_dir"])
    else:
        with tempfile.TemporaryDirectory(prefix="naspipe-faults-") as tmp:
            faulted = run(tmp)

    summary = availability_summary(faulted, baseline)
    lines = [
        f"fault schedule: {len(schedule)} event(s)",
        *(
            f"  t={event.time_ms:9.2f}ms  {event.kind:>11s} @ {event.target}"
            for event in schedule
        ),
        "",
        format_availability(summary),
    ]
    if args.json:
        out = Path(args.json)
        out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        lines.append(f"[availability summary written to {out}]")
    return "\n".join(lines)


def _chaos(args) -> str:
    """``naspipe chaos <config>``: seeded randomized robustness sweep.

    Draws ``--seeds`` non-fatal fault schedules per GPU count, runs each
    with the degradation manager armed, and checks the invariant suite
    (completion, bitwise digest vs the unfaulted baseline, trace
    validity, memory cap, bubble accounting).  Exits non-zero on any
    violation, so the sweep is CI-gateable (``make chaos-smoke``).

    The config is a small JSON object, e.g. ``examples/chaos_demo.json``::

        {"space": "NLP.c3", "space_overrides": {"num_blocks": 8},
         "system": "NASPipe", "gpus": [2, 4], "subnets": 12,
         "seed": 2022, "mtbf_fraction": 0.1}

    ``--json PATH`` also writes the machine-readable sweep report.
    """
    import json
    from pathlib import Path

    from repro.baselines import system_by_name
    from repro.ft import chaos_sweep, format_chaos_report
    from repro.supernet.search_space import get_search_space

    config_path = Path(args.config)
    config = json.loads(config_path.read_text())
    space = get_search_space(config.get("space", "NLP.c3"))
    if config.get("space_overrides"):
        space = space.scaled(**config["space_overrides"])
    system = system_by_name(
        config.get("system", "NASPipe"), **config.get("overrides", {})
    )
    gpus = config.get("gpus") or [int(config.get("num_gpus", 4))]
    report = chaos_sweep(
        space,
        system,
        scenarios=args.seeds,
        gpus=[int(g) for g in gpus],
        steps=int(config.get("subnets", 12)),
        seed=int(config.get("seed", args.seed)),
        mtbf_fraction=float(config.get("mtbf_fraction", 0.1)),
        stall_ms=float(config.get("stall_ms", 20.0)),
        nic_slowdown=float(config.get("nic_slowdown", 4.0)),
        degradation=config.get("degradation", True),
        batch=config.get("batch"),
        jobs=getattr(args, "jobs", 1) or 1,
    )
    text = format_chaos_report(report)
    if args.json:
        out = Path(args.json)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        text += f"\n[chaos report written to {out}]"
    if not report["ok"]:
        print(text)
        raise SystemExit(
            f"chaos sweep failed: {len(report['violations'])} invariant "
            "violation(s)"
        )
    return text


def _chaos_fleet(args) -> str:
    """``naspipe chaos-fleet <config>``: fleet-scale preemption storms.

    Runs a multi-tenant mix (elastic CSP + rigid + serving) on shared
    fleets while seeded preemption storms (``slot_preempt`` /
    ``node_down``) revoke leases mid-run, then checks the fleet
    invariant suite: every surviving CSP tenant's digest is bitwise
    identical to its fault-free solo run, no lease leaks, the scheduler
    quiesces, and admitted non-retried serving requests outside outage
    windows meet the SLO.  Exits non-zero on any violation, so the
    sweep is CI-gateable (``make chaos-fleet``).

    The config is a JSON object, e.g. ``examples/chaos_fleet_demo.json``::

        {"fleet_slots": [8], "scenarios": 2, "seed": 2022,
         "storm_mtbf_fraction": 0.25, "slots_per_node": 4,
         "serving": {...}, "jobs": [...]}

    ``--json PATH`` writes the canonical machine-readable sweep report
    (byte-identical across identical runs; the ``chaos-fleet-smoke``
    CI gate ``cmp``'s two of them).  See ``docs/FAULT_TOLERANCE.md``.
    """
    import json
    from pathlib import Path

    from repro.ft import fleet_report_json, fleet_sweep, format_fleet_report

    config_path = Path(args.config)
    payload = json.loads(config_path.read_text())
    report = fleet_sweep(payload)
    text = format_fleet_report(report)
    if args.json:
        out = Path(args.json)
        out.write_text(fleet_report_json(report))
        text += f"\n[fleet chaos report written to {out}]"
    if not report["ok"]:
        print(text)
        raise SystemExit(
            f"fleet chaos sweep failed: {len(report['violations'])} "
            "invariant violation(s)"
        )
    return text


def _serve(args) -> str:
    """``naspipe serve <jobs.json>``: run a multi-tenant job mix on one
    shared simulated fleet and report per-job outcomes.

    The config declares the fleet and the jobs, e.g.
    ``examples/serve_demo.json``::

        {"total_gpus": 8, "quantum": 6, "verify_solo": true,
         "jobs": [
           {"name": "tenant-a", "space": "NLP.c3", "min_gpus": 2,
            "max_gpus": 6, "subnets": 18, "priority": 2},
           ...]}

    Jobs share the fleet through :class:`repro.service.ClusterManager`
    leases; CSP jobs grow/shrink/preempt at consistent segment cuts.
    With ``"verify_solo": true`` (or ``--verify``) every job is re-run
    alone and its digest compared bitwise — any mismatch exits non-zero.
    ``--json PATH`` writes the canonical machine-readable report
    (byte-identical across identical runs; the ``service-smoke`` CI
    gate ``cmp``'s two of them).  See ``docs/OPERATIONS.md``.
    """
    import json
    from pathlib import Path

    from repro.service import (
        format_service_report,
        run_service,
        service_report_json,
    )

    config_path = Path(args.config)
    payload = json.loads(config_path.read_text())
    report = run_service(
        payload, verify_solo=True if args.verify else None
    )
    text = format_service_report(report)
    if args.json:
        out = Path(args.json)
        out.write_text(service_report_json(report))
        text += f"\n[service report written to {out}]"
    if not report["ok"]:
        print(text)
        raise SystemExit(
            "per-tenant determinism violated: at least one job's digest "
            "diverged from its solo run"
        )
    return text


def _bench_serving(args) -> str:
    """``naspipe bench-serving <config>``: run the subnet-evaluation
    serving benchmark (cache on / cache off / overload) and report
    latency percentiles, throughput, hit/shed rates and SLO attainment.

    The config is a small JSON object, e.g.
    ``examples/serving_demo.json``::

        {"space": "NLP.c3", "num_gpus": 4, "total_gpus": 8,
         "requests": 300, "arrival": "poisson", "rate_rps": 60,
         "skew": 0.7, "repeat_fraction": 0.3, "seed": 2022,
         "max_batch": 8, "max_linger_ms": 6.0, "queue_bound": 48,
         "slo_ms": 250.0}

    ``--json PATH`` writes the canonical ``BENCH_serving.json`` payload
    (byte-identical across identical runs — the ``serving-smoke`` CI
    job ``cmp``'s two of them); ``--baseline PATH`` gates p99 latency
    and throughput against a committed baseline and exits non-zero on
    regression, determinism violation, or a broken structural claim
    (cache must strictly help; admitted overload requests must meet the
    SLO).  See ``docs/SERVING.md``.
    """
    import json
    from pathlib import Path

    from repro.serving import (
        check_regression,
        format_serving_report,
        run_bench,
        serving_report_json,
    )

    config_path = Path(args.config)
    payload = run_bench(json.loads(config_path.read_text()))
    out = [format_serving_report(payload)]
    if args.json:
        target = Path(args.json)
        target.write_text(serving_report_json(payload))
        out.append(f"[serving bench written to {target}]")
    if args.baseline:
        failures = check_regression(payload, args.baseline)
        if failures:
            print("\n".join(out))
            raise SystemExit(
                "serving regression:\n  " + "\n  ".join(failures)
            )
        out.append(f"[no regression vs {args.baseline}]")
    return "\n".join(out)


def _monitor(args) -> str:
    """``naspipe monitor <config>``: run a plane with the live telemetry
    hub armed — deterministic metrics scraping on the virtual clock,
    alert-rule evaluation at scrape points, per-tenant usage metering —
    and print a scrape-by-scrape tail plus the final alert and metering
    reports.

    The config is a **service** config (has ``"jobs"``, e.g.
    ``examples/serve_demo.json``) or a **serving** config (has
    ``"space"``, e.g. ``examples/serving_demo.json``).  Flags:

    * ``--rules PATH`` — JSON alert rules (default: the built-in rules,
      silent on healthy runs; see ``docs/TELEMETRY.md``);
    * ``--interval MS`` — scrape interval in virtual ms (default 100);
    * ``--out PATH`` — write the scrape series as canonical JSONL;
    * ``--prom PATH`` — write the final Prometheus text exposition;
    * ``--json PATH`` — write the monitor report (alerts + metering).

    Every output is byte-identical across identical runs — the
    ``monitor-smoke`` CI job runs this twice and ``cmp``'s the files —
    and arming the hub changes nothing: engine decisions, digests and
    reports are bitwise the same with telemetry on or off.
    """
    import json
    from pathlib import Path

    from repro.obs.telemetry import TelemetryHub
    from repro.viz import utilization_sparklines

    config_path = Path(args.config)
    payload = json.loads(config_path.read_text())
    interval = float(getattr(args, "interval", None) or 100.0)
    hub = TelemetryHub(scrape_interval_ms=interval, rules=args.rules)

    if "jobs" in payload:
        from repro.service import run_service

        run_service(payload, telemetry=hub)
        trace = None  # the service trace has no busy intervals to plot
    else:
        from repro.serving.frontend import ServingEngine, ServingSpec

        result = ServingEngine(
            ServingSpec.from_payload(payload), telemetry=hub
        ).run()
        trace = result.trace

    alerts = hub.alert_report()
    metering = hub.metering_report()
    lines = [
        f"monitor: {len(hub.scraper.samples)} scrape(s) every "
        f"{interval:g} virtual ms ({config_path.name})",
        "",
    ]
    lines.extend(hub.scraper.tail_lines())
    if trace is not None and trace.intervals:
        lines.append("")
        lines.extend(utilization_sparklines(trace))
    lines.append("")
    if alerts["log"]:
        lines.append(f"alerts ({alerts['firings']} firing(s)):")
        for entry in alerts["log"]:
            resolved = (
                f"resolved at {entry['resolved_at_ms']:g} ms"
                if entry["resolved_at_ms"] is not None
                else "still firing at quiescence"
            )
            lines.append(
                f"  {entry['rule']} [{entry['kind']}] fired at "
                f"{entry['fired_at_ms']:g} ms, {resolved}"
            )
    else:
        lines.append(f"alerts: none fired ({len(alerts['rules'])} rule(s))")
    lines.append("")
    lines.append(hub.meter.format_report(metering))

    if args.out:
        series_path = Path(args.out)
        series_path.write_text(hub.scraper.series_jsonl())
        lines.append(f"\n[scrape series written to {series_path}]")
    if getattr(args, "prom", None):
        prom_path = Path(args.prom)
        prom_path.write_text(hub.scraper.prometheus_text())
        lines.append(f"[prometheus exposition written to {prom_path}]")
    if args.json:
        report = {
            "schema": 1,
            "scrape_interval_ms": interval,
            "scrapes": len(hub.scraper.samples),
            "alerts": alerts,
            "metering": metering,
            "peak_queue_depth": hub.peak_queue_depth(),
        }
        json_path = Path(args.json)
        json_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        lines.append(f"[monitor report written to {json_path}]")
    return "\n".join(lines)


def _demo(seed: int) -> str:
    """A guided tour: run NASPipe on a short stream, narrate the first
    events, then show the schedule as a Gantt chart and sparklines."""
    from repro.baselines import naspipe
    from repro.engines.pipeline import PipelineEngine
    from repro.seeding import SeedSequenceTree
    from repro.sim.cluster import ClusterSpec
    from repro.supernet.sampler import SubnetStream
    from repro.supernet.search_space import get_search_space
    from repro.supernet.supernet import Supernet
    from repro.viz import ascii_gantt, utilization_sparklines

    space = get_search_space("NLP.c2")
    supernet = Supernet(space)
    stream = SubnetStream.sample_generational(
        space, SeedSequenceTree(seed), 40
    )
    narration = []

    def listener(kind, stage, subnet_id, time):
        if len(narration) < 14 and kind in ("fwd-start", "subnet-complete"):
            narration.append(
                f"  t={time:8.1f}ms  {kind:>15s}  SN{subnet_id:<3d} @P{stage}"
            )

    engine = PipelineEngine(
        supernet, stream, naspipe(), ClusterSpec(num_gpus=4),
        event_listener=listener,
    )
    result = engine.run()
    lines = [
        f"NASPipe demo — {space.name}, 4 simulated GPUs, 40 subnets",
        "",
        "first events:",
        *narration,
        "",
        "schedule (first quarter):",
        ascii_gantt(result.trace, width=96, end=result.trace.makespan / 4),
        "",
        "GPU utilisation over the whole run:",
        utilization_sparklines(result.trace, buckets=80),
        "",
        result.summary(),
    ]
    return "\n".join(lines)


def _repro_check(seed: int) -> str:
    """Quick bitwise-reproducibility self-check (the artifact's core
    experiment): CSP on 1 vs 4 GPUs must match sequential exactly."""
    from repro.replay import execute_manifest, record_run

    lines = ["Reproducibility self-check (CSP vs sequential, 1 vs 4 GPUs)"]
    manifest = record_run(
        "NLP.c2",
        "NASPipe",
        space_overrides={"num_blocks": 16, "functional_width": 16},
        num_gpus=4,
        seed=seed,
        steps=32,
        batch=32,
    )
    single = record_run(
        "NLP.c2",
        "NASPipe",
        space_overrides={"num_blocks": 16, "functional_width": 16},
        num_gpus=1,
        seed=seed,
        steps=32,
        batch=32,
    )
    if manifest.digest == single.digest:
        lines.append(f"PASS: digests match ({manifest.digest[:16]}…)")
    else:
        lines.append(
            f"FAIL: {manifest.digest[:16]}… != {single.digest[:16]}…"
        )
    replay = execute_manifest(manifest)
    lines.append(
        "PASS: replay reproduced the 4-GPU run bitwise"
        if replay.digest == manifest.digest
        else "FAIL: replay diverged"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="naspipe",
        description="NASPipe reproduction — regenerate paper tables/figures",
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS
        + (
            "trace",
            "analyze",
            "compare",
            "faults",
            "chaos",
            "chaos-fleet",
            "serve",
            "bench-serving",
            "monitor",
            "all",
            "list",
        ),
        help="which table/figure to regenerate ('trace' exports a "
        "Perfetto-compatible run trace; 'analyze' prints the "
        "critical-path breakdown and what-if projections; 'compare' "
        "diffs two registry records; 'faults' runs a fault-injection "
        "scenario with recovery; 'chaos' runs a seeded randomized "
        "robustness sweep; 'chaos-fleet' runs seeded preemption storms "
        "against a multi-tenant fleet and checks the recovery "
        "invariants; 'serve' runs a multi-tenant job mix on a "
        "shared fleet; 'bench-serving' runs the subnet-evaluation "
        "serving benchmark with latency percentiles and SLO stats; "
        "'monitor' runs a service/serving config with the live "
        "telemetry plane armed — deterministic scrapes, alerts and "
        "per-tenant usage metering)",
    )
    parser.add_argument(
        "config",
        nargs="?",
        help="trace/analyze/faults/chaos/chaos-fleet/serve: JSON run "
        "config (see examples/trace_demo.json, examples/faults_demo.json, "
        "examples/chaos_demo.json, examples/chaos_fleet_demo.json and "
        "examples/serve_demo.json); "
        "compare: run A (record file or run_id prefix)",
    )
    parser.add_argument(
        "config2",
        nargs="?",
        help="compare: run B (record file or run_id prefix)",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="experiment size (small: CI-friendly; paper: full streams)",
    )
    parser.add_argument(
        "--spaces",
        nargs="*",
        help="restrict to these search spaces (e.g. NLP.c1 CV.c2)",
    )
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write row-list experiments as CSV into this directory",
    )
    parser.add_argument(
        "--scores",
        action="store_true",
        help="table2: add the Score column (scaled functional runs; slower)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="scheduler-cost: run the stream-scaling benchmark and write "
        "its payload (BENCH_scheduler.json) here; faults: write the "
        "machine-readable availability summary here; chaos: write the "
        "machine-readable sweep report here; chaos-fleet: write the "
        "canonical fleet storm report here; serve: write the canonical "
        "service report here (byte-deterministic); bench-serving: write "
        "the canonical serving benchmark (BENCH_serving.json) here",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=10,
        help="chaos: number of seeded fault schedules per GPU count",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="scheduler-cost: fail (exit 1) if mean per-call time "
        "regresses >2x against this committed baseline JSON; "
        "bench-serving: fail if p99 latency or throughput regresses >2x "
        "against it (plus bitwise determinism checks)",
    )
    parser.add_argument(
        "--stream-lens",
        type=int,
        nargs="*",
        help="scheduler-cost: stream lengths for the scaling benchmark",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="trace: write the Chrome trace JSON here "
        "(default run.trace.json)",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="trace: also print the bubble-attribution run summary",
    )
    parser.add_argument(
        "--summary-json",
        metavar="PATH",
        help="trace: write the run summary as canonical JSON here "
        "(deterministic; the registry's input format)",
    )
    parser.add_argument(
        "--sweep-gpus",
        type=int,
        nargs="*",
        help="analyze: repeat the analysis at these GPU counts "
        "(default: the config's num_gpus)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze/chaos: shard the sweep across N worker processes; "
        "the merged output is byte-identical to a serial run",
    )
    parser.add_argument(
        "--register",
        action="store_true",
        help="analyze: append the run record to the registry",
    )
    parser.add_argument(
        "--registry",
        metavar="PATH",
        help="analyze/compare: registry JSONL path "
        "(default .naspipe/runs.jsonl)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="serve: re-run every job alone and require each digest to "
        "match its shared-fleet run bitwise (overrides the config's "
        "verify_solo)",
    )
    parser.add_argument(
        "--rules",
        metavar="PATH",
        help="monitor: JSON alert-rule file (default: built-in rules, "
        "silent on healthy runs — see docs/TELEMETRY.md)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        metavar="MS",
        help="monitor: scrape interval in virtual milliseconds "
        "(default 100)",
    )
    parser.add_argument(
        "--prom",
        metavar="PATH",
        help="monitor: write the final Prometheus text exposition here "
        "(virtual timestamps omitted; byte-deterministic)",
    )
    parser.add_argument(
        "--fail-on-regression",
        type=float,
        metavar="PCT",
        help="compare: exit non-zero when run B's makespan or bubble "
        "ratio is worse than run A's by more than PCT percent "
        "(100 = the 2x CI gate)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print(
            "\n".join(
                _EXPERIMENTS
                + (
                    "trace",
                    "analyze",
                    "compare",
                    "faults",
                    "chaos",
                    "chaos-fleet",
                    "serve",
                    "bench-serving",
                    "monitor",
                )
            )
        )
        return 0

    if args.experiment == "trace":
        if not args.config:
            parser.error("trace requires a JSON run config path")
        print(_trace(args))
        return 0

    if args.experiment == "analyze":
        if not args.config:
            parser.error("analyze requires a JSON run config path")
        print(_analyze(args))
        return 0

    if args.experiment == "compare":
        if not args.config or not args.config2:
            parser.error("compare requires two run references")
        print(_compare(args))
        return 0

    if args.experiment == "faults":
        if not args.config:
            parser.error("faults requires a JSON run config path")
        print(_faults(args))
        return 0

    if args.experiment == "chaos":
        if not args.config:
            parser.error("chaos requires a JSON run config path")
        print(_chaos(args))
        return 0

    if args.experiment == "chaos-fleet":
        if not args.config:
            parser.error("chaos-fleet requires a JSON fleet config path")
        print(_chaos_fleet(args))
        return 0

    if args.experiment == "serve":
        if not args.config:
            parser.error("serve requires a JSON jobs config path")
        print(_serve(args))
        return 0

    if args.experiment == "bench-serving":
        if not args.config:
            parser.error("bench-serving requires a JSON serving config path")
        print(_bench_serving(args))
        return 0

    if args.experiment == "monitor":
        if not args.config:
            parser.error("monitor requires a JSON service/serving config path")
        print(_monitor(args))
        return 0

    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(_run_one(name, args))
        print(f"[{name} in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
