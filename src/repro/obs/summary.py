"""Deterministic run summaries with per-stage bubble attribution.

The paper reports the bubble ratio as one number per run (Table 2's
"Bub." column); this module decomposes the same idle time by *cause*,
per stage:

* **startup** — idle before the stage's first compute task (pipeline
  fill / ramp);
* **fetch_stall** — recorded stall intervals: synchronous parameter
  swap-ins, operator migrations and OOM retries;
* **csp_wait** — idle overlapping an open CSP wait window (the stage
  had queued forwards but every candidate was blocked by an unreleased
  causal dependency — the scheduling cost of Definition 2);
* **drain** — idle after the stage's last compute task (pipeline drain);
* **other_idle** — the remainder (empty queues mid-run: upstream
  starvation or transfer latency).

The five per-stage terms sum to the stage's idle time *exactly* (the
remainder term balances by construction), so the mean attribution across
stages reproduces ``ExecutionTrace.bubble_ratio()`` to float precision —
the invariant the exporter tests enforce at 1e-9.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from decimal import ROUND_HALF_EVEN, Decimal
from typing import Dict, List, Tuple

from repro.sim.trace import ExecutionTrace

__all__ = [
    "WaitWindow",
    "StageBubbles",
    "csp_wait_windows",
    "bubble_attribution",
    "run_summary",
    "summary_json",
    "format_summary",
]

_Segment = Tuple[float, float]


@dataclass(frozen=True)
class WaitWindow:
    """One CSP wait: the stage's forward queue was dependency-blocked."""

    stage: int
    start: float
    end: float
    blocked: int  # queue-head subnet that could not run
    blocking_subnet: int  # earlier subnet holding the layer
    block: int  # choice-block index of the blocking layer
    choice: int  # candidate index of the blocking layer


def csp_wait_windows(trace: ExecutionTrace) -> Dict[int, List[WaitWindow]]:
    """Pair ``csp_wait_begin``/``csp_wait_end`` events into windows per
    stage; a wait still open at the end of the run closes at
    ``trace.end_time``."""
    windows: Dict[int, List[WaitWindow]] = {}
    open_waits: Dict[int, object] = {}
    for event in trace.events:
        if event.kind == "csp_wait_begin":
            open_waits[event.stage] = event
        elif event.kind == "csp_wait_end":
            begin = open_waits.pop(event.stage, None)
            if begin is None:
                continue
            windows.setdefault(event.stage, []).append(
                _window_from(begin, event.time)
            )
    for stage, begin in sorted(open_waits.items()):
        windows.setdefault(stage, []).append(_window_from(begin, trace.end_time))
    return windows


def _window_from(begin, end: float) -> WaitWindow:
    attrs = begin.attrs_dict
    return WaitWindow(
        stage=begin.stage,
        start=begin.time,
        end=end,
        blocked=begin.subnet_id,
        blocking_subnet=int(attrs.get("blocking_subnet", -1)),
        block=int(attrs.get("block", -1)),
        choice=int(attrs.get("choice", -1)),
    )


# ----------------------------------------------------------------------
# interval arithmetic
# ----------------------------------------------------------------------
def _merge(segments: List[_Segment]) -> List[_Segment]:
    merged: List[_Segment] = []
    for start, end in sorted(segments):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _complement(segments: List[_Segment], lo: float, hi: float) -> List[_Segment]:
    """Gaps of merged ``segments`` inside ``[lo, hi]``."""
    gaps: List[_Segment] = []
    cursor = lo
    for start, end in segments:
        if start > cursor:
            gaps.append((cursor, min(start, hi)))
        cursor = max(cursor, end)
        if cursor >= hi:
            break
    if cursor < hi:
        gaps.append((cursor, hi))
    return [(s, e) for s, e in gaps if e > s]


def _overlap(a: List[_Segment], b: List[_Segment]) -> float:
    """Total overlap length between two merged segment lists."""
    total = 0.0
    j = 0
    for start, end in a:
        while j < len(b) and b[j][1] <= start:
            j += 1
        k = j
        while k < len(b) and b[k][0] < end:
            total += min(end, b[k][1]) - max(start, b[k][0])
            k += 1
    return total


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageBubbles:
    """One stage's idle-time decomposition (all values virtual ms)."""

    stage: int
    makespan_ms: float
    busy_ms: float
    idle_ms: float
    startup_ms: float
    fetch_stall_ms: float
    csp_wait_ms: float
    drain_ms: float
    other_idle_ms: float

    def fractions(self) -> Dict[str, float]:
        """Idle categories as fractions of the makespan; they sum to
        this stage's idle fraction."""
        if self.makespan_ms <= 0:
            return {
                "startup": 0.0,
                "fetch_stall": 0.0,
                "csp_wait": 0.0,
                "drain": 0.0,
                "other_idle": 0.0,
            }
        return {
            "startup": self.startup_ms / self.makespan_ms,
            "fetch_stall": self.fetch_stall_ms / self.makespan_ms,
            "csp_wait": self.csp_wait_ms / self.makespan_ms,
            "drain": self.drain_ms / self.makespan_ms,
            "other_idle": self.other_idle_ms / self.makespan_ms,
        }


def bubble_attribution(trace: ExecutionTrace) -> List[StageBubbles]:
    """Decompose every stage's idle time by cause.

    Precedence inside each idle segment: recorded stalls first (they are
    explicit hardware waits), then position (before first compute =
    startup, after last = drain), then CSP wait overlap, then remainder.
    ``other_idle`` balances exactly, so per stage
    ``startup + fetch_stall + csp_wait + drain + other_idle == idle``.
    """
    makespan = trace.makespan
    waits = csp_wait_windows(trace)
    per_stage: List[StageBubbles] = []
    for stage in range(trace.num_gpus):
        compute = _merge(
            [
                (i.start, i.end)
                for i in trace.intervals
                if i.gpu_id == stage and i.kind in ("fwd", "bwd")
            ]
        )
        stalls = _merge(
            [
                (i.start, i.end)
                for i in trace.intervals
                if i.gpu_id == stage and i.kind == "stall"
            ]
        )
        wait_segments = _merge([(w.start, w.end) for w in waits.get(stage, [])])
        busy = trace.busy_time(stage, compute_only=True)
        idle = max(0.0, makespan - busy)

        if makespan <= 0:
            per_stage.append(
                StageBubbles(stage, 0.0, busy, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
            )
            continue

        first_compute = compute[0][0] if compute else trace.end_time
        last_compute = compute[-1][1] if compute else trace.end_time
        startup = fetch_stall = csp_wait = drain = 0.0
        for gap in _complement(compute, trace.start_time, trace.end_time):
            stalled = _overlap([gap], stalls)
            fetch_stall += stalled
            remainder = (gap[1] - gap[0]) - stalled
            if remainder <= 0:
                continue
            if gap[1] <= first_compute:
                # Fill phase: idle before the stage's first task (minus
                # any stall already attributed above).
                startup += remainder
            elif gap[0] >= last_compute:
                drain += remainder
            else:
                waited = min(remainder, _overlap([gap], wait_segments))
                csp_wait += waited
        other = idle - startup - fetch_stall - csp_wait - drain
        per_stage.append(
            StageBubbles(
                stage=stage,
                makespan_ms=makespan,
                busy_ms=busy,
                idle_ms=idle,
                startup_ms=startup,
                fetch_stall_ms=fetch_stall,
                csp_wait_ms=csp_wait,
                drain_ms=drain,
                other_idle_ms=other,
            )
        )
    return per_stage


def run_summary(result) -> Dict[str, object]:
    """Deterministic summary dict for one :class:`PipelineResult`.

    ``bubble_attribution`` holds mean fractions across stages; their sum
    equals ``bubble_ratio`` to float precision (tested at 1e-9).
    """
    # Lazy import: critical_path imports csp_wait_windows from this
    # module, so a top-level import here would be a cycle.
    from repro.obs.critical_path import critical_path_breakdown

    trace: ExecutionTrace = result.trace
    cp_share = critical_path_breakdown(trace)["per_stage_share"]
    stages = bubble_attribution(trace)
    mean: Dict[str, float] = {
        "startup": 0.0,
        "fetch_stall": 0.0,
        "csp_wait": 0.0,
        "drain": 0.0,
        "other_idle": 0.0,
    }
    for stage in stages:
        for key, value in stage.fractions().items():
            mean[key] += value
    if stages:
        for key in mean:
            mean[key] /= len(stages)
    return {
        "schema": 1,
        "system": result.system,
        "space": result.space,
        "num_gpus": result.num_gpus,
        "batch": result.batch,
        "makespan_ms": trace.makespan,
        "subnets_completed": result.subnets_completed,
        "throughput_samples_per_sec": result.throughput_samples_per_sec,
        "bubble_ratio": trace.bubble_ratio(),
        "bubble_attribution": mean,
        "per_stage": [
            {
                "stage": stage.stage,
                "busy_ms": stage.busy_ms,
                "idle_ms": stage.idle_ms,
                "startup_ms": stage.startup_ms,
                "fetch_stall_ms": stage.fetch_stall_ms,
                "csp_wait_ms": stage.csp_wait_ms,
                "drain_ms": stage.drain_ms,
                "other_idle_ms": stage.other_idle_ms,
                # this stage's share of the run's critical path — the
                # same number the text rendering prints, so the two
                # summaries cannot disagree
                "cp_share": cp_share.get(str(stage.stage), 0.0),
            }
            for stage in stages
        ],
        "cache": {
            "hits": trace.cache_hits,
            "misses": trace.cache_misses,
            "hit_rate": trace.cache_hit_rate(),
        },
        "total_alu": result.total_alu,
        "mean_exec_ms": result.mean_exec_ms,
        "event_counts": trace.event_counts(),
    }


def summary_json(summary: Dict[str, object]) -> str:
    """Canonical single-line JSON for a summary dict — sorted keys, no
    whitespace, trailing newline; byte-identical across identical runs
    (the ``naspipe trace --summary-json`` and registry serialisation)."""
    return json.dumps(summary, sort_keys=True, separators=(",", ":")) + "\n"


def _pct(fraction: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string, rounding **half-even in
    decimal space**.  ``f"{x:.1f}"`` is only half-even on the binary
    float, so ``0.065 * 100`` (stored as 6.50000...2) rounds up while
    6.45 (stored as 6.4499...) rounds down — effectively unpredictable
    per value.  Going through :class:`~decimal.Decimal` makes ties
    behave: 6.25% -> 6.2%, 6.75% -> 6.8%."""
    quantum = Decimal(1).scaleb(-digits)
    value = (Decimal(repr(float(fraction))) * 100).quantize(
        quantum, rounding=ROUND_HALF_EVEN
    )
    return f"{value}%"


def format_summary(summary: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`run_summary` (stable layout).

    Every percentage goes through :func:`_pct` (decimal half-even), and
    the stage rows print the same ``cp_share`` the JSON summary carries."""
    attribution = summary["bubble_attribution"]
    lines = [
        "run summary — {system} on {space}, D={num_gpus}, batch={batch}".format(
            **summary
        ),
        f"  makespan       {summary['makespan_ms']:.1f} ms "
        f"({summary['subnets_completed']} subnets, "
        f"{summary['throughput_samples_per_sec']:.1f} samples/s)",
        f"  bubble ratio   {summary['bubble_ratio']:.4f}",
        "  bubble attribution (mean fraction of makespan per stage):",
    ]
    for key in ("startup", "csp_wait", "fetch_stall", "drain", "other_idle"):
        lines.append(
            f"    {key:<12s} {attribution[key]:.4f} ({_pct(attribution[key]):>6s})"
        )
    lines.append(
        "  stage  busy_ms  startup  csp_wait  fetch_stall  drain  other"
        "  cp_share"
    )
    for row in summary["per_stage"]:
        lines.append(
            "  P{stage:<4d} {busy_ms:8.1f} {startup_ms:8.1f} {csp_wait_ms:9.1f} "
            "{fetch_stall_ms:11.1f} {drain_ms:6.1f} {other_idle_ms:6.1f}".format(
                **row
            )
            + f"  {_pct(row.get('cp_share', 0.0)):>8s}"
        )
    cache = summary["cache"]
    hit = _pct(cache["hit_rate"]) if cache["hit_rate"] is not None else "N/A"
    lines.append(
        f"  cache          {cache['hits']} hits / {cache['misses']} misses ({hit})"
    )
    counts = summary["event_counts"]
    lines.append(
        "  events         "
        + " ".join(f"{kind}={count}" for kind, count in counts.items())
    )
    return "\n".join(lines)
