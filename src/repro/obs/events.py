"""The trace event schema registry — one entry per emitted event kind.

This module is the machine-readable contract behind ``docs/TRACING.md``:
every :class:`~repro.sim.trace.TraceEvent` an instrumented run emits must
match a schema here (kind known, stage/subnet scoping respected, attrs
exactly the declared fields with the declared types).  The exporter and
the golden-file tests both validate against it, so a new emission site
cannot silently invent an undocumented event shape.

Conventions shared by all events:

* ``time`` — virtual milliseconds on the simulation clock;
* ``stage`` — pipeline stage / GPU index, ``-1`` for run-global events;
* ``subnet_id`` — sequence ID of the subnet involved, ``-1`` when the
  event is not tied to one subnet;
* byte quantities are plain bytes, durations are virtual ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.trace import ExecutionTrace, TraceEvent

__all__ = [
    "EventField",
    "EventSchema",
    "EVENT_SCHEMAS",
    "validate_event",
    "validate_trace",
]

_NUMBER = (int, float)
_BOOL = (bool,)
_INT = (int,)
_STR = (str,)


@dataclass(frozen=True)
class EventField:
    """One attr of an event kind: name, accepted types, meaning."""

    name: str
    types: Tuple[type, ...]
    doc: str


@dataclass(frozen=True)
class EventSchema:
    """Contract for one event kind."""

    kind: str
    emitter: str  # module that records it
    doc: str
    fields: Tuple[EventField, ...] = ()
    stage_scoped: bool = True  # stage must be >= 0
    subnet_scoped: bool = False  # subnet_id must be >= 0

    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)


def _schema(
    kind: str,
    emitter: str,
    doc: str,
    *fields: EventField,
    stage_scoped: bool = True,
    subnet_scoped: bool = False,
) -> EventSchema:
    return EventSchema(kind, emitter, doc, tuple(fields), stage_scoped, subnet_scoped)


#: Every event kind an instrumented run may emit.  ``docs/TRACING.md``
#: documents the same registry in prose; a test asserts the two agree.
EVENT_SCHEMAS: Dict[str, EventSchema] = {
    schema.kind: schema
    for schema in (
        _schema(
            "task_dispatch",
            "repro.engines.pipeline",
            "A fwd/bwd task was dispatched to a stage's GPU; start may "
            "exceed the event time by migration/swap-in stall time.",
            EventField("direction", _STR, '"fwd" or "bwd"'),
            EventField("start", _NUMBER, "compute start (virtual ms)"),
            EventField("end", _NUMBER, "compute end (virtual ms)"),
            subnet_scoped=True,
        ),
        _schema(
            "task_done",
            "repro.engines.pipeline",
            "A dispatched task's compute completed; the stage is free.",
            EventField("direction", _STR, '"fwd" or "bwd"'),
            subnet_scoped=True,
        ),
        _schema(
            "csp_wait_begin",
            "repro.engines.policies.csp",
            "The stage has queued forwards but none is CSP-clear; the "
            "blocking (subnet, layer) edge names the unreleased "
            "dependency stalling the queue head.",
            EventField("blocking_subnet", _INT, "earlier subnet holding the layer"),
            EventField("block", _INT, "choice-block index of the blocking layer"),
            EventField("choice", _INT, "candidate index of the blocking layer"),
            subnet_scoped=True,
        ),
        _schema(
            "csp_wait_end",
            "repro.engines.policies.csp",
            "A forward became schedulable at a stage with an open CSP "
            "wait; subnet_id is the subnet actually selected.",
            EventField("waited_ms", _NUMBER, "wait window length (virtual ms)"),
            subnet_scoped=True,
        ),
        _schema(
            "ready_set",
            "repro.engines.policies.csp",
            "Counter: size of the stage's CSP readiness index after a "
            "scheduling decision (index mode only; samples dedup to "
            "changes).",
            EventField("size", _INT, "ready subnet count"),
        ),
        _schema(
            "queue_depth",
            "repro.core.runtime",
            "Counter: stage queue depths after any queue mutation.",
            EventField("fwd", _INT, "forward queue (L_q) length"),
            EventField("bwd", _INT, "backward-ready list length"),
        ),
        _schema(
            "prefetch_issue",
            "repro.core.context_manager",
            "An async parameter copy was enqueued on the stage's copy "
            "engine (predictor prefetch or demand miss).",
            EventField("block", _INT, "choice-block index"),
            EventField("choice", _INT, "candidate index"),
            EventField("nbytes", _INT, "parameter bytes copied"),
            EventField("demand", _BOOL, "True when a task miss issued it"),
            EventField("land", _NUMBER, "completion time (virtual ms)"),
        ),
        _schema(
            "prefetch_land",
            "repro.core.context_manager",
            "The copy issued by the matching prefetch_issue completed; "
            "timestamped at landing time.",
            EventField("block", _INT, "choice-block index"),
            EventField("choice", _INT, "candidate index"),
            EventField("nbytes", _INT, "parameter bytes copied"),
            EventField("demand", _BOOL, "True when a task miss issued it"),
        ),
        _schema(
            "eviction",
            "repro.core.context_manager",
            "A layer left the stage's parameter cache (LRU pressure, the "
            "paper's explicit EVICT call, or OOM reclaim); dirty entries "
            "pay a write-back copy.",
            EventField("block", _INT, "choice-block index"),
            EventField("choice", _INT, "candidate index"),
            EventField("nbytes", _INT, "parameter bytes freed"),
            EventField("dirty", _BOOL, "True when written back to CPU"),
            EventField("reason", _STR, '"lru", "evict" or "reclaim"'),
        ),
        _schema(
            "cache_access",
            "repro.core.context_manager",
            "Counter: per-task residency check outcome (Table 2's "
            "cache-hit metric accumulates these).",
            EventField("hits", _INT, "layers found resident"),
            EventField("misses", _INT, "layers absent or still in flight"),
        ),
        _schema(
            "fetch_stall",
            "repro.engines.pipeline",
            "A task's layers were not resident at dispatch; the GPU "
            "idles until the copy lands (recorded as a stall interval "
            "too).",
            EventField("wait_ms", _NUMBER, "synchronous stall length"),
            EventField("misses", _INT, "missing layer count"),
            subnet_scoped=True,
        ),
        _schema(
            "migration",
            "repro.engines.pipeline",
            "On-demand operator migration (mirror_mode=migrate): layer "
            "parameters moved between stages on the critical path "
            "(paper §2.3's rejected design).",
            EventField("delay_ms", _NUMBER, "synchronous migration cost"),
        ),
        _schema(
            "oom_retry",
            "repro.engines.pipeline",
            "Simulated CUDA OOM at task start: cache reclaimed, task "
            "re-executed after a fixed penalty (paper §4.2).",
            EventField("penalty_ms", _NUMBER, "retry penalty"),
            EventField("retry_at", _NUMBER, "re-dispatch time (virtual ms)"),
            subnet_scoped=True,
        ),
        _schema(
            "nic_transfer",
            "repro.engines.pipeline",
            "An activation (fwd) or gradient (bwd) boundary tensor was "
            "enqueued on an inter-stage link; arrive includes queueing "
            "and latency.",
            EventField("src", _INT, "sending stage"),
            EventField("dst", _INT, "receiving stage"),
            EventField("nbytes", _INT, "boundary tensor bytes"),
            EventField("arrive", _NUMBER, "delivery time (virtual ms)"),
            EventField("direction", _STR, '"fwd" or "bwd"'),
            subnet_scoped=True,
        ),
        _schema(
            "subnet_inject",
            "repro.engines.pipeline",
            "A subnet descriptor was retrieved from the stream and "
            "admitted into the pipeline.",
            stage_scoped=False,
            subnet_scoped=True,
        ),
        _schema(
            "subnet_complete",
            "repro.sim.trace",
            "The subnet's final backward committed at stage 0; the "
            "subnet left the pipeline.",
            stage_scoped=False,
            subnet_scoped=True,
        ),
        _schema(
            "bulk_flush",
            "repro.engines.policies.bsp",
            "BSP barrier: every subnet of the current bulk drained and "
            "its buffered updates flushed in sequence-ID order.",
            EventField("bulk", _INT, "subnets flushed"),
            EventField("flush_index", _INT, "1-based flush ordinal"),
            stage_scoped=False,
        ),
        _schema(
            "staleness_hold",
            "repro.engines.policies.asp",
            "SSP gate: the queue head exceeds the staleness bound over "
            "the oldest unfinished subnet (one event per distinct hold).",
            EventField("oldest_unfinished", _INT, "current lag reference"),
            EventField("staleness", _INT, "configured bound"),
            subnet_scoped=True,
        ),
        _schema(
            "run_meta",
            "repro.engines.pipeline",
            "Run-global configuration snapshot emitted once at engine "
            "construction: the static facts critical-path analysis and "
            "what-if projection need that no later event carries.",
            EventField("system", _STR, "system configuration name"),
            EventField("num_stages", _INT, "pipeline depth"),
            EventField("batch", _INT, "training batch size"),
            EventField("window", _INT, "policy in-flight subnet window"),
            EventField("sync", _STR, '"csp", "bsp", "asp" or "ssp"'),
            stage_scoped=False,
        ),
        _schema(
            "link_meta",
            "repro.engines.pipeline",
            "Per-link parameters emitted once at engine construction "
            "(one event per direction per adjacent-stage pair); the "
            "what-if NIC model replays FIFO queueing from these.",
            EventField("src", _INT, "sending stage"),
            EventField("dst", _INT, "receiving stage"),
            EventField(
                "bandwidth", _NUMBER, "link bandwidth (bytes per virtual ms)"
            ),
            EventField("latency", _NUMBER, "per-transfer latency (virtual ms)"),
            stage_scoped=False,
        ),
        _schema(
            "sim_quiescent",
            "repro.sim.engine",
            "The discrete-event queue drained; the schedule is complete.",
            EventField("events_processed", _INT, "cumulative sim events"),
            stage_scoped=False,
        ),
        # -- fault tolerance (repro.ft) --------------------------------
        _schema(
            "fault_inject",
            "repro.ft.injector",
            "A scheduled fault fired on the simulation clock; the "
            "kind-specific effect (crash, link degrade, copy stall, "
            "transient arm) follows immediately.",
            EventField("fault", _STR, "fault kind (see repro.ft.faults)"),
            EventField("target", _INT, "stage / host / link index"),
            EventField("duration_ms", _NUMBER, "effect window (0 = point)"),
            EventField("magnitude", _NUMBER, "kind-specific severity"),
            stage_scoped=False,
        ),
        _schema(
            "gpu_down",
            "repro.engines.pipeline",
            "Fail-stop: the stage's GPU (or its whole host) died; "
            "in-flight work on it vanished and the run is interrupted.",
            EventField("cause", _STR, '"gpu_crash" or "host_crash"'),
            EventField("down_ms", _NUMBER, "declared outage length"),
        ),
        _schema(
            "gpu_up",
            "repro.ft.recovery",
            "A recovered attempt brought this stage online (possibly on "
            "a different GPU count than the crashed attempt).",
            EventField("attempt", _INT, "1-based attempt number"),
        ),
        _schema(
            "checkpoint_begin",
            "repro.ft.checkpoint",
            "The completion frontier reached an open cut; the consistent "
            "snapshot (store overlaid with the cut's undo log) starts "
            "serialising.",
            EventField("cut", _INT, "cut point (next subnet ID to train)"),
            stage_scoped=False,
        ),
        _schema(
            "checkpoint_commit",
            "repro.ft.checkpoint",
            "The cut's parameters, optimizer velocity and RNG state are "
            "durable on disk; recovery may resume from here.",
            EventField("cut", _INT, "cut point (next subnet ID to train)"),
            EventField("layers", _INT, "materialised layers captured"),
            EventField("nbytes", _INT, "serialised array bytes"),
            stage_scoped=False,
        ),
        _schema(
            "recovery_begin",
            "repro.ft.recovery",
            "A restarted attempt begins: state restored from the latest "
            "consistent cut, stream resumed at the cut with original "
            "sequence IDs.",
            EventField("cut", _INT, "resume point"),
            EventField("attempt", _INT, "1-based attempt number"),
            EventField("gpus", _INT, "GPU count of this attempt"),
            stage_scoped=False,
        ),
        _schema(
            "recovery_done",
            "repro.ft.recovery",
            "The restarted attempt is ready to dispatch: restart "
            "downtime charged, prefetch caches re-warmed.",
            EventField("cut", _INT, "resume point"),
            EventField("attempt", _INT, "1-based attempt number"),
            EventField("latency_ms", _NUMBER, "downtime + re-warm cost"),
            EventField("rewarmed", _INT, "layers prefetched before resume"),
            stage_scoped=False,
        ),
        _schema(
            "task_retry",
            "repro.engines.pipeline",
            "A transient task error (repro.ft fault injection) failed "
            "this dispatch; the stage stalls for an exponential backoff "
            "and retries.",
            EventField("attempt", _INT, "consecutive failures at the stage"),
            EventField("delay_ms", _NUMBER, "backoff before the retry"),
            EventField("direction", _STR, '"fwd" or "bwd"'),
            subnet_scoped=True,
        ),
        # -- graceful degradation (repro.ft.degradation) ---------------
        _schema(
            "health_report",
            "repro.ft.degradation",
            "The health monitor's EWMA estimate for a stage, link or "
            "copy engine crossed a hysteresis threshold; one event per "
            "status transition.",
            EventField("scope", _STR, '"stage", "link" or "copy"'),
            EventField("index", _INT, "stage / link index within the scope"),
            EventField(
                "status",
                _STR,
                '"healthy"/"straggler" (stage), "nominal"/"degraded" '
                '(link), "nominal"/"stalled" (copy)',
            ),
            EventField("metric", _NUMBER, "EWMA value at the transition"),
            EventField("reference", _NUMBER, "nominal value of the metric"),
            stage_scoped=False,
        ),
        _schema(
            "mitigation_apply",
            "repro.ft.degradation",
            "A degradation mitigation was applied or lifted at a safe "
            "decision point; the same entry lands in "
            "PipelineResult.mitigation_actions (and the run manifest).",
            EventField(
                "action",
                _STR,
                '"admission_cap", "prefetch_throttle" or "rebalance"',
            ),
            EventField("target", _INT, "stage index, -1 for run-global"),
            EventField("value", _NUMBER, "cap / flag / weight applied"),
            EventField("active", _BOOL, "True = applied, False = lifted"),
            stage_scoped=False,
        ),
        # -- service plane (repro.service) -----------------------------
        _schema(
            "job_submit",
            "repro.service.scheduler",
            "A job arrived in the service admission queue (its stream "
            "and functional plane are built at this instant).",
            EventField("job", _STR, "tenant job name"),
            EventField("priority", _INT, "fair-share weight (>= 1)"),
            EventField("subnets", _INT, "stream length requested"),
            EventField("min_gpus", _INT, "smallest acceptable allocation"),
            EventField("max_gpus", _INT, "allocation cap after clamping"),
            stage_scoped=False,
        ),
        _schema(
            "job_start",
            "repro.service.scheduler",
            "A queued job was admitted (or re-admitted after preemption) "
            "and leased GPUs; cut is the stream position it starts from.",
            EventField("job", _STR, "tenant job name"),
            EventField("gpus", _INT, "GPUs granted"),
            EventField("slots", _STR, "comma-joined physical slot ids"),
            EventField("cut", _INT, "stream cursor at admission"),
            stage_scoped=False,
        ),
        _schema(
            "job_resize",
            "repro.service.scheduler",
            "An elastic (CSP) job changed allocation at a segment "
            "boundary — a consistent cut, so its bits are unchanged.",
            EventField("job", _STR, "tenant job name"),
            EventField("gpus_from", _INT, "allocation before the cut"),
            EventField("gpus_to", _INT, "allocation after the cut"),
            EventField("cut", _INT, "stream cursor at the boundary"),
            stage_scoped=False,
        ),
        _schema(
            "job_preempt",
            "repro.service.scheduler",
            "A running job was squeezed to zero GPUs at a segment "
            "boundary by higher-priority tenants and re-queued; it "
            "resumes later from the cut.",
            EventField("job", _STR, "tenant job name"),
            EventField("gpus", _INT, "allocation it gave up"),
            EventField("cut", _INT, "stream cursor it will resume from"),
            stage_scoped=False,
        ),
        _schema(
            "job_done",
            "repro.service.scheduler",
            "The job's last segment drained; its loss digest is final "
            "(and, under CSP, bitwise equal to a solo run).",
            EventField("job", _STR, "tenant job name"),
            EventField("subnets", _INT, "subnets trained"),
            EventField("wait_ms", _NUMBER, "submit-to-first-start wait"),
            EventField("span_ms", _NUMBER, "submit-to-finish span"),
            EventField("segments", _INT, "engine incarnations used"),
            stage_scoped=False,
        ),
        _schema(
            "lease_revoke",
            "repro.service.scheduler",
            "A fleet fault (slot_preempt / node_down) struck a leased "
            "physical slot: the owning lease left the live set "
            "mid-segment with the fault recorded as its provenance.",
            EventField("job", _STR, "tenant holding the revoked lease"),
            EventField("lease", _INT, "revoked lease id"),
            EventField("slot", _INT, "physical fleet slot struck"),
            EventField("fault", _STR, '"slot_preempt" or "node_down"'),
            stage_scoped=False,
        ),
        _schema(
            "job_requeue",
            "repro.service.scheduler",
            "A rigid job's segment was aborted by a lease revocation "
            "(no mid-stream cut to drain to); it re-queues with "
            "exponential backoff to restart from subnet 0.",
            EventField("job", _STR, "tenant job name"),
            EventField("cut", _INT, "stream cursor it restarts from (0)"),
            EventField("restarts", _INT, "restarts consumed so far"),
            EventField("backoff_ms", _NUMBER, "requeue backoff applied"),
            EventField("fault", _STR, "fault kind that forced the abort"),
            stage_scoped=False,
        ),
        _schema(
            "job_failed",
            "repro.service.scheduler",
            "A rigid job exhausted its restart budget under fleet "
            "faults; that job fails (structured failure record in the "
            "report) while the fleet keeps running.",
            EventField("job", _STR, "tenant job name"),
            EventField("restarts", _INT, "restarts attempted"),
            EventField("lost_ms", _NUMBER, "virtual work discarded"),
            EventField("fault", _STR, "fault kind of the final abort"),
            stage_scoped=False,
        ),
        # -- serving plane (repro.serving) -----------------------------
        _schema(
            "request_arrive",
            "repro.serving.frontend",
            "An open-loop subnet-evaluation request reached the serving "
            "front-end; subnet_id is the request id.",
            EventField("digest", _STR, "subnet digest prefix (12 hex chars)"),
            stage_scoped=False,
            subnet_scoped=True,
        ),
        _schema(
            "request_admit",
            "repro.serving.frontend",
            "The request passed admission control and joined the "
            "batching queue.",
            EventField(
                "queue_depth", _INT, "in-system backlog after the admit"
            ),
            stage_scoped=False,
            subnet_scoped=True,
        ),
        _schema(
            "request_shed",
            "repro.serving.frontend",
            "The in-system backlog was at queue_bound; the request was "
            "rejected immediately (deterministic load shedding).",
            EventField(
                "queue_depth", _INT, "in-system backlog at the rejection"
            ),
            stage_scoped=False,
            subnet_scoped=True,
        ),
        _schema(
            "batch_form",
            "repro.serving.frontend",
            "A scoring batch was emitted by the bounded batcher (full, "
            "linger expiry, or end-of-workload drain).",
            EventField("batch", _INT, "0-based batch ordinal"),
            EventField("size", _INT, "requests in the batch"),
            EventField("cause", _STR, '"full", "linger" or "drain"'),
            EventField(
                "oldest_wait_ms", _NUMBER, "oldest member's queueing time"
            ),
            stage_scoped=False,
        ),
        _schema(
            "cache_hit",
            "repro.serving.frontend",
            "The request's subnet digest was resident in the result "
            "cache; it completes without touching the fleet.",
            EventField("tier", _STR, 'cache tier ("result")'),
            stage_scoped=False,
            subnet_scoped=True,
        ),
        _schema(
            "cache_miss",
            "repro.serving.frontend",
            "The request's subnet digest was absent from the result "
            "cache; it proceeds to admission and batching.",
            EventField("tier", _STR, 'cache tier ("result")'),
            stage_scoped=False,
            subnet_scoped=True,
        ),
        _schema(
            "request_retry",
            "repro.serving.frontend",
            "The request's in-flight batch was dissolved by a lease "
            "revocation; it re-queued at the batcher's front for a "
            "deterministic retry (shed instead if queue_bound was hit).",
            EventField("retries", _INT, "retries this request has taken"),
            EventField("batch", _INT, "ordinal of the dissolved batch"),
            stage_scoped=False,
            subnet_scoped=True,
        ),
        _schema(
            "rebalance",
            "repro.ft.degradation",
            "A straggler stage's partition weight changed; from the next "
            "subnet injection, balanced partitions shift layer "
            "boundaries away from the stage (replicas materialise via "
            "the mirror registry).",
            EventField("weight", _NUMBER, "cost weight (1.0 = nominal)"),
        ),
    )
}


def validate_event(event: TraceEvent) -> List[str]:
    """Schema-check one event; returns human-readable problems (empty =
    valid)."""
    schema = EVENT_SCHEMAS.get(event.kind)
    if schema is None:
        return [f"unknown event kind {event.kind!r}"]
    problems: List[str] = []
    if schema.stage_scoped and event.stage < 0:
        problems.append(f"{event.kind}: stage must be >= 0, got {event.stage}")
    if not schema.stage_scoped and event.stage != -1:
        problems.append(f"{event.kind}: run-global event carries stage {event.stage}")
    if schema.subnet_scoped and event.subnet_id < 0:
        problems.append(
            f"{event.kind}: subnet_id must be >= 0, got {event.subnet_id}"
        )
    attrs = event.attrs_dict
    declared = schema.field_names()
    missing = [name for name in declared if name not in attrs]
    extra = [name for name in attrs if name not in declared]
    if missing:
        problems.append(f"{event.kind}: missing attrs {missing}")
    if extra:
        problems.append(f"{event.kind}: undeclared attrs {extra}")
    for spec in schema.fields:
        if spec.name not in attrs:
            continue
        value = attrs[spec.name]
        # bool is an int subclass; only accept it where declared.
        if isinstance(value, bool) and bool not in spec.types:
            problems.append(
                f"{event.kind}.{spec.name}: bool where {spec.types} expected"
            )
        elif not isinstance(value, spec.types):
            problems.append(
                f"{event.kind}.{spec.name}: {type(value).__name__} "
                f"where {spec.types} expected"
            )
    return problems


def validate_trace(trace: ExecutionTrace) -> List[str]:
    """Schema-check every event of a trace (empty list = all valid)."""
    problems: List[str] = []
    for event in trace.events:
        problems.extend(validate_event(event))
    return problems
