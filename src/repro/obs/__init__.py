"""Run observability: trace event schema, Perfetto export, summaries.

``repro.obs`` turns the simulator's :class:`~repro.sim.trace.ExecutionTrace`
into inspectable artifacts:

* :mod:`repro.obs.events` — the machine-checked registry of every typed
  trace event (kind, fields, emitting module); ``docs/TRACING.md`` is the
  prose rendering of the same registry.
* :mod:`repro.obs.exporter` — Chrome Trace Event Format JSON (loadable
  in Perfetto / ``chrome://tracing``) with GPU, copy-engine, NIC and
  scheduler tracks plus cache/queue/ready-set counters.  Deterministic
  byte-for-byte across identical runs.
* :mod:`repro.obs.summary` — per-stage bubble attribution (startup vs
  CSP-wait vs fetch-stall vs drain) and a deterministic run summary; the
  attribution sums back to ``ExecutionTrace.bubble_ratio()`` exactly.
* :mod:`repro.obs.critical_path` — the task-DAG critical path of a run,
  attributed by resource class; tiles the makespan exactly (1e-9).
* :mod:`repro.obs.whatif` — analytic lower-bound projections ("zero
  fetch stalls", "infinite NIC", the ASP bound) plus a rerun hook.
* :mod:`repro.obs.registry` — append-only JSONL run registry with
  field-wise compare and CI regression gating.

Entry points: ``PipelineResult.trace_export()`` / ``.trace_summary()`` /
``.critical_path()`` / ``.what_if()``, the ``naspipe trace`` /
``analyze`` / ``compare`` CLI and ``make trace-demo`` / ``bench-obs``.
See ``docs/ANALYSIS.md`` for the analysis semantics.
"""

from repro.obs.events import (
    EVENT_SCHEMAS,
    EventField,
    EventSchema,
    validate_event,
    validate_trace,
)
from repro.obs.exporter import (
    export_chrome_trace,
    to_perfetto,
    validate_chrome_trace,
)
from repro.obs.summary import (
    StageBubbles,
    bubble_attribution,
    format_summary,
    run_summary,
    summary_json,
)
from repro.obs.critical_path import (
    RESOURCE_CLASSES,
    CriticalPath,
    PathSegment,
    critical_path,
    critical_path_breakdown,
)
from repro.obs.whatif import SCENARIOS, project, rerun_projection, what_if_report
from repro.obs.registry import (
    append_run,
    check_regression,
    compare_records,
    format_compare,
    load_runs,
    resolve_run,
    run_record,
)

__all__ = [
    "EVENT_SCHEMAS",
    "EventField",
    "EventSchema",
    "validate_event",
    "validate_trace",
    "export_chrome_trace",
    "to_perfetto",
    "validate_chrome_trace",
    "StageBubbles",
    "bubble_attribution",
    "format_summary",
    "run_summary",
    "summary_json",
    "RESOURCE_CLASSES",
    "CriticalPath",
    "PathSegment",
    "critical_path",
    "critical_path_breakdown",
    "SCENARIOS",
    "project",
    "what_if_report",
    "rerun_projection",
    "run_record",
    "append_run",
    "load_runs",
    "resolve_run",
    "compare_records",
    "check_regression",
    "format_compare",
]
