"""Run observability: trace event schema, Perfetto export, summaries.

``repro.obs`` turns the simulator's :class:`~repro.sim.trace.ExecutionTrace`
into inspectable artifacts:

* :mod:`repro.obs.events` — the machine-checked registry of every typed
  trace event (kind, fields, emitting module); ``docs/TRACING.md`` is the
  prose rendering of the same registry.
* :mod:`repro.obs.exporter` — Chrome Trace Event Format JSON (loadable
  in Perfetto / ``chrome://tracing``) with GPU, copy-engine, NIC and
  scheduler tracks plus cache/queue/ready-set counters.  Deterministic
  byte-for-byte across identical runs.
* :mod:`repro.obs.summary` — per-stage bubble attribution (startup vs
  CSP-wait vs fetch-stall vs drain) and a deterministic run summary; the
  attribution sums back to ``ExecutionTrace.bubble_ratio()`` exactly.

Entry points: ``PipelineResult.trace_export()`` / ``.trace_summary()``,
the ``naspipe trace <config>`` CLI and ``make trace-demo``.
"""

from repro.obs.events import (
    EVENT_SCHEMAS,
    EventField,
    EventSchema,
    validate_event,
    validate_trace,
)
from repro.obs.exporter import (
    export_chrome_trace,
    to_perfetto,
    validate_chrome_trace,
)
from repro.obs.summary import (
    StageBubbles,
    bubble_attribution,
    format_summary,
    run_summary,
)

__all__ = [
    "EVENT_SCHEMAS",
    "EventField",
    "EventSchema",
    "validate_event",
    "validate_trace",
    "export_chrome_trace",
    "to_perfetto",
    "validate_chrome_trace",
    "StageBubbles",
    "bubble_attribution",
    "format_summary",
    "run_summary",
]
