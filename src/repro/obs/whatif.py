"""What-if projection: analytic lower bounds from one finished trace.

Critical-path analysis (:mod:`repro.obs.critical_path`) says what bound
*this* run; this module asks what the run would have cost had one
subsystem been free.  Every scenario replays the task DAG extracted from
the trace with some durations relaxed and reports the projected
makespan:

* ``as_scheduled`` — nothing relaxed: the replay baseline.  Its gap to
  the measured makespan is the scheduling cost the DAG alone does not
  imply (chiefly CSP ordering holds already absorbed into the observed
  per-GPU order).
* ``zero_fetch_stalls`` — synchronous parameter swap-in waits vanish
  (an ideally provisioned copy engine).
* ``perfect_predictor`` — every context-manager stall vanishes: fetch
  waits *and* the OOM-retry penalties oversubscription causes (the
  paper's §3.3 predictor with perfect foresight and sizing).
* ``infinite_nic`` — activation/gradient transfers land instantly and
  on-demand migrations cost nothing.
* ``no_csp_constraint`` — the ASP bound: the same tasks (observed
  compute durations, no stalls) re-scheduled from scratch by a faithful
  emulation of the engine's ASP dispatch (1B1F alternation, lowest-id
  queues, window = pipeline depth, FIFO links).  This is what the run
  gives up for reproducibility — CSP's scheduling cost in the paper's
  Table 2 sense.

The replay scenarios are *relaxations of a monotone model*: each
activity starts at the max of its predecessors' projected finishes, the
observed per-GPU and per-link orders are kept, and no duration ever
grows — so every projection is a true lower bound on the measured
makespan (asserted by the tests).  ``no_csp_constraint`` re-orders and
is a projection rather than a bound, but in practice lands below the
CSP makespan and within a few percent of an actually-simulated ASP run
(the acceptance test pins 5%).

``rerun_projection`` is the empirical complement: re-simulate with one
config knob changed and diff the two summaries.

Everything here is deterministic: dict keys are sorted and scenario
order is fixed, so reports are byte-stable across identical runs.
See ``docs/ANALYSIS.md`` for the model's assumptions in prose.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import ExecutionTrace
from repro.obs.critical_path import stall_cause_index

__all__ = ["SCENARIOS", "project", "what_if_report", "rerun_projection"]

#: fixed evaluation (and report) order
SCENARIOS = (
    "as_scheduled",
    "zero_fetch_stalls",
    "perfect_predictor",
    "infinite_nic",
    "no_csp_constraint",
)

#: stall resource classes each scenario zeroes in the replay
_DROPPED_STALLS = {
    "as_scheduled": frozenset(),
    "zero_fetch_stalls": frozenset({"copy_fetch"}),
    "perfect_predictor": frozenset({"copy_fetch", "other_stall"}),
    "infinite_nic": frozenset({"nic_transfer"}),
}


# ----------------------------------------------------------------------
# model extraction
# ----------------------------------------------------------------------
@dataclass
class _Compute:
    stage: int
    subnet: int
    direction: str
    obs_start: float
    duration: float
    #: stall resource class -> ms of setup stall observed before this task
    setup: Dict[str, float] = field(default_factory=dict)


@dataclass
class _Transfer:
    direction: str
    src: int
    dst: int
    subnet: int
    nbytes: float
    obs_time: float


@dataclass
class _Model:
    """Everything the projections need, extracted once per trace."""

    num_stages: int
    start_time: float
    makespan: float
    #: per-GPU compute chains in observed order
    chains: Dict[int, List[_Compute]]
    #: (direction, dst, subnet) -> transfer
    transfers: Dict[Tuple[str, int, int], _Transfer]
    #: subnet -> subnet whose stage-0 backward released its admission
    #: (absent for the initial window)
    inject_releaser: Dict[int, int]
    #: subnet ids in injection (stream) order
    inject_order: List[int]
    #: (src, dst) -> (bandwidth bytes/ms, latency ms)
    links: Dict[Tuple[int, int], Tuple[float, float]]
    #: (stage, subnet, direction) -> compute duration ms
    durations: Dict[Tuple[int, int, str], float]


def _extract(trace: ExecutionTrace) -> _Model:
    causes = stall_cause_index(trace)
    chains: Dict[int, List[_Compute]] = {}
    durations: Dict[Tuple[int, int, str], float] = {}
    for gpu, intervals in trace.intervals_by_gpu().items():
        chain: List[_Compute] = []
        pending: Dict[str, float] = {}
        for interval in intervals:
            if interval.kind == "stall":
                cause = causes.get((gpu, interval.start), "other_stall")
                pending[cause] = pending.get(cause, 0.0) + interval.duration
            else:
                chain.append(
                    _Compute(
                        stage=gpu,
                        subnet=interval.subnet_id,
                        direction=interval.kind,
                        obs_start=interval.start,
                        duration=interval.duration,
                        setup=pending,
                    )
                )
                durations[(gpu, interval.subnet_id, interval.kind)] = (
                    interval.duration
                )
                pending = {}
        chains[gpu] = chain

    transfers: Dict[Tuple[str, int, int], _Transfer] = {}
    for event in trace.events_of("nic_transfer"):
        attrs = event.attrs_dict
        direction = str(attrs["direction"])
        dst = int(attrs["dst"])
        transfers[(direction, dst, event.subnet_id)] = _Transfer(
            direction=direction,
            src=int(attrs["src"]),
            dst=dst,
            subnet=event.subnet_id,
            nbytes=float(attrs["nbytes"]),
            obs_time=event.time,
        )

    completions = sorted(
        (time, sid) for sid, time in trace.subnet_completion_times.items()
    )
    inject_releaser: Dict[int, int] = {}
    inject_order: List[int] = []
    eps = 1e-9
    for event in trace.events_of("subnet_inject"):
        inject_order.append(event.subnet_id)
        released_by: Optional[int] = None
        for time, sid in completions:
            if time <= event.time + eps:
                released_by = sid
            else:
                break
        if released_by is not None:
            inject_releaser[event.subnet_id] = released_by

    links: Dict[Tuple[int, int], Tuple[float, float]] = {}
    for event in trace.events_of("link_meta"):
        attrs = event.attrs_dict
        links[(int(attrs["src"]), int(attrs["dst"]))] = (
            float(attrs["bandwidth"]),
            float(attrs["latency"]),
        )

    num_stages = trace.num_gpus
    for event in trace.events_of("run_meta"):
        num_stages = int(event.attr("num_stages", num_stages))
        break

    return _Model(
        num_stages=num_stages,
        start_time=trace.start_time,
        makespan=trace.makespan,
        chains=chains,
        transfers=transfers,
        inject_releaser=inject_releaser,
        inject_order=inject_order,
        links=links,
        durations=durations,
    )


# ----------------------------------------------------------------------
# order-preserving replay (the relaxation scenarios)
# ----------------------------------------------------------------------
def _replay(model: _Model, dropped: frozenset, nic_zero: bool) -> float:
    """Earliest-start forward pass over the observed-order DAG.

    Processing in observed start-time order is valid: every dependency
    finished before its dependent started in the observed run, so the
    observed order is a topological order that also preserves per-GPU
    serial order and per-link FIFO order.
    """
    done: Dict[Tuple[int, int, str], float] = {}  # compute -> projected end
    arrive: Dict[Tuple[str, int, int], float] = {}  # transfer -> arrival
    link_free: Dict[Tuple[int, int], float] = {}
    inject_time: Dict[int, float] = {}
    last_stage = model.num_stages - 1
    t0 = model.start_time

    work: List[Tuple[float, int, int, object]] = []
    for chain in model.chains.values():
        for compute in chain:
            work.append((compute.obs_start, 0, compute.stage, compute))
    for transfer in model.transfers.values():
        work.append((transfer.obs_time, 1, transfer.dst, transfer))
    work.sort(key=lambda entry: (entry[0], entry[1], entry[2],
                                 entry[3].subnet, entry[3].direction))

    gpu_free = {gpu: t0 for gpu in model.chains}
    end_max = t0
    for obs_time, _, _, item in work:
        if isinstance(item, _Compute):
            deps = [gpu_free[item.stage]]
            if item.direction == "fwd":
                if item.stage == 0:
                    sid = item.subnet
                    if sid not in inject_time:
                        releaser = model.inject_releaser.get(sid)
                        inject_time[sid] = done.get((0, releaser, "bwd"), t0) \
                            if releaser is not None else t0
                    deps.append(inject_time[sid])
                else:
                    deps.append(
                        arrive.get(("fwd", item.stage, item.subnet),
                                   item.obs_start)
                    )
            elif item.stage == last_stage:
                deps.append(
                    done.get((item.stage, item.subnet, "fwd"), item.obs_start)
                )
            else:
                deps.append(
                    arrive.get(("bwd", item.stage, item.subnet),
                               item.obs_start)
                )
            start = max(deps)
            for cause, ms in item.setup.items():
                if cause not in dropped:
                    start += ms
            end = start + item.duration
            gpu_free[item.stage] = end
            done[(item.stage, item.subnet, item.direction)] = end
            end_max = max(end_max, end)
        else:
            ready = done.get(
                (item.src, item.subnet, item.direction), item.obs_time
            )
            key = ("fwd" if item.direction == "fwd" else "bwd",
                   item.dst, item.subnet)
            if nic_zero:
                arrive[key] = ready
                continue
            bandwidth, latency = model.links.get(
                (item.src, item.dst), (float("inf"), 0.0)
            )
            wire_start = max(ready, link_free.get((item.src, item.dst), t0))
            next_free = wire_start + (
                item.nbytes / bandwidth if bandwidth > 0 else 0.0
            )
            link_free[(item.src, item.dst)] = next_free
            arrive[key] = next_free + latency
    return end_max - t0


# ----------------------------------------------------------------------
# ASP emulator (the no-CSP bound)
# ----------------------------------------------------------------------
def _asp_bound(model: _Model) -> float:
    """Re-schedule the observed tasks under the engine's ASP dispatch.

    Mirrors :meth:`PipelineEngine._kick` and friends exactly: 1B1F
    alternation per stage, sorted queues popping the lowest subnet id,
    injection window = pipeline depth, per-link FIFO with the recorded
    bandwidth/latency.  Stall durations are excluded — ASP's cache
    behaviour would differ unpredictably, so the honest analytic choice
    is the stall-free bound.
    """
    stages = model.num_stages
    window = stages  # AspPolicy's default_window
    t0 = model.start_time
    last = stages - 1

    fwd_q: List[List[int]] = [[] for _ in range(stages)]
    bwd_q: List[List[int]] = [[] for _ in range(stages)]
    busy = [False] * stages
    last_was_bwd = [False] * stages
    link_free: Dict[Tuple[int, int], float] = {}
    inflight: set = set()
    next_inject = 0
    end_max = t0

    heap: List[Tuple[float, int, str, int, int]] = []
    seq = 0

    def push(time: float, action: str, stage: int, sid: int) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, seq, action, stage, sid))
        seq += 1

    def try_inject(now: float) -> None:
        nonlocal next_inject
        while (
            next_inject < len(model.inject_order) and len(inflight) < window
        ):
            sid = model.inject_order[next_inject]
            next_inject += 1
            inflight.add(sid)
            push(now, "arrive_fwd", 0, sid)

    def wire(src: int, dst: int, sid: int, now: float) -> float:
        transfer = model.transfers.get(
            ("fwd" if dst > src else "bwd", dst, sid)
        )
        nbytes = transfer.nbytes if transfer is not None else 0.0
        bandwidth, latency = model.links.get(
            (src, dst), (float("inf"), 0.0)
        )
        start = max(now, link_free.get((src, dst), t0))
        next_free = start + (nbytes / bandwidth if bandwidth > 0 else 0.0)
        link_free[(src, dst)] = next_free
        return next_free + latency

    def begin(stage: int, sid: int, is_bwd: bool, now: float) -> None:
        nonlocal end_max
        busy[stage] = True
        last_was_bwd[stage] = is_bwd
        duration = model.durations.get(
            (stage, sid, "bwd" if is_bwd else "fwd"), 0.0
        )
        end = now + duration
        end_max = max(end_max, end)
        push(end, "done_bwd" if is_bwd else "done_fwd", stage, sid)

    def kick(stage: int, now: float) -> None:
        if busy[stage]:
            return
        prefer_forward = last_was_bwd[stage]
        if prefer_forward and fwd_q[stage]:
            begin(stage, fwd_q[stage].pop(0), False, now)
            return
        if bwd_q[stage]:
            begin(stage, bwd_q[stage].pop(0), True, now)
            return
        if not prefer_forward and fwd_q[stage]:
            begin(stage, fwd_q[stage].pop(0), False, now)

    try_inject(t0)
    while heap:
        now, _, action, stage, sid = heapq.heappop(heap)
        if action == "arrive_fwd":
            insort(fwd_q[stage], sid)
            kick(stage, now)
        elif action == "arrive_bwd":
            insort(bwd_q[stage], sid)
            kick(stage, now)
        elif action == "done_fwd":
            busy[stage] = False
            if stage < last:
                push(wire(stage, stage + 1, sid, now),
                     "arrive_fwd", stage + 1, sid)
            else:
                insort(bwd_q[stage], sid)
            kick(stage, now)
        else:  # done_bwd
            busy[stage] = False
            if stage > 0:
                push(wire(stage, stage - 1, sid, now),
                     "arrive_bwd", stage - 1, sid)
            else:
                inflight.discard(sid)
                try_inject(now)
            kick(stage, now)
    return end_max - t0


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def project(trace: ExecutionTrace, scenario: str) -> float:
    """Projected makespan (virtual ms) under one scenario."""
    if scenario not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {scenario!r}; known: {list(SCENARIOS)}"
        )
    model = _extract(trace)
    if scenario == "no_csp_constraint":
        return _asp_bound(model)
    return _replay(
        model, _DROPPED_STALLS[scenario], nic_zero=scenario == "infinite_nic"
    )


def what_if_report(trace: ExecutionTrace) -> Dict[str, object]:
    """All scenarios, ranked by projected savings (deterministic).

    ``ranked`` orders the *relaxation* scenarios (everything but the
    ``as_scheduled`` baseline) by descending savings — the "optimise
    this next" list; ties break on scenario name.
    """
    measured = trace.makespan
    model = _extract(trace)
    scenarios: Dict[str, Dict[str, float]] = {}
    for name in SCENARIOS:
        if name == "no_csp_constraint":
            projected = _asp_bound(model)
        else:
            projected = _replay(
                model, _DROPPED_STALLS[name], nic_zero=name == "infinite_nic"
            )
        savings = measured - projected
        scenarios[name] = {
            "projected_makespan_ms": projected,
            "savings_ms": savings,
            "savings_fraction": savings / measured if measured > 0 else 0.0,
        }
    ranked = sorted(
        (name for name in SCENARIOS if name != "as_scheduled"),
        key=lambda name: (-scenarios[name]["savings_ms"], name),
    )
    return {
        "schema": 1,
        "measured_makespan_ms": measured,
        "scenarios": {name: scenarios[name] for name in sorted(scenarios)},
        "ranked": ranked,
    }


def rerun_projection(
    space_name: str,
    system_name: str,
    scale,
    knob: str,
    value: object,
    num_gpus: Optional[int] = None,
    batch: Optional[int] = None,
) -> Dict[str, object]:
    """Empirical projection: re-simulate with one config knob changed.

    Runs the (system, space) cell twice — as configured and with
    ``knob=value`` — and diffs the two run summaries.  Complements the
    analytic scenarios: those bound what a *free* subsystem saves; this
    measures what an actual config change buys, second-order effects
    included.  Returns ``{baseline, changed, deltas}`` where deltas are
    ``changed - baseline`` for every shared numeric summary field.
    """
    from repro.experiments.common import run_system
    from repro.obs.summary import run_summary

    baseline = run_system(
        space_name, system_name, scale, num_gpus=num_gpus, batch=batch
    )
    changed = run_system(
        space_name, system_name, scale, num_gpus=num_gpus, batch=batch,
        **{knob: value},
    )
    if baseline is None or changed is None:
        raise RuntimeError(
            f"rerun_projection: {system_name} on {space_name} failed to run"
        )
    base_summary = run_summary(baseline)
    changed_summary = run_summary(changed)
    deltas = {
        key: changed_summary[key] - base_summary[key]
        for key in sorted(base_summary)
        if isinstance(base_summary.get(key), (int, float))
        and isinstance(changed_summary.get(key), (int, float))
        and not isinstance(base_summary.get(key), bool)
    }
    return {
        "schema": 1,
        "knob": knob,
        "value": value,
        "baseline": base_summary,
        "changed": changed_summary,
        "deltas": deltas,
    }
