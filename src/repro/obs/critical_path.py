"""Critical-path analysis over the reconstructed task DAG.

The trace of one pipeline run contains the full task-level dependency
DAG: compute intervals, NIC transfers, fetch/migration/OOM stalls,
subnet injections and CSP wait windows.  This module walks that DAG
*backwards* from the run's final completion, always stepping to the
predecessor whose finish actually bound the current activity's start —
the classic critical-path construction (PipeDream's 1F1B analysis and
pipeline-planning work such as Luo et al. frame throughput limits the
same way).

The result is a chain of :class:`PathSegment` spans that **tiles the
active window exactly**: adjacent segments share endpoints, so the
segment lengths sum to the measured makespan to float precision (the
same invariant style as bubble attribution, enforced at 1e-9 by the
tests).  Each segment is charged to one resource class:

* ``alu_busy`` — a fwd/bwd compute task on the path;
* ``nic_transfer`` — an inter-stage activation/gradient transfer
  (queueing included) or an on-demand operator migration;
* ``copy_fetch`` — a synchronous parameter swap-in stall;
* ``csp_wait`` — idle on the path overlapping an open CSP wait window
  (the scheduling cost of Definition 2, now *on the critical path*);
* ``admission_hold`` — idle before a stage-0 forward / injection while
  the policy's admission or execution window was the binding gate;
* ``scheduler_idle`` — any other idle on the path (upstream starvation
  that no recorded wait window explains);
* ``other_stall`` — OOM-retry / transient-fault-retry stalls.

Deterministic by construction: the walk breaks every tie on a fixed
``(end, priority, start, stage)`` key and the breakdown dict is emitted
with sorted keys, so two identical runs produce byte-identical
breakdowns (the registry and ``naspipe compare`` rely on this).

See ``docs/ANALYSIS.md`` for the DAG construction rules in prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import ExecutionTrace

__all__ = [
    "RESOURCE_CLASSES",
    "PathSegment",
    "CriticalPath",
    "stall_cause_index",
    "critical_path",
    "critical_path_breakdown",
]

#: every resource class a path segment may be charged to
RESOURCE_CLASSES = (
    "alu_busy",
    "nic_transfer",
    "copy_fetch",
    "csp_wait",
    "admission_hold",
    "scheduler_idle",
    "other_stall",
)

_EPS = 1e-9

#: stall-interval cause -> resource class (cause comes from the typed
#: event recorded at the stall's (stage, start))
_STALL_CLASS = {
    "fetch_stall": "copy_fetch",
    "migration": "nic_transfer",
    "oom_retry": "other_stall",
    "task_retry": "other_stall",
}


def stall_cause_index(
    trace: ExecutionTrace,
) -> Dict[Tuple[int, float], str]:
    """``(stage, stall-interval start) -> resource class`` for every
    stall the trace's typed events explain; the cause of the stall
    interval starting at that instant on that GPU (shared with
    :mod:`repro.obs.whatif`)."""
    causes: Dict[Tuple[int, float], str] = {}
    for event in trace.events:
        cause = _STALL_CLASS.get(event.kind)
        if cause is None:
            continue
        if event.kind == "fetch_stall":
            # the stall interval starts at the (post-migration)
            # dispatch time, which is the event time
            causes[(event.stage, event.time)] = cause
        else:
            causes.setdefault((event.stage, event.time), cause)
    return causes


@dataclass(frozen=True)
class PathSegment:
    """One span of the critical path (virtual ms, chronological)."""

    start: float
    end: float
    resource: str
    stage: int
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The walked path; segments tile ``[start_time, end_time]``."""

    segments: List[PathSegment]
    makespan_ms: float

    @property
    def length_ms(self) -> float:
        return sum(segment.duration for segment in self.segments)

    def by_resource(self) -> Dict[str, float]:
        """Total path ms per resource class (every class present)."""
        totals = {resource: 0.0 for resource in RESOURCE_CLASSES}
        for segment in self.segments:
            totals[segment.resource] += segment.duration
        return totals

    def by_stage(self) -> Dict[int, float]:
        """Total path ms charged to each stage."""
        totals: Dict[int, float] = {}
        for segment in self.segments:
            totals[segment.stage] = totals.get(segment.stage, 0.0) + segment.duration
        return {stage: totals[stage] for stage in sorted(totals)}


# ----------------------------------------------------------------------
# activity model (internal)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Activity:
    """One node of the reconstructed DAG."""

    kind: str  # "compute" | "stall" | "transfer" | "inject"
    start: float
    end: float
    stage: int
    subnet: int
    direction: str  # "fwd" / "bwd" / "" for stalls and injects
    resource: str
    label: str
    gpu_index: int = -1  # position in the per-GPU activity list


class _Dag:
    """Indexes over one trace, built once per analysis."""

    def __init__(self, trace: ExecutionTrace) -> None:
        self.trace = trace
        self.last_stage = trace.num_gpus - 1

        # stall causes keyed by (stage, start time)
        stall_cause = stall_cause_index(trace)

        # per-GPU activity chains (compute + stalls, observed order)
        self.gpu_chain: Dict[int, List[_Activity]] = {}
        # (stage, subnet, direction) -> compute activities, start order
        self.compute_index: Dict[Tuple[int, int, str], List[_Activity]] = {}
        for gpu, intervals in trace.intervals_by_gpu().items():
            chain: List[_Activity] = []
            for interval in intervals:
                if interval.kind in ("fwd", "bwd"):
                    activity = _Activity(
                        kind="compute",
                        start=interval.start,
                        end=interval.end,
                        stage=gpu,
                        subnet=interval.subnet_id,
                        direction=interval.kind,
                        resource="alu_busy",
                        label=f"SN{interval.subnet_id} {interval.kind}@P{gpu}",
                        gpu_index=len(chain),
                    )
                    self.compute_index.setdefault(
                        (gpu, interval.subnet_id, interval.kind), []
                    ).append(activity)
                else:
                    resource = stall_cause.get(
                        (gpu, interval.start), "other_stall"
                    )
                    activity = _Activity(
                        kind="stall",
                        start=interval.start,
                        end=interval.end,
                        stage=gpu,
                        subnet=interval.subnet_id,
                        direction="",
                        resource=resource,
                        label=f"SN{interval.subnet_id} {resource}@P{gpu}",
                        gpu_index=len(chain),
                    )
                chain.append(activity)
            self.gpu_chain[gpu] = chain

        # transfers keyed by (direction, dst, subnet); a subnet crosses
        # each boundary at most once per direction per attempt
        self.transfers: Dict[Tuple[str, int, int], _Activity] = {}
        for event in trace.events_of("nic_transfer"):
            attrs = event.attrs_dict
            direction = str(attrs["direction"])
            dst = int(attrs["dst"])
            self.transfers[(direction, dst, event.subnet_id)] = _Activity(
                kind="transfer",
                start=event.time,
                end=float(attrs["arrive"]),
                stage=int(attrs["src"]),
                subnet=event.subnet_id,
                direction=direction,
                resource="nic_transfer",
                label=(
                    f"SN{event.subnet_id} "
                    f"{'activation' if direction == 'fwd' else 'gradient'} "
                    f"P{attrs['src']}->P{dst}"
                ),
            )

        # injections (zero-length; charged to stage 0 where they admit)
        self.injects: Dict[int, _Activity] = {}
        for event in trace.events_of("subnet_inject"):
            self.injects[event.subnet_id] = _Activity(
                kind="inject",
                start=event.time,
                end=event.time,
                stage=0,
                subnet=event.subnet_id,
                direction="",
                resource="admission_hold",
                label=f"SN{event.subnet_id} inject",
            )

        # completions in time order (admission-release edges)
        self.completions: List[Tuple[float, int]] = sorted(
            (time, sid) for sid, time in trace.subnet_completion_times.items()
        )

        # merged CSP wait windows per stage (gap classification)
        from repro.obs.summary import csp_wait_windows, _merge

        self.wait_segments: Dict[int, List[Tuple[float, float]]] = {
            stage: _merge([(w.start, w.end) for w in windows])
            for stage, windows in csp_wait_windows(trace).items()
        }

    # ------------------------------------------------------------------
    def terminal(self) -> Optional[_Activity]:
        """The activity whose finish defines the end of the run."""
        best: Optional[_Activity] = None
        for chain in self.gpu_chain.values():
            for activity in chain:
                if activity.kind != "compute":
                    continue
                if best is None or (activity.end, activity.start, -activity.stage) > (
                    best.end,
                    best.start,
                    -best.stage,
                ):
                    best = activity
        return best

    # ------------------------------------------------------------------
    def _last_compute(
        self, stage: int, subnet: int, direction: str, before: float
    ) -> Optional[_Activity]:
        candidates = self.compute_index.get((stage, subnet, direction), ())
        best = None
        for activity in candidates:
            if activity.end <= before + _EPS:
                best = activity
        return best

    def _gpu_pred(self, activity: _Activity) -> Optional[_Activity]:
        chain = self.gpu_chain.get(activity.stage, ())
        index = activity.gpu_index - 1
        while index >= 0:
            previous = chain[index]
            if previous.end <= activity.start + _EPS:
                return previous
            index -= 1
        return None

    def _task_data_pred(
        self, stage: int, subnet: int, direction: str, before: float
    ) -> Optional[_Activity]:
        """What delivered this task's input to this stage."""
        if direction == "fwd":
            if stage == 0:
                return self.injects.get(subnet)
            transfer = self.transfers.get(("fwd", stage, subnet))
        elif stage == self.last_stage:
            # the backward chain starts where the last forward finished
            return self._last_compute(stage, subnet, "fwd", before)
        else:
            transfer = self.transfers.get(("bwd", stage, subnet))
        if transfer is not None and transfer.end <= before + _EPS:
            return transfer
        return None

    def _stall_direction(self, activity: _Activity) -> str:
        """Direction of the dispatch a stall belongs to: the next
        compute of the same subnet on the same GPU."""
        chain = self.gpu_chain.get(activity.stage, ())
        for following in chain[activity.gpu_index + 1:]:
            if following.kind == "compute" and following.subnet == activity.subnet:
                return following.direction
        return ""

    def predecessor(self, activity: _Activity, cursor: float) -> Optional[_Activity]:
        """The predecessor whose finish bound ``activity``'s start."""
        candidates: List[Tuple[float, int, float, int, _Activity]] = []

        def consider(pred: Optional[_Activity], priority: int) -> None:
            if pred is not None and pred.end <= cursor + _EPS:
                candidates.append(
                    (pred.end, priority, pred.start, pred.stage, pred)
                )

        if activity.kind in ("compute", "stall"):
            consider(self._gpu_pred(activity), 2)
            direction = (
                activity.direction
                if activity.kind == "compute"
                else self._stall_direction(activity)
            )
            if direction:
                consider(
                    self._task_data_pred(
                        activity.stage, activity.subnet, direction, activity.start
                    ),
                    1,
                )
        elif activity.kind == "transfer":
            # fwd transfers leave the src stage's forward; bwd transfers
            # leave the src stage's backward
            consider(
                self._last_compute(
                    activity.stage, activity.subnet, activity.direction,
                    activity.start,
                ),
                1,
            )
        elif activity.kind == "inject":
            # admission released by the most recent subnet completion
            # (its final backward at stage 0); none at stream start
            released_by: Optional[int] = None
            for time, sid in self.completions:
                if time <= activity.start + _EPS:
                    released_by = sid
                else:
                    break
            if released_by is not None:
                consider(
                    self._last_compute(0, released_by, "bwd", activity.start), 1
                )
        if not candidates:
            return None
        return max(candidates, key=lambda entry: entry[:4])[1 + 3]


# ----------------------------------------------------------------------
def _gap_segments(
    dag: _Dag, activity: _Activity, lo: float, hi: float
) -> List[PathSegment]:
    """Classify idle ``[lo, hi]`` before ``activity`` (chronological)."""
    from repro.obs.summary import _complement, _merge

    stage = activity.stage
    waits = dag.wait_segments.get(stage, [])
    covered = _merge([w for w in waits if w[1] > lo and w[0] < hi])
    clipped = [(max(lo, s), min(hi, e)) for s, e in covered]
    clipped = [(s, e) for s, e in clipped if e - s > 0]
    if activity.kind == "inject" or (
        activity.kind == "compute"
        and activity.direction == "fwd"
        and activity.stage == 0
    ):
        idle_class = "admission_hold"
    else:
        idle_class = "scheduler_idle"
    segments: List[PathSegment] = []
    for start, end in clipped:
        segments.append(
            PathSegment(start, end, "csp_wait", stage, f"csp wait @P{stage}")
        )
    for start, end in _complement(clipped, lo, hi):
        segments.append(
            PathSegment(start, end, idle_class, stage, f"{idle_class} @P{stage}")
        )
    segments.sort(key=lambda segment: segment.start)
    return segments


def critical_path(trace: ExecutionTrace) -> CriticalPath:
    """Walk the longest chain that ends at the run's final completion.

    The returned segments tile ``[trace.start_time, trace.end_time]``
    exactly (adjacent segments share endpoints), so their lengths sum to
    the measured makespan to float precision.
    """
    makespan = trace.makespan
    start_time = trace.start_time
    dag = _Dag(trace)
    node = dag.terminal()
    if node is None or makespan <= 0:
        segments = (
            [
                PathSegment(
                    start_time,
                    trace.end_time,
                    "scheduler_idle",
                    0,
                    "empty run",
                )
            ]
            if makespan > 0
            else []
        )
        return CriticalPath(segments, makespan)

    reversed_segments: List[PathSegment] = []
    cursor = trace.end_time
    # drain-side idle: the terminal activity may finish before end_time
    # (e.g. the clock advanced past it); classify that tail too
    if node.end < cursor - _EPS:
        for segment in reversed(_gap_segments(dag, node, node.end, cursor)):
            reversed_segments.append(segment)
        cursor = node.end

    limit = 4 * (len(trace.intervals) + len(trace.events)) + 16
    steps = 0
    while True:
        steps += 1
        segment_start = max(node.start, start_time)
        if cursor - segment_start > 0:
            reversed_segments.append(
                PathSegment(
                    segment_start, cursor, node.resource, node.stage, node.label
                )
            )
        cursor = min(cursor, segment_start)
        if cursor <= start_time + _EPS or steps > limit:
            break
        pred = dag.predecessor(node, cursor)
        if pred is None:
            reversed_segments.append(
                PathSegment(
                    start_time,
                    cursor,
                    "scheduler_idle",
                    node.stage,
                    f"unattributed idle @P{node.stage}",
                )
            )
            cursor = start_time
            break
        if pred.end < cursor - _EPS:
            for segment in reversed(
                _gap_segments(dag, node, pred.end, cursor)
            ):
                reversed_segments.append(segment)
            cursor = pred.end
        node = pred

    if cursor > start_time + _EPS:
        # safety net (step-limit trip): keep the tiling invariant
        reversed_segments.append(
            PathSegment(start_time, cursor, "scheduler_idle", 0, "walk truncated")
        )
    return CriticalPath(list(reversed(reversed_segments)), makespan)


def critical_path_breakdown(trace: ExecutionTrace) -> Dict[str, object]:
    """Deterministic JSON-able summary of :func:`critical_path`.

    ``by_resource_ms`` covers every class in :data:`RESOURCE_CLASSES`
    and sums to ``path_ms`` == ``makespan_ms`` (1e-9); ``per_stage_share``
    is each stage's fraction of the path (sums to 1 for non-empty runs).
    """
    path = critical_path(trace)
    makespan = path.makespan_ms
    by_resource = path.by_resource()
    by_stage = path.by_stage()
    total = sum(by_resource.values())
    return {
        "schema": 1,
        "makespan_ms": makespan,
        "path_ms": total,
        "num_segments": len(path.segments),
        "by_resource_ms": {k: by_resource[k] for k in sorted(by_resource)},
        "by_resource_fraction": {
            k: (by_resource[k] / makespan if makespan > 0 else 0.0)
            for k in sorted(by_resource)
        },
        "by_stage_ms": {str(stage): ms for stage, ms in by_stage.items()},
        "per_stage_share": {
            str(stage): (ms / makespan if makespan > 0 else 0.0)
            for stage, ms in by_stage.items()
        },
    }
