"""Typed, deterministic metric instruments and their registry.

The online telemetry plane mirrors the Prometheus data model — counters,
gauges, histograms with labels — but with two hard constraints the
real-world stack cannot offer:

* **fixed shapes** — an instrument declares its label *names* once and
  a histogram declares its bucket boundaries once; there is no dynamic
  bucketing and no label-name drift, so two identical runs produce
  structurally identical series;
* **virtual-clock updates** — instruments are updated synchronously from
  existing trace-event emission points (listeners and direct calls at
  already-deterministic decision points), never from wall-clock timers,
  so the whole metric stream is bit-reproducible.

Instruments never feed back into scheduling: registering or updating a
metric cannot change an engine decision, which is what keeps digests
bitwise identical with telemetry on (tested).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
]

_LabelValues = Tuple[str, ...]


def _fmt(value: float) -> str:
    """Canonical sample rendering: integral values print as integers,
    everything else as ``repr`` (shortest round-trip float — stable
    across runs and platforms for our pure-python arithmetic)."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Instrument:
    """Shared shape: fixed label names, per-label-values series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        if not name or not name.replace("_", "").isalnum():
            raise ConfigError(f"bad metric name {name!r}")
        self.name = name
        self.help = help
        self.labels: Tuple[str, ...] = tuple(labels)

    def _key(self, label_values: Dict[str, object]) -> _LabelValues:
        if tuple(sorted(label_values)) != tuple(sorted(self.labels)):
            raise ConfigError(
                f"{self.name}: labels {sorted(label_values)} != declared "
                f"{sorted(self.labels)} (fixed label sets)"
            )
        return tuple(str(label_values[label]) for label in self.labels)


class Counter(_Instrument):
    """Monotonic accumulator (``inc`` only)."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._series: Dict[_LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **label_values) -> None:
        if amount < 0:
            raise ConfigError(f"{self.name}: counters only go up ({amount})")
        key = self._key(label_values)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **label_values) -> float:
        return self._series.get(self._key(label_values), 0.0)

    def samples(self) -> List[Tuple[str, _LabelValues, float]]:
        return [
            (self.name, key, self._series[key])
            for key in sorted(self._series)
        ]


class Gauge(_Instrument):
    """Set-to-current-value instrument; tracks the peak ever set, which
    the compact telemetry block and capacity planning read."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._series: Dict[_LabelValues, float] = {}
        self._peak: Dict[_LabelValues, float] = {}

    def set(self, value: float, **label_values) -> None:
        key = self._key(label_values)
        number = float(value)
        self._series[key] = number
        if number > self._peak.get(key, float("-inf")):
            self._peak[key] = number

    def add(self, delta: float, **label_values) -> None:
        key = self._key(label_values)
        self.set(self._series.get(key, 0.0) + delta, **label_values)

    def value(self, **label_values) -> float:
        return self._series.get(self._key(label_values), 0.0)

    def peak(self) -> float:
        """Highest value ever set across every labelled series (0.0
        when never set)."""
        return max(self._peak.values(), default=0.0)

    def samples(self) -> List[Tuple[str, _LabelValues, float]]:
        return [
            (self.name, key, self._series[key])
            for key in sorted(self._series)
        ]


class Histogram(_Instrument):
    """Fixed-boundary histogram (no dynamic buckets — determinism).

    ``buckets`` are ascending upper bounds; an implicit ``+Inf`` bucket
    closes the range.  Samples expand Prometheus-style: cumulative
    ``<name>_bucket{le=...}`` counts plus ``_sum`` and ``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float],
        labels: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigError(
                f"{name}: histogram buckets must be non-empty and "
                f"strictly ascending, got {list(buckets)}"
            )
        self.buckets = bounds
        self._counts: Dict[_LabelValues, List[int]] = {}
        self._sum: Dict[_LabelValues, float] = {}
        self._count: Dict[_LabelValues, int] = {}

    def observe(self, value: float, **label_values) -> None:
        key = self._key(label_values)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        number = float(value)
        for index, bound in enumerate(self.buckets):
            if number <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
        self._sum[key] = self._sum.get(key, 0.0) + number
        self._count[key] = self._count.get(key, 0) + 1

    def bucket_counts(self, **label_values) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        key = self._key(label_values)
        return list(self._counts.get(key, [0] * (len(self.buckets) + 1)))

    def count(self, **label_values) -> int:
        return self._count.get(self._key(label_values), 0)

    def sum(self, **label_values) -> float:
        return self._sum.get(self._key(label_values), 0.0)

    def samples(self) -> List[Tuple[str, _LabelValues, float]]:
        rows: List[Tuple[str, _LabelValues, float]] = []
        for key in sorted(self._counts):
            cumulative = 0
            for bound, bucket in zip(self.buckets, self._counts[key]):
                cumulative += bucket
                rows.append(
                    (f"{self.name}_bucket", key + (_fmt(bound),), float(cumulative))
                )
            cumulative += self._counts[key][-1]
            rows.append((f"{self.name}_bucket", key + ("+Inf",), float(cumulative)))
            rows.append((f"{self.name}_sum", key, self._sum[key]))
            rows.append((f"{self.name}_count", key, float(self._count[key])))
        return rows


class MetricsRegistry:
    """The plane-shared instrument registry the scraper snapshots.

    Registration is idempotent by name (the same plane re-registering
    its instruments gets the existing objects back); re-registering with
    a different type or shape is a loud error — shape drift would break
    the byte-determinism contract.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, labels))

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = (),
        labels: Sequence[str] = (),
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets, labels))

    def _register(self, instrument: _Instrument) -> "_Instrument":
        existing = self._instruments.get(instrument.name)
        if existing is not None:
            same = (
                type(existing) is type(instrument)
                and existing.labels == instrument.labels
                and getattr(existing, "buckets", None)
                == getattr(instrument, "buckets", None)
            )
            if not same:
                raise ConfigError(
                    f"metric {instrument.name!r} re-registered with a "
                    f"different type or shape"
                )
            return existing
        self._instruments[instrument.name] = instrument
        return instrument

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def instruments(self) -> List[_Instrument]:
        return [self._instruments[name] for name in sorted(self._instruments)]

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat deterministic state: ``name{label="v",...}`` -> value.

        Histogram series expand to their cumulative buckets / sum /
        count, so a snapshot diff between two scrapes is well-defined
        for every instrument type.
        """
        flat: Dict[str, float] = {}
        for instrument in self.instruments():
            label_names = instrument.labels
            for name, key, value in instrument.samples():
                if name.endswith("_bucket"):
                    names: Tuple[str, ...] = label_names + ("le",)
                else:
                    names = label_names
                if key:
                    rendered = ",".join(
                        f'{label}="{val}"' for label, val in zip(names, key)
                    )
                    flat[f"{name}{{{rendered}}}"] = value
                else:
                    flat[name] = value
        return flat


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (version 0.0.4) of the registry's
    current state.  Byte-deterministic: instruments sort by name, series
    by label values, values render canonically.  Caveat (documented in
    ``docs/TELEMETRY.md``): timestamps are *virtual* milliseconds and
    therefore omitted — a real Prometheus server would misread them as
    wall-clock epochs.
    """
    lines: List[str] = []
    for instrument in registry.instruments():
        lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        label_names = instrument.labels
        for name, key, value in instrument.samples():
            names = (
                label_names + ("le",) if name.endswith("_bucket") else label_names
            )
            if key:
                rendered = ",".join(
                    f'{label}="{val}"' for label, val in zip(names, key)
                )
                lines.append(f"{name}{{{rendered}}} {_fmt(value)}")
            else:
                lines.append(f"{name} {_fmt(value)}")
    return "\n".join(lines) + "\n"
