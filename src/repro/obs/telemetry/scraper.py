"""The scrape loop: first-class sim events sampling the registry.

A :class:`Scraper` schedules itself on a plane's
:class:`~repro.sim.engine.SimulationEngine` at a fixed
``scrape_interval_ms``.  Each scrape fires at **low priority** (after
every decision due at that virtual instant has been processed), deep-
copies the registry into an append-only sample series, and re-arms only
while other events remain pending — so an armed scraper never keeps a
quiesced simulation alive, and the virtual clock, schedule, and every
engine decision are untouched.  A final scrape is taken when the queue
drains, so the series always ends with the run's closing state.

Two byte-deterministic exports: canonical JSONL (one line per scrape)
and Prometheus text exposition of the final state.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.telemetry.registry import MetricsRegistry, render_prometheus

__all__ = ["Scraper"]


class Scraper:
    """Snapshot ``registry`` every ``interval_ms`` of virtual time."""

    def __init__(self, registry: MetricsRegistry, interval_ms: float = 100.0) -> None:
        if interval_ms <= 0:
            raise ConfigError(
                f"scrape_interval_ms must be > 0, got {interval_ms}"
            )
        self.registry = registry
        self.interval_ms = float(interval_ms)
        #: append-only series: (virtual ms, flat snapshot)
        self.samples: List[Tuple[float, Dict[str, float]]] = []
        self._armed_sims: List[object] = []

    # ------------------------------------------------------------------
    def attach(self, sim) -> None:
        """Arm the scrape loop on a simulation engine.

        The first scrape lands at t=0 (the baseline sample), later ones
        every ``interval_ms``.  Priority 50 places each scrape after all
        same-instant plane events (plans run at priority 10, serving
        completions at 5), so a sample always reflects the post-decision
        state of its instant.
        """
        self._armed_sims.append(sim)
        sim.schedule(sim.now, lambda: self._tick(sim), priority=50, label="scrape")

    def _tick(self, sim) -> None:
        self.scrape(sim.now)
        if len(sim.queue) > 0:
            sim.schedule(
                sim.now + self.interval_ms,
                lambda: self._tick(sim),
                priority=50,
                label="scrape",
            )

    def scrape(self, now: float) -> None:
        """Take one sample at virtual time ``now`` (idempotent per
        instant: a quiescence flush at an already-sampled time is
        skipped, so series never carry duplicate timestamps)."""
        if self.samples and self.samples[-1][0] == now:
            self.samples[-1] = (now, self.registry.snapshot())
            return
        self.samples.append((now, self.registry.snapshot()))

    def finalize(self, now: float) -> None:
        """Record the closing state after a plane quiesced."""
        self.scrape(now)

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def series_jsonl(self) -> str:
        """Canonical JSONL: one ``{"t_ms": ..., "samples": {...}}`` line
        per scrape, sorted keys, byte-identical across identical runs."""
        lines = [
            json.dumps(
                {"t_ms": t, "samples": samples},
                sort_keys=True,
                separators=(",", ":"),
            )
            for t, samples in self.samples
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def prometheus_text(self) -> str:
        """Prometheus text exposition of the final registry state."""
        return render_prometheus(self.registry)

    def tail_lines(self, keys: Optional[List[str]] = None, last: int = 12) -> List[str]:
        """Human-readable scrape-by-scrape tail (the ``naspipe monitor``
        terminal rendering): the most recent ``last`` scrapes, showing
        ``keys`` (default: every non-bucket sample that ever moved)."""
        if not self.samples:
            return ["(no scrapes)"]
        if keys is None:
            moved = set()
            for _, sample in self.samples:
                for name, value in sample.items():
                    if "_bucket" not in name and value:
                        moved.add(name)
            keys = sorted(moved)[:6]
        lines = [f"{'t_ms':>10}  " + "  ".join(f"{k}" for k in keys)]
        for t, sample in self.samples[-last:]:
            rendered = "  ".join(
                f"{sample.get(key, 0.0):>{max(len(key), 6)}g}" for key in keys
            )
            lines.append(f"{t:>10.1f}  {rendered}")
        return lines
