"""The online telemetry plane: live metrics, alerts, usage metering.

``repro.obs`` explains a run after the fact; this package watches it
happen.  A :class:`TelemetryHub` bundles the four tentpole pieces —

* :class:`~repro.obs.telemetry.registry.MetricsRegistry` — typed
  Counter/Gauge/Histogram instruments with fixed shapes;
* :class:`~repro.obs.telemetry.scraper.Scraper` — a scrape loop running
  as first-class sim events on the plane's virtual clock;
* :class:`~repro.obs.telemetry.alerts.AlertEngine` — threshold /
  ``for_ms`` / multi-window burn-rate rules evaluated at scrape points;
* :class:`~repro.obs.telemetry.metering.UsageMeter` — per-tenant usage
  reconciled against :class:`~repro.service.manager.ClusterManager`
  lease lifetimes —

and wires them into the planes purely through observation hooks: trace-
event listeners, the manager's usage observer, and a handful of direct
calls at points where the needed value (a request latency) is not in
any event.  Nothing here feeds back into scheduling, so arming a hub
leaves digests, traces of decisions, and reports bitwise unchanged.

See ``docs/TELEMETRY.md`` for the instrument catalog and semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.telemetry.alerts import (
    DEFAULT_RULES,
    AlertEngine,
    AlertRule,
    load_rules,
)
from repro.obs.telemetry.metering import UsageMeter
from repro.obs.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.telemetry.scraper import Scraper

__all__ = [
    "TelemetryHub",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Scraper",
    "AlertRule",
    "AlertEngine",
    "load_rules",
    "DEFAULT_RULES",
    "UsageMeter",
    "render_prometheus",
    "replay_telemetry",
]

from repro.serving.metrics import DEFAULT_LATENCY_BUCKETS_MS

#: serving latency histogram bounds (virtual ms) — the scenario-report
#: histogram in ``repro.serving.metrics`` uses the same edges, so online
#: and post-hoc views bucket identically
LATENCY_BUCKETS_MS = DEFAULT_LATENCY_BUCKETS_MS

#: batch occupancy bounds (requests per formed batch)
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


class TelemetryHub:
    """One hub observes one run (any mix of planes sharing it)."""

    def __init__(
        self,
        scrape_interval_ms: float = 100.0,
        rules=None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.scraper = Scraper(self.registry, scrape_interval_ms)
        self.meter = UsageMeter()
        self.alerts = AlertEngine(load_rules(rules))
        self._job_status: Dict[str, str] = {}
        self._slo_ms: Optional[float] = None
        #: the last-attached manager (metering reconciliation target)
        self.manager = None

    # ------------------------------------------------------------------
    # generic attach points
    # ------------------------------------------------------------------
    def attach_trace(self, trace) -> None:
        """Subscribe to a plane's trace events (synchronous listener —
        the zero-timing-impact hook every plane already exposes)."""
        trace.listeners.append(self.on_event)

    def attach_sim(self, sim) -> None:
        """Arm the scrape loop on a plane's simulation engine."""
        self.scraper.attach(sim)

    def attach_manager(self, manager) -> None:
        """Observe lease lifecycle + fleet slot-state transitions."""
        self.manager = manager
        manager.usage_observer = self._on_manager_usage
        self._sample_fleet(manager)

    # ------------------------------------------------------------------
    # plane-specific wiring
    # ------------------------------------------------------------------
    def attach_engine(self, engine) -> None:
        """Wire a :class:`~repro.engines.pipeline.PipelineEngine`."""
        self.attach_trace(engine.trace)
        self.attach_sim(engine.sim)

    def attach_service(self, scheduler) -> None:
        """Wire a :class:`~repro.service.scheduler.JobScheduler` (and
        its manager)."""
        self.attach_trace(scheduler.trace)
        self.attach_sim(scheduler.sim)
        self.attach_manager(scheduler.manager)

    def attach_serving(self, serving) -> None:
        """Wire a :class:`~repro.serving.frontend.ServingEngine` (and
        its manager).  The engine also makes direct
        :meth:`on_serving_complete` calls at completion points, where
        the latency is not carried by any trace event."""
        self._slo_ms = serving.spec.slo_ms
        self.attach_trace(serving.trace)
        self.attach_sim(serving.sim)
        self.attach_manager(serving.manager)

    # ------------------------------------------------------------------
    # manager usage observer
    # ------------------------------------------------------------------
    def _on_manager_usage(
        self, kind: str, job: str, lease_id: int, slot: int, now: float,
        cause: str, manager,
    ) -> None:
        self.meter.on_usage(kind, job, lease_id, slot, now, cause)
        self._sample_fleet(manager)

    def _sample_fleet(self, manager) -> None:
        self.registry.gauge("fleet_free_slots", "slots in the free pool").set(
            manager.available_gpus
        )
        self.registry.gauge("fleet_leased_slots", "slots under live leases").set(
            manager.leased_gpus
        )
        self.registry.gauge("fleet_down_slots", "slots out of service").set(
            len(manager.down_slots())
        )
        self.registry.counter(
            "fleet_leases_granted_total", "leases granted"
        ).inc(
            max(
                0.0,
                manager.total_leases_granted
                - self.registry.get("fleet_leases_granted_total").value(),
            )
        )
        self.registry.counter(
            "fleet_revocations_total", "lease revocations"
        ).inc(
            max(
                0.0,
                manager.total_revocations
                - self.registry.get("fleet_revocations_total").value(),
            )
        )

    # ------------------------------------------------------------------
    # the trace-event listener (all planes)
    # ------------------------------------------------------------------
    def on_event(self, event) -> None:
        kind = event.kind
        handler = _HANDLERS.get(kind)
        if handler is not None:
            handler(self, event)

    # -- engine plane --------------------------------------------------
    def _on_task_dispatch(self, event) -> None:
        attrs = event.attrs_dict
        direction = str(attrs.get("direction", "?"))
        self.registry.counter(
            "engine_tasks_total", "tasks dispatched", labels=("stage", "direction")
        ).inc(1.0, stage=event.stage, direction=direction)
        self.registry.counter(
            "engine_busy_ms_total", "compute ms", labels=("stage", "direction")
        ).inc(
            float(attrs.get("end", 0.0)) - float(attrs.get("start", 0.0)),
            stage=event.stage,
            direction=direction,
        )

    def _on_fetch_stall(self, event) -> None:
        self.registry.counter(
            "engine_stall_ms_total", "fetch-stall ms", labels=("stage",)
        ).inc(float(event.attrs_dict.get("wait_ms", 0.0)), stage=event.stage)

    def _on_queue_depth(self, event) -> None:
        attrs = event.attrs_dict
        self.registry.gauge(
            "engine_queue_depth", "stage L_q + backward-ready depth",
            labels=("stage",),
        ).set(
            int(attrs.get("fwd", 0)) + int(attrs.get("bwd", 0)),
            stage=event.stage,
        )

    def _on_ready_set(self, event) -> None:
        self.registry.gauge(
            "engine_ready_set", "CSP readiness-index size", labels=("stage",)
        ).set(int(event.attrs_dict.get("size", 0)), stage=event.stage)

    def _on_cache_access(self, event) -> None:
        attrs = event.attrs_dict
        self.registry.counter(
            "engine_cache_hits_total", "resident layer hits", labels=("stage",)
        ).inc(int(attrs.get("hits", 0)), stage=event.stage)
        self.registry.counter(
            "engine_cache_misses_total", "layer misses", labels=("stage",)
        ).inc(int(attrs.get("misses", 0)), stage=event.stage)

    def _on_prefetch_issue(self, event) -> None:
        self.registry.gauge(
            "engine_prefetch_inflight", "prefetches issued, not landed",
            labels=("stage",),
        ).add(1.0, stage=event.stage)

    def _on_prefetch_land(self, event) -> None:
        self.registry.gauge(
            "engine_prefetch_inflight", "prefetches issued, not landed",
            labels=("stage",),
        ).add(-1.0, stage=event.stage)

    def _on_subnet_complete(self, event) -> None:
        self.registry.counter(
            "engine_subnets_completed_total", "subnets fully trained"
        ).inc()

    # -- service plane -------------------------------------------------
    def _set_job_status(self, job: str, status: str) -> None:
        self._job_status[job] = status
        queued = sum(1 for s in self._job_status.values() if s == "queued")
        running = sum(1 for s in self._job_status.values() if s == "running")
        failed = sum(1 for s in self._job_status.values() if s == "failed")
        self.registry.gauge("service_jobs_queued", "tenants awaiting GPUs").set(queued)
        self.registry.gauge("service_jobs_running", "tenants on GPUs").set(running)
        self.registry.gauge("service_jobs_failed", "tenants failed closed").set(failed)

    def _alloc_gauge(self) -> Gauge:
        return self.registry.gauge(
            "service_allocated_gpus", "GPUs allocated", labels=("job",)
        )

    def _on_job_submit(self, event) -> None:
        self._set_job_status(str(event.attrs_dict.get("job", "?")), "queued")

    def _on_job_start(self, event) -> None:
        attrs = event.attrs_dict
        job = str(attrs.get("job", "?"))
        self._set_job_status(job, "running")
        self._alloc_gauge().set(int(attrs.get("gpus", 0)), job=job)

    def _on_job_resize(self, event) -> None:
        attrs = event.attrs_dict
        self._alloc_gauge().set(
            int(attrs.get("gpus_to", 0)), job=str(attrs.get("job", "?"))
        )

    def _on_job_preempt(self, event) -> None:
        job = str(event.attrs_dict.get("job", "?"))
        self._set_job_status(job, "queued")
        self._alloc_gauge().set(0, job=job)
        self.registry.counter(
            "service_preemptions_total", "jobs squeezed out at a cut",
            labels=("job",),
        ).inc(1.0, job=job)
        self.meter.bump(job, "preemptions")

    def _on_job_requeue(self, event) -> None:
        job = str(event.attrs_dict.get("job", "?"))
        self._set_job_status(job, "queued")
        self._alloc_gauge().set(0, job=job)
        self.registry.counter(
            "service_requeues_total", "rigid restarts after revocation",
            labels=("job",),
        ).inc(1.0, job=job)
        self.meter.bump(job, "requeues")

    def _on_job_done(self, event) -> None:
        attrs = event.attrs_dict
        job = str(attrs.get("job", "?"))
        self._set_job_status(job, "done")
        self._alloc_gauge().set(0, job=job)
        self.registry.counter(
            "service_queue_wait_ms_total", "submit-to-first-start wait",
            labels=("job",),
        ).inc(float(attrs.get("wait_ms", 0.0)), job=job)
        self.meter.bump(job, "subnets_completed", float(attrs.get("subnets", 0)))

    def _on_job_failed(self, event) -> None:
        job = str(event.attrs_dict.get("job", "?"))
        self._set_job_status(job, "failed")
        self._alloc_gauge().set(0, job=job)

    def _on_lease_revoke(self, event) -> None:
        self.registry.counter(
            "plane_lease_revocations_total", "revocations seen by the plane",
            labels=("job",),
        ).inc(1.0, job=str(event.attrs_dict.get("job", "?")))

    # -- serving plane -------------------------------------------------
    def _on_request_arrive(self, event) -> None:
        self.registry.counter("serving_requests_total", "requests arrived").inc()

    def _on_request_admit(self, event) -> None:
        self.registry.counter(
            "serving_requests_admitted_total", "requests admitted"
        ).inc()
        self.registry.gauge(
            "serving_queue_depth", "batcher depth + in-flight backlog"
        ).set(int(event.attrs_dict.get("queue_depth", 0)))
        self.meter.bump("serving", "requests_admitted")

    def _on_request_shed(self, event) -> None:
        self.registry.counter(
            "serving_requests_shed_total", "requests shed at admission"
        ).inc()
        self.registry.gauge(
            "serving_queue_depth", "batcher depth + in-flight backlog"
        ).set(int(event.attrs_dict.get("queue_depth", 0)))
        self.registry.counter(
            "serving_slo_bad_total", "SLO-relevant bad outcomes"
        ).inc()
        self.meter.bump("serving", "requests_shed")

    def _on_request_retry(self, event) -> None:
        self.registry.counter(
            "serving_retries_total", "requests re-queued by revocation"
        ).inc()
        self.registry.counter(
            "serving_slo_bad_total", "SLO-relevant bad outcomes"
        ).inc()
        self.meter.bump("serving", "requests_retried")

    def _on_batch_form(self, event) -> None:
        attrs = event.attrs_dict
        self.registry.counter("serving_batches_total", "batches formed").inc()
        self.registry.histogram(
            "serving_batch_occupancy", "requests per formed batch",
            buckets=BATCH_BUCKETS,
        ).observe(int(attrs.get("size", 0)))

    def _on_cache_hit(self, event) -> None:
        self.registry.counter(
            "serving_cache_hits_total", "cache hits", labels=("tier",)
        ).inc(1.0, tier=str(event.attrs_dict.get("tier", "?")))

    def _on_cache_miss(self, event) -> None:
        self.registry.counter(
            "serving_cache_misses_total", "cache misses", labels=("tier",)
        ).inc(1.0, tier=str(event.attrs_dict.get("tier", "?")))

    # -- direct serving completion hook --------------------------------
    def on_serving_complete(self, latency_ms: float, retries: int) -> None:
        """Called by the serving engine when a request's result is
        final (batch completion or cache hit) — the point where its
        latency exists.  Updates the latency histogram and the SLO
        good/bad counters the burn-rate rules watch."""
        self.registry.histogram(
            "serving_latency_ms", "request latency", buckets=LATENCY_BUCKETS_MS
        ).observe(latency_ms)
        good = self._slo_ms is None or latency_ms <= self._slo_ms
        if good and retries == 0:
            self.registry.counter(
                "serving_slo_good_total", "fresh requests inside the SLO"
            ).inc()
        else:
            self.registry.counter(
                "serving_slo_bad_total", "SLO-relevant bad outcomes"
            ).inc()

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    def finalize(self, now: float) -> None:
        self.scraper.finalize(now)

    def alert_report(self) -> Dict:
        return self.alerts.report(self.scraper.samples)

    def metering_report(self, manager=None) -> Dict:
        return self.meter.report(manager if manager is not None else self.manager)

    def peak_queue_depth(self) -> float:
        peak = 0.0
        for name in ("engine_queue_depth", "serving_queue_depth"):
            gauge = self.registry.get(name)
            if gauge is not None:
                peak = max(peak, gauge.peak())
        return peak

    def compact_block(self, manager=None) -> Dict:
        """The ``telemetry`` block registry records carry: small, flat,
        diffable by ``naspipe compare``."""
        alert_log = self.alert_report()
        return {
            "schema": 1,
            "scrapes": len(self.scraper.samples),
            "peak_queue_depth": self.peak_queue_depth(),
            "alerts_fired": alert_log["firings"],
            "gpu_slot_ms": self.meter.tenant_gpu_slot_ms(),
        }


_HANDLERS = {
    "task_dispatch": TelemetryHub._on_task_dispatch,
    "fetch_stall": TelemetryHub._on_fetch_stall,
    "queue_depth": TelemetryHub._on_queue_depth,
    "ready_set": TelemetryHub._on_ready_set,
    "cache_access": TelemetryHub._on_cache_access,
    "prefetch_issue": TelemetryHub._on_prefetch_issue,
    "prefetch_land": TelemetryHub._on_prefetch_land,
    "subnet_complete": TelemetryHub._on_subnet_complete,
    "job_submit": TelemetryHub._on_job_submit,
    "job_start": TelemetryHub._on_job_start,
    "job_resize": TelemetryHub._on_job_resize,
    "job_preempt": TelemetryHub._on_job_preempt,
    "job_requeue": TelemetryHub._on_job_requeue,
    "job_done": TelemetryHub._on_job_done,
    "job_failed": TelemetryHub._on_job_failed,
    "lease_revoke": TelemetryHub._on_lease_revoke,
    "request_arrive": TelemetryHub._on_request_arrive,
    "request_admit": TelemetryHub._on_request_admit,
    "request_shed": TelemetryHub._on_request_shed,
    "request_retry": TelemetryHub._on_request_retry,
    "batch_form": TelemetryHub._on_batch_form,
    "cache_hit": TelemetryHub._on_cache_hit,
    "cache_miss": TelemetryHub._on_cache_miss,
}


def replay_telemetry(trace, rules=None) -> TelemetryHub:
    """Build a hub post-hoc by replaying a finished trace's events
    through the listener — how :meth:`PipelineResult.telemetry` derives
    the compact block without having armed live scraping.  Identical
    instrument state to a live listener (the listener is a pure function
    of the event stream); the scrape series contains only the final
    sample."""
    hub = TelemetryHub(rules=rules)
    for event in trace.events:
        hub.on_event(event)
    hub.finalize(trace.end_time)
    return hub
