"""Declarative alert rules evaluated at scrape points only.

Two rule kinds, both evaluated over the scraper's sample series — never
between scrapes — so every firing and resolution carries a virtual
scrape timestamp and is bit-reproducible:

* **threshold** — ``metric OP threshold`` must hold continuously for
  ``for_ms`` virtual milliseconds before the rule fires; it resolves at
  the first scrape where the predicate fails.
* **burn_rate** — the SRE multi-window error-budget rule over a
  good/bad counter pair: for each window ``W`` the trailing bad
  fraction ``Δbad / (Δgood + Δbad)`` must reach ``factor × (1 −
  objective)``; the rule fires when *every* window burns (the short
  window gives fast trigger, the long one suppresses blips) and
  resolves when any stops burning.

Rules come from JSON (``naspipe monitor --rules rules.json``) or from
:data:`DEFAULT_RULES`, which are chosen to stay silent on healthy runs:
they key off down slots, failed jobs, and serving SLO burn — all zero
without faults (the ``monitor-smoke`` CI gate asserts exactly that).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = ["AlertRule", "AlertEngine", "load_rules", "DEFAULT_RULES"]

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

_RULE_KEYS = frozenset(
    {
        "name",
        "kind",
        "metric",
        "op",
        "threshold",
        "for_ms",
        "good",
        "bad",
        "objective",
        "windows",
    }
)


class AlertRule:
    """One validated rule (threshold or burn_rate)."""

    def __init__(self, payload: Dict) -> None:
        unknown = sorted(set(payload) - _RULE_KEYS)
        if unknown:
            raise ConfigError(f"unknown alert rule keys: {unknown}")
        self.name = str(payload.get("name", ""))
        if not self.name:
            raise ConfigError("alert rule needs a name")
        self.kind = str(payload.get("kind", "threshold"))
        if self.kind == "threshold":
            self.metric = payload.get("metric")
            if not self.metric:
                raise ConfigError(f"{self.name}: threshold rule needs a metric")
            self.op = str(payload.get("op", ">"))
            if self.op not in _OPS:
                raise ConfigError(
                    f"{self.name}: op must be one of {sorted(_OPS)}, "
                    f"got {self.op!r}"
                )
            self.threshold = float(payload.get("threshold", 0.0))
            self.for_ms = float(payload.get("for_ms", 0.0))
        elif self.kind == "burn_rate":
            self.good = payload.get("good")
            self.bad = payload.get("bad")
            if not self.good or not self.bad:
                raise ConfigError(
                    f"{self.name}: burn_rate rule needs good/bad metrics"
                )
            self.objective = float(payload.get("objective", 0.99))
            if not 0.0 < self.objective < 1.0:
                raise ConfigError(
                    f"{self.name}: objective must be in (0, 1), "
                    f"got {self.objective}"
                )
            windows = payload.get("windows") or []
            if not windows:
                raise ConfigError(f"{self.name}: burn_rate rule needs windows")
            self.windows: List[Tuple[float, float]] = [
                (float(w["window_ms"]), float(w.get("factor", 1.0)))
                for w in windows
            ]
        else:
            raise ConfigError(
                f"{self.name}: kind must be 'threshold' or 'burn_rate', "
                f"got {self.kind!r}"
            )

    # ------------------------------------------------------------------
    def active_at(
        self, index: int, series: Sequence[Tuple[float, Dict[str, float]]]
    ) -> bool:
        """Does the rule's *predicate* hold at scrape ``index``?  (The
        ``for_ms`` hold is applied by the engine, not here.)"""
        t, sample = series[index]
        if self.kind == "threshold":
            value = sample.get(self.metric, 0.0)
            return _OPS[self.op](value, self.threshold)
        budget = 1.0 - self.objective
        for window_ms, factor in self.windows:
            base = _sample_at_or_before(series, index, t - window_ms)
            d_bad = sample.get(self.bad, 0.0) - base.get(self.bad, 0.0)
            d_good = sample.get(self.good, 0.0) - base.get(self.good, 0.0)
            total = d_bad + d_good
            rate = d_bad / total if total > 0 else 0.0
            if rate < factor * budget:
                return False
        return True


def _sample_at_or_before(
    series: Sequence[Tuple[float, Dict[str, float]]], index: int, cutoff: float
) -> Dict[str, float]:
    """The latest sample at time <= ``cutoff`` among ``series[:index+1]``;
    the window covers the whole run when nothing precedes it (counters
    start at zero, so "before the first scrape" is the empty sample)."""
    best: Optional[Dict[str, float]] = None
    for t, sample in series[: index + 1]:
        if t <= cutoff:
            best = sample
        else:
            break
    return best if best is not None else {}


class AlertEngine:
    """Evaluate rules over a scrape series; produce the alert log."""

    def __init__(self, rules: Sequence[AlertRule]) -> None:
        self.rules = list(rules)

    def evaluate(
        self, series: Sequence[Tuple[float, Dict[str, float]]]
    ) -> List[Dict]:
        """The deterministic alert log: one entry per firing, ordered by
        (fired_at_ms, rule name).  ``resolved_at_ms`` is None for alerts
        still firing at the final scrape."""
        log: List[Dict] = []
        for rule in self.rules:
            pending_since: Optional[float] = None
            fired_at: Optional[float] = None
            for index, (t, _) in enumerate(series):
                active = rule.active_at(index, series)
                if active:
                    if fired_at is None:
                        hold = getattr(rule, "for_ms", 0.0)
                        if pending_since is None:
                            pending_since = t
                        if t - pending_since >= hold:
                            fired_at = t
                else:
                    if fired_at is not None:
                        log.append(
                            {
                                "rule": rule.name,
                                "kind": rule.kind,
                                "fired_at_ms": fired_at,
                                "resolved_at_ms": t,
                            }
                        )
                        fired_at = None
                    pending_since = None
            if fired_at is not None:
                log.append(
                    {
                        "rule": rule.name,
                        "kind": rule.kind,
                        "fired_at_ms": fired_at,
                        "resolved_at_ms": None,
                    }
                )
        log.sort(key=lambda e: (e["fired_at_ms"], e["rule"]))
        return log

    def report(
        self, series: Sequence[Tuple[float, Dict[str, float]]]
    ) -> Dict:
        log = self.evaluate(series)
        return {
            "rules": [rule.name for rule in self.rules],
            "firings": len(log),
            "log": log,
        }


#: Rules ``naspipe monitor`` applies when ``--rules`` is absent.  All of
#: them are silent on a healthy run: no down slots, no failed jobs, no
#: serving SLO burn.
DEFAULT_RULES: Tuple[Dict, ...] = (
    {
        "name": "fleet_slots_down",
        "kind": "threshold",
        "metric": "fleet_down_slots",
        "op": ">",
        "threshold": 0.0,
        "for_ms": 0.0,
    },
    {
        "name": "service_job_failed",
        "kind": "threshold",
        "metric": "service_jobs_failed",
        "op": ">",
        "threshold": 0.0,
        "for_ms": 0.0,
    },
    {
        "name": "serving_slo_burn",
        "kind": "burn_rate",
        "good": "serving_slo_good_total",
        "bad": "serving_slo_bad_total",
        "objective": 0.99,
        "windows": [
            {"window_ms": 500.0, "factor": 10.0},
            {"window_ms": 2000.0, "factor": 5.0},
        ],
    },
)


def load_rules(source=None) -> List[AlertRule]:
    """Build rules from a JSON file path, a list of dicts, or None
    (:data:`DEFAULT_RULES`)."""
    if source is None:
        payloads: Sequence[Dict] = DEFAULT_RULES
    elif isinstance(source, (str, Path)):
        loaded = json.loads(Path(source).read_text())
        if isinstance(loaded, dict):
            loaded = loaded.get("rules", [])
        payloads = loaded
    else:
        payloads = source
    return [AlertRule(dict(payload)) for payload in payloads]
