"""Per-tenant usage metering, reconciled against lease lifetimes.

The :class:`UsageMeter` maintains its own per-tenant ledger from the
:class:`~repro.service.manager.ClusterManager`'s usage-observer
callbacks — one entry per (lease incarnation, slot) holding, opened at
``acquire`` and closed at ``release`` or ``revoke`` on the plane's
virtual clock.  Trace-event listeners add the activity counters:
subnets completed, preemptions, requeues, serving requests admitted /
shed / retried.

**Reconciliation rule** (tested at 1e-9): the per-tenant
``gpu_slot_ms`` totals the meter accumulated from observer callbacks
must sum to the slot-time total the manager computes independently from
its own ledger — including across revocations, where a struck slot's
holding closes at revoke time while the lease's surviving (residual)
slots keep accruing until the holder's idempotent release.  The two
paths share no code, so a split/grouping bug on either side breaks the
equality.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["UsageMeter"]


class UsageMeter:
    """Accumulates per-tenant usage; renders the metering report."""

    def __init__(self) -> None:
        #: tenant -> lease_id -> {"slot_ms", "slots", "revoked"}
        self._leases: Dict[str, Dict[int, Dict]] = {}
        #: tenant -> open (lease_id, slot) -> start_ms
        self._open: Dict[tuple, float] = {}
        self._activity: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # manager observer protocol (see ClusterManager.usage_observer)
    # ------------------------------------------------------------------
    def on_usage(self, kind: str, job: str, lease_id: int, slot: int, now: float, cause: str = "") -> None:
        if kind == "acquire":
            self._open[(job, lease_id, slot)] = now
            lease = self._leases.setdefault(job, {}).setdefault(
                lease_id, {"slot_ms": 0.0, "slots": 0, "revoked": False}
            )
            lease["slots"] += 1
        elif kind == "close":
            start = self._open.pop((job, lease_id, slot), None)
            if start is None:
                return
            lease = self._leases[job][lease_id]
            lease["slot_ms"] += now - start
            if cause == "revoked":
                lease["revoked"] = True

    # ------------------------------------------------------------------
    # activity counters (fed by trace-event listeners / direct calls)
    # ------------------------------------------------------------------
    def bump(self, tenant: str, field: str, amount: float = 1.0) -> None:
        activity = self._activity.setdefault(tenant, {})
        activity[field] = activity.get(field, 0.0) + amount

    # ------------------------------------------------------------------
    def tenant_gpu_slot_ms(self) -> Dict[str, float]:
        return {
            tenant: sum(entry["slot_ms"] for entry in leases.values())
            for tenant, leases in sorted(self._leases.items())
        }

    def report(self, manager=None) -> Dict:
        """The metering report; with ``manager`` given, includes the
        reconciliation block against its independent ledger."""
        tenants: Dict[str, Dict] = {}
        names = sorted(set(self._leases) | set(self._activity))
        for tenant in names:
            leases = self._leases.get(tenant, {})
            activity = self._activity.get(tenant, {})
            tenants[tenant] = {
                "gpu_slot_ms": sum(e["slot_ms"] for e in leases.values()),
                "leases": [
                    {
                        "lease": lease_id,
                        "slots": leases[lease_id]["slots"],
                        "gpu_slot_ms": leases[lease_id]["slot_ms"],
                        "revoked": leases[lease_id]["revoked"],
                    }
                    for lease_id in sorted(leases)
                ],
                "subnets_completed": int(activity.get("subnets_completed", 0)),
                "preemptions": int(activity.get("preemptions", 0)),
                "requeues": int(activity.get("requeues", 0)),
                "requests_admitted": int(activity.get("requests_admitted", 0)),
                "requests_shed": int(activity.get("requests_shed", 0)),
                "requests_retried": int(activity.get("requests_retried", 0)),
            }
        report: Dict = {"tenants": tenants}
        if manager is not None:
            tenant_total = sum(t["gpu_slot_ms"] for t in tenants.values())
            ledger_total = manager.leased_slot_ms_total()
            residual = abs(tenant_total - ledger_total)
            report["reconciliation"] = {
                "tenant_total_ms": tenant_total,
                "ledger_total_ms": ledger_total,
                "residual_ms": residual,
                "ok": residual <= 1e-9,
            }
        return report

    def format_report(self, report: Optional[Dict] = None, manager=None) -> str:
        """Stable human-readable rendering of :meth:`report`."""
        if report is None:
            report = self.report(manager)
        lines: List[str] = [
            f"{'tenant':<14s} {'gpu_slot_ms':>12s} {'leases':>6s} "
            f"{'revoked':>7s} {'subnets':>7s} {'preempt':>7s} "
            f"{'requeue':>7s} {'adm':>5s} {'shed':>5s}"
        ]
        for tenant, row in report["tenants"].items():
            revoked = sum(1 for lease in row["leases"] if lease["revoked"])
            lines.append(
                f"{tenant:<14s} {row['gpu_slot_ms']:>12.3f} "
                f"{len(row['leases']):>6d} {revoked:>7d} "
                f"{row['subnets_completed']:>7d} {row['preemptions']:>7d} "
                f"{row['requeues']:>7d} {row['requests_admitted']:>5d} "
                f"{row['requests_shed']:>5d}"
            )
        reconciliation = report.get("reconciliation")
        if reconciliation is not None:
            verdict = "OK" if reconciliation["ok"] else "MISMATCH"
            lines.append(
                f"reconciliation: tenants "
                f"{reconciliation['tenant_total_ms']:.6f} ms vs ledger "
                f"{reconciliation['ledger_total_ms']:.6f} ms "
                f"(residual {reconciliation['residual_ms']:.2e}) {verdict}"
            )
        return "\n".join(lines)
