"""Chrome Trace Event Format export (Perfetto / ``chrome://tracing``).

The exporter renders one :class:`~repro.sim.trace.ExecutionTrace` as a
Chrome trace with four processes:

* **pid 0 "GPU compute"** — one thread per stage; complete (``X``)
  events for every fwd/bwd/stall busy interval, instant events for
  subnet completions and OOM retries;
* **pid 1 "Copy engines"** — one thread per stage; ``X`` spans from
  prefetch issue to landing (queueing included), instant eviction
  events, and per-stage cumulative cache hit/miss counters;
* **pid 2 "NIC"** — one thread per inter-stage link and direction;
  ``X`` spans from transfer enqueue to delivery;
* **pid 3 "Scheduler"** — one thread per stage; ``X`` spans for CSP
  wait windows (annotated with the blocking ``(subnet, layer)`` edge),
  instant bulk-flush / staleness-hold / migration events, and ready-set
  / queue-depth counters.

Timestamps map 1 virtual ms → 1 trace microsecond (Chrome's native
unit), preserving relative proportions.  Output is deterministic
byte-for-byte: events are sorted on a total key and serialised with
sorted object keys, so identical runs export identical files (the
golden-file test enforces this).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.summary import csp_wait_windows
from repro.sim.trace import ExecutionTrace

__all__ = ["to_perfetto", "export_chrome_trace", "validate_chrome_trace"]

_PID_GPU = 0
_PID_COPY = 1
_PID_NIC = 2
_PID_SCHED = 3

_PROCESS_NAMES = {
    _PID_GPU: "GPU compute",
    _PID_COPY: "Copy engines",
    _PID_NIC: "NIC",
    _PID_SCHED: "Scheduler",
}

_INTERVAL_NAMES = {"fwd": "forward", "bwd": "backward", "stall": "stall"}


def _meta(pid: int, tid: Optional[int], name: str) -> Dict[str, object]:
    event: Dict[str, object] = {
        "name": "process_name" if tid is None else "thread_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def to_perfetto(
    trace: ExecutionTrace,
    label: str = "naspipe",
    system: str = "",
    space: str = "",
    batch: Optional[int] = None,
) -> Dict[str, object]:
    """Build the Chrome trace payload (a JSON-serialisable dict)."""
    events: List[Dict[str, object]] = []

    # -- metadata: processes and threads -------------------------------
    for pid, name in _PROCESS_NAMES.items():
        events.append(_meta(pid, None, name))
    for stage in range(trace.num_gpus):
        events.append(_meta(_PID_GPU, stage, f"GPU {stage}"))
        events.append(_meta(_PID_COPY, stage, f"copy engine {stage}"))
        events.append(_meta(_PID_SCHED, stage, f"stage {stage} scheduler"))
    for stage in range(trace.num_gpus - 1):
        events.append(_meta(_PID_NIC, 2 * stage, f"link P{stage}->P{stage + 1}"))
        events.append(_meta(_PID_NIC, 2 * stage + 1, f"link P{stage + 1}->P{stage}"))

    # -- pid 0: GPU busy intervals --------------------------------------
    for interval in trace.intervals:
        events.append(
            {
                "name": f"SN{interval.subnet_id} {_INTERVAL_NAMES[interval.kind]}",
                "cat": interval.kind,
                "ph": "X",
                "pid": _PID_GPU,
                "tid": interval.gpu_id,
                "ts": interval.start,
                "dur": interval.duration,
                "args": {"subnet": interval.subnet_id, "kind": interval.kind},
            }
        )

    # -- typed events ---------------------------------------------------
    cache_hits: Dict[int, int] = {}
    cache_misses: Dict[int, int] = {}
    for event in trace.events:
        attrs = event.attrs_dict
        if event.kind == "prefetch_issue":
            land = float(attrs["land"])  # type: ignore[arg-type]
            events.append(
                {
                    "name": (
                        "{}fetch B{}.c{}".format(
                            "demand " if attrs["demand"] else "pre",
                            attrs["block"],
                            attrs["choice"],
                        )
                    ),
                    "cat": "copy",
                    "ph": "X",
                    "pid": _PID_COPY,
                    "tid": event.stage,
                    "ts": event.time,
                    "dur": max(0.0, land - event.time),
                    "args": {
                        "bytes": attrs["nbytes"],
                        "demand": attrs["demand"],
                    },
                }
            )
        elif event.kind == "eviction":
            events.append(
                {
                    "name": f"evict B{attrs['block']}.c{attrs['choice']}",
                    "cat": "evict",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID_COPY,
                    "tid": event.stage,
                    "ts": event.time,
                    "args": {
                        "bytes": attrs["nbytes"],
                        "dirty": attrs["dirty"],
                        "reason": attrs["reason"],
                    },
                }
            )
        elif event.kind == "cache_access":
            hits = cache_hits.get(event.stage, 0) + int(attrs["hits"])  # type: ignore[arg-type]
            misses = cache_misses.get(event.stage, 0) + int(attrs["misses"])  # type: ignore[arg-type]
            cache_hits[event.stage] = hits
            cache_misses[event.stage] = misses
            events.append(
                {
                    "name": f"cache P{event.stage}",
                    "ph": "C",
                    "pid": _PID_COPY,
                    "ts": event.time,
                    "args": {"hits": hits, "misses": misses},
                }
            )
        elif event.kind == "nic_transfer":
            src = int(attrs["src"])  # type: ignore[arg-type]
            fwd = attrs["direction"] == "fwd"
            tid = 2 * (src if fwd else src - 1) + (0 if fwd else 1)
            arrive = float(attrs["arrive"])  # type: ignore[arg-type]
            events.append(
                {
                    "name": "SN{} {}".format(
                        event.subnet_id, "activation" if fwd else "gradient"
                    ),
                    "cat": "nic",
                    "ph": "X",
                    "pid": _PID_NIC,
                    "tid": tid,
                    "ts": event.time,
                    "dur": max(0.0, arrive - event.time),
                    "args": {
                        "bytes": attrs["nbytes"],
                        "src": attrs["src"],
                        "dst": attrs["dst"],
                        "subnet": event.subnet_id,
                    },
                }
            )
        elif event.kind == "ready_set":
            events.append(
                {
                    "name": f"ready set P{event.stage}",
                    "ph": "C",
                    "pid": _PID_SCHED,
                    "ts": event.time,
                    "args": {"size": attrs["size"]},
                }
            )
        elif event.kind == "queue_depth":
            events.append(
                {
                    "name": f"queues P{event.stage}",
                    "ph": "C",
                    "pid": _PID_SCHED,
                    "ts": event.time,
                    "args": {"fwd": attrs["fwd"], "bwd": attrs["bwd"]},
                }
            )
        elif event.kind in ("bulk_flush", "staleness_hold", "migration"):
            events.append(
                {
                    "name": event.kind,
                    "cat": "policy",
                    "ph": "i",
                    "s": "p" if event.kind == "bulk_flush" else "t",
                    "pid": _PID_SCHED,
                    "tid": max(0, event.stage),
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind == "oom_retry":
            events.append(
                {
                    "name": f"SN{event.subnet_id} OOM retry",
                    "cat": "oom",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID_GPU,
                    "tid": event.stage,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind == "subnet_complete":
            events.append(
                {
                    "name": f"SN{event.subnet_id} complete",
                    "cat": "completion",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID_GPU,
                    "tid": 0,
                    "ts": event.time,
                    "args": {"subnet": event.subnet_id},
                }
            )
        elif event.kind == "fault_inject":
            events.append(
                {
                    "name": f"fault {attrs['fault']}@{attrs['target']}",
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID_GPU,
                    "tid": 0,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind in ("gpu_down", "gpu_up"):
            events.append(
                {
                    "name": f"{event.kind} P{event.stage}",
                    "cat": "fault",
                    "ph": "i",
                    "s": "p",
                    "pid": _PID_GPU,
                    "tid": event.stage,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind == "task_retry":
            events.append(
                {
                    "name": f"SN{event.subnet_id} transient retry",
                    "cat": "fault",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID_GPU,
                    "tid": event.stage,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind in (
            "checkpoint_begin",
            "checkpoint_commit",
            "recovery_begin",
            "recovery_done",
        ):
            events.append(
                {
                    "name": f"{event.kind} cut {attrs['cut']}",
                    "cat": "checkpoint",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID_SCHED,
                    "tid": 0,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind == "lease_revoke":
            events.append(
                {
                    "name": (
                        f"lease_revoke {attrs['job']} "
                        f"slot {attrs['slot']} ({attrs['fault']})"
                    ),
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID_SCHED,
                    "tid": 0,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind in (
            "job_submit",
            "job_start",
            "job_resize",
            "job_preempt",
            "job_done",
            "job_requeue",
            "job_failed",
        ):
            events.append(
                {
                    "name": f"{event.kind} {attrs['job']}",
                    "cat": "service",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID_SCHED,
                    "tid": 0,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind in (
            "request_arrive",
            "request_admit",
            "request_shed",
            "request_retry",
            "cache_hit",
            "cache_miss",
        ):
            events.append(
                {
                    "name": f"{event.kind} R{event.subnet_id}",
                    "cat": "serving",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID_SCHED,
                    "tid": 0,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind == "batch_form":
            events.append(
                {
                    "name": (
                        f"batch {attrs['batch']} "
                        f"({attrs['size']} req, {attrs['cause']})"
                    ),
                    "cat": "serving",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID_SCHED,
                    "tid": 0,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind == "health_report":
            events.append(
                {
                    "name": (
                        f"{attrs['scope']}{attrs['index']} "
                        f"-> {attrs['status']}"
                    ),
                    "cat": "health",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID_SCHED,
                    "tid": 0,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind == "mitigation_apply":
            events.append(
                {
                    "name": (
                        f"{attrs['action']} "
                        f"{'on' if attrs['active'] else 'off'}"
                    ),
                    "cat": "mitigation",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID_SCHED,
                    "tid": 0,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        elif event.kind == "rebalance":
            events.append(
                {
                    "name": f"rebalance P{event.stage} w={attrs['weight']}",
                    "cat": "mitigation",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID_SCHED,
                    "tid": event.stage,
                    "ts": event.time,
                    "args": attrs,
                }
            )
        # task_dispatch/task_done/fetch_stall/subnet_inject/csp_wait_*/
        # sim_quiescent are covered by the interval, wait-window and
        # summary renderings; prefetch_land by the issue span.

    # -- pid 3: CSP wait windows ---------------------------------------
    for stage, windows in sorted(csp_wait_windows(trace).items()):
        for window in windows:
            events.append(
                {
                    "name": (
                        f"wait SN{window.blocked} on SN{window.blocking_subnet}"
                        f" B{window.block}.c{window.choice}"
                    ),
                    "cat": "csp-wait",
                    "ph": "X",
                    "pid": _PID_SCHED,
                    "tid": stage,
                    "ts": window.start,
                    "dur": window.end - window.start,
                    "args": {
                        "blocked": window.blocked,
                        "blocking_subnet": window.blocking_subnet,
                        "block": window.block,
                        "choice": window.choice,
                    },
                }
            )

    # Total deterministic order: metadata first, then by time/track/name.
    events.sort(
        key=lambda e: (
            0 if e["ph"] == "M" else 1,
            e.get("ts", 0.0),
            e["pid"],
            e.get("tid", -1),
            e["name"],
            e["ph"],
        )
    )
    other: Dict[str, object] = {"label": label}
    if system:
        other["system"] = system
    if space:
        other["space"] = space
    if batch is not None:
        other["batch"] = batch
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def export_chrome_trace(
    trace: ExecutionTrace,
    path: Optional[Union[str, Path]] = None,
    label: str = "naspipe",
    system: str = "",
    space: str = "",
    batch: Optional[int] = None,
) -> str:
    """Serialise :func:`to_perfetto` deterministically; optionally write
    it to ``path``.  Returns the JSON text."""
    payload = to_perfetto(trace, label=label, system=system, space=space, batch=batch)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


def validate_chrome_trace(payload: Dict[str, object]) -> List[str]:
    """Structural check of a Chrome trace payload (empty = valid).

    Verifies the envelope and, per event, the fields each phase (``ph``)
    requires: ``X`` needs ``ts``/``dur``/``tid``; ``C`` needs numeric
    ``args``; ``i`` needs ``ts`` and scope ``s``; ``M`` needs a name arg.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase == "X":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: X event without numeric ts")
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                problems.append(f"{where}: X event without dur >= 0")
            if "tid" not in event:
                problems.append(f"{where}: X event without tid")
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: C event without args")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"{where}: C event with non-numeric series")
        elif phase == "i":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: i event without numeric ts")
            if event.get("s") not in ("g", "p", "t"):
                problems.append(f"{where}: i event with bad scope {event.get('s')!r}")
        elif phase == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                problems.append(f"{where}: M event without args.name")
        else:
            problems.append(f"{where}: unsupported phase {phase!r}")
    return problems
