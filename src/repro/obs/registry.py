"""Cross-run metrics registry: append-only JSONL + field-wise compare.

One record per finished run, holding everything the trajectory-level
questions need — the deterministic :func:`repro.obs.summary.run_summary`
dict, the critical-path breakdown, a config digest keying "the same
experiment", and a best-effort git SHA locating the code that produced
it.  Records append to ``.naspipe/runs.jsonl`` (or any ``--registry``
path) as canonical single-line JSON, so the registry is diff-able,
greppable and byte-stable: writing the same run twice produces two
byte-identical lines.

``compare_records`` diffs two records field by field (shared numeric
summary fields plus the per-resource critical-path split) and
``check_regression`` turns the diff into a CI verdict: the chaos-smoke
gate records a baseline record in-repo and fails the build when
makespan or bubble ratio regresses past the threshold — the same
pattern as the scheduler-cost gate.

Record schema (see ``docs/ANALYSIS.md``):

```
{"schema": 1, "run_id": <sha256[:16] of summary+critical_path>,
 "config_digest": <sha256 of the run's identity>, "git_sha": <str|null>,
 "summary": {...run_summary...}, "critical_path": {...breakdown...}}
```

``git_sha`` is recorded for provenance but excluded from comparisons
and from ``run_id`` — two identical runs from different commits are
still the same run.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "DEFAULT_REGISTRY",
    "config_digest",
    "run_record",
    "append_run",
    "load_runs",
    "resolve_run",
    "compare_records",
    "check_regression",
    "format_compare",
]

DEFAULT_REGISTRY = Path(".naspipe") / "runs.jsonl"

#: summary fields the comparison diffs (all numeric, all deterministic)
COMPARE_FIELDS = (
    "makespan_ms",
    "bubble_ratio",
    "throughput_samples_per_sec",
    "subnets_completed",
    "total_alu",
    "mean_exec_ms",
)

#: fields ``check_regression`` gates on: higher is worse for both
REGRESSION_FIELDS = ("makespan_ms", "bubble_ratio")


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_digest(identity: Dict[str, object]) -> str:
    """SHA-256 of a canonical-JSON identity payload.  For manifest-based
    runs prefer :meth:`repro.replay.RunManifest.config_digest`, which
    digests the full replayable identity."""
    return hashlib.sha256(_canonical(identity).encode("utf-8")).hexdigest()


def _git_sha(cwd: Optional[Path] = None) -> Optional[str]:
    """Best-effort HEAD SHA; None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=str(cwd) if cwd is not None else None,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def run_record(
    result,
    identity: Optional[Dict[str, object]] = None,
    git_sha: Union[str, None, bool] = True,
) -> Dict[str, object]:
    """Build the registry record for one :class:`PipelineResult`.

    ``identity`` overrides the config-digest payload (pass
    ``manifest.config_digest()`` material for replayable runs); the
    default digests the result's own identity fields.  ``git_sha=True``
    probes git; pass a string to pin it or ``None``/``False`` to omit.
    """
    from repro.obs.critical_path import critical_path_breakdown
    from repro.obs.summary import run_summary

    summary = run_summary(result)
    breakdown = critical_path_breakdown(result.trace)
    if identity is None:
        identity = {
            "system": result.system,
            "space": result.space,
            "num_gpus": result.num_gpus,
            "batch": result.batch,
        }
    body = {"summary": summary, "critical_path": breakdown}
    run_id = hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()[:16]
    if git_sha is True:
        sha: Optional[str] = _git_sha()
    elif isinstance(git_sha, str):
        sha = git_sha
    else:
        sha = None
    record = {
        "schema": 1,
        "run_id": run_id,
        "config_digest": config_digest(identity),
        "git_sha": sha,
        "summary": summary,
        "critical_path": breakdown,
    }
    # Compact telemetry block (see docs/TELEMETRY.md): derived by
    # replaying the trace through the telemetry listener, and — like
    # git_sha — excluded from run_id (the body above is digested before
    # this key exists), so records from pre-telemetry registries still
    # resolve by the same ids.
    telemetry = getattr(result, "telemetry", None)
    if callable(telemetry):
        record["telemetry"] = telemetry().compact_block()
    return record


def append_run(
    record: Dict[str, object], path: Union[str, Path, None] = None
) -> Path:
    """Append one record as a canonical JSON line; returns the path."""
    registry = Path(path) if path is not None else DEFAULT_REGISTRY
    registry.parent.mkdir(parents=True, exist_ok=True)
    with registry.open("a", encoding="utf-8") as handle:
        handle.write(_canonical(record) + "\n")
    return registry


def load_runs(path: Union[str, Path, None] = None) -> List[Dict[str, object]]:
    """All records in the registry, oldest first; [] when absent."""
    registry = Path(path) if path is not None else DEFAULT_REGISTRY
    if not registry.exists():
        return []
    records = []
    for line in registry.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def resolve_run(
    ref: str, registry: Union[str, Path, None] = None
) -> Dict[str, object]:
    """A record from a reference: a JSON/JSONL file path (last record
    wins) or a ``run_id`` prefix looked up in the registry (latest
    match wins — the registry is append-only, so "latest" is the most
    recent run of that id)."""
    path = Path(ref)
    if path.exists() and path.is_file():
        text = path.read_text(encoding="utf-8").strip()
        if not text:
            raise ValueError(f"empty run record file: {ref}")
        last_line = text.splitlines()[-1].strip()
        return json.loads(last_line)
    matches = [
        record
        for record in load_runs(registry)
        if str(record.get("run_id", "")).startswith(ref)
    ]
    if not matches:
        raise KeyError(
            f"no run {ref!r}: not a file and no run_id prefix match in "
            f"{Path(registry) if registry is not None else DEFAULT_REGISTRY}"
        )
    return matches[-1]


def _delta(base: float, other: float) -> Dict[str, float]:
    entry = {"a": base, "b": other, "delta": other - base}
    entry["ratio"] = (other / base) if base else (1.0 if other == base else float("inf"))
    return entry


def compare_records(
    a: Dict[str, object], b: Dict[str, object]
) -> Dict[str, object]:
    """Field-by-field diff of two records (deterministic key order).

    Covers the numeric summary fields in :data:`COMPARE_FIELDS` plus the
    per-resource critical-path milliseconds.  ``git_sha`` is reported
    for context but never diffed.
    """
    summary_a = a.get("summary", {})
    summary_b = b.get("summary", {})
    fields = {}
    for field in COMPARE_FIELDS:
        if field in summary_a and field in summary_b:
            fields[field] = _delta(
                float(summary_a[field]), float(summary_b[field])
            )
    cp_a = a.get("critical_path", {}).get("by_resource_ms", {})
    cp_b = b.get("critical_path", {}).get("by_resource_ms", {})
    critical_path = {
        resource: _delta(float(cp_a[resource]), float(cp_b[resource]))
        for resource in sorted(set(cp_a) & set(cp_b))
    }
    telemetry = _compare_telemetry(
        a.get("telemetry") or {}, b.get("telemetry") or {}
    )
    return {
        "schema": 1,
        "run_a": {
            "run_id": a.get("run_id"),
            "config_digest": a.get("config_digest"),
            "git_sha": a.get("git_sha"),
        },
        "run_b": {
            "run_id": b.get("run_id"),
            "config_digest": b.get("config_digest"),
            "git_sha": b.get("git_sha"),
        },
        "same_config": a.get("config_digest") == b.get("config_digest"),
        "fields": fields,
        "critical_path": critical_path,
        "telemetry": telemetry,
    }


def _compare_telemetry(a: Dict, b: Dict) -> Dict[str, object]:
    """Diff of two compact telemetry blocks (empty dict when neither
    record carries one — pre-telemetry registries stay comparable)."""
    if not a and not b:
        return {}
    diff: Dict[str, object] = {}
    for field in ("peak_queue_depth", "alerts_fired", "scrapes"):
        if field in a or field in b:
            diff[field] = _delta(
                float(a.get(field, 0.0)), float(b.get(field, 0.0))
            )
    usage_a = a.get("gpu_slot_ms") or {}
    usage_b = b.get("gpu_slot_ms") or {}
    if usage_a or usage_b:
        diff["gpu_slot_ms"] = {
            tenant: _delta(
                float(usage_a.get(tenant, 0.0)),
                float(usage_b.get(tenant, 0.0)),
            )
            for tenant in sorted(set(usage_a) | set(usage_b))
        }
    return diff


def check_regression(
    comparison: Dict[str, object], threshold_pct: float
) -> List[str]:
    """Regression verdicts: fields where run B is worse than run A by
    more than ``threshold_pct`` percent.  Empty list = gate passes.
    ``--fail-on-regression 100`` is the 2x gate."""
    failures = []
    limit = 1.0 + threshold_pct / 100.0
    for field in REGRESSION_FIELDS:
        entry = comparison.get("fields", {}).get(field)
        if entry is None:
            continue
        base, other = entry["a"], entry["b"]
        if base <= 0:
            # a zero baseline cannot express a percentage; any increase
            # beyond noise is a regression
            if other > 1e-9:
                failures.append(
                    f"{field}: {base:.6g} -> {other:.6g} "
                    f"(no baseline to scale {threshold_pct:g}% against)"
                )
            continue
        if other > base * limit:
            failures.append(
                f"{field}: {base:.6g} -> {other:.6g} "
                f"(+{(other / base - 1.0) * 100.0:.1f}% > "
                f"{threshold_pct:g}% threshold)"
            )
    return failures


def format_compare(comparison: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`compare_records` (also
    byte-deterministic — the CI gate logs it)."""
    lines = [
        f"run A: {comparison['run_a']['run_id']}  "
        f"config {str(comparison['run_a']['config_digest'])[:12]}",
        f"run B: {comparison['run_b']['run_id']}  "
        f"config {str(comparison['run_b']['config_digest'])[:12]}",
        "same config: " + ("yes" if comparison["same_config"] else "no"),
        "",
        f"{'field':<28} {'run A':>14} {'run B':>14} {'delta':>12} {'ratio':>8}",
    ]
    for field, entry in comparison["fields"].items():
        lines.append(
            f"{field:<28} {entry['a']:>14.4f} {entry['b']:>14.4f} "
            f"{entry['delta']:>+12.4f} {entry['ratio']:>8.3f}"
        )
    if comparison["critical_path"]:
        lines.append("")
        lines.append("critical path (ms on path):")
        for resource, entry in comparison["critical_path"].items():
            lines.append(
                f"  {resource:<26} {entry['a']:>14.4f} {entry['b']:>14.4f} "
                f"{entry['delta']:>+12.4f}"
            )
    telemetry = comparison.get("telemetry") or {}
    if telemetry:
        lines.append("")
        lines.append("telemetry:")
        for field in ("peak_queue_depth", "alerts_fired", "scrapes"):
            entry = telemetry.get(field)
            if entry is not None:
                lines.append(
                    f"  {field:<26} {entry['a']:>14.4f} {entry['b']:>14.4f} "
                    f"{entry['delta']:>+12.4f}"
                )
        for tenant, entry in (telemetry.get("gpu_slot_ms") or {}).items():
            lines.append(
                f"  gpu_slot_ms[{tenant}]".ljust(28)
                + f" {entry['a']:>14.4f} {entry['b']:>14.4f} "
                f"{entry['delta']:>+12.4f}"
            )
    return "\n".join(lines) + "\n"
