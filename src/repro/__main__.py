"""``python -m repro`` — same entry point as the ``naspipe`` script."""

import sys

from repro.cli import main

sys.exit(main())
