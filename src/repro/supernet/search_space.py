"""Search-space definitions: the paper's Table 1 registry plus helpers.

A :class:`SearchSpace` is pure configuration — block/choice counts, domain,
dataset name, batching constants.  The heavier :class:`~repro.supernet.
supernet.Supernet` object is built *from* a space.

The seven spaces evaluated in the paper:

=========  =============  ===========  ========
space      choice blocks  layers/block dataset
=========  =============  ===========  ========
NLP.c0     48             96           WNMT
NLP.c1     48             72           WNMT
NLP.c2     48             48           WNMT
NLP.c3     48             24           WNMT
CV.c1      32             48           ImageNet
CV.c2      32             24           ImageNet
CV.c3      32             12           ImageNet
=========  =============  ===========  ========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import SearchSpaceError

__all__ = ["SearchSpace", "SEARCH_SPACES", "get_search_space", "list_search_spaces"]


@dataclass(frozen=True)
class SearchSpace:
    """Configuration of one supernet search space.

    ``reference_batch`` matches Table 5's profiling input (192 for NLP,
    64 for CV); ``max_batch`` is the algorithm-level cap the paper's
    systems train with (NASPipe reaches it, GPipe/PipeDream cannot).
    ``functional_width`` and ``num_classes`` size the numpy functional
    plane (small by design — the timing plane uses the profiled sizes).
    """

    name: str
    domain: str  # "NLP" or "CV"
    num_blocks: int
    choices_per_block: int
    dataset: str
    reference_batch: int
    max_batch: int
    batch_latency_floor: int  # b0 in the batch-time scaling law
    functional_width: int = 32
    num_classes: int = 32

    def __post_init__(self) -> None:
        if self.domain not in ("NLP", "CV"):
            raise SearchSpaceError(f"domain must be NLP or CV, got {self.domain!r}")
        if self.num_blocks <= 0 or self.choices_per_block <= 0:
            raise SearchSpaceError(
                f"{self.name}: blocks and choices must be positive "
                f"({self.num_blocks}, {self.choices_per_block})"
            )

    @property
    def num_candidate_layers(self) -> int:
        """Total candidate layers embedded in the supernet (m × n)."""
        return self.num_blocks * self.choices_per_block

    @property
    def architecture_count(self) -> int:
        """How many candidate DNNs the space embeds (n^m)."""
        return self.choices_per_block**self.num_blocks

    def validate_choices(self, choices) -> None:
        """Raise unless ``choices`` encodes a subnet of this space."""
        if len(choices) != self.num_blocks:
            raise SearchSpaceError(
                f"{self.name}: subnet must choose {self.num_blocks} layers, "
                f"got {len(choices)}"
            )
        for block, choice in enumerate(choices):
            if not 0 <= choice < self.choices_per_block:
                raise SearchSpaceError(
                    f"{self.name}: block {block} choice {choice} out of "
                    f"range [0, {self.choices_per_block})"
                )

    def scaled(self, **overrides) -> "SearchSpace":
        """A copy with some fields overridden (for scaled-down tests)."""
        from dataclasses import replace

        return replace(self, **overrides)


def _nlp_space(name: str, choices: int) -> SearchSpace:
    return SearchSpace(
        name=name,
        domain="NLP",
        num_blocks=48,
        choices_per_block=choices,
        dataset="WNMT",
        reference_batch=192,
        max_batch=192,
        batch_latency_floor=115,
    )


def _cv_space(name: str, choices: int) -> SearchSpace:
    return SearchSpace(
        name=name,
        domain="CV",
        num_blocks=32,
        choices_per_block=choices,
        dataset="ImageNet",
        reference_batch=64,
        max_batch=64,
        batch_latency_floor=81,
    )


SEARCH_SPACES: Dict[str, SearchSpace] = {
    space.name: space
    for space in (
        _nlp_space("NLP.c0", 96),
        _nlp_space("NLP.c1", 72),
        _nlp_space("NLP.c2", 48),
        _nlp_space("NLP.c3", 24),
        _cv_space("CV.c1", 48),
        _cv_space("CV.c2", 24),
        _cv_space("CV.c3", 12),
    )
}


def get_search_space(name: str) -> SearchSpace:
    """Look up a Table 1 space by name (e.g. ``"NLP.c1"``)."""
    try:
        return SEARCH_SPACES[name]
    except KeyError:
        raise SearchSpaceError(
            f"unknown search space {name!r}; known: {sorted(SEARCH_SPACES)}"
        ) from None


def list_search_spaces() -> List[str]:
    """All registered space names, NLP first then CV (paper order)."""
    return ["NLP.c0", "NLP.c1", "NLP.c2", "NLP.c3", "CV.c1", "CV.c2", "CV.c3"]
