"""Subnet: one sampled architecture and its dependency helpers.

A subnet is the paper's unit of work: an ``m``-sized list of layer choices,
one per choice block, trained on one batch.  Two subnets are *causally
dependent* iff they chose the same candidate in at least one block; the
later one must then wait for the earlier one's WRITE on every shared layer
(Definition 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.nn.parameter_store import LayerId, intern_layer

__all__ = ["Subnet"]


@dataclass(frozen=True)
class Subnet:
    """An immutable sampled subnet.

    ``subnet_id`` is the sequence ID assigned by the exploration
    algorithm — the total order CSP must be equivalent to.

    Layer-id views (:meth:`layer_ids`, :meth:`layers_in_range`) are
    computed once, interned through
    :func:`repro.nn.parameter_store.intern_layer` and cached on the
    instance — they are consulted on every scheduler decision and cache
    probe, and immutability makes memoisation free.  They return tuples;
    callers must not rely on list identity.
    """

    subnet_id: int
    choices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.subnet_id < 0:
            raise ValueError(f"subnet_id must be >= 0, got {self.subnet_id}")

    @property
    def num_blocks(self) -> int:
        return len(self.choices)

    def layer_ids(self) -> Tuple[LayerId, ...]:
        """The (block, choice) identity of every activated layer."""
        cached = self.__dict__.get("_layer_ids")
        if cached is None:
            cached = tuple(
                intern_layer((block, choice))
                for block, choice in enumerate(self.choices)
            )
            object.__setattr__(self, "_layer_ids", cached)
        return cached

    def layer_id_set(self) -> FrozenSet[LayerId]:
        cached = self.__dict__.get("_layer_id_set")
        if cached is None:
            cached = frozenset(self.layer_ids())
            object.__setattr__(self, "_layer_id_set", cached)
        return cached

    def layers_in_range(self, start: int, stop: int) -> Tuple[LayerId, ...]:
        """Layers of blocks ``[start, stop)`` — one pipeline stage's slice."""
        ranges: Dict[Tuple[int, int], Tuple[LayerId, ...]] = self.__dict__.get(
            "_range_cache"
        )
        if ranges is None:
            ranges = {}
            object.__setattr__(self, "_range_cache", ranges)
        cached = ranges.get((start, stop))
        if cached is None:
            layers = self.layer_ids()
            cached = layers[max(start, 0) : max(stop, 0)]
            ranges[(start, stop)] = cached
        return cached

    def shared_layers(self, other: "Subnet") -> List[LayerId]:
        """Layers both subnets activate (the causal-dependency set)."""
        return [
            (block, choice)
            for block, (choice, other_choice) in enumerate(
                zip(self.choices, other.choices)
            )
            if choice == other_choice
        ]

    def depends_on(self, earlier: "Subnet") -> bool:
        """True iff this subnet causally depends on ``earlier``.

        Only meaningful when ``earlier.subnet_id < self.subnet_id``; the
        check itself is symmetric (layer sharing).
        """
        return any(a == b for a, b in zip(self.choices, earlier.choices))

    def mutate(self, block: int, new_choice: int) -> "Subnet":
        """A copy with one block's choice replaced (evolutionary search)."""
        if not 0 <= block < len(self.choices):
            raise IndexError(f"block {block} out of range")
        choices = list(self.choices)
        choices[block] = new_choice
        return Subnet(self.subnet_id, tuple(choices))

    def with_id(self, subnet_id: int) -> "Subnet":
        """A copy re-numbered with a new sequence ID."""
        return Subnet(subnet_id, self.choices)

    # ------------------------------------------------------------------
    # serialisation (architecture exchange format)
    # ------------------------------------------------------------------
    def encode(self) -> str:
        """Compact text encoding, e.g. ``"3:1-0-2-2"`` (id:choices)."""
        return f"{self.subnet_id}:" + "-".join(str(c) for c in self.choices)

    @classmethod
    def decode(cls, text: str) -> "Subnet":
        """Inverse of :meth:`encode`."""
        try:
            id_part, choices_part = text.split(":", 1)
            choices = tuple(int(c) for c in choices_part.split("-"))
            return cls(int(id_part), choices)
        except (ValueError, IndexError) as error:
            raise ValueError(f"malformed subnet encoding {text!r}") from error

    def __str__(self) -> str:
        body = ",".join(str(c) for c in self.choices[:8])
        suffix = ",..." if len(self.choices) > 8 else ""
        return f"SN{self.subnet_id}[{body}{suffix}]"
