"""Candidate-layer type catalog with the paper's measured cost profiles.

Table 5 of the paper reports, for eight representative layers, the
forward/backward computation time and the CPU→GPU swap time of the layer's
parameters.  Those numbers anchor this catalog:

* compute times are taken verbatim as the *reference-batch* cost
  (the table's input sizes: batch 192 for NLP, 64 for CV);
* parameter byte counts are back-derived from the swap times at the
  testbed's PCIe 3.0 ×16 bandwidth (15 760 MB/s), which makes the
  simulator's swap model reproduce Table 5 by construction and — a nice
  consistency check — puts the NLP.c1 supernet at ≈14.8 G parameters,
  matching Table 2's "P.S." column for GPipe.

Compute time scales with batch as ``t(b) = t_ref * (b + b0)/(b_ref + b0)``
where ``b0`` is a latency floor (kernel launch + memory-bound prologue):
below ``b0`` the GPU is latency-bound and extra samples are nearly free,
which is why large-batch systems win samples/second in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "LayerTypeProfile",
    "NLP_LAYER_TYPES",
    "CV_LAYER_TYPES",
    "catalog_for_domain",
    "PCIE_BANDWIDTH_BYTES_PER_MS",
    "BYTES_PER_PARAM",
]

#: PCIe 3.0 x16 as measured on the paper's testbed: 15 760 MB/s.
PCIE_BANDWIDTH_BYTES_PER_MS = 15_760 * 1_000_000 / 1_000.0  # bytes per ms

#: float32 parameters.
BYTES_PER_PARAM = 4


def _params_from_swap_ms(swap_ms: float) -> int:
    """Invert the swap model: bytes = swap_time × PCIe bandwidth."""
    return int(swap_ms * PCIE_BANDWIDTH_BYTES_PER_MS / BYTES_PER_PARAM)


@dataclass(frozen=True)
class LayerTypeProfile:
    """Static cost/size profile of one candidate layer *type*.

    ``fwd_ms`` / ``bwd_ms`` are at the domain's reference batch.
    ``activation_bytes_per_sample`` is the boundary activation a sample
    carries between pipeline stages; the working set during compute is a
    multiple of it (see :mod:`repro.memory_model`).
    """

    name: str
    impl: str
    fwd_ms: float
    bwd_ms: float
    param_count: int
    activation_bytes_per_sample: int

    @property
    def param_bytes(self) -> int:
        return self.param_count * BYTES_PER_PARAM

    @property
    def swap_ms(self) -> float:
        """CPU→GPU parameter copy time over PCIe (Table 5's Swap column)."""
        return self.param_bytes / PCIE_BANDWIDTH_BYTES_PER_MS


#: *Boundary* activation per sample — the tensor a sample carries across a
#: stage cut as seen by the *critical path*.  Real pipeline systems chunk
#: boundary tensors and overlap transfer with compute (PyTorch async
#: send/recv), so only a fraction of the raw tensor serialises behind the
#: producing task; we size the effective boundary at a compressed
#: 6 effective tokens × 1024 hidden × 4 B ≈ 25 KB (NLP) and a pooled
#: 12×12×64 map ≈ 37 KB (CV).  This keeps the 867 MB/s testbed network —
#: as the paper measured — off the bottleneck path.  The much larger
#: *intra-stage* working set is priced by :mod:`repro.memory_model`.
_NLP_ACT_BYTES = 6 * 1024 * 4
_CV_ACT_BYTES = 12 * 12 * 64 * 4

# Table 5, NLP rows (input (192, 1024)).
NLP_LAYER_TYPES: Tuple[LayerTypeProfile, ...] = (
    LayerTypeProfile("conv3x1", "conv", 5.0, 10.0, _params_from_swap_ms(1.76), _NLP_ACT_BYTES),
    LayerTypeProfile("sepconv7x1", "sepconv", 4.2, 5.7, _params_from_swap_ms(0.56), _NLP_ACT_BYTES),
    LayerTypeProfile("lightconv5x1", "glu", 0.68, 1.4, _params_from_swap_ms(0.03), _NLP_ACT_BYTES),
    LayerTypeProfile("attention8h", "attention", 7.9, 13.8, _params_from_swap_ms(2.07), _NLP_ACT_BYTES),
)

# Table 5, CV rows (input (64, 112, 112)).
CV_LAYER_TYPES: Tuple[LayerTypeProfile, ...] = (
    LayerTypeProfile("conv3x3", "conv", 7.9, 13.8, _params_from_swap_ms(4.6), _CV_ACT_BYTES),
    LayerTypeProfile("sepconv3x3", "sepconv", 2.8, 4.0, _params_from_swap_ms(0.68), _CV_ACT_BYTES),
    LayerTypeProfile("sepconv5x5", "sepconv", 6.7, 9.9, _params_from_swap_ms(2.04), _CV_ACT_BYTES),
    LayerTypeProfile("dilconv3x3", "branch", 2.5, 3.4, _params_from_swap_ms(0.58), _CV_ACT_BYTES),
)

_CATALOGS: Dict[str, Tuple[LayerTypeProfile, ...]] = {
    "NLP": NLP_LAYER_TYPES,
    "CV": CV_LAYER_TYPES,
}


def catalog_for_domain(domain: str) -> Tuple[LayerTypeProfile, ...]:
    """Return the layer-type tuple for ``domain`` ('NLP' or 'CV')."""
    try:
        return _CATALOGS[domain]
    except KeyError:
        raise KeyError(
            f"unknown domain {domain!r}; known: {sorted(_CATALOGS)}"
        ) from None
