"""Supernet model: search spaces, choice blocks, subnets, sampling.

A supernet (paper §3 preliminaries) is a sequence of ``m`` choice blocks,
each holding ``n`` candidate layers; a subnet picks one candidate per
block.  This package provides:

* :mod:`repro.supernet.catalog` — the candidate-layer type catalog with the
  paper's measured per-layer compute/swap profiles (Table 5);
* :class:`SearchSpace` and the Table 1 registry (NLP.c0-c3, CV.c1-c3);
* :class:`Supernet` — profile and parameter bookkeeping over a space;
* :class:`Subnet` — one sampled architecture with dependency helpers;
* :class:`SposSampler` — uniform per-block sampling (SPOS), the stream
  producer the runtime consumes.
"""

from repro.supernet.catalog import (
    LayerTypeProfile,
    NLP_LAYER_TYPES,
    CV_LAYER_TYPES,
    catalog_for_domain,
)
from repro.supernet.search_space import (
    SearchSpace,
    SEARCH_SPACES,
    get_search_space,
    list_search_spaces,
)
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import LayerProfile, Supernet
from repro.supernet.sampler import SposSampler, SubnetStream

__all__ = [
    "LayerTypeProfile",
    "NLP_LAYER_TYPES",
    "CV_LAYER_TYPES",
    "catalog_for_domain",
    "SearchSpace",
    "SEARCH_SPACES",
    "get_search_space",
    "list_search_spaces",
    "Subnet",
    "LayerProfile",
    "Supernet",
    "SposSampler",
    "SubnetStream",
]
