"""The Supernet object: per-candidate-layer profiles over a search space.

The supernet assigns every candidate layer ``(block, choice)`` a concrete
:class:`LayerProfile` — its type (from the domain catalog), a deterministic
per-instance size scale, and the resulting compute/memory/swap costs.  The
size scale models the real spaces (Evolved Transformer, AmoebaNet) where
candidates within a block differ in width/kernel and therefore in cost;
that variance is what makes static partitions unbalanced and NASPipe's
per-subnet balanced partition (plus mirroring) worth 9.6% execution time
in the paper.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.nn.parameter_store import LayerId
from repro.supernet.catalog import (
    BYTES_PER_PARAM,
    PCIE_BANDWIDTH_BYTES_PER_MS,
    LayerTypeProfile,
    catalog_for_domain,
)
from repro.supernet.search_space import SearchSpace
from repro.supernet.subnet import Subnet

__all__ = ["LayerProfile", "ChoiceBlock", "Supernet"]

#: Size scales span ±25% around 1.0 — comparable to the fwd-time spread
#: within Table 5's layer families.
_SCALE_MIN = 0.75
_SCALE_SPAN = 0.5


def _deterministic_fraction(space_name: str, layer: LayerId) -> float:
    """A stable pseudo-random fraction in [0, 1) for one candidate layer."""
    block, choice = layer
    digest = hashlib.sha256(f"{space_name}/{block}/{choice}".encode()).digest()
    return int.from_bytes(digest[:8], "little") / float(1 << 64)


@dataclass(frozen=True)
class LayerProfile:
    """Fully-resolved costs of one candidate layer instance."""

    layer: LayerId
    type_profile: LayerTypeProfile
    size_scale: float

    @property
    def impl(self) -> str:
        return self.type_profile.impl

    @property
    def type_name(self) -> str:
        return self.type_profile.name

    @property
    def fwd_ms_ref(self) -> float:
        return self.type_profile.fwd_ms * self.size_scale

    @property
    def bwd_ms_ref(self) -> float:
        return self.type_profile.bwd_ms * self.size_scale

    @property
    def param_count(self) -> int:
        return int(self.type_profile.param_count * self.size_scale)

    @property
    def param_bytes(self) -> int:
        return self.param_count * BYTES_PER_PARAM

    @property
    def swap_ms(self) -> float:
        return self.param_bytes / PCIE_BANDWIDTH_BYTES_PER_MS

    @property
    def activation_bytes_per_sample(self) -> int:
        return self.type_profile.activation_bytes_per_sample


@dataclass(frozen=True)
class ChoiceBlock:
    """One choice block: its index and candidate profiles."""

    index: int
    candidates: Tuple[LayerProfile, ...]

    def __len__(self) -> int:
        return len(self.candidates)


class Supernet:
    """Profile bookkeeping for a whole search space.

    Construction is cheap; per-layer profiles are computed on demand and
    memoised.  The supernet never touches weights — the functional plane
    owns those — it answers cost/size questions for partitioning,
    scheduling and memory modelling.
    """

    def __init__(self, space: SearchSpace) -> None:
        self.space = space
        self._catalog = catalog_for_domain(space.domain)
        self._profiles: Dict[LayerId, LayerProfile] = {}

    # ------------------------------------------------------------------
    def profile(self, layer: LayerId) -> LayerProfile:
        """The resolved profile of candidate ``(block, choice)``."""
        cached = self._profiles.get(layer)
        if cached is not None:
            return cached
        block, choice = layer
        if not 0 <= block < self.space.num_blocks:
            raise IndexError(f"block {block} out of range")
        if not 0 <= choice < self.space.choices_per_block:
            raise IndexError(f"choice {choice} out of range")
        type_profile = self._catalog[choice % len(self._catalog)]
        fraction = _deterministic_fraction(self.space.name, layer)
        profile = LayerProfile(
            layer=layer,
            type_profile=type_profile,
            size_scale=_SCALE_MIN + _SCALE_SPAN * fraction,
        )
        self._profiles[layer] = profile
        return profile

    def impl_for(self, layer: LayerId) -> str:
        """Functional implementation family of a candidate layer."""
        return self.profile(layer).impl

    def choice_block(self, block: int) -> ChoiceBlock:
        return ChoiceBlock(
            index=block,
            candidates=tuple(
                self.profile((block, choice))
                for choice in range(self.space.choices_per_block)
            ),
        )

    def blocks(self) -> List[ChoiceBlock]:
        return [self.choice_block(b) for b in range(self.space.num_blocks)]

    # ------------------------------------------------------------------
    # aggregate sizes (Table 2's "P.S." column)
    # ------------------------------------------------------------------
    def total_param_count(self) -> int:
        """Parameters of the *whole* supernet (what GPipe must hold)."""
        return sum(
            self.profile((block, choice)).param_count
            for block in range(self.space.num_blocks)
            for choice in range(self.space.choices_per_block)
        )

    def total_param_bytes(self) -> int:
        return self.total_param_count() * BYTES_PER_PARAM

    def subnet_param_count(self, subnet: Subnet) -> int:
        """Parameters of one subnet (what VPipe caches)."""
        return sum(self.profile(layer).param_count for layer in subnet.layer_ids())

    def subnet_param_bytes(self, subnet: Subnet) -> int:
        return self.subnet_param_count(subnet) * BYTES_PER_PARAM

    def expected_subnet_param_count(self) -> int:
        """Expected parameters of a uniformly sampled subnet."""
        total = 0
        for block in range(self.space.num_blocks):
            block_total = sum(
                self.profile((block, choice)).param_count
                for choice in range(self.space.choices_per_block)
            )
            total += block_total // self.space.choices_per_block
        return total

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    def batch_time_scale(self, batch: int) -> float:
        """Compute-time multiplier for ``batch`` vs the reference batch.

        ``t(b) = t_ref × (b + b0) / (b_ref + b0)`` — the latency-floor
        law calibrated so Table 2's Exec column ratios come out right.
        """
        b0 = self.space.batch_latency_floor
        return (batch + b0) / (self.space.reference_batch + b0)

    def layer_fwd_ms(self, layer: LayerId, batch: int) -> float:
        return self.profile(layer).fwd_ms_ref * self.batch_time_scale(batch)

    def layer_bwd_ms(self, layer: LayerId, batch: int) -> float:
        return self.profile(layer).bwd_ms_ref * self.batch_time_scale(batch)

    def subnet_fwd_ms(self, subnet: Subnet, batch: int) -> float:
        scale = self.batch_time_scale(batch)
        return scale * sum(
            self.profile(layer).fwd_ms_ref for layer in subnet.layer_ids()
        )

    def subnet_bwd_ms(self, subnet: Subnet, batch: int) -> float:
        scale = self.batch_time_scale(batch)
        return scale * sum(
            self.profile(layer).bwd_ms_ref for layer in subnet.layer_ids()
        )

    def subnet_total_ms(self, subnet: Subnet, batch: int) -> float:
        return self.subnet_fwd_ms(subnet, batch) + self.subnet_bwd_ms(subnet, batch)

    def gpu_alu_efficiency(self, batch: int) -> float:
        """ALU occupancy while computing at ``batch`` (saturation curve).

        Small batches leave SMs idle; the paper's per-GPU ALU numbers
        (Table 2) reflect this — PipeDream's tiny batches keep its ALU
        utilisation at 0.6× of one GPU across eight of them.
        """
        b0 = self.space.batch_latency_floor
        return batch / (batch + b0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Supernet({self.space.name})"
