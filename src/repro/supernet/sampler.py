"""Subnet stream generation: SPOS uniform sampling, producer/consumer.

The paper's exploration algorithms (SPOS [9] and peers) emit an *ordered*
list of subnets at runtime; the training backend consumes them through a
producer-consumer ``retrieve()`` (Algorithm 1, line 14).  This module
provides that producer side:

* :class:`SposSampler` — per-choice-block uniform sampling, "the most
  representative method used in existing supernet practices";
* :class:`SubnetStream` — a bounded, replayable, ordered stream facade the
  runtime pulls from; it also supports interleaving several spaces for the
  paper's §5.5 "hybrid traverse" future application.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.errors import SearchSpaceError
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import SearchSpace
from repro.supernet.subnet import Subnet

__all__ = [
    "SposSampler",
    "GenerationalSampler",
    "FairSampler",
    "SubnetStream",
    "interleave_streams",
]


class SposSampler:
    """Uniform per-block sampler (SPOS).

    The sampler's randomness comes from a named seed stream, so the subnet
    sequence is a pure function of ``(root seed, space name)`` — a
    precondition for Definition 1's "same random seeds" clause.
    """

    def __init__(self, space: SearchSpace, seeds: SeedSequenceTree) -> None:
        self.space = space
        self._rng = seeds.fresh_generator(f"spos/{space.name}")
        self._next_id = 0

    def sample(self) -> Subnet:
        """Draw the next subnet in sequence."""
        choices = tuple(
            int(c)
            for c in self._rng.integers(
                0, self.space.choices_per_block, size=self.space.num_blocks
            )
        )
        subnet = Subnet(self._next_id, choices)
        self._next_id += 1
        return subnet

    def sample_many(self, count: int) -> List[Subnet]:
        return [self.sample() for _ in range(count)]


class GenerationalSampler:
    """Population-diverse sampling (evolutionary-search stream shape).

    The paper's default search strategy is evolution [29], which proposes
    a *generation* of candidates at a time.  Candidates within a
    generation explore different regions of the space, so chronologically
    close subnets rarely share layers — the very insight NASPipe's
    scheduler exploits ("the larger a supernet spans, the fewer
    dependencies manifest between chronologically close subnets").

    This sampler draws, per generation of size ``generation``, one fresh
    random permutation of candidates per choice block and deals each
    member a distinct choice — zero intra-generation conflicts, uniform
    marginal distribution, full conflict pressure across generations.
    Causal dependencies therefore still occur (and are still enforced);
    they just stop clustering between immediate neighbours.
    """

    def __init__(
        self,
        space: SearchSpace,
        seeds: SeedSequenceTree,
        generation: int = 8,
    ) -> None:
        if generation > space.choices_per_block:
            raise SearchSpaceError(
                f"generation {generation} exceeds {space.choices_per_block} "
                f"choices per block; members could not be distinct"
            )
        self.space = space
        self.generation = generation
        self._rng = seeds.fresh_generator(f"evolution/{space.name}")
        self._next_id = 0
        self._deck: List[List[int]] = []

    def _deal_generation(self) -> None:
        members: List[List[int]] = [[] for _ in range(self.generation)]
        for _block in range(self.space.num_blocks):
            permutation = self._rng.permutation(self.space.choices_per_block)
            for member, choice in zip(members, permutation):
                member.append(int(choice))
        self._deck = members

    def sample(self) -> Subnet:
        if not self._deck:
            self._deal_generation()
        choices = self._deck.pop(0)
        subnet = Subnet(self._next_id, tuple(choices))
        self._next_id += 1
        return subnet

    def sample_many(self, count: int) -> List[Subnet]:
        return [self.sample() for _ in range(count)]


class FairSampler:
    """Strict-fairness sampling (FairNAS-style).

    Per *round* of ``n`` subnets (``n`` = choices per block), every block
    deals each of its candidates exactly once, in an independently
    shuffled order per block.  Over any window of ``k·n`` subnets every
    candidate layer is trained exactly ``k`` times — removing the
    sampling-frequency bias SPOS leaves in candidate quality estimates.

    From the scheduler's perspective this stream behaves like
    :class:`GenerationalSampler` with generation = n: zero conflicts
    within a round, uniform conflicts across rounds.
    """

    def __init__(self, space: SearchSpace, seeds: SeedSequenceTree) -> None:
        self.space = space
        self._rng = seeds.fresh_generator(f"fair/{space.name}")
        self._next_id = 0
        self._round: List[List[int]] = []

    def _deal_round(self) -> None:
        n = self.space.choices_per_block
        members: List[List[int]] = [[] for _ in range(n)]
        for _block in range(self.space.num_blocks):
            permutation = self._rng.permutation(n)
            for member, choice in zip(members, permutation):
                member.append(int(choice))
        self._round = members

    def sample(self) -> Subnet:
        if not self._round:
            self._deal_round()
        subnet = Subnet(self._next_id, tuple(self._round.pop(0)))
        self._next_id += 1
        return subnet

    def sample_many(self, count: int) -> List[Subnet]:
        return [self.sample() for _ in range(count)]


class SubnetStream:
    """An ordered, finite subnet stream with producer-consumer access.

    The stream is materialised eagerly (subnet descriptors are tiny), which
    buys two properties the experiments need: the full order is known for
    the sequential ground-truth run, and any engine can replay the *same*
    stream — the whole point of reproducibility comparisons.
    """

    def __init__(self, subnets: Sequence[Subnet], start: int = 0) -> None:
        for position, subnet in enumerate(subnets):
            if subnet.subnet_id != start + position:
                raise SearchSpaceError(
                    f"stream position {position} holds subnet id "
                    f"{subnet.subnet_id}; ids must be dense and ordered "
                    f"from {start}"
                )
        self._subnets = list(subnets)
        self._base = start
        self._cursor = 0

    @classmethod
    def sample(
        cls, space: SearchSpace, seeds: SeedSequenceTree, count: int
    ) -> "SubnetStream":
        """Draw ``count`` subnets from a fresh SPOS sampler."""
        return cls(SposSampler(space, seeds).sample_many(count))

    @classmethod
    def sample_generational(
        cls,
        space: SearchSpace,
        seeds: SeedSequenceTree,
        count: int,
        generation: int = 8,
    ) -> "SubnetStream":
        """Draw ``count`` subnets from an evolution-style population
        sampler (diverse within each generation)."""
        sampler = GenerationalSampler(space, seeds, generation)
        return cls(sampler.sample_many(count))

    def __len__(self) -> int:
        return len(self._subnets)

    def __getitem__(self, subnet_id: int) -> Subnet:
        return self._subnets[subnet_id - self._base]

    def __iter__(self) -> Iterator[Subnet]:
        return iter(self._subnets)

    # producer-consumer face (Algorithm 1's retrieve())
    def retrieve(self) -> Optional[Subnet]:
        """Pop the next subnet, or None when the stream is exhausted."""
        if self._cursor >= len(self._subnets):
            return None
        subnet = self._subnets[self._cursor]
        self._cursor += 1
        return subnet

    def reset(self) -> None:
        """Rewind for replay by another engine."""
        self._cursor = 0

    @property
    def remaining(self) -> int:
        return len(self._subnets) - self._cursor

    @property
    def base(self) -> int:
        """First sequence ID in the stream — 0 for a fresh run, the
        resume cut for a recovery slice (ids are preserved across a
        restart so data batches and causal order replay bitwise)."""
        return self._base

    def slice_from(self, start: int) -> "SubnetStream":
        """The sub-stream of ids >= ``start``, keeping original ids —
        what a recovered run consumes after restoring the checkpoint at
        cut ``start``."""
        if start < self._base:
            raise SearchSpaceError(
                f"cannot slice from {start}: stream starts at {self._base}"
            )
        return SubnetStream(self._subnets[start - self._base:], start=start)


def interleave_streams(streams: Sequence[Sequence[Subnet]]) -> SubnetStream:
    """Round-robin merge of several spaces' streams (hybrid traverse, §5.5).

    Subnets are re-numbered with dense global sequence IDs; each subnet's
    original choices are kept, so dependency analysis still works as long
    as callers track which space each position came from (see
    :mod:`repro.nas.hybrid`).
    """
    merged: List[Subnet] = []
    cursors = [0] * len(streams)
    remaining = sum(len(s) for s in streams)
    stream_index = 0
    while remaining:
        if cursors[stream_index] < len(streams[stream_index]):
            original = streams[stream_index][cursors[stream_index]]
            merged.append(Subnet(len(merged), original.choices))
            cursors[stream_index] += 1
            remaining -= 1
        stream_index = (stream_index + 1) % len(streams)
    return SubnetStream(merged)
