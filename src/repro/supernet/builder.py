"""Custom search-space construction (Retiarii's role, library-shaped).

The seven Table 1 spaces cover the paper's evaluation, but a training
system is only useful if users can bring their own supernets.  This
builder lets a space be declared block-by-block with explicit candidate
profiles (measured by :mod:`repro.profiling` or hand-written), producing
a :class:`CustomSupernet` the whole pipeline stack accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import SearchSpaceError
from repro.nn.parameter_store import LayerId
from repro.supernet.catalog import LayerTypeProfile
from repro.supernet.search_space import SearchSpace
from repro.supernet.supernet import LayerProfile, Supernet

__all__ = ["SearchSpaceBuilder", "CustomSupernet"]


class CustomSupernet(Supernet):
    """A supernet whose per-candidate profiles are explicitly supplied."""

    def __init__(
        self,
        space: SearchSpace,
        candidate_profiles: Dict[LayerId, LayerProfile],
    ) -> None:
        super().__init__(space)
        self._explicit = candidate_profiles

    def profile(self, layer: LayerId) -> LayerProfile:
        try:
            return self._explicit[layer]
        except KeyError:
            raise SearchSpaceError(
                f"custom space {self.space.name!r} has no candidate {layer}"
            ) from None


@dataclass
class SearchSpaceBuilder:
    """Incrementally declare a search space.

    >>> builder = SearchSpaceBuilder("my-space", domain="NLP")
    >>> builder.add_block([profile_a, profile_b])          # block 0
    >>> builder.add_block([profile_a, profile_c], scales=[1.0, 0.8])
    >>> supernet = builder.build()
    """

    name: str
    domain: str = "NLP"
    reference_batch: int = 64
    max_batch: int = 64
    batch_latency_floor: int = 96
    functional_width: int = 32
    num_classes: int = 32
    _blocks: List[List[LayerProfile]] = field(default_factory=list)

    def add_block(
        self,
        candidates: Sequence[LayerTypeProfile],
        scales: Optional[Sequence[float]] = None,
    ) -> "SearchSpaceBuilder":
        """Append a choice block with the given candidate types."""
        if not candidates:
            raise SearchSpaceError("a choice block needs at least one candidate")
        if scales is not None and len(scales) != len(candidates):
            raise SearchSpaceError(
                f"got {len(scales)} scales for {len(candidates)} candidates"
            )
        block_index = len(self._blocks)
        resolved = [
            LayerProfile(
                layer=(block_index, choice),
                type_profile=type_profile,
                size_scale=(scales[choice] if scales is not None else 1.0),
            )
            for choice, type_profile in enumerate(candidates)
        ]
        self._blocks.append(resolved)
        return self

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def build(self) -> CustomSupernet:
        """Validate and materialise the supernet."""
        if not self._blocks:
            raise SearchSpaceError("search space has no choice blocks")
        widths = {len(block) for block in self._blocks}
        if len(widths) != 1:
            raise SearchSpaceError(
                f"all blocks must offer the same candidate count, got {widths}"
            )
        space = SearchSpace(
            name=self.name,
            domain=self.domain,
            num_blocks=len(self._blocks),
            choices_per_block=widths.pop(),
            dataset="custom",
            reference_batch=self.reference_batch,
            max_batch=self.max_batch,
            batch_latency_floor=self.batch_latency_floor,
            functional_width=self.functional_width,
            num_classes=self.num_classes,
        )
        profiles = {
            profile.layer: profile
            for block in self._blocks
            for profile in block
        }
        return CustomSupernet(space, profiles)
