"""The shared-fleet device owner: leases GPU slot sets to engines.

Before the service plane, every :class:`~repro.engines.pipeline.
PipelineEngine` constructed its own ``Cluster`` — device ownership was a
side effect of running, and two engines could not share a machine.  The
:class:`ClusterManager` extracts that ownership: it holds the fleet's
physical GPU slots (described once by a fleet-wide
:class:`~repro.sim.cluster.ClusterSpec`) and grants disjoint subsets to
jobs as :class:`~repro.service.lease.DeviceLease` handles.  Engines are
then constructed *from a lease* and run on exactly the slots they were
granted.

Invariants the manager enforces (violations raise :class:`LeaseError`):

* a slot belongs to at most one live lease (never double-leased);
* a lease is released exactly once, by the lease that holds the slots;
* allocation is deterministic — the lowest-numbered free slots win, so
  identical request sequences produce identical grants bit-for-bit.

**Revocation** (the fleet-unreliability path, see
``docs/FAULT_TOLERANCE.md`` §Fleet-scale faults): a fleet fault —
``slot_preempt`` or ``node_down`` — calls :meth:`revoke` on a physical
slot.  If the slot is leased, the owning lease is invalidated
*mid-segment*: it leaves the live set immediately, the revoking fault is
recorded as the lease's provenance, the struck slot enters the **down
pool** (out of service until :meth:`mark_up`), and the lease's surviving
slots stay reserved until the holder releases them.  A release of a
revoked lease is **idempotent** — the holder learns about the revocation
asynchronously (at its next consistent cut), so "I released what was
already taken from me" is a normal hand-off, not an ownership violation.
Every other double/foreign release is still a loud :class:`LeaseError`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.errors import LeaseError
from repro.service.lease import DeviceLease
from repro.sim.cluster import ClusterSpec

__all__ = ["ClusterManager"]


class ClusterManager:
    """Owns the fleet's GPU slots; grants and reclaims leases."""

    def __init__(self, spec: ClusterSpec) -> None:
        #: fleet-wide template: ``num_gpus`` is the fleet size, and
        #: ``gpu_speed_factors`` (when set) describes per-slot hardware
        self.spec = spec
        self._free: List[int] = list(range(spec.num_gpus))  # kept sorted
        self._live: Dict[int, DeviceLease] = {}
        self._owner: Dict[int, int] = {}  # slot -> lease_id
        self._down: Dict[int, str] = {}  # slot -> revoking fault label
        self._revoked: Dict[int, str] = {}  # lease_id -> revoking fault
        #: slots a revoked lease still reserves until its release
        self._residual: Dict[int, List[int]] = {}
        self._next_lease_id = 0
        self.total_leases_granted = 0
        self.total_revocations = 0
        #: virtual-clock source for the usage ledger.  The owning plane's
        #: ``run()`` installs ``lambda: sim.now``; the default keeps
        #: construction-time acquires (the serving engine leases in its
        #: ``__init__``, before any event fires) at t=0.
        self.clock = lambda: 0.0
        #: optional ``(kind, job, lease_id, slot, now, cause, manager)``
        #: callback fired when a per-slot holding opens ("acquire") or
        #: closes ("close") — the telemetry plane's metering hook
        self.usage_observer = None
        self._holdings: Dict[Tuple[int, int], float] = {}
        self._lease_jobs: Dict[int, str] = {}
        #: closed holdings: (job, lease_id, slot, start_ms, end_ms, cause).
        #: The manager's own usage record — :meth:`leased_slot_ms_total`
        #: sums it independently of any observer, which is what metering
        #: reconciliation checks against.
        self.usage_ledger: List[Tuple[str, int, int, float, float, str]] = []

    # ------------------------------------------------------------------
    @property
    def total_gpus(self) -> int:
        return self.spec.num_gpus

    @property
    def available_gpus(self) -> int:
        return len(self._free)

    @property
    def leased_gpus(self) -> int:
        """Slots held by live leases (revoked residuals excluded)."""
        return sum(len(lease.slots) for lease in self._live.values())

    def free_slots(self) -> Tuple[int, ...]:
        return tuple(self._free)

    def down_slots(self) -> Tuple[int, ...]:
        """Out-of-service slots, ascending (revoked, not yet marked up)."""
        return tuple(sorted(self._down))

    def is_down(self, slot: int) -> bool:
        return slot in self._down

    def residual_slots(self) -> Tuple[int, ...]:
        """Slots still reserved by revoked-but-unreleased leases."""
        return tuple(
            sorted(s for slots in self._residual.values() for s in slots)
        )

    def revocation_of(self, lease: DeviceLease) -> Optional[str]:
        """The fault label that revoked ``lease``, or None if never
        revoked."""
        return self._revoked.get(lease.lease_id)

    def live_leases(self) -> Tuple[DeviceLease, ...]:
        """Live leases in grant order."""
        return tuple(self._live[k] for k in sorted(self._live))

    def is_active(self, lease: DeviceLease) -> bool:
        return self._live.get(lease.lease_id) is lease

    def owner_of(self, slot: int) -> int:
        """Lease id holding ``slot``, or ``-1`` when free."""
        return self._owner.get(slot, -1)

    # ------------------------------------------------------------------
    # usage ledger (per-slot holdings on the virtual clock)
    # ------------------------------------------------------------------
    def _notify_usage(
        self, kind: str, job: str, lease_id: int, slot: int, now: float,
        cause: str,
    ) -> None:
        if self.usage_observer is not None:
            self.usage_observer(kind, job, lease_id, slot, now, cause, self)

    def _open_holding(self, job: str, lease_id: int, slot: int) -> None:
        now = self.clock()
        self._holdings[(lease_id, slot)] = now
        self._notify_usage("acquire", job, lease_id, slot, now, "")

    def _close_holding(self, lease_id: int, slot: int, cause: str) -> None:
        start = self._holdings.pop((lease_id, slot), None)
        if start is None:
            return
        now = self.clock()
        job = self._lease_jobs.get(lease_id, "?")
        self.usage_ledger.append((job, lease_id, slot, start, now, cause))
        self._notify_usage("close", job, lease_id, slot, now, cause)

    def leased_slot_ms_total(self) -> float:
        """Total GPU-slot-milliseconds across every *closed* holding —
        the manager-side quantity per-tenant metering must reconcile to
        (open holdings are not yet usage on either side)."""
        return sum(end - start for _, _, _, start, end, _ in self.usage_ledger)

    # ------------------------------------------------------------------
    def _lease_spec(self, slots: Tuple[int, ...]) -> ClusterSpec:
        """The lease-local cluster parameters: fleet template resized to
        the grant, with per-slot speed factors re-indexed to lease
        positions (stage ``i`` inherits slot ``slots[i]``'s speed)."""
        speeds = None
        if self.spec.gpu_speed_factors is not None:
            speeds = tuple(self.spec.gpu_speed_factors[s] for s in slots)
        return replace(
            self.spec, num_gpus=len(slots), gpu_speed_factors=speeds
        )

    def acquire(self, job: str, count: int) -> DeviceLease:
        """Grant ``count`` slots to ``job`` (lowest free slots first).

        Deterministic and exclusive: the same free-pool state and request
        always yields the same slot set, and a granted slot leaves the
        pool until its lease is released.
        """
        if count < 1:
            raise LeaseError(f"{job}: a lease needs at least 1 GPU, got {count}")
        if count > len(self._free):
            down = f", {len(self._down)} down" if self._down else ""
            raise LeaseError(
                f"{job}: requested {count} GPUs with only "
                f"{len(self._free)} free of {self.total_gpus}{down}"
            )
        slots = tuple(self._free[:count])
        del self._free[:count]
        lease = DeviceLease(
            lease_id=self._next_lease_id,
            job=job,
            slots=slots,
            spec=self._lease_spec(slots),
            manager=self,
        )
        self._next_lease_id += 1
        self.total_leases_granted += 1
        self._live[lease.lease_id] = lease
        for slot in slots:
            if slot in self._owner:  # pragma: no cover - defence in depth
                raise LeaseError(
                    f"slot {slot} already owned by lease "
                    f"{self._owner[slot]} while granting to {job}"
                )
            self._owner[slot] = lease.lease_id
        self._lease_jobs[lease.lease_id] = job
        for slot in slots:
            self._open_holding(job, lease.lease_id, slot)
        return lease

    def release(self, lease: DeviceLease) -> None:
        """Reclaim a lease's slots.

        Releasing a **revoked** lease is idempotent: the first call
        returns the lease's surviving (non-struck) slots to the free
        pool, later calls are no-ops — the holder learns of the
        revocation asynchronously, so this hand-off is expected.  Every
        other double release or foreign lease is an ownership violation
        and raises :class:`LeaseError` naming the provenance.
        """
        fault = self._revoked.get(lease.lease_id)
        if fault is not None:
            residual = self._residual.pop(lease.lease_id, [])
            for slot in residual:
                del self._owner[slot]
                self._close_holding(lease.lease_id, slot, "release")
            self._free.extend(residual)
            self._free.sort()
            return
        live = self._live.get(lease.lease_id)
        if live is None or live is not lease:
            raise LeaseError(
                f"lease {lease.lease_id} ({lease.job}) is not live and was "
                "never revoked; double release or foreign lease"
            )
        del self._live[lease.lease_id]
        for slot in lease.slots:
            if self._owner.get(slot) != lease.lease_id:
                raise LeaseError(  # pragma: no cover - defence in depth
                    f"slot {slot} not owned by lease {lease.lease_id} "
                    "at release"
                )
            del self._owner[slot]
            self._close_holding(lease.lease_id, slot, "release")
        self._free.extend(lease.slots)
        self._free.sort()

    # ------------------------------------------------------------------
    # revocation — the fleet-fault path
    # ------------------------------------------------------------------
    def revoke(self, slot: int, fault: str = "fault") -> Optional[DeviceLease]:
        """Take physical ``slot`` out of service (fleet fault at ``slot``).

        Deterministic state transition, idempotent per slot while down:

        * a **free** slot simply moves to the down pool;
        * a slot held by a **live** lease invalidates that lease: it
          leaves the live set, ``fault`` becomes its recorded provenance
          (see :meth:`revocation_of`), the struck slot goes down, and
          the lease's other slots stay reserved (``residual``) until the
          holder's idempotent release — the grace window in which an
          elastic job drains to its next consistent cut;
        * a residual slot of an **already-revoked** lease goes down too
          (storms can strike one lease repeatedly);
        * an already-down slot is a no-op.

        Returns the lease revoked *by this call*, else None.
        """
        if not 0 <= slot < self.total_gpus:
            raise LeaseError(
                f"cannot revoke slot {slot}: fleet has slots "
                f"0..{self.total_gpus - 1}"
            )
        if slot in self._down:
            return None
        if slot in self._free:
            self._free.remove(slot)
            self._down[slot] = fault
            self._notify_usage("down", "", -1, slot, self.clock(), fault)
            return None
        lease_id = self._owner.pop(slot)
        self._down[slot] = fault
        lease = self._live.pop(lease_id, None)
        if lease is None:
            # the owning lease was already revoked: strike the residual
            self._residual[lease_id].remove(slot)
            self._close_holding(lease_id, slot, "revoked")
            self._notify_usage("down", "", -1, slot, self.clock(), fault)
            return None
        self._revoked[lease_id] = fault
        self._residual[lease_id] = [s for s in lease.slots if s != slot]
        self.total_revocations += 1
        self._close_holding(lease_id, slot, "revoked")
        self._notify_usage("down", "", -1, slot, self.clock(), fault)
        return lease

    def mark_up(self, slot: int) -> None:
        """Return a down slot to service (outage over).  Idempotent: a
        slot that is not down (already recovered) is a no-op."""
        if slot not in self._down:
            return
        del self._down[slot]
        self._free.append(slot)
        self._free.sort()
        self._notify_usage("up", "", -1, slot, self.clock(), "")
