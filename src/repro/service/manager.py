"""The shared-fleet device owner: leases GPU slot sets to engines.

Before the service plane, every :class:`~repro.engines.pipeline.
PipelineEngine` constructed its own ``Cluster`` — device ownership was a
side effect of running, and two engines could not share a machine.  The
:class:`ClusterManager` extracts that ownership: it holds the fleet's
physical GPU slots (described once by a fleet-wide
:class:`~repro.sim.cluster.ClusterSpec`) and grants disjoint subsets to
jobs as :class:`~repro.service.lease.DeviceLease` handles.  Engines are
then constructed *from a lease* and run on exactly the slots they were
granted.

Invariants the manager enforces (violations raise :class:`LeaseError`):

* a slot belongs to at most one live lease (never double-leased);
* a lease is released exactly once, by the lease that holds the slots;
* allocation is deterministic — the lowest-numbered free slots win, so
  identical request sequences produce identical grants bit-for-bit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.errors import LeaseError
from repro.service.lease import DeviceLease
from repro.sim.cluster import ClusterSpec

__all__ = ["ClusterManager"]


class ClusterManager:
    """Owns the fleet's GPU slots; grants and reclaims leases."""

    def __init__(self, spec: ClusterSpec) -> None:
        #: fleet-wide template: ``num_gpus`` is the fleet size, and
        #: ``gpu_speed_factors`` (when set) describes per-slot hardware
        self.spec = spec
        self._free: List[int] = list(range(spec.num_gpus))  # kept sorted
        self._live: Dict[int, DeviceLease] = {}
        self._owner: Dict[int, int] = {}  # slot -> lease_id
        self._next_lease_id = 0
        self.total_leases_granted = 0

    # ------------------------------------------------------------------
    @property
    def total_gpus(self) -> int:
        return self.spec.num_gpus

    @property
    def available_gpus(self) -> int:
        return len(self._free)

    @property
    def leased_gpus(self) -> int:
        return self.total_gpus - self.available_gpus

    def free_slots(self) -> Tuple[int, ...]:
        return tuple(self._free)

    def live_leases(self) -> Tuple[DeviceLease, ...]:
        """Live leases in grant order."""
        return tuple(self._live[k] for k in sorted(self._live))

    def is_active(self, lease: DeviceLease) -> bool:
        return self._live.get(lease.lease_id) is lease

    def owner_of(self, slot: int) -> int:
        """Lease id holding ``slot``, or ``-1`` when free."""
        return self._owner.get(slot, -1)

    # ------------------------------------------------------------------
    def _lease_spec(self, slots: Tuple[int, ...]) -> ClusterSpec:
        """The lease-local cluster parameters: fleet template resized to
        the grant, with per-slot speed factors re-indexed to lease
        positions (stage ``i`` inherits slot ``slots[i]``'s speed)."""
        speeds = None
        if self.spec.gpu_speed_factors is not None:
            speeds = tuple(self.spec.gpu_speed_factors[s] for s in slots)
        return replace(
            self.spec, num_gpus=len(slots), gpu_speed_factors=speeds
        )

    def acquire(self, job: str, count: int) -> DeviceLease:
        """Grant ``count`` slots to ``job`` (lowest free slots first).

        Deterministic and exclusive: the same free-pool state and request
        always yields the same slot set, and a granted slot leaves the
        pool until its lease is released.
        """
        if count < 1:
            raise LeaseError(f"{job}: a lease needs at least 1 GPU, got {count}")
        if count > len(self._free):
            raise LeaseError(
                f"{job}: requested {count} GPUs with only "
                f"{len(self._free)} free of {self.total_gpus}"
            )
        slots = tuple(self._free[:count])
        del self._free[:count]
        lease = DeviceLease(
            lease_id=self._next_lease_id,
            job=job,
            slots=slots,
            spec=self._lease_spec(slots),
            manager=self,
        )
        self._next_lease_id += 1
        self.total_leases_granted += 1
        self._live[lease.lease_id] = lease
        for slot in slots:
            if slot in self._owner:  # pragma: no cover - defence in depth
                raise LeaseError(
                    f"slot {slot} already owned by lease "
                    f"{self._owner[slot]} while granting to {job}"
                )
            self._owner[slot] = lease.lease_id
        return lease

    def release(self, lease: DeviceLease) -> None:
        """Reclaim a lease's slots.  Double releases and foreign leases
        are ownership violations, not no-ops."""
        live = self._live.get(lease.lease_id)
        if live is None or live is not lease:
            raise LeaseError(
                f"lease {lease.lease_id} ({lease.job}) is not live; "
                "double release or foreign lease"
            )
        del self._live[lease.lease_id]
        for slot in lease.slots:
            if self._owner.get(slot) != lease.lease_id:
                raise LeaseError(  # pragma: no cover - defence in depth
                    f"slot {slot} not owned by lease {lease.lease_id} "
                    "at release"
                )
            del self._owner[slot]
        self._free.extend(lease.slots)
        self._free.sort()
