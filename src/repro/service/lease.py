"""Device leases: the handle a pipeline engine runs on in a shared fleet.

A :class:`DeviceLease` names the set of physical GPU slots a
:class:`~repro.service.manager.ClusterManager` granted to one job.  The
engine never sees the fleet — it calls :meth:`DeviceLease.materialize`
and receives a fresh :class:`~repro.sim.cluster.Cluster` view in which
stage ``i`` runs on physical slot ``slots[i]``.  Two properties follow:

* **Exclusive ownership.**  The manager guarantees slot sets of live
  leases are disjoint, so two engines can never contend for (or observe)
  each other's devices — the isolation behind per-tenant determinism.
* **No state leakage.**  Devices are occupancy models with per-run
  mutable state (``busy_until``, ``next_free``, memory ledgers).  Each
  ``materialize()`` builds them fresh via
  :func:`repro.sim.cluster.build_devices`; only the *slot identity* is
  shared between successive tenants of the same hardware.

The lease-local :class:`~repro.sim.cluster.ClusterSpec` carries the
fleet's per-slot speed factors re-indexed to lease positions, so a job
scheduled onto heterogeneous slots sees exactly the hardware it leased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.errors import LeaseError
from repro.sim.cluster import Cluster, ClusterSpec, build_devices

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.manager import ClusterManager

__all__ = ["DeviceLease"]


@dataclass(frozen=True)
class DeviceLease:
    """Exclusive grant of a physical GPU slot set to one job."""

    lease_id: int
    job: str
    #: physical fleet slots, ascending; stage ``i`` maps to ``slots[i]``
    slots: Tuple[int, ...]
    #: lease-local cluster parameters (``num_gpus == len(slots)``)
    spec: ClusterSpec
    manager: "ClusterManager"

    @property
    def num_gpus(self) -> int:
        return len(self.slots)

    @property
    def active(self) -> bool:
        """Whether the manager still considers this lease live."""
        return self.manager.is_active(self)

    @property
    def revoked_by(self) -> "str | None":
        """The fault event that revoked this lease, or None."""
        return self.manager.revocation_of(self)

    def materialize(self) -> Cluster:
        """A fresh :class:`Cluster` over the leased slots.

        The engine adopts it as its device plane (see
        ``PipelineEngine._resolve_cluster``).  Raises :class:`LeaseError`
        when the lease has been released or revoked — running on
        returned hardware would break another tenant's exclusivity, and
        running on revoked hardware races the fault; the revocation
        error names the revoking fault event.
        """
        if not self.active:
            fault = self.revoked_by
            if fault is not None:
                raise LeaseError(
                    f"lease {self.lease_id} ({self.job}) was revoked by "
                    f"fault event [{fault}]; cannot materialize devices "
                    "from it"
                )
            raise LeaseError(
                f"lease {self.lease_id} ({self.job}) was already released; "
                "cannot materialize devices from it"
            )
        return Cluster(self.spec, devices=build_devices(self.spec, self.slots))

    def release(self) -> None:
        """Return the slots to the fleet.

        Releasing a *revoked* lease is idempotent (the holder hears
        about the fault asynchronously); any other double release means
        two owners believed they held the slots and is an error.
        """
        self.manager.release(self)
